#!/usr/bin/env python3
"""A multimedia hotspot: the paper's headline comparison, end to end.

One BSS carries the paper's 1:1:1 voice:video:data mix at three load
levels, under all three schemes — the proposed QoS system with single
polls, the CF-MultiPoll variant, and the conventional 802.11 DCF+PCF.
Both schemes see identical arrivals (common random numbers), so every
difference in the table is the protocol's doing.

Expected shape (the paper's Figs. 8-10): near-parity at light load;
at heavy load the conventional protocol's real-time delays blow up
while the proposed scheme stays flat — at the price of data traffic,
which is exactly its lowest priority class.

Usage:  python examples/multimedia_hotspot.py [--quick]
"""

import sys

from repro.experiments import format_table
from repro.network import BssScenario, ScenarioConfig


def run_cell(scheme: str, load: float, sim_time: float) -> dict:
    config = ScenarioConfig(
        scheme=scheme,
        seed=11,
        sim_time=sim_time,
        warmup=min(5.0, sim_time / 6),
        load=load,
        new_voice_rate=0.3,
        new_video_rate=0.2,
        handoff_voice_rate=0.15,
        handoff_video_rate=0.1,
        mean_holding=20.0,
        n_data_stations=4,
    )
    return BssScenario(config).run()


def main() -> None:
    quick = "--quick" in sys.argv
    sim_time = 20.0 if quick else 60.0
    loads = (0.5, 2.0) if quick else (0.5, 1.0, 2.0)
    schemes = ("proposed", "proposed-multipoll", "conventional")

    rows = []
    for load in loads:
        for scheme in schemes:
            r = run_cell(scheme, load, sim_time)
            rows.append(
                {
                    "load": load,
                    "scheme": scheme,
                    "voice ms": r["voice_delay_mean"] * 1000,
                    "video ms": r["video_delay_mean"] * 1000,
                    "data ms": r["data_delay_mean"] * 1000,
                    "voice loss": (
                        r["voice_losses"]
                        / max(1, r["voice_losses"] + r["voice_delivered"])
                    ),
                    "busy": r["channel_busy_fraction"],
                }
            )
            print(f"  done: load={load} {scheme}")

    print()
    print(
        format_table(
            rows,
            ["load", "scheme", "voice ms", "video ms", "data ms",
             "voice loss", "busy"],
            title="Mean access delay by class (identical arrivals per load)",
        )
    )
    print(
        "\nReading: at heavy load the proposed scheme holds voice/video"
        "\ndelay roughly flat (tokens + priority polling) while the"
        "\nconventional protocol degrades; data pays the price instead."
    )


if __name__ == "__main__":
    main()
