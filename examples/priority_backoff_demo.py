#!/usr/bin/env python3
"""MAC-level demo: the partitioned priority backoff and the adaptive CW.

No call layer here — just stations contending on one channel, which
makes the Section II-A mechanisms directly visible:

1. a handoff-priority station wins the medium against a crowd of
   data-priority stations essentially every time (Table I windows);
2. the adaptive contention window tracks the crowd size: the shared
   policy's total window grows as more saturated stations join.

Usage:  python examples/priority_backoff_demo.py
"""

from repro.core import AdaptiveCW, PriorityBackoff
from repro.experiments import format_table, render_table1
from repro.mac import DcfTransmitter, Frame, FrameType, Nav
from repro.mac.backoff import LEVEL_HANDOFF, LEVEL_NEW_OR_DATA
from repro.phy import BitErrorModel, Channel, PhyTiming
from repro.sim import RandomStreams, Simulator


def race(n_low: int, n_races: int = 200) -> float:
    """Fraction of races the single high-priority station wins against
    ``n_low`` low-priority stations, all contending simultaneously."""
    sim = Simulator()
    timing = PhyTiming()
    streams = RandomStreams(99)
    channel = Channel(sim, BitErrorModel(0.0, streams.get("ch")))
    nav = Nav()
    policy = PriorityBackoff(alphas=(4, 4, 8))

    stations = {}
    for sid, level in [("hi", LEVEL_HANDOFF)] + [
        (f"lo{i}", LEVEL_NEW_OR_DATA) for i in range(n_low)
    ]:
        stations[sid] = (
            DcfTransmitter(
                sim, channel, timing, policy, streams.get(sid), sid, nav
            ),
            level,
        )

    wins = 0
    first_success: list[str] = []

    def make_cb(sid):
        def cb(ok):
            if ok and not first_success:
                first_success.append(sid)
        return cb

    for round_no in range(n_races):
        first_success.clear()
        base = sim.now + 0.01
        for sid, (tx, level) in stations.items():
            frame = Frame(FrameType.DATA, src=sid, dest="ap", payload_bits=2048)
            sim.call_at(base, tx.enqueue, frame, level, make_cb(sid))
        sim.run(until=base + 0.08)
        if first_success and first_success[0] == "hi":
            wins += 1
        sim.run()  # drain the stragglers
    return wins / n_races


def adaptive_window_growth() -> list[dict]:
    """Saturate an AdaptiveCW policy with growing crowds; report the
    window it converges to."""
    rows = []
    for n in (2, 5, 10, 20):
        sim = Simulator()
        timing = PhyTiming()
        streams = RandomStreams(7)
        channel = Channel(sim, BitErrorModel(0.0, streams.get("ch")))
        nav = Nav()
        policy = AdaptiveCW(timing, update_every=32)

        def refill(tx, sid):
            frame = Frame(FrameType.DATA, src=sid, dest="ap", payload_bits=8192)
            tx.enqueue(frame, LEVEL_NEW_OR_DATA, lambda ok: refill(tx, sid))

        for i in range(n):
            sid = f"s{i}"
            tx = DcfTransmitter(
                sim, channel, timing, policy, streams.get(sid), sid, nav
            )
            refill(tx, sid)
        sim.run(until=3.0)
        rows.append(
            {
                "saturated stations": n,
                "adapted total window (slots)": round(policy.total_window(0)),
                "estimated busy fraction": round(policy.busy_fraction(), 3),
            }
        )
    return rows


def main() -> None:
    print(render_table1())
    print("\npriority race: one handoff station vs a data crowd")
    rows = [
        {"low-priority rivals": n, "high-priority win rate": race(n)}
        for n in (1, 4, 8)
    ]
    print(format_table(rows, ["low-priority rivals", "high-priority win rate"]))

    print("\nadaptive CW: shared window vs crowd size (saturation)")
    print(
        format_table(
            adaptive_window_growth(),
            ["saturated stations", "adapted total window (slots)",
             "estimated busy fraction"],
        )
    )
    print(
        "\nReading: the handoff station's backoff range sits entirely"
        "\nbelow the crowd's, so it wins nearly always; and the adaptive"
        "\nCW expands with the crowd, holding collisions near the"
        "\ncapacity-optimal point instead of paying one collision per"
        "\ndoubling like plain BEB."
    )


if __name__ == "__main__":
    main()
