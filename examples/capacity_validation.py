#!/usr/bin/env python3
"""Cross-validation: Bianchi's analytical model vs the simulated MAC.

The adaptive-CW mechanism rests on the Bianchi / Cali-Conti-Gregori
capacity analysis.  This script saturates N stations on the simulated
DCF with plain BEB and compares the measured normalized throughput
against the analytical prediction for the same (W, m, n) — if the MAC
substrate is faithful, the two columns agree within a few percent.

Usage:  python examples/capacity_validation.py
"""

from repro.core import bianchi_tau, saturation_throughput
from repro.experiments import format_table
from repro.mac import DcfTransmitter, Frame, FrameType, Nav, StandardBEB
from repro.mac.backoff import LEVEL_NEW_OR_DATA
from repro.phy import BitErrorModel, Channel, PhyTiming
from repro.sim import RandomStreams, Simulator

CW_MIN = 32
MAX_STAGE = 5
PAYLOAD = 8192
SIM_TIME = 5.0


def simulate(n_stations: int, seed: int = 3) -> float:
    """Measured normalized saturation throughput of n stations."""
    sim = Simulator()
    timing = PhyTiming()
    streams = RandomStreams(seed)
    channel = Channel(sim, BitErrorModel(0.0, streams.get("ch")))
    nav = Nav()
    policy = StandardBEB(cw_min=CW_MIN, cw_max=CW_MIN * 2**MAX_STAGE)
    delivered = [0]

    def refill(tx, sid):
        frame = Frame(FrameType.DATA, src=sid, dest="ap", payload_bits=PAYLOAD)

        def done(ok):
            if ok:
                delivered[0] += 1
            refill(tx, sid)

        tx.enqueue(frame, LEVEL_NEW_OR_DATA, done)

    for i in range(n_stations):
        sid = f"s{i}"
        tx = DcfTransmitter(
            sim, channel, timing, policy, streams.get(sid), sid, nav
        )
        refill(tx, sid)
    sim.run(until=SIM_TIME)
    return delivered[0] * PAYLOAD / SIM_TIME / timing.data_rate


def predict(n_stations: int) -> float:
    """Bianchi's analytical normalized throughput."""
    timing = PhyTiming()
    tau = bianchi_tau(n_stations, CW_MIN, MAX_STAGE)
    return saturation_throughput(n_stations, tau, timing, PAYLOAD)


def main() -> None:
    rows = []
    for n in (2, 5, 10, 20):
        analytic = predict(n)
        measured = simulate(n)
        rows.append(
            {
                "stations": n,
                "analytic S": analytic,
                "simulated S": measured,
                "relative error": abs(measured - analytic) / analytic,
            }
        )
        print(f"  n={n}: analytic {analytic:.4f}  simulated {measured:.4f}")
    print()
    print(
        format_table(
            rows,
            ["stations", "analytic S", "simulated S", "relative error"],
            title=f"Saturation throughput, W={CW_MIN}, m={MAX_STAGE}, "
                  f"{PAYLOAD // 8}B frames",
        )
    )
    print(
        "\nReading: the simulated CSMA/CA saturates within a few percent"
        "\nof Bianchi's renewal analysis across crowd sizes — the MAC"
        "\nsubstrate and the capacity model the adaptive CW relies on"
        "\nagree with each other."
    )


if __name__ == "__main__":
    main()
