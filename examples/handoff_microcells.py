#!/usr/bin/env python3
"""Handoff protection in a microcell: channel II and the adaptive manager.

A small cell faces a wave of handoff arrivals on top of steady local
traffic — the situation the paper's channel II (handoff-exclusive
bandwidth) and adaptive bandwidth allocation are built for.  The
script tracks the (I, II, III) shares as the controller reacts, then
compares handoff dropping against the conventional baseline, which has
no reservation at all.

Usage:  python examples/handoff_microcells.py
"""

from repro.experiments import format_table
from repro.network import BssScenario, ScenarioConfig


def build(scheme: str) -> BssScenario:
    config = ScenarioConfig(
        scheme=scheme,
        seed=5,
        sim_time=60.0,
        warmup=5.0,
        load=2.0,  # a stressed cell
        new_voice_rate=0.3,
        new_video_rate=0.2,
        handoff_voice_rate=0.12,  # a steady stream of arriving calls
        handoff_video_rate=0.08,
        mean_holding=20.0,
        n_data_stations=3,
    )
    return BssScenario(config)


def main() -> None:
    # --- proposed scheme, with a probe on the bandwidth manager -------
    scenario = build("proposed")
    shares_log: list[tuple[float, float, float, float]] = []
    manager = scenario.ap.bandwidth
    orig_update = manager.update

    def spying_update(drop, block, util):
        orig_update(drop, block, util)
        shares_log.append(
            (scenario.sim.now, manager.share_i, manager.share_ii,
             manager.share_iii)
        )

    manager.update = spying_update
    proposed = scenario.run()

    # --- conventional baseline, identical arrivals ----------------------
    conventional = build("conventional").run()

    print("adaptive bandwidth shares over time (proposed scheme)")
    sampled = shares_log[:: max(1, len(shares_log) // 10)]
    print(
        format_table(
            [
                {"t (s)": t, "channel I": i, "channel II": ii, "channel III": iii}
                for t, i, ii, iii in sampled
            ],
            ["t (s)", "channel I", "channel II", "channel III"],
        )
    )

    print("\nhandoff outcome comparison (same arrival sequence)")
    print(
        format_table(
            [
                {
                    "scheme": r["scheme"],
                    "handoff attempts": r["call_attempts_handoff"],
                    "dropped": r["calls_dropped"],
                    "dropping prob": r["dropping_probability"],
                    "new blocked": r["calls_blocked"],
                    "blocking prob": r["blocking_probability"],
                }
                for r in (proposed, conventional)
            ],
            ["scheme", "handoff attempts", "dropped", "dropping prob",
             "new blocked", "blocking prob"],
        )
    )
    print(
        "\nReading: the proposed scheme trades new-call blocking for"
        "\nhandoff survival — channel II grows under dropping pressure"
        "\n(the shares above), so in-progress calls keep their bandwidth"
        "\nwhile the conventional baseline sheds them like any other call."
    )


if __name__ == "__main__":
    main()
