#!/usr/bin/env python3
"""Quickstart: run one BSS under the proposed QoS scheme and read the results.

This is the smallest end-to-end use of the public API: configure a
scenario, run it, inspect the QoS metrics the paper's evaluation
reports.  Takes a few seconds.

Usage:  python examples/quickstart.py [seed]
"""

import sys

from repro.network import BssScenario, ScenarioConfig


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1

    config = ScenarioConfig(
        scheme="proposed",  # the paper's QoS provisioning system
        seed=seed,
        sim_time=30.0,  # simulated seconds
        warmup=3.0,  # transient removal
        load=1.0,  # nominal offered load
        new_voice_rate=0.3,  # calls/s
        new_video_rate=0.2,
        handoff_voice_rate=0.15,
        handoff_video_rate=0.1,
        mean_holding=20.0,  # seconds per admitted call
        n_data_stations=4,
    )

    print(f"running: scheme={config.scheme}, load={config.load}, seed={seed}")
    print(f"offered load ~ {config.offered_load_bps() / 1e6:.2f} Mb/s "
          f"({config.normalized_load():.0%} of the 11 Mb/s channel)\n")

    results = BssScenario(config).run()

    print("call-level QoS")
    print(f"  handoff dropping probability : {results['dropping_probability']:.3f}")
    print(f"  new-call blocking probability: {results['blocking_probability']:.3f}")
    print(f"  calls admitted (new/handoff) : "
          f"{results['calls_admitted_new']}/{results['calls_admitted_handoff']}")

    print("packet-level QoS (mean access delay)")
    for kind in ("voice", "video", "data"):
        mean = results[f"{kind}_delay_mean"] * 1000
        var = results[f"{kind}_delay_var"] * 1e6
        n = results[f"{kind}_delivered"]
        lost = results[f"{kind}_losses"]
        print(f"  {kind:5s}: {mean:7.3f} ms  (var {var:9.2f} ms^2, "
              f"{n} delivered, {lost} lost)")

    print("guarantees")
    print(f"  worst observed voice jitter  : "
          f"{results['worst_voice_jitter'] * 1000:.2f} ms "
          f"(budget 30 ms)")
    print(f"  worst observed video delay   : "
          f"{results['worst_video_delay'] * 1000:.2f} ms (budget 50 ms)")

    print("channel")
    print(f"  busy fraction                : {results['channel_busy_fraction']:.2%}")
    print(f"  goodput utilization          : {results['goodput_utilization']:.2%}")


if __name__ == "__main__":
    main()
