"""Closed-loop load benchmark for the serving front end.

Builds a small pinned sweep surface in a temporary cache, binds an
in-process :class:`~repro.serve.QueryServer` on an ephemeral port, and
drives it with one keep-alive client issuing a fixed request mix —
exact hits, interpolated lookups, ``admissible_calls`` searches,
``handoff_drop_rate`` reads and deliberate misses — then reports

* client-side throughput (``requests_per_sec`` over the closed loop),
* the answered-query hit rate (200s over everything),
* server-side latency quantiles (p50/p99 from the server's own
  ``serve_request_seconds`` histogram, the same one ``/metrics``
  exposes), and
* a byte-determinism check: the first and last responses to the same
  query must be identical.

The numbers land in the ``serve_queries`` section of the bench report
via :func:`repro.bench.merge_section` (``python -m repro bench
--with-serve``), next to the kernel microbenchmarks and the
parallel-sweep section.
"""

from __future__ import annotations

import http.client
import tempfile
import time
import typing

__all__ = ["REQUEST_MIX", "run_serve_queries"]

#: one closed-loop cycle: (path, expected_status) pairs.  The miss is
#: an ``exact=true`` lookup at an uncached load — with back-fill
#: disabled it must answer 404 deterministically.
REQUEST_MIX: tuple[tuple[str, int], ...] = (
    ("/query?kind=operating_point&scheme=proposed&load=0.5", 200),
    ("/query?kind=operating_point&scheme=proposed&load=1.0", 200),
    ("/query?kind=operating_point&scheme=proposed&load=2.0", 200),
    ("/query?kind=operating_point&scheme=proposed&load=0.75", 200),
    ("/query?kind=operating_point&scheme=proposed&load=1.5", 200),
    ("/query?kind=admissible_calls&scheme=proposed", 200),
    ("/query?kind=handoff_drop_rate&scheme=proposed&load=1.0", 200),
    ("/query?kind=operating_point&scheme=proposed&load=0.8&exact=true", 404),
)


def _build_surface(cache_dir: str, sim_time: float, warmup: float) -> int:
    """Run the pinned warm-up sweep into ``cache_dir``; returns rows."""
    from ..exec import ExecutorConfig, SweepExecutor
    from ..experiments import sweep_grid

    grid = sweep_grid(
        ("proposed",), loads=(0.5, 1.0, 2.0), seeds=(1,),
        sim_time=sim_time, warmup=warmup,
    )
    executor = SweepExecutor(
        ExecutorConfig(workers=1, cache_dir=cache_dir, on_failure="raise")
    )
    executor.run(grid)
    return len(grid)


def run_serve_queries(
    requests: int = 240,
    sim_time: float = 6.0,
    warmup: float = 1.0,
) -> dict[str, typing.Any]:
    """Measure the serving stack; returns the ``serve_queries`` section.

    ``requests`` is rounded down to whole cycles of the request mix so
    the status distribution (and therefore the hit rate) is exact and
    machine-independent; only the timing numbers vary across hosts.
    """
    from ..serve import build_server

    cycles = max(1, requests // len(REQUEST_MIX))
    total = cycles * len(REQUEST_MIX)

    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        rows = _build_surface(tmp, sim_time, warmup)
        server = build_server(tmp, port=0, backfill=False)
        import threading

        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            conn = http.client.HTTPConnection(host, port, timeout=10)
            statuses: dict[str, int] = {}
            first_body: bytes | None = None
            last_body: bytes | None = None

            def fetch(path: str) -> tuple[int, bytes]:
                conn.request("GET", path)
                response = conn.getresponse()
                return response.status, response.read()

            start = time.perf_counter()
            for cycle in range(cycles):
                for path, expected in REQUEST_MIX:
                    status, body = fetch(path)
                    if status != expected:
                        raise RuntimeError(
                            f"{path}: expected {expected}, got {status}: "
                            f"{body[:200]!r}"
                        )
                    key = str(status)
                    statuses[key] = statuses.get(key, 0) + 1
                    if path == REQUEST_MIX[0][0]:
                        if cycle == 0 and first_body is None:
                            first_body = body
                        last_body = body
            wall = time.perf_counter() - start
            conn.close()

            histogram = server.registry.histogram(
                "serve_request_seconds", endpoint="/query"
            )
            p50 = histogram.quantile(0.5)
            p99 = histogram.quantile(0.99)
        finally:
            server.stop()
            thread.join(timeout=10)

    hits = statuses.get("200", 0)
    return {
        "requests": total,
        "wall_s": round(wall, 4),
        "requests_per_sec": round(total / wall, 1) if wall > 0 else 0.0,
        "hit_rate": round(hits / total, 4),
        "statuses": dict(sorted(statuses.items())),
        "latency_p50_ms": round(p50 * 1e3, 3),
        "latency_p99_ms": round(p99 * 1e3, 3),
        "responses_identical": (
            first_body is not None and first_body == last_body
        ),
        "surface_rows": rows,
    }
