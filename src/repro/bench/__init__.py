"""Performance benchmarks and the regression gate (``repro bench``).

* :mod:`repro.bench.micro` — pinned-seed kernel/DCF/PCF/end-to-end
  microbenchmarks; each reports exact live-fire counts (a determinism
  invariant), best-of wall time, derived events/sec and peak traced
  allocation.
* :mod:`repro.bench.gate` — compares a fresh run against the committed
  ``BENCH_KERNEL.json`` baseline, failing on event-count drift or on
  throughput/allocation regressions beyond a tolerance; also hosts the
  scaled-down serial-vs-pool sweep section.
* :mod:`repro.bench.serve` — closed-loop load benchmark for the
  ``repro serve`` query API (``--with-serve``): requests/sec, hit
  rate, server-side latency quantiles and a byte-determinism check,
  reported in the ``serve_queries`` section.

See DESIGN.md "Performance" for the fast-path invariants the gate
protects, and README for day-to-day usage.
"""

from .gate import (
    DEFAULT_BASELINE,
    compare,
    load_report,
    main,
    merge_section,
    run_parallel_sweep,
    write_report,
)
from .micro import BENCHMARKS, run_benchmark, run_benchmarks
from .serve import run_serve_queries

__all__ = [
    "BENCHMARKS",
    "DEFAULT_BASELINE",
    "compare",
    "load_report",
    "main",
    "merge_section",
    "run_benchmark",
    "run_benchmarks",
    "run_parallel_sweep",
    "run_serve_queries",
    "write_report",
]
