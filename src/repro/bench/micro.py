"""Pinned-seed kernel and scenario microbenchmarks.

Each benchmark is a deterministic workload: a fixed seed (or a fully
arithmetic schedule, for the pure-kernel ones) drives a known number of
agenda fires.  The runner reports, per benchmark:

``events``
    Live agenda fires (:attr:`repro.sim.engine.Simulator.events_processed`).
    Because every workload is pinned, this is **exact** — any drift is a
    determinism regression, and the gate fails it regardless of the
    wall-clock tolerance.
``wall_s`` / ``events_per_sec``
    Best-of-``repeats`` wall time and the derived throughput.
``peak_kib``
    Peak traced allocation of one run, measured in a *separate* pass
    under ``tracemalloc`` (tracing skews wall time severalfold, so it
    must never share a pass with the timing loop).
"""

from __future__ import annotations

import time
import typing

from ..obs.profiler import measure_allocations
from ..sim.engine import Simulator

__all__ = ["BENCHMARKS", "run_benchmark", "run_benchmarks"]


# -- pure-kernel workloads ---------------------------------------------------

def _bench_timer_chain() -> int:
    """A single self-rescheduling timer: raw dispatch + heap churn."""
    sim = Simulator()
    n = 30_000
    state = {"left": n}

    def tick() -> None:
        state["left"] -= 1
        if state["left"]:
            sim.call_in(1e-4, tick)

    sim.call_in(1e-4, tick)
    sim.run()
    return sim.events_processed


def _bench_cancel_storm() -> int:
    """Schedule/cancel/reschedule churn: the tombstone-compaction path.

    Deterministic arithmetic pattern (no RNG): each round schedules a
    spread of timers and cancels two thirds of them, so the agenda
    repeatedly crosses the compaction threshold.
    """
    sim = Simulator()
    fired = {"count": 0}

    def noop() -> None:
        fired["count"] += 1

    for round_ in range(60):
        handles = [
            sim.call_at(sim.now + 1e-3 + (i * 7 % 50) * 1e-5, noop)
            for i in range(300)
        ]
        for i, handle in enumerate(handles):
            if i % 3 != 0:
                handle.cancel()
        sim.run(until=sim.now + 2e-3)
    sim.run()
    return sim.events_processed


def _bench_process_ping() -> int:
    """Generator processes on numeric yields: the Timeout free-list path."""
    sim = Simulator()

    def worker(period: float, steps: int) -> typing.Generator:
        for _ in range(steps):
            yield period

    for k in range(8):
        sim.process(worker(1e-4 * (k + 1), 2_000))
    sim.run()
    return sim.events_processed


# -- full-stack workloads ----------------------------------------------------

def _scenario(**overrides: typing.Any) -> int:
    from ..network import BssScenario, ScenarioConfig

    base: dict[str, typing.Any] = dict(
        scheme="proposed",
        seed=2,
        sim_time=10.0,
        warmup=1.0,
        new_voice_rate=0.3,
        new_video_rate=0.2,
        handoff_voice_rate=0.15,
        handoff_video_rate=0.1,
        mean_holding=10.0,
    )
    base.update(overrides)
    result = BssScenario(ScenarioConfig(**base)).run()
    return int(result["events_processed"])


def _bench_dcf_contention() -> int:
    """Contention-period heavy: many data stations, conventional CFP."""
    return _scenario(
        scheme="conventional", seed=3, sim_time=4.0, warmup=0.5,
        n_data_stations=8,
    )


def _bench_pcf_polling() -> int:
    """CFP heavy: high real-time admission pressure, long holding."""
    return _scenario(
        seed=4, sim_time=4.0, warmup=0.5,
        new_voice_rate=0.6, new_video_rate=0.4, mean_holding=30.0,
    )


def _bench_end_to_end() -> int:
    """The ``benchmarks/bench_simulator.py`` point, exactly."""
    return _scenario()


# -- accelerated-tier workloads (repro.accel) --------------------------------

def _accel_scenario(**overrides: typing.Any):
    from ..network import ScenarioConfig

    base: dict[str, typing.Any] = dict(
        scheme="conventional",
        seed=7,
        sim_time=10.0,
        warmup=1.0,
        n_data_stations=4,
        load=6.0,
        new_voice_rate=0.0,
        new_video_rate=0.0,
        handoff_voice_rate=0.0,
        handoff_video_rate=0.0,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def _bench_batched_end_to_end() -> int:
    """Pure-DCF contention point under ``engine="batched"``.

    Same shape the batched fast path accelerates in sweeps: a
    conventional BSS with zero real-time call traffic at high data
    load.  ``events_processed`` counts the fires the exact engine
    would have dispatched for the modeled exchanges (the accounting
    table in :mod:`repro.accel.engine`), so events-per-second is
    comparable with ``end_to_end``.
    """
    from ..accel import run_scenario

    row = run_scenario(_accel_scenario(engine="batched"))
    return int(row["events_processed"])


def _bench_hybrid_saturated() -> int:
    """A saturated long-horizon point under ``engine="hybrid"``.

    The detector switches to the analytic closure a few windows in;
    almost all of the 60 s horizon is answered by the Bianchi model.
    The workload raises if the switch did not happen — a silent
    fall-back to exact would invalidate the wall-clock comparison.
    """
    from ..accel import run_scenario

    row = run_scenario(
        _accel_scenario(
            engine="hybrid", sim_time=60.0, warmup=1.0,
            n_data_stations=8, load=20.0,
        )
    )
    if row.get("fidelity") != "analytic":
        raise RuntimeError(
            "hybrid_saturated did not reach its analytic switch"
        )
    return int(row["events_processed"])


#: name -> zero-argument workload returning its live-fire count
BENCHMARKS: dict[str, typing.Callable[[], int]] = {
    "timer_chain": _bench_timer_chain,
    "cancel_storm": _bench_cancel_storm,
    "process_ping": _bench_process_ping,
    "dcf_contention": _bench_dcf_contention,
    "pcf_polling": _bench_pcf_polling,
    "end_to_end": _bench_end_to_end,
    "batched_end_to_end": _bench_batched_end_to_end,
    "hybrid_saturated": _bench_hybrid_saturated,
}


def run_benchmark(
    name: str, repeats: int = 3, measure_alloc: bool = True
) -> dict[str, typing.Any]:
    """Run one benchmark; see the module docstring for the fields."""
    workload = BENCHMARKS[name]
    events = 0
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        events = workload()
        best = min(best, time.perf_counter() - start)
    entry: dict[str, typing.Any] = {
        "events": events,
        "wall_s": round(best, 6),
        "events_per_sec": round(events / best) if best > 0 else 0,
    }
    if measure_alloc:
        alloc_events, peak_kib = measure_allocations(workload)
        if alloc_events != events:
            raise RuntimeError(
                f"benchmark {name!r} is non-deterministic: "
                f"{events} events timed vs {alloc_events} traced"
            )
        entry["peak_kib"] = round(peak_kib, 1)
    return entry


def run_benchmarks(
    names: typing.Iterable[str] | None = None,
    repeats: int = 3,
    measure_alloc: bool = True,
    progress: typing.Callable[[str, dict], None] | None = None,
) -> dict[str, dict[str, typing.Any]]:
    """Run benchmarks in declaration order; ``{name: entry}``."""
    selected = list(BENCHMARKS) if names is None else list(names)
    unknown = [n for n in selected if n not in BENCHMARKS]
    if unknown:
        raise KeyError(f"unknown benchmark(s): {', '.join(unknown)}")
    results: dict[str, dict[str, typing.Any]] = {}
    for name in selected:
        results[name] = entry = run_benchmark(
            name, repeats=repeats, measure_alloc=measure_alloc
        )
        if progress is not None:
            progress(name, entry)
    return results
