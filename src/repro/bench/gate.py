"""The perf-regression gate: baseline compare + report plumbing.

``BENCH_KERNEL.json`` (repo root) is the committed baseline.  A gate
run re-measures every benchmark it lists and fails (exit 1) when

* a baselined benchmark is missing from the fresh run,
* the exact ``events`` count drifts — a **determinism** regression,
  failed regardless of tolerance (pinned workloads cannot legitimately
  change event counts without a deliberate baseline update), or
* throughput or peak allocation regress beyond the tolerance:
  ``events_per_sec < base * (1 - tol)`` or
  ``peak_kib > base * (1 + tol) + 64``  (the 64 KiB absolute slack
  absorbs interpreter-version noise in tiny workloads).

Wall-clock numbers are machine-relative; CI therefore runs the gate
with a generous tolerance (``--tolerance 0.25``) while the exact
``events`` check stays machine-independent.  ``--update`` rewrites the
baseline deliberately, preserving the ``pre_pr_baseline``,
``parallel_sweep``, ``serve_queries`` and ``accel`` sections it does
not re-measure (``--with-sweep`` / ``--with-serve`` / ``--with-accel``
re-measure the latter three).  ``--with-accel`` additionally enforces
the accelerated-tier speedup floors (see ``run_accel_section``).
"""

from __future__ import annotations

import json
import pathlib
import typing

from .micro import BENCHMARKS, run_benchmarks

__all__ = [
    "DEFAULT_BASELINE",
    "compare",
    "load_report",
    "merge_section",
    "write_report",
    "main",
]

#: committed baseline, relative to the repository root / current dir
DEFAULT_BASELINE = "BENCH_KERNEL.json"

#: absolute allocation slack (KiB) added on top of the relative tolerance
_ALLOC_SLACK_KIB = 64.0

_SCHEMA = 1


def load_report(path: str | pathlib.Path) -> dict[str, typing.Any]:
    """Read a bench report; raises ``FileNotFoundError``/``ValueError``."""
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    if not isinstance(report, dict) or "benchmarks" not in report:
        raise ValueError(f"{path}: not a bench report (no 'benchmarks' key)")
    return report


def write_report(path: str | pathlib.Path, report: dict[str, typing.Any]) -> None:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def merge_section(
    path: str | pathlib.Path, section: str, payload: dict[str, typing.Any]
) -> dict[str, typing.Any]:
    """Merge ``payload`` under ``section`` of the report at ``path``.

    Creates a skeleton report when the file does not exist yet — this
    is how ``benchmarks/bench_parallel_sweep.py`` lands its numbers in
    the same JSON file the microbenchmark gate writes.
    """
    path = pathlib.Path(path)
    try:
        report = load_report(path)
    except (FileNotFoundError, ValueError):
        report = {"schema": _SCHEMA, "benchmarks": {}}
    report[section] = payload
    write_report(path, report)
    return report


def compare(
    fresh: dict[str, typing.Any],
    baseline: dict[str, typing.Any],
    tolerance: float,
) -> list[str]:
    """Regression messages (empty list == gate passes)."""
    problems: list[str] = []
    fresh_benches = fresh.get("benchmarks", {})
    for name, base in sorted(baseline.get("benchmarks", {}).items()):
        if not isinstance(base, dict):  # metadata keys (e.g. cpu_cores)
            continue
        got = fresh_benches.get(name)
        if got is None:
            problems.append(f"{name}: baselined benchmark missing from run")
            continue
        if got["events"] != base["events"]:
            problems.append(
                f"{name}: DETERMINISM — events {got['events']} != "
                f"baseline {base['events']} (tolerance does not apply)"
            )
        floor = base["events_per_sec"] * (1.0 - tolerance)
        if got["events_per_sec"] < floor:
            problems.append(
                f"{name}: throughput {got['events_per_sec']:,.0f} ev/s < "
                f"{floor:,.0f} (baseline {base['events_per_sec']:,.0f} "
                f"- {tolerance:.0%})"
            )
        base_peak = base.get("peak_kib")
        got_peak = got.get("peak_kib")
        if base_peak is not None and got_peak is not None:
            ceiling = base_peak * (1.0 + tolerance) + _ALLOC_SLACK_KIB
            if got_peak > ceiling:
                problems.append(
                    f"{name}: peak allocation {got_peak:.0f} KiB > "
                    f"{ceiling:.0f} (baseline {base_peak:.0f} + {tolerance:.0%}"
                    f" + {_ALLOC_SLACK_KIB:.0f} KiB slack)"
                )
    return problems


# -- parallel-sweep wiring ---------------------------------------------------

def run_parallel_sweep(
    workers: int = 4,
    sim_time: float = 20.0,
    warmup: float = 2.0,
    schedule: str = "cost",
) -> dict[str, typing.Any]:
    """Scaled-down serial-vs-pool sweep for the ``parallel_sweep`` section.

    Same grid shape as ``benchmarks/bench_parallel_sweep.py`` (schemes x
    loads x seeds through :class:`~repro.exec.SweepExecutor`), shrunk so
    a gate run stays interactive; rows must be byte-identical across
    the two modes.  ``cpu_cores`` is recorded alongside the timings
    because the speedup is only meaningful relative to the cores the
    machine actually has (a 1-core container cannot beat ~1.0x no
    matter how warm the pool is — the gate skips its speedup floor
    there, see ``--min-sweep-speedup``).
    """
    import os as _os
    import time as _time

    from ..exec import ExecutorConfig, SweepExecutor
    from ..experiments import sweep_grid

    grid = sweep_grid(("proposed", "conventional"), (0.5, 3.0), (1, 2),
                      sim_time, warmup)

    def timed(n: int) -> tuple:
        executor = SweepExecutor(ExecutorConfig(workers=n, schedule=schedule))
        start = _time.perf_counter()
        rows = executor.run(grid)
        wall = _time.perf_counter() - start
        return rows, executor.telemetry.bench_entry(wall)

    serial_rows, serial = timed(1)
    parallel_rows, parallel = timed(workers)
    canon = [json.dumps(r, sort_keys=True) for r in serial_rows]
    identical = canon == [json.dumps(r, sort_keys=True) for r in parallel_rows]
    return {
        "points": len(serial_rows),
        "schedule": schedule,
        "cpu_cores": _os.cpu_count() or 1,
        "rows_identical": identical,
        "serial": serial,
        "parallel": parallel,
        "speedup": (
            round(serial["wall_s"] / parallel["wall_s"], 2)
            if parallel["wall_s"] > 0 else 0.0
        ),
    }


# -- accelerated-tier wiring -------------------------------------------------

def run_accel_section(
    results: dict[str, typing.Any] | None = None, repeats: int = 3
) -> dict[str, typing.Any]:
    """Measure both accelerated tiers against exact, same process.

    * ``batched_speedup`` — modeled events/s of ``batched_end_to_end``
      over exact ``end_to_end`` (ratio of same-run numbers, so shared
      machine noise cancels);
    * ``hybrid_speedup`` — wall-clock of the exact per-frame run of the
      saturated ``hybrid_saturated`` config over the hybrid run's wall.

    Reuses entries from ``results`` (a fresh ``run_benchmarks`` dict)
    when present so a gate run does not measure the suites twice.
    """
    import dataclasses as _dc
    import time as _time

    from ..network.bss import BssScenario
    from .micro import _accel_scenario, run_benchmark

    need = ("end_to_end", "batched_end_to_end", "hybrid_saturated")
    measured = {
        name: (results or {}).get(name)
        or run_benchmark(name, repeats=repeats, measure_alloc=False)
        for name in need
    }

    # must mirror _bench_hybrid_saturated exactly: the exact reference
    # below is this same point with only the engine flipped
    hybrid_cfg = _accel_scenario(
        engine="hybrid", sim_time=60.0, warmup=1.0,
        n_data_stations=8, load=20.0,
    )
    exact_cfg = _dc.replace(hybrid_cfg, engine="exact")
    start = _time.perf_counter()
    BssScenario(exact_cfg).run()
    exact_wall = _time.perf_counter() - start

    batched = measured["batched_end_to_end"]
    exact = measured["end_to_end"]
    hybrid = measured["hybrid_saturated"]
    return {
        "exact_events_per_sec": exact["events_per_sec"],
        "batched_events_per_sec": batched["events_per_sec"],
        "batched_speedup": round(
            batched["events_per_sec"] / exact["events_per_sec"], 2
        ),
        "hybrid_exact_wall_s": round(exact_wall, 3),
        "hybrid_wall_s": hybrid["wall_s"],
        "hybrid_speedup": round(exact_wall / hybrid["wall_s"], 1),
    }


# -- CLI ---------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    """``python -m repro bench`` / ``benchmarks/perf_gate.py`` entry."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="kernel perf benchmarks + regression gate",
    )
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help=f"committed baseline (default: {DEFAULT_BASELINE})")
    parser.add_argument("--out", default=".repro-cache/bench-report.json",
                        help="where the fresh report is written")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="relative throughput/allocation slack "
                             "(default: 0.10; CI uses 0.25)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repetitions per benchmark (best-of)")
    parser.add_argument("--only", nargs="+", default=None,
                        choices=sorted(BENCHMARKS),
                        help="run a subset of benchmarks")
    parser.add_argument("--skip-alloc", action="store_true",
                        help="skip the tracemalloc allocation pass")
    parser.add_argument("--with-sweep", action="store_true",
                        help="also measure the serial-vs-pool sweep section")
    parser.add_argument("--min-sweep-speedup", type=float, default=None,
                        help="with --with-sweep: fail unless the pool "
                             "speedup reaches this floor; only enforced "
                             "when the machine has at least as many CPU "
                             "cores as sweep workers (CI runners do, "
                             "1-core containers skip with a note)")
    parser.add_argument("--with-serve", action="store_true",
                        help="also measure the serving closed-loop section "
                             "(requests/sec, hit rate, latency quantiles)")
    parser.add_argument("--with-accel", action="store_true",
                        help="also measure the accelerated-tier section "
                             "(batched ev/s and hybrid wall speedups vs "
                             "exact) and enforce the speedup floors")
    parser.add_argument("--min-batched-speedup", type=float, default=5.0,
                        help="with --with-accel: required batched ev/s "
                             "multiple over exact end_to_end (default: 5)")
    parser.add_argument("--min-hybrid-speedup", type=float, default=10.0,
                        help="with --with-accel: required hybrid wall-clock "
                             "multiple on the saturated point (default: 10)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run and exit 0")
    args = parser.parse_args(argv)

    def progress(name: str, entry: dict) -> None:
        peak = entry.get("peak_kib")
        print(
            f"  {name:<16} {entry['events']:>8} events  "
            f"{entry['wall_s']*1e3:8.1f} ms  "
            f"{entry['events_per_sec']:>10,} ev/s"
            + (f"  peak {peak:,.0f} KiB" if peak is not None else ""),
            file=sys.stderr,
        )

    results = run_benchmarks(
        names=args.only,
        repeats=args.repeats,
        measure_alloc=not args.skip_alloc,
        progress=progress,
    )
    import os as _os

    results["cpu_cores"] = _os.cpu_count() or 1
    report: dict[str, typing.Any] = {"schema": _SCHEMA, "benchmarks": results}

    baseline: dict[str, typing.Any] | None = None
    try:
        baseline = load_report(args.baseline)
    except FileNotFoundError:
        pass
    if baseline is not None:
        # carry the sections a fresh run does not re-measure
        for section in (
            "pre_pr_baseline", "parallel_sweep", "serve_queries", "accel"
        ):
            if section in baseline:
                report[section] = baseline[section]

    if args.with_sweep:
        report["parallel_sweep"] = sweep = run_parallel_sweep()
        print(
            f"  parallel_sweep   {sweep['points']} points, "
            f"speedup {sweep['speedup']}x, "
            f"identical rows: {sweep['rows_identical']}",
            file=sys.stderr,
        )
        if not sweep["rows_identical"]:
            print("error: serial and pool sweep rows differ", file=sys.stderr)
            return 1
        if args.min_sweep_speedup is not None:
            cores = sweep["cpu_cores"]
            pool_workers = sweep["parallel"]["workers"]
            if cores >= pool_workers:
                if sweep["speedup"] < args.min_sweep_speedup:
                    print(
                        f"error: sweep speedup {sweep['speedup']}x < "
                        f"required {args.min_sweep_speedup}x "
                        f"({pool_workers} workers on {cores} cores)",
                        file=sys.stderr,
                    )
                    return 1
            else:
                print(
                    f"  sweep speedup floor skipped: {cores} core(s) < "
                    f"{pool_workers} workers (no parallelism to measure)",
                    file=sys.stderr,
                )

    if args.with_accel:
        report["accel"] = accel = run_accel_section(results)
        print(
            f"  accel            batched {accel['batched_speedup']}x ev/s "
            f"({accel['batched_events_per_sec']:,} vs "
            f"{accel['exact_events_per_sec']:,}), "
            f"hybrid {accel['hybrid_speedup']}x wall "
            f"({accel['hybrid_exact_wall_s']}s -> {accel['hybrid_wall_s']}s)",
            file=sys.stderr,
        )
        if accel["batched_speedup"] < args.min_batched_speedup:
            print(
                f"error: batched speedup {accel['batched_speedup']}x < "
                f"required {args.min_batched_speedup}x",
                file=sys.stderr,
            )
            return 1
        if accel["hybrid_speedup"] < args.min_hybrid_speedup:
            print(
                f"error: hybrid speedup {accel['hybrid_speedup']}x < "
                f"required {args.min_hybrid_speedup}x",
                file=sys.stderr,
            )
            return 1

    if args.with_serve:
        from .serve import run_serve_queries

        report["serve_queries"] = serve = run_serve_queries()
        print(
            f"  serve_queries    {serve['requests']} requests, "
            f"{serve['requests_per_sec']:,.0f} req/s, "
            f"hit rate {serve['hit_rate']:.0%}, "
            f"p99 {serve['latency_p99_ms']} ms",
            file=sys.stderr,
        )
        if not serve["responses_identical"]:
            print(
                "error: repeated serve queries returned different bytes",
                file=sys.stderr,
            )
            return 1

    write_report(args.out, report)
    print(f"  report written to {args.out}", file=sys.stderr)

    if args.update:
        write_report(args.baseline, report)
        print(f"  baseline updated: {args.baseline}", file=sys.stderr)
        return 0
    if baseline is None:
        print(
            f"error: no baseline at {args.baseline} "
            "(run with --update to create it)",
            file=sys.stderr,
        )
        return 1
    if args.only:
        # a subset run gates only the benchmarks it measured
        baseline = dict(baseline)
        baseline["benchmarks"] = {
            name: entry
            for name, entry in baseline["benchmarks"].items()
            if name in args.only
        }
    problems = compare(report, baseline, args.tolerance)
    if problems:
        print(
            f"PERF GATE FAILED ({len(problems)} regression(s), "
            f"tolerance {args.tolerance:.0%}):",
            file=sys.stderr,
        )
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"  perf gate passed (tolerance {args.tolerance:.0%})",
          file=sys.stderr)
    return 0
