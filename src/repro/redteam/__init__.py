"""Adversarial scenario search: hunt the FaultPlan x load space.

The fixed chaos grid (:mod:`repro.faults.chaos`) exercises five
hand-picked fault mixes; this package *searches* instead.  A seeded
random + greedy-mutation campaign over serializable
:class:`~repro.redteam.genome.ScenarioGenome` points — traffic load,
station counts, Gilbert–Elliott channel parameters, frame-loss rules,
station crash/freeze schedules, ESS backhaul link and whole-AP outage
windows — drives batches through the warm-worker executor, scores
each point with a breach objective assembled from invariant
violations and chaos-style degradation metrics, delta-debugs every
champion down to a minimal reproducer, and archives genuinely new
breaches as deterministic chaos-tier fixtures under
``tests/faults/reproducers/``.

``python -m repro redteam`` is the front end; campaign reports are
byte-identical for a fixed seed across runs and worker counts.
"""

from .archive import (
    DEFAULT_REPRODUCER_DIR,
    REPRODUCER_SCHEMA,
    Reproducer,
    archive_reproducer,
    archived_keys,
    load_reproducers,
    replay_reproducer,
    reproducer_name,
)
from .genome import (
    SURFACES,
    DecodeSettings,
    ScenarioGenome,
    mutate_genome,
    random_genome,
)
from .objective import (
    BreachVerdict,
    ObjectiveConfig,
    score_bss_row,
    score_ess_report,
)
from .search import (
    CAMPAIGN_SCHEMA,
    CampaignConfig,
    CampaignReport,
    Champion,
    Evaluator,
    ExecEvaluator,
    run_campaign,
)
from .shrink import shrink_genome

__all__ = [
    "SURFACES",
    "DecodeSettings",
    "ScenarioGenome",
    "random_genome",
    "mutate_genome",
    "ObjectiveConfig",
    "BreachVerdict",
    "score_bss_row",
    "score_ess_report",
    "CAMPAIGN_SCHEMA",
    "CampaignConfig",
    "CampaignReport",
    "Champion",
    "Evaluator",
    "ExecEvaluator",
    "run_campaign",
    "shrink_genome",
    "REPRODUCER_SCHEMA",
    "DEFAULT_REPRODUCER_DIR",
    "Reproducer",
    "reproducer_name",
    "archive_reproducer",
    "load_reproducers",
    "archived_keys",
    "replay_reproducer",
]
