"""The search space: :class:`ScenarioGenome` and its mutation operators.

A genome is a compact, serializable point in the FaultPlan x load
space the adversarial search explores.  Two surfaces:

* ``"bss"`` — one frame-level BSS under a chosen scheme; the genome's
  fault genes map onto a :class:`~repro.faults.plan.FaultPlan`
  (Gilbert–Elliott channel, frame-type loss rules, station
  crash/freeze schedules) and its load genes onto the canonical
  evaluation point.  Decoded genomes run with the runtime invariant
  monitors armed, so structural violations and QoS-budget breaches
  both surface in the result row.
* ``"ess"`` — a call-level multi-BSS grid; the fault genes map onto
  backhaul :class:`~repro.faults.plan.LinkFault` and whole-AP
  :class:`~repro.faults.plan.ApFault` outage windows, the load genes
  onto arrival rate and per-cell capacity.

Everything is deterministic: genomes serialize canonically
(:func:`ScenarioGenome.canonical`), hash stably
(:func:`ScenarioGenome.key`), and every random choice in
:func:`random_genome` / :func:`mutate_genome` draws from the caller's
seeded ``random.Random`` — the same seed always walks the same
trajectory.  All float genes are rounded to four decimals so JSON
round-trips are byte-exact.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing

from ..faults.plan import (
    ApFault,
    FaultPlan,
    FrameLossRule,
    GilbertElliottParams,
    LinkFault,
    StationFault,
)

if typing.TYPE_CHECKING:  # pragma: no cover
    import random

    from ..ess.coordinator import EssConfig
    from ..network.bss import ScenarioConfig

__all__ = [
    "SURFACES",
    "DecodeSettings",
    "ScenarioGenome",
    "random_genome",
    "mutate_genome",
]

SURFACES = ("bss", "ess")

#: frame types the loss-rule mutations may attack
_LOSSY_FTYPES = ("cf_poll", "ack", "cf_end", "beacon")

#: seeds the search may hop between (small on purpose: a breach that
#: needs a magic seed is noise, not a scenario)
_SEED_POOL = (1, 2, 3)

#: load multipliers the mutations step through
_LOAD_STEPS = (0.5, 1.0, 1.5, 2.0, 3.0, 4.0)


def _r4(x: float) -> float:
    """Round a float gene for byte-stable JSON round-trips."""
    return round(float(x), 4)


@dataclasses.dataclass(frozen=True)
class DecodeSettings:
    """Fixed frame around the genome: everything the search does NOT vary.

    Horizon knobs stay out of the genome so every evaluation costs
    roughly the same and shrinking works on *scenario content*, not on
    simulation length.
    """

    # -- bss surface -------------------------------------------------------
    sim_time: float = 12.0
    warmup: float = 2.0
    scheme: str = "proposed"
    # -- ess surface -------------------------------------------------------
    rows: int = 2
    cols: int = 2
    epochs: int = 4
    epoch_length: float = 20.0
    new_call_rate: float = 0.10
    mean_holding: float = 40.0
    mean_residence: float = 25.0

    def __post_init__(self) -> None:
        if self.sim_time <= self.warmup:
            raise ValueError("sim_time must exceed warmup")
        if self.rows * self.cols < 2:
            raise ValueError("the ess surface needs at least two cells")

    def ap_ids(self) -> list[str]:
        """The AP ids of the ess surface's grid topology."""
        from ..ess.topology import grid_ap_id

        return [
            grid_ap_id(r, c)
            for r in range(self.rows)
            for c in range(self.cols)
        ]

    def links(self) -> list[tuple[str, str]]:
        """Canonically-ordered links of the ess surface's grid."""
        from ..ess.topology import grid_ap_id

        out = []
        for r in range(self.rows):
            for c in range(self.cols):
                if c + 1 < self.cols:
                    out.append((grid_ap_id(r, c), grid_ap_id(r, c + 1)))
                if r + 1 < self.rows:
                    out.append((grid_ap_id(r, c), grid_ap_id(r + 1, c)))
        return out

    def to_dict(self) -> dict[str, typing.Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(
        cls, data: typing.Mapping[str, typing.Any]
    ) -> "DecodeSettings":
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class ScenarioGenome:
    """One point in the search space (see module docstring)."""

    surface: str = "bss"
    seed: int = 1
    #: load multiplier (bss) / arrival-rate multiplier (ess)
    load: float = 1.0
    #: data-station count (bss) / per-cell capacity (ess)
    stations: int = 4
    # -- bss fault genes ---------------------------------------------------
    gilbert_elliott: GilbertElliottParams | None = None
    frame_loss: tuple[FrameLossRule, ...] = ()
    station_faults: tuple[StationFault, ...] = ()
    # -- ess fault genes ---------------------------------------------------
    link_faults: tuple[LinkFault, ...] = ()
    ap_faults: tuple[ApFault, ...] = ()

    def __post_init__(self) -> None:
        if self.surface not in SURFACES:
            raise ValueError(
                f"surface must be one of {SURFACES}, got {self.surface!r}"
            )
        if self.load <= 0:
            raise ValueError(f"load must be > 0, got {self.load}")
        if self.stations < 1:
            raise ValueError(f"stations must be >= 1, got {self.stations}")
        for name in ("frame_loss", "station_faults", "link_faults",
                     "ap_faults"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        if self.surface == "bss" and (self.link_faults or self.ap_faults):
            raise ValueError("bss genomes cannot carry ESS fault genes")
        if self.surface == "ess" and (
            self.gilbert_elliott or self.frame_loss or self.station_faults
        ):
            raise ValueError("ess genomes cannot carry BSS fault genes")

    # -- identity ----------------------------------------------------------
    def to_dict(self) -> dict[str, typing.Any]:
        return {
            "surface": self.surface,
            "seed": self.seed,
            "load": self.load,
            "stations": self.stations,
            "gilbert_elliott": (
                dataclasses.asdict(self.gilbert_elliott)
                if self.gilbert_elliott is not None
                else None
            ),
            "frame_loss": [dataclasses.asdict(r) for r in self.frame_loss],
            "station_faults": [
                dataclasses.asdict(f) for f in self.station_faults
            ],
            "link_faults": [dataclasses.asdict(f) for f in self.link_faults],
            "ap_faults": [dataclasses.asdict(f) for f in self.ap_faults],
        }

    @classmethod
    def from_dict(
        cls, data: typing.Mapping[str, typing.Any]
    ) -> "ScenarioGenome":
        ge = data.get("gilbert_elliott")
        return cls(
            surface=data.get("surface", "bss"),
            seed=data.get("seed", 1),
            load=data.get("load", 1.0),
            stations=data.get("stations", 4),
            gilbert_elliott=(
                GilbertElliottParams(**ge)
                if isinstance(ge, typing.Mapping)
                else ge
            ),
            frame_loss=tuple(
                r if isinstance(r, FrameLossRule) else FrameLossRule(**r)
                for r in data.get("frame_loss", ())
            ),
            station_faults=tuple(
                f if isinstance(f, StationFault) else StationFault(**f)
                for f in data.get("station_faults", ())
            ),
            link_faults=tuple(
                f if isinstance(f, LinkFault) else LinkFault(**f)
                for f in data.get("link_faults", ())
            ),
            ap_faults=tuple(
                f if isinstance(f, ApFault) else ApFault(**f)
                for f in data.get("ap_faults", ())
            ),
        )

    def canonical(self) -> str:
        """Canonical JSON form — the genome's stable identity."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def key(self) -> str:
        """Short stable hash of the canonical form (fixture naming)."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()[:12]

    @property
    def fault_clauses(self) -> int:
        """How many droppable fault genes the genome carries."""
        return (
            (1 if self.gilbert_elliott is not None else 0)
            + len(self.frame_loss)
            + len(self.station_faults)
            + len(self.link_faults)
            + len(self.ap_faults)
        )

    # -- decoding ----------------------------------------------------------
    def decode_bss(self, settings: DecodeSettings) -> "ScenarioConfig":
        """The runnable single-BSS point this genome describes.

        The invariant monitors are always armed and a
        :class:`~repro.faults.plan.FaultPlan` always attached (even an
        empty one), so QoS-budget misses land as structured
        ``qos_breaches`` in the result row rather than gating.
        """
        import dataclasses as _dc

        from ..experiments.config import sweep_config

        if self.surface != "bss":
            raise ValueError(f"cannot decode a {self.surface!r} genome as bss")
        return _dc.replace(
            sweep_config(
                settings.scheme,
                self.load,
                self.seed,
                settings.sim_time,
                settings.warmup,
            ),
            n_data_stations=self.stations,
            monitor_invariants=True,
            faults=FaultPlan(
                gilbert_elliott=self.gilbert_elliott,
                frame_loss=self.frame_loss,
                station_faults=self.station_faults,
            ),
        )

    def decode_ess(self, settings: DecodeSettings) -> "EssConfig":
        """The runnable call-level ESS scenario this genome describes."""
        from ..ess.coordinator import EssConfig

        if self.surface != "ess":
            raise ValueError(f"cannot decode a {self.surface!r} genome as ess")
        return EssConfig(
            rows=settings.rows,
            cols=settings.cols,
            seed=self.seed,
            epochs=settings.epochs,
            epoch_length=settings.epoch_length,
            new_call_rate=_r4(settings.new_call_rate * self.load),
            mean_holding=settings.mean_holding,
            mean_residence=settings.mean_residence,
            capacity=self.stations,
            backhaul_faults=self.link_faults,
            ap_faults=self.ap_faults,
        )


# -- random generation -----------------------------------------------------
def _random_window(
    rng: "random.Random", horizon: float
) -> tuple[float, float]:
    """A fault window inside the horizon, at least 10% of it long."""
    start = _r4(rng.uniform(0.0, 0.6 * horizon))
    end = _r4(start + rng.uniform(0.1 * horizon, horizon - start))
    return start, end


def _random_ge(rng: "random.Random") -> GilbertElliottParams:
    return GilbertElliottParams(
        p_good_to_bad=_r4(rng.uniform(0.01, 0.1)),
        p_bad_to_good=_r4(rng.uniform(0.1, 0.5)),
        ber_good=1e-6,
        ber_bad=_r4(rng.uniform(1e-4, 2e-3)),
    )


def _random_frame_loss(
    rng: "random.Random", horizon: float
) -> FrameLossRule:
    start, end = _random_window(rng, horizon)
    return FrameLossRule(
        ftype=rng.choice(_LOSSY_FTYPES),
        probability=_r4(rng.uniform(0.05, 0.6)),
        start=start,
        end=end,
    )


def _random_station_fault(
    rng: "random.Random", settings: DecodeSettings
) -> StationFault:
    span = settings.sim_time - settings.warmup
    return StationFault(
        at=_r4(settings.warmup + rng.uniform(0.0, 0.8 * span)),
        mode=rng.choice(("crash", "freeze")),
        duration=_r4(rng.uniform(0.5, 0.5 * span)),
        kind=rng.choice(("any", "voice", "video")),
    )


def _random_link_fault(
    rng: "random.Random", settings: DecodeSettings
) -> LinkFault:
    a, b = rng.choice(settings.links())
    start, end = _random_window(
        rng, settings.epochs * settings.epoch_length
    )
    return LinkFault(a=a, b=b, start=start, end=end)


def _random_ap_fault(
    rng: "random.Random", settings: DecodeSettings
) -> ApFault:
    ap = rng.choice(settings.ap_ids())
    start, end = _random_window(
        rng, settings.epochs * settings.epoch_length
    )
    return ApFault(ap=ap, start=start, end=end)


def random_genome(
    rng: "random.Random", settings: DecodeSettings, surface: str
) -> ScenarioGenome:
    """Sample a fresh genome for one surface from the seeded RNG."""
    seed = rng.choice(_SEED_POOL)
    load = rng.choice(_LOAD_STEPS)
    if surface == "bss":
        stations = rng.randint(1, 8)
        ge = _random_ge(rng) if rng.random() < 0.5 else None
        frame_loss = tuple(
            _random_frame_loss(rng, settings.sim_time)
            for _ in range(rng.randint(0, 2))
        )
        station_faults = tuple(
            _random_station_fault(rng, settings)
            for _ in range(rng.randint(0, 2))
        )
        return ScenarioGenome(
            surface="bss",
            seed=seed,
            load=load,
            stations=stations,
            gilbert_elliott=ge,
            frame_loss=frame_loss,
            station_faults=station_faults,
        )
    if surface == "ess":
        stations = rng.randint(2, 10)
        link_faults = tuple(
            _random_link_fault(rng, settings)
            for _ in range(rng.randint(0, 2))
        )
        ap_faults = tuple(
            _random_ap_fault(rng, settings)
            for _ in range(rng.randint(0, 2))
        )
        return ScenarioGenome(
            surface="ess",
            seed=seed,
            load=load,
            stations=stations,
            link_faults=link_faults,
            ap_faults=ap_faults,
        )
    raise ValueError(f"surface must be one of {SURFACES}, got {surface!r}")


# -- mutation --------------------------------------------------------------
def _step_load(rng: "random.Random", load: float) -> float:
    steps = sorted(set(_LOAD_STEPS) | {load})
    i = steps.index(load)
    if i == 0:
        return steps[1]
    if i == len(steps) - 1:
        return steps[-2]
    return steps[i + rng.choice((-1, 1))]


def mutate_genome(
    rng: "random.Random",
    genome: ScenarioGenome,
    settings: DecodeSettings,
) -> ScenarioGenome:
    """One greedy-mutation step: perturb exactly one gene.

    The operator is drawn from the surface's catalog with the seeded
    RNG; the result is always a valid genome.
    """
    if genome.surface == "bss":
        ops = ["load", "stations", "seed", "ge", "frame_loss",
               "station_fault"]
    else:
        ops = ["load", "stations", "seed", "link_fault", "ap_fault"]
    op = rng.choice(ops)
    if op == "load":
        return dataclasses.replace(
            genome, load=_step_load(rng, genome.load)
        )
    if op == "stations":
        delta = rng.choice((-1, 1))
        return dataclasses.replace(
            genome, stations=max(1, genome.stations + delta)
        )
    if op == "seed":
        return dataclasses.replace(genome, seed=rng.choice(_SEED_POOL))
    if op == "ge":
        if genome.gilbert_elliott is None or rng.random() < 0.5:
            return dataclasses.replace(
                genome, gilbert_elliott=_random_ge(rng)
            )
        return dataclasses.replace(genome, gilbert_elliott=None)
    if op == "frame_loss":
        rules = list(genome.frame_loss)
        if rules and rng.random() < 0.5:
            rules.pop(rng.randrange(len(rules)))
        else:
            rules.append(_random_frame_loss(rng, settings.sim_time))
        return dataclasses.replace(genome, frame_loss=tuple(rules))
    if op == "station_fault":
        faults = list(genome.station_faults)
        if faults and rng.random() < 0.5:
            faults.pop(rng.randrange(len(faults)))
        else:
            faults.append(_random_station_fault(rng, settings))
        return dataclasses.replace(genome, station_faults=tuple(faults))
    if op == "link_fault":
        faults = list(genome.link_faults)
        if faults and rng.random() < 0.5:
            faults.pop(rng.randrange(len(faults)))
        else:
            faults.append(_random_link_fault(rng, settings))
        return dataclasses.replace(genome, link_faults=tuple(faults))
    # op == "ap_fault"
    faults = list(genome.ap_faults)
    if faults and rng.random() < 0.5:
        faults.pop(rng.randrange(len(faults)))
    else:
        faults.append(_random_ap_fault(rng, settings))
    return dataclasses.replace(genome, ap_faults=tuple(faults))
