"""The campaign engine: seeded random + greedy-mutation breach search.

One :func:`run_campaign` call spends a fixed evaluation *budget* in
batches.  The first batch is pure random sampling; every later batch
splits (deterministically, per the seeded RNG) between fresh random
genomes (exploration) and single-gene mutations of the current
*champions* — the best-scoring breached genome per breach signature
(exploitation).  Batches are generated in full **before** they are
evaluated, so the RNG trajectory depends only on prior batches'
verdicts — which are themselves deterministic — and never on dispatch
order: the same ``(seed, budget)`` produces the same campaign report
byte for byte whether the evaluator runs serial or on four warm
workers.

Evaluation goes through an :class:`Evaluator`: the default
:class:`ExecEvaluator` drives decoded BSS genomes through the
warm-worker :class:`~repro.exec.SweepExecutor` pool and call-level ESS
genomes through :func:`~repro.ess.coordinator.run_ess` in-process.
Tests inject a fake evaluator to exercise search logic without
simulation cost.

Champions are optionally delta-debugged down to minimal reproducers
(:mod:`repro.redteam.shrink`) and archived as chaos-tier fixtures
(:mod:`repro.redteam.archive`).  The campaign report intentionally
contains **no wall-clock numbers** — it must be byte-identical across
runs and machines.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import random
import typing

from .genome import (
    SURFACES,
    DecodeSettings,
    ScenarioGenome,
    mutate_genome,
    random_genome,
)
from .objective import BreachVerdict, ObjectiveConfig, score_bss_row, score_ess_report

if typing.TYPE_CHECKING:  # pragma: no cover
    from ..exec import SweepExecutor

__all__ = [
    "CAMPAIGN_SCHEMA",
    "CampaignConfig",
    "Evaluator",
    "ExecEvaluator",
    "Champion",
    "CampaignReport",
    "run_campaign",
]

CAMPAIGN_SCHEMA = "repro/redteam-campaign/1"


@dataclasses.dataclass(frozen=True)
class CampaignConfig:
    """Everything one campaign needs (serializable, seed-deterministic)."""

    #: total scenario evaluations the search may spend
    budget: int = 32
    #: campaign RNG seed (drives generation only, never evaluation)
    seed: int = 0
    #: ``"bss"``, ``"ess"`` or ``"both"`` (alternating per batch slot)
    surface: str = "bss"
    #: evaluations per batch (one warm-pool dispatch per batch)
    batch: int = 8
    #: fraction of each post-seeding batch that stays pure random
    explore_ratio: float = 0.5
    settings: DecodeSettings = dataclasses.field(
        default_factory=DecodeSettings
    )
    objective: ObjectiveConfig = dataclasses.field(
        default_factory=ObjectiveConfig
    )
    #: delta-debug every champion down to a minimal reproducer
    shrink: bool = False
    #: per-champion evaluation budget for the shrinker
    shrink_budget: int = 48

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ValueError(f"budget must be >= 1, got {self.budget}")
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        if self.surface not in SURFACES + ("both",):
            raise ValueError(
                f"surface must be one of {SURFACES + ('both',)}, "
                f"got {self.surface!r}"
            )
        if not 0.0 <= self.explore_ratio <= 1.0:
            raise ValueError(
                f"explore_ratio must be in [0, 1], got {self.explore_ratio}"
            )
        if self.shrink_budget < 1:
            raise ValueError(
                f"shrink_budget must be >= 1, got {self.shrink_budget}"
            )

    def to_dict(self) -> dict[str, typing.Any]:
        return {
            "budget": self.budget,
            "seed": self.seed,
            "surface": self.surface,
            "batch": self.batch,
            "explore_ratio": self.explore_ratio,
            "settings": self.settings.to_dict(),
            "objective": self.objective.to_dict(),
            "shrink": self.shrink,
            "shrink_budget": self.shrink_budget,
        }


class Evaluator(typing.Protocol):
    """Anything that can score a batch of genomes, in order."""

    def evaluate(
        self, genomes: typing.Sequence[ScenarioGenome]
    ) -> list[BreachVerdict]:  # pragma: no cover - protocol
        ...


class ExecEvaluator:
    """The real evaluator: warm-pool BSS runs + in-process ESS runs.

    BSS genomes decode to monitored :class:`ScenarioConfig` points and
    go through the sweep executor as one grid (rows come back in input
    order, byte-identical regardless of worker count).  ESS genomes
    decode to call-level :class:`EssConfig` scenarios and run
    in-process — the call-level tier is orders of magnitude cheaper
    than frame simulation, and in-process keeps its determinism
    trivially independent of the pool.
    """

    def __init__(
        self,
        settings: DecodeSettings | None = None,
        objective: ObjectiveConfig | None = None,
        executor: "SweepExecutor | None" = None,
    ) -> None:
        from ..exec import ExecutorConfig, SweepExecutor

        self.settings = settings or DecodeSettings()
        self.objective = objective or ObjectiveConfig()
        self.executor = executor or SweepExecutor(
            ExecutorConfig(on_failure="skip")
        )
        self.evaluations = 0

    def evaluate(
        self, genomes: typing.Sequence[ScenarioGenome]
    ) -> list[BreachVerdict]:
        self.evaluations += len(genomes)
        verdicts: list[BreachVerdict | None] = [None] * len(genomes)
        bss = [
            (i, g) for i, g in enumerate(genomes) if g.surface == "bss"
        ]
        if bss:
            configs = [g.decode_bss(self.settings) for _, g in bss]
            rows = self.executor.run(configs)
            if len(rows) != len(bss):
                # permanently failed points (on_failure="skip") would
                # silently misalign the batch; fail loudly instead
                raise RuntimeError(
                    f"evaluator lost {len(bss) - len(rows)} of "
                    f"{len(bss)} BSS points to permanent failures"
                )
            for (i, _), row in zip(bss, rows):
                verdicts[i] = score_bss_row(row, self.objective)
        for i, genome in enumerate(genomes):
            if genome.surface != "ess":
                continue
            from ..ess.coordinator import run_ess

            report = run_ess(genome.decode_ess(self.settings))
            verdicts[i] = score_ess_report(report, self.objective)
        assert all(v is not None for v in verdicts)
        return typing.cast("list[BreachVerdict]", verdicts)


@dataclasses.dataclass
class Champion:
    """The best breached genome seen for one breach signature."""

    genome: ScenarioGenome
    verdict: BreachVerdict
    found_at: int
    shrunk: ScenarioGenome | None = None
    shrunk_verdict: BreachVerdict | None = None
    shrink_evals: int = 0
    reproducer: str | None = None
    archived: bool = False
    new: bool = False

    def to_dict(self) -> dict[str, typing.Any]:
        return {
            "genome": self.genome.to_dict(),
            "verdict": self.verdict.to_dict(),
            "found_at": self.found_at,
            "shrunk": (
                self.shrunk.to_dict() if self.shrunk is not None else None
            ),
            "shrunk_verdict": (
                self.shrunk_verdict.to_dict()
                if self.shrunk_verdict is not None
                else None
            ),
            "shrink_evals": self.shrink_evals,
            "reproducer": self.reproducer,
            "archived": self.archived,
            "new": self.new,
        }


@dataclasses.dataclass
class CampaignReport:
    """Everything one campaign found (JSON-ready, wall-clock free)."""

    config: CampaignConfig
    evaluated: int
    unique_genomes: int
    breaches_found: int
    champions: list[Champion]
    #: champions whose (shrunk) reproducer was not already archived
    new_unarchived: int

    def to_dict(self) -> dict[str, typing.Any]:
        return {
            "schema": CAMPAIGN_SCHEMA,
            "config": self.config.to_dict(),
            "evaluated": self.evaluated,
            "unique_genomes": self.unique_genomes,
            "breaches_found": self.breaches_found,
            "champions": [
                c.to_dict()
                for c in sorted(
                    self.champions,
                    key=lambda c: (-c.verdict.score, c.verdict.signature),
                )
            ],
            "new_unarchived": self.new_unarchived,
        }

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        p = pathlib.Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        return p

    def render(self) -> str:
        lines = [
            f"redteam campaign: {self.evaluated} evaluations "
            f"({self.unique_genomes} unique), "
            f"{self.breaches_found} breaches, "
            f"{len(self.champions)} champion signature(s), "
            f"{self.new_unarchived} new unarchived"
        ]
        for c in sorted(
            self.champions,
            key=lambda c: (-c.verdict.score, c.verdict.signature),
        ):
            sig = ",".join(c.verdict.signature)
            lines.append(
                f"  [{sig}] score={c.verdict.score:g} "
                f"surface={c.genome.surface} load={c.genome.load:g} "
                f"stations={c.genome.stations} "
                f"clauses={c.genome.fault_clauses}"
                + (
                    f" -> shrunk to {c.shrunk.fault_clauses} clause(s) "
                    f"({c.shrink_evals} shrink evals)"
                    if c.shrunk is not None
                    else ""
                )
                + (
                    f" [{'new' if c.new else 'archived'}:"
                    f" {c.reproducer}]"
                    if c.reproducer is not None
                    else ""
                )
            )
        return "\n".join(lines)


def _surface_for_slot(config: CampaignConfig, slot: int) -> str:
    if config.surface == "both":
        return SURFACES[slot % len(SURFACES)]
    return config.surface


def run_campaign(
    config: CampaignConfig,
    evaluator: Evaluator | None = None,
    archive_dir: str | pathlib.Path | None = None,
) -> CampaignReport:
    """Run one adversarial campaign; see the module docstring.

    ``archive_dir`` points at the reproducer fixture directory.  When
    given, every champion's minimal reproducer is checked against the
    archive; genuinely new breaches are written there and counted in
    ``new_unarchived`` (the CLI's exit-2 signal).  When ``None`` the
    archive is neither read nor written and every champion counts as
    new.
    """
    from .archive import archive_reproducer, archived_keys
    from .shrink import shrink_genome

    if evaluator is None:
        evaluator = ExecEvaluator(config.settings, config.objective)
    rng = random.Random(config.seed)
    seen: dict[str, BreachVerdict] = {}
    champions: dict[tuple[str, ...], Champion] = {}
    evaluated = 0

    while evaluated < config.budget:
        size = min(config.batch, config.budget - evaluated)
        batch: list[ScenarioGenome] = []
        ranked = sorted(
            champions.values(),
            key=lambda c: (-c.verdict.score, c.verdict.signature),
        )
        for slot in range(size):
            surface = _surface_for_slot(config, evaluated + slot)
            candidates = [
                c for c in ranked if c.genome.surface == surface
            ]
            if not candidates or rng.random() < config.explore_ratio:
                genome = random_genome(rng, config.settings, surface)
            else:
                parent = rng.choice(candidates).genome
                genome = mutate_genome(rng, parent, config.settings)
            batch.append(genome)

        fresh = [g for g in batch if g.canonical() not in seen]
        fresh_verdicts = evaluator.evaluate(fresh) if fresh else []
        for genome, verdict in zip(fresh, fresh_verdicts):
            seen[genome.canonical()] = verdict
        for slot, genome in enumerate(batch):
            verdict = seen[genome.canonical()]
            if not verdict.breached:
                continue
            champ = champions.get(verdict.signature)
            if champ is None or verdict.score > champ.verdict.score:
                champions[verdict.signature] = Champion(
                    genome=genome,
                    verdict=verdict,
                    found_at=evaluated + slot,
                )
        evaluated += size

    # search-phase stats, snapshotted before shrinking adds to ``seen``
    unique_genomes = len(seen)
    breaches = sum(1 for v in seen.values() if v.breached)

    def evaluate_one(genome: ScenarioGenome) -> BreachVerdict:
        cached = seen.get(genome.canonical())
        if cached is not None:
            return cached
        verdict = evaluator.evaluate([genome])[0]
        seen[genome.canonical()] = verdict
        return verdict

    archived = (
        archived_keys(archive_dir) if archive_dir is not None else set()
    )
    new_unarchived = 0
    for signature in sorted(champions):
        champ = champions[signature]
        final_genome, final_verdict = champ.genome, champ.verdict
        if config.shrink:
            shrunk, shrunk_verdict, used = shrink_genome(
                champ.genome,
                champ.verdict,
                evaluate_one,
                config.settings,
                max_evals=config.shrink_budget,
            )
            champ.shrunk = shrunk
            champ.shrunk_verdict = shrunk_verdict
            champ.shrink_evals = used
            final_genome, final_verdict = shrunk, shrunk_verdict
        champ.new = final_genome.key() not in archived
        if champ.new:
            new_unarchived += 1
        if archive_dir is not None:
            path = archive_reproducer(
                archive_dir, final_genome, final_verdict, config
            )
            champ.reproducer = path.name
            champ.archived = True
        else:
            champ.reproducer = None

    return CampaignReport(
        config=config,
        evaluated=evaluated,
        unique_genomes=unique_genomes,
        breaches_found=breaches,
        champions=list(champions.values()),
        new_unarchived=new_unarchived,
    )
