"""Delta-debugging a champion down to a minimal reproducer.

Given a breached genome, :func:`shrink_genome` greedily applies
simplification candidates and keeps any that *persist* — the shrunk
genome must still breach **and** still exhibit every breach kind of
the original signature (a shrink may sharpen a breach, never swap it
for a different one).  Candidate order is fixed, so the shrink is
deterministic given a deterministic evaluator:

1. drop whole fault clauses (station faults, frame-loss rules, link
   faults, AP faults, the Gilbert–Elliott channel) — fewest clauses
   first is the strongest simplification;
2. halve fault windows (pull ``end`` toward ``start``);
3. reduce the station/capacity gene (halve, then decrement);
4. reduce the load gene (halve, then 25% off);
5. halve frame-loss probabilities.

After any accepted candidate the pass list restarts, so clause drops
enabled by an earlier simplification are still found.  The evaluation
budget bounds the worst case; the original genome is returned when
nothing simpler persists.
"""

from __future__ import annotations

import dataclasses
import typing

from ..faults.plan import FrameLossRule
from .genome import DecodeSettings, ScenarioGenome
from .objective import BreachVerdict

__all__ = ["shrink_genome"]

#: smallest meaningful fault window (s); halving stops below this
_MIN_WINDOW = 0.5
#: smallest frame-loss probability worth keeping
_MIN_PROBABILITY = 0.05


def _r4(x: float) -> float:
    return round(float(x), 4)


def _drop_candidates(
    genome: ScenarioGenome,
) -> typing.Iterator[ScenarioGenome]:
    """Every one-clause-dropped variant, in a fixed order."""
    for i in range(len(genome.station_faults)):
        faults = genome.station_faults[:i] + genome.station_faults[i + 1:]
        yield dataclasses.replace(genome, station_faults=faults)
    for i in range(len(genome.frame_loss)):
        rules = genome.frame_loss[:i] + genome.frame_loss[i + 1:]
        yield dataclasses.replace(genome, frame_loss=rules)
    for i in range(len(genome.link_faults)):
        faults = genome.link_faults[:i] + genome.link_faults[i + 1:]
        yield dataclasses.replace(genome, link_faults=faults)
    for i in range(len(genome.ap_faults)):
        faults = genome.ap_faults[:i] + genome.ap_faults[i + 1:]
        yield dataclasses.replace(genome, ap_faults=faults)
    if genome.gilbert_elliott is not None:
        yield dataclasses.replace(genome, gilbert_elliott=None)


def _halved_window(
    clause: typing.Any,
) -> typing.Any | None:
    """The clause with its ``[start, end)`` window halved, if shrinkable."""
    end = getattr(clause, "end", None)
    if end is None:
        return None
    start = clause.start
    half = _r4(start + (end - start) / 2)
    if half - start < _MIN_WINDOW or half >= end:
        return None
    return dataclasses.replace(clause, end=half)


def _window_candidates(
    genome: ScenarioGenome,
) -> typing.Iterator[ScenarioGenome]:
    for i, rule in enumerate(genome.frame_loss):
        shrunk = _halved_window(rule)
        if shrunk is not None:
            rules = (
                genome.frame_loss[:i] + (shrunk,) + genome.frame_loss[i + 1:]
            )
            yield dataclasses.replace(genome, frame_loss=rules)
    for i, fault in enumerate(genome.link_faults):
        shrunk = _halved_window(fault)
        if shrunk is not None:
            faults = (
                genome.link_faults[:i]
                + (shrunk,)
                + genome.link_faults[i + 1:]
            )
            yield dataclasses.replace(genome, link_faults=faults)
    for i, fault in enumerate(genome.ap_faults):
        shrunk = _halved_window(fault)
        if shrunk is not None:
            faults = (
                genome.ap_faults[:i] + (shrunk,) + genome.ap_faults[i + 1:]
            )
            yield dataclasses.replace(genome, ap_faults=faults)
    for i, fault in enumerate(genome.station_faults):
        if fault.duration is not None and fault.duration / 2 >= _MIN_WINDOW:
            shorter = dataclasses.replace(
                fault, duration=_r4(fault.duration / 2)
            )
            faults = (
                genome.station_faults[:i]
                + (shorter,)
                + genome.station_faults[i + 1:]
            )
            yield dataclasses.replace(genome, station_faults=faults)


def _reduction_candidates(
    genome: ScenarioGenome,
) -> typing.Iterator[ScenarioGenome]:
    if genome.stations > 1:
        halved = max(1, genome.stations // 2)
        if halved < genome.stations:
            yield dataclasses.replace(genome, stations=halved)
        yield dataclasses.replace(genome, stations=genome.stations - 1)
    if genome.load > 0.5:
        yield dataclasses.replace(genome, load=_r4(genome.load / 2))
        yield dataclasses.replace(genome, load=_r4(genome.load * 0.75))
    for i, rule in enumerate(genome.frame_loss):
        half = _r4(rule.probability / 2)
        if half >= _MIN_PROBABILITY:
            weaker = dataclasses.replace(rule, probability=half)
            rules = (
                genome.frame_loss[:i] + (weaker,) + genome.frame_loss[i + 1:]
            )
            yield dataclasses.replace(genome, frame_loss=rules)


def _candidates(
    genome: ScenarioGenome,
) -> typing.Iterator[ScenarioGenome]:
    yield from _drop_candidates(genome)
    yield from _window_candidates(genome)
    yield from _reduction_candidates(genome)


def shrink_genome(
    genome: ScenarioGenome,
    verdict: BreachVerdict,
    evaluate_one: typing.Callable[[ScenarioGenome], BreachVerdict],
    settings: DecodeSettings | None = None,
    max_evals: int = 48,
) -> tuple[ScenarioGenome, BreachVerdict, int]:
    """Minimize ``genome`` while its breach persists.

    Returns ``(minimal genome, its verdict, evaluations used)``.  The
    persistence predicate: the candidate's verdict must be breached
    and its signature must contain every kind of the **original**
    verdict's signature.
    """
    del settings  # reserved for future window-floor tuning
    required = set(verdict.signature)
    current, current_verdict = genome, verdict
    used = 0
    progressed = True
    while progressed and used < max_evals:
        progressed = False
        for candidate in _candidates(current):
            if used >= max_evals:
                break
            candidate_verdict = evaluate_one(candidate)
            used += 1
            if (
                candidate_verdict.breached
                and required <= set(candidate_verdict.signature)
            ):
                current, current_verdict = candidate, candidate_verdict
                progressed = True
                break  # restart the pass list on the simpler genome
    return current, current_verdict, used
