"""The breach objective: result rows / ESS reports -> :class:`BreachVerdict`.

The search needs one number to climb and one identity to dedup on:

* **score** — a weighted sum of degradation signals.  Structural
  invariant violations dominate (they should never happen, under any
  injection — finding one is the jackpot); QoS-budget breaches, their
  worst ratio, and real-time delivery loss make up the rest.  Scores
  are rounded so campaign reports are byte-stable.
* **signature** — the sorted tuple of breach *kinds* (``invariant``,
  ``qos:jitter``, ``qos:delay``, ``delivery``, ``ess:conservation``,
  ``ess:handoff-drop``).  Champions are kept per signature, and a
  shrunk reproducer must preserve the original signature — the shrink
  may not trade one failure mode for another.

BSS scoring reuses the chaos harness's
:func:`~repro.faults.chaos._summarize_mix` aggregation so the redteam
objective and the soak report read the same degradation the same way.
"""

from __future__ import annotations

import dataclasses
import typing

from ..faults.chaos import _summarize_mix

__all__ = [
    "ObjectiveConfig",
    "BreachVerdict",
    "score_bss_row",
    "score_ess_report",
]


@dataclasses.dataclass(frozen=True)
class ObjectiveConfig:
    """Weights and thresholds of the breach objective."""

    #: points per structural invariant violation (dominant on purpose)
    violation_weight: float = 100.0
    #: points per QoS budget breach
    breach_weight: float = 1.0
    #: points per unit of worst breach ratio (measured / budget)
    ratio_weight: float = 10.0
    #: points per unit of lost real-time delivery (1 - ratio)
    delivery_weight: float = 20.0
    #: real-time delivery below this is itself a breach (bss surface).
    #: Fault-free runs sit around 0.96-0.98 (frames still in flight at
    #: the simulation boundary count as undelivered), so the floor is
    #: set well below that band — only injected degradation crosses it.
    min_delivery_ratio: float = 0.90
    #: handoff-drop rate above this is a breach (ess surface)
    max_handoff_drop_rate: float = 0.25
    #: points per unit of handoff-drop rate (ess surface)
    drop_weight: float = 40.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_delivery_ratio <= 1.0:
            raise ValueError(
                f"min_delivery_ratio must be in [0, 1], "
                f"got {self.min_delivery_ratio}"
            )
        if not 0.0 <= self.max_handoff_drop_rate <= 1.0:
            raise ValueError(
                f"max_handoff_drop_rate must be in [0, 1], "
                f"got {self.max_handoff_drop_rate}"
            )

    def to_dict(self) -> dict[str, typing.Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(
        cls, data: typing.Mapping[str, typing.Any]
    ) -> "ObjectiveConfig":
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class BreachVerdict:
    """What one evaluation concluded about one genome."""

    breached: bool
    score: float
    #: sorted breach kinds; empty iff not breached
    signature: tuple[str, ...]
    #: the degradation numbers the score was assembled from
    metrics: dict[str, typing.Any]

    def to_dict(self) -> dict[str, typing.Any]:
        return {
            "breached": self.breached,
            "score": self.score,
            "signature": list(self.signature),
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(
        cls, data: typing.Mapping[str, typing.Any]
    ) -> "BreachVerdict":
        return cls(
            breached=bool(data["breached"]),
            score=float(data["score"]),
            signature=tuple(data["signature"]),
            metrics=dict(data.get("metrics", {})),
        )

    def subsumes(self, other: "BreachVerdict") -> bool:
        """Does this verdict still exhibit every kind in ``other``?"""
        return set(other.signature) <= set(self.signature)


def score_bss_row(
    row: typing.Mapping[str, typing.Any],
    objective: ObjectiveConfig | None = None,
) -> BreachVerdict:
    """Score one monitored single-BSS result row."""
    obj = objective or ObjectiveConfig()
    summary = _summarize_mix("genome", [dict(row)])
    signature = set()
    if summary.invariant_violations:
        signature.add("invariant")
    for breach in (row.get("faults") or {}).get("qos_breaches", ()):
        signature.add(f"qos:{breach.get('kind', 'unknown')}")
    if summary.rt_delivery_ratio < obj.min_delivery_ratio:
        signature.add("delivery")
    score = (
        obj.violation_weight * summary.invariant_violations
        + obj.breach_weight * summary.qos_breaches
        + obj.ratio_weight * summary.worst_breach_ratio
        + obj.delivery_weight * (1.0 - summary.rt_delivery_ratio)
    )
    return BreachVerdict(
        breached=bool(signature),
        score=round(score, 6),
        signature=tuple(sorted(signature)),
        metrics={
            "invariant_violations": summary.invariant_violations,
            "qos_breaches": summary.qos_breaches,
            "worst_breach_ratio": round(summary.worst_breach_ratio, 6),
            "rt_delivery_ratio": round(summary.rt_delivery_ratio, 6),
        },
    )


def score_ess_report(
    report: typing.Mapping[str, typing.Any],
    objective: ObjectiveConfig | None = None,
) -> BreachVerdict:
    """Score one call-level ESS run's JSON report."""
    obj = objective or ObjectiveConfig()
    totals = report["totals"]
    violations = len(report["conservation"]["violations"])
    drop_rate = float(totals["handoff_drop_rate"])
    signature = set()
    if violations:
        signature.add("ess:conservation")
    if drop_rate > obj.max_handoff_drop_rate:
        signature.add("ess:handoff-drop")
    score = (
        obj.violation_weight * violations + obj.drop_weight * drop_rate
    )
    return BreachVerdict(
        breached=bool(signature),
        score=round(score, 6),
        signature=tuple(sorted(signature)),
        metrics={
            "conservation_violations": violations,
            "handoff_drop_rate": round(drop_rate, 6),
            "dropped_backhaul": int(totals["dropped_backhaul"]),
            "dropped_ap_down": int(totals["dropped_ap_down"]),
        },
    )
