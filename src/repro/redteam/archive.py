"""Reproducer fixtures: archiving and replaying minimal breaches.

Every campaign champion (shrunk when ``--shrink`` is on) is archived
as one JSON fixture under ``tests/faults/reproducers/`` — the
chaos-tier corpus.  A fixture pins:

* the minimal :class:`~repro.redteam.genome.ScenarioGenome`;
* the :class:`~repro.redteam.objective.BreachVerdict` it produced;
* the :class:`~repro.redteam.genome.DecodeSettings` and
  :class:`~repro.redteam.objective.ObjectiveConfig` it was judged
  under (a reproducer must re-run under *its own* frame, not whatever
  the current defaults happen to be).

File names are content-derived (``<surface>-<genome hash>.json``) so
re-archiving the same reproducer is idempotent and a campaign can
tell a *new* breach (exit 2 in the CLI) from a re-discovered one.
:func:`replay_reproducer` re-evaluates the genome and demands the
recorded verdict byte-for-byte — the CI job runs it over the whole
corpus, so every archived breach stays reproducible forever.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing

from .genome import DecodeSettings, ScenarioGenome
from .objective import BreachVerdict, ObjectiveConfig

if typing.TYPE_CHECKING:  # pragma: no cover
    from .search import CampaignConfig, Evaluator

__all__ = [
    "REPRODUCER_SCHEMA",
    "DEFAULT_REPRODUCER_DIR",
    "Reproducer",
    "reproducer_name",
    "archive_reproducer",
    "load_reproducers",
    "archived_keys",
    "replay_reproducer",
]

REPRODUCER_SCHEMA = "repro/reproducer/1"

#: the committed chaos-tier fixture corpus, relative to the repo root
DEFAULT_REPRODUCER_DIR = "tests/faults/reproducers"


@dataclasses.dataclass(frozen=True)
class Reproducer:
    """One archived minimal breach."""

    name: str
    genome: ScenarioGenome
    verdict: BreachVerdict
    settings: DecodeSettings
    objective: ObjectiveConfig
    campaign_seed: int

    def to_dict(self) -> dict[str, typing.Any]:
        return {
            "schema": REPRODUCER_SCHEMA,
            "name": self.name,
            "genome": self.genome.to_dict(),
            "verdict": self.verdict.to_dict(),
            "settings": self.settings.to_dict(),
            "objective": self.objective.to_dict(),
            "campaign_seed": self.campaign_seed,
        }

    @classmethod
    def from_dict(
        cls, data: typing.Mapping[str, typing.Any]
    ) -> "Reproducer":
        if data.get("schema") != REPRODUCER_SCHEMA:
            raise ValueError(
                f"not a reproducer fixture (schema {data.get('schema')!r}, "
                f"expected {REPRODUCER_SCHEMA!r})"
            )
        return cls(
            name=data["name"],
            genome=ScenarioGenome.from_dict(data["genome"]),
            verdict=BreachVerdict.from_dict(data["verdict"]),
            settings=DecodeSettings.from_dict(data["settings"]),
            objective=ObjectiveConfig.from_dict(data["objective"]),
            campaign_seed=int(data.get("campaign_seed", 0)),
        )


def reproducer_name(genome: ScenarioGenome) -> str:
    """Content-derived fixture name: same genome, same file."""
    return f"{genome.surface}-{genome.key()}"


def archive_reproducer(
    directory: str | pathlib.Path,
    genome: ScenarioGenome,
    verdict: BreachVerdict,
    campaign: "CampaignConfig",
) -> pathlib.Path:
    """Write one fixture (idempotent — same genome overwrites in place)."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    name = reproducer_name(genome)
    rep = Reproducer(
        name=name,
        genome=genome,
        verdict=verdict,
        settings=campaign.settings,
        objective=campaign.objective,
        campaign_seed=campaign.seed,
    )
    path = directory / f"{name}.json"
    path.write_text(
        json.dumps(rep.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    return path


def load_reproducers(
    directory: str | pathlib.Path,
) -> list[Reproducer]:
    """Every fixture in the corpus, sorted by name (missing dir = empty)."""
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        return []
    out = []
    for path in sorted(directory.glob("*.json")):
        out.append(Reproducer.from_dict(json.loads(path.read_text())))
    return out


def archived_keys(directory: str | pathlib.Path) -> set[str]:
    """Genome hashes already present in the corpus."""
    return {rep.genome.key() for rep in load_reproducers(directory)}


def replay_reproducer(
    rep: Reproducer, evaluator: "Evaluator | None" = None
) -> tuple[bool, BreachVerdict]:
    """Re-run one fixture; ``(verdict matches the recording, fresh verdict)``.

    The evaluator defaults to a serial :class:`ExecEvaluator` built
    from the fixture's own settings and objective.  A replay passes
    only when the fresh verdict equals the recorded one exactly —
    breached flag, score, signature and metrics.
    """
    if evaluator is None:
        from .search import ExecEvaluator

        evaluator = ExecEvaluator(rep.settings, rep.objective)
    fresh = evaluator.evaluate([rep.genome])[0]
    return fresh == rep.verdict, fresh
