"""802.11 MAC substrate: frames, DCF, PCF, NAV, stations."""

from .backoff import (
    LEVEL_HANDOFF,
    LEVEL_NEW_OR_DATA,
    LEVEL_REACTIVATION,
    NUM_LEVELS,
    BackoffPolicy,
    StandardBEB,
)
from .dcf import DcfStats, DcfTransmitter
from .frames import BROADCAST, Frame, FrameType
from .nav import Nav
from .pcf import CfpScheduler, CfpStats, CfPollable, PcfCoordinator, PollAction
from .station import DataStation, RealTimeStation, RTState

__all__ = [
    "BackoffPolicy",
    "StandardBEB",
    "LEVEL_HANDOFF",
    "LEVEL_REACTIVATION",
    "LEVEL_NEW_OR_DATA",
    "NUM_LEVELS",
    "DcfTransmitter",
    "DcfStats",
    "Frame",
    "FrameType",
    "BROADCAST",
    "Nav",
    "PcfCoordinator",
    "PollAction",
    "CfpScheduler",
    "CfpStats",
    "CfPollable",
    "RealTimeStation",
    "DataStation",
    "RTState",
]
