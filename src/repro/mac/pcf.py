"""PCF: the contention-free period (CFP) machinery of the access point.

The coordinator seizes the medium PIFS after it goes idle (beating any
DCF station, whose DIFS is longer), transmits a beacon whose duration
field sets every station's NAV, then runs a poll/response loop:

    CF-Poll --SIFS--> station response --SIFS--> next poll ... CF-End

The scheduling *policy* (which station to poll next — the heart of the
paper's transmit-permission scheme, and the baseline's round-robin) is
supplied by a :class:`CfpScheduler`; the polled stations supply their
uplink frames through :class:`CfPollable`.  The 802.11e CF-MultiPoll
variant (one poll frame, several responses SIFS apart) is supported by
returning several station ids from one scheduling step.
"""

from __future__ import annotations

import dataclasses
import typing

from ..obs.registry import MetricsRegistry, counter_property
from ..phy.channel import Channel, ChannelListener
from ..phy.timing import PhyTiming
from ..sim.engine import Simulator, TimerHandle
from .frames import BROADCAST, Frame, FrameType
from .nav import Nav

__all__ = ["CfPollable", "CfpScheduler", "PollAction", "PcfCoordinator", "CfpStats"]


class CfPollable(typing.Protocol):
    """A station the AP can poll during the CFP."""

    def cf_response(self, now: float) -> Frame | None:
        """Uplink frame to send in response to a poll (None = nothing)."""


class CfpScheduler(typing.Protocol):
    """Decides the polling sequence of one CFP."""

    def next_action(self, now: float, elapsed: float) -> "PollAction | None":
        """Next station(s) to poll, or ``None`` to end the CFP."""

    def on_response(
        self, station_id: str, frame: Frame | None, ok: bool, now: float
    ) -> None:
        """A polled station answered (or stayed silent / was corrupted)."""


@dataclasses.dataclass(frozen=True)
class PollAction:
    """One scheduling step: poll these stations (>1 => CF-MultiPoll)."""

    station_ids: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.station_ids:
            raise ValueError("PollAction needs at least one station")


#: every CfpStats field, in declaration order (all start at zero)
_CFP_STAT_FIELDS = (
    "cfps_started",
    "polls_sent",
    "multipolls_sent",
    "responses",
    "null_responses",
    "cfp_time",
    "poll_retries",      # poll frames retransmitted after a corrupted copy
    "polls_lost",        # polls abandoned after exhausting the retry budget
    "ghost_polls",       # scheduling steps naming an already-departed station
    "unreachable_nulls", # polled stations whose radio was down (faults)
    "cf_ends_lost",      # CF-End frames corrupted on the air (strict mode)
)


class CfpStats:
    """Aggregate CFP accounting, backed by a metrics registry.

    Field access is unchanged from the original dataclass
    (``stats.polls_sent += 1`` works), but every field is now a
    ``cfp_<name>`` counter in the supplied
    :class:`~repro.obs.registry.MetricsRegistry` — one standalone
    registry per instance when none is shared in.
    """

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self.metrics = metrics or MetricsRegistry()
        self._counters = {
            name: self.metrics.counter(f"cfp_{name}")
            for name in _CFP_STAT_FIELDS
        }

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={self._counters[name].value}" for name in _CFP_STAT_FIELDS
        )
        return f"CfpStats({inner})"


for _field in _CFP_STAT_FIELDS:
    setattr(CfpStats, _field, counter_property(_field))
del _field


class PcfCoordinator(ChannelListener):
    """Runs contention-free periods on behalf of the AP.

    Only one CFP can be active at a time; :meth:`start_cfp` arranges
    the PIFS seize and calls ``on_end`` when the CF-End has left the
    air.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: Channel,
        timing: PhyTiming,
        nav: Nav,
        ap_id: str,
        txop_packets: int = 1,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if txop_packets < 1:
            raise ValueError(f"txop_packets must be >= 1, got {txop_packets}")
        self.sim = sim
        self.channel = channel
        self.timing = timing
        self.nav = nav
        self.ap_id = ap_id
        #: HCF-style transmission opportunity: a polled station with a
        #: backlog (piggyback set) may send up to this many frames,
        #: SIFS-separated, on a single poll — the 802.11e HCCA TXOP the
        #: paper's conclusion points at.  1 = classic PCF.
        self.txop_packets = txop_packets
        #: how many times a corrupted CF-Poll/multipoll is retransmitted
        #: (PIFS-separated) before the coordinator gives up on the step
        #: and reports the polled stations unreachable
        self.max_poll_retries = 2
        # hot-path constants: the CFP budget check runs once per
        # scheduling step and both bounds are pure functions of the
        # immutable timing bundle
        self._worst_exchange_time = self._worst_exchange()
        self._end_cost = timing.poll_time() + timing.sifs
        #: honor CF-End delivery: when True a corrupted CF-End leaves
        #: the NAV armed and the BSS falls back to NAV expiry (the
        #: 802.11 duration-field contract).  Off by default — the seed's
        #: fault-free scenarios idealize CF-End delivery, and the golden
        #: regression rows depend on that; attaching a FaultPlan to a
        #: scenario switches this on (see network/bss.py).
        self.strict_cf_end = False
        self.stats = CfpStats(metrics)
        self.stations: dict[str, CfPollable] = {}
        #: optional :class:`repro.obs.trace.TraceRecorder` (``cfp``)
        self.trace = None

        self._active = False
        self._seizing = False
        self._seize_timer: TimerHandle | None = None
        self._scheduler: CfpScheduler | None = None
        self._on_end: typing.Callable[[], None] | None = None
        self._cfp_start = 0.0
        self._deadline = 0.0
        self._deadline_duration = 0.0

        channel.attach(self)

    # -- registration ------------------------------------------------------
    def register(self, station_id: str, station: CfPollable) -> None:
        """Make a station pollable."""
        self.stations[station_id] = station

    def unregister(self, station_id: str) -> None:
        """Remove a departing station (idempotent)."""
        self.stations.pop(station_id, None)

    # -- CFP lifecycle --------------------------------------------------------
    @property
    def active(self) -> bool:
        """True from seize request until CF-End completion."""
        return self._active or self._seizing

    def start_cfp(
        self,
        scheduler: CfpScheduler,
        max_duration: float,
        on_end: typing.Callable[[], None],
    ) -> None:
        """Seize the medium and run one CFP under ``scheduler``."""
        if self.active:
            raise RuntimeError("a CFP is already active")
        if max_duration <= 0:
            raise ValueError(f"max_duration must be > 0, got {max_duration}")
        self._scheduler = scheduler
        self._on_end = on_end
        self._seizing = True
        self._deadline_duration = max_duration
        self._arm_seize()

    def _arm_seize(self) -> None:
        if not self._seizing or self._seize_timer is not None:
            return
        now = self.sim.now
        if self.channel.is_busy:
            return  # on_medium_idle re-arms
        target = max(self.channel.idle_since + self.timing.pifs, now)
        self._seize_timer = self.sim.call_at(target, self._seized)

    def on_medium_idle(self, now: float) -> None:
        self._arm_seize()

    def on_medium_busy(self, now: float) -> None:
        if self._seize_timer is not None:
            self._seize_timer.cancel()
            self._seize_timer = None

    def _seized(self) -> None:
        self._seize_timer = None
        self._seizing = False
        self._active = True
        self._cfp_start = self.sim.now
        self._deadline = self._cfp_start + self._deadline_duration
        self.stats.cfps_started += 1
        if self.trace is not None:
            self.trace.emit(
                self._cfp_start, "cfp", "start",
                max_duration=self._deadline_duration,
            )
        beacon = Frame(
            FrameType.BEACON,
            src=self.ap_id,
            dest=BROADCAST,
            nav_duration=self._deadline_duration,
        )
        self.nav.set(self._deadline)
        done = self.channel.transmit(beacon, beacon.airtime(self.timing), sender=self)
        done.add_callback(lambda ev: self._schedule_step(self.timing.sifs))

    def _schedule_step(self, gap: float) -> None:
        self.sim.call_in(gap, self._step)

    def _worst_exchange(self) -> float:
        """Upper bound on one poll+response exchange, for the budget check."""
        resp = self.timing.frame_airtime(1500 * 8)
        return self.timing.poll_time() + 2 * self.timing.sifs + resp

    def _step(self) -> None:
        assert self._scheduler is not None
        now = self.sim.now
        elapsed = now - self._cfp_start
        over_budget = (
            now + self._worst_exchange_time + self._end_cost > self._deadline
        )
        action = None
        if not over_budget:
            action = self._scheduler.next_action(now, elapsed)
        if action is None:
            self._send_cf_end()
            return
        # A scheduler may name a station that departed mid-CFP (its
        # teardown raced the scheduling step).  Degrade to an abnormal
        # null so the scheduler can clean up its own state, and poll
        # whoever is left.
        ids = []
        for sid in action.station_ids:
            if sid in self.stations:
                ids.append(sid)
            else:
                self.stats.ghost_polls += 1
                if self.trace is not None:
                    self.trace.emit(now, "cfp", "ghost", station=sid)
                self._scheduler.on_response(sid, None, False, now)
        if not ids:
            self._schedule_step(0.0)
            return
        if self.trace is not None:
            self.trace.emit(now, "cfp", "poll", stations=list(ids))
        if len(ids) == 1:
            self.stats.polls_sent += 1
            frame = Frame(FrameType.CF_POLL, src=self.ap_id, dest=ids[0])
        else:
            self.stats.multipolls_sent += 1
            frame = Frame(
                FrameType.CF_MULTIPOLL,
                src=self.ap_id,
                dest=BROADCAST,
                poll_list=tuple(ids),
            )
        self._transmit_poll(frame, ids, self.max_poll_retries)

    def _transmit_poll(
        self, frame: Frame, ids: list[str], retries_left: int
    ) -> None:
        done = self.channel.transmit(frame, frame.airtime(self.timing), sender=self)
        done.add_callback(
            lambda ev: self._poll_done(ev.value.ok, frame, ids, retries_left)
        )

    def _poll_done(
        self, ok: bool, frame: Frame, ids: list[str], retries_left: int
    ) -> None:
        """The poll frame left the air — was it actually delivered?

        A corrupted CF-Poll was never heard, so nobody may answer it.
        The coordinator reclaims the medium after PIFS and retransmits;
        once the retry budget is gone the polled stations are reported
        as abnormal nulls (``ok=False``) so the scheduler can escalate
        (re-pacing, eviction) instead of waiting forever.
        """
        if ok:
            self.sim.call_in(self.timing.sifs, self._responses, list(ids))
            return
        if retries_left > 0:
            self.stats.poll_retries += 1
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now, "cfp", "repoll",
                    stations=list(ids), retries_left=retries_left - 1,
                )
            self.sim.call_in(
                self.timing.pifs, self._transmit_poll, frame, ids, retries_left - 1
            )
            return
        assert self._scheduler is not None
        self.stats.polls_lost += 1
        if self.trace is not None:
            self.trace.emit(self.sim.now, "cfp", "poll_lost", stations=list(ids))
        for sid in ids:
            self._scheduler.on_response(sid, None, False, self.sim.now)
        self._schedule_step(self.timing.pifs)

    def _responses(self, remaining: list[str]) -> None:
        """Collect poll responses, one per SIFS, then schedule next step."""
        if not remaining:
            self._schedule_step(0.0)
            return
        sid = remaining.pop(0)
        self._respond_station(sid, remaining, self.txop_packets)

    def _respond_station(
        self, sid: str, remaining: list[str], burst_left: int
    ) -> None:
        station = self.stations.get(sid)
        assert self._scheduler is not None
        if station is not None and getattr(station, "radio_down", False):
            # Fault-injected radio silence: the station cannot have
            # heard the poll.  Unlike a legit empty-buffer null this is
            # reported abnormal (ok=False) so the scheduler's miss
            # escalation runs.
            self.stats.unreachable_nulls += 1
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now, "cfp", "null", station=sid, reason="radio_down"
                )
            self._scheduler.on_response(sid, None, False, self.sim.now)
            self.sim.call_in(
                self.timing.pifs - self.timing.sifs, self._responses, remaining
            )
            return
        frame = station.cf_response(self.sim.now) if station is not None else None
        if frame is None:
            # No response: the point coordinator reclaims the medium
            # after PIFS (it has already waited SIFS).
            self.stats.null_responses += 1
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now, "cfp", "null", station=sid, reason="empty"
                )
            self._scheduler.on_response(sid, None, True, self.sim.now)
            self.sim.call_in(
                self.timing.pifs - self.timing.sifs, self._responses, remaining
            )
            return
        self.stats.responses += 1
        done = self.channel.transmit(frame, frame.airtime(self.timing), sender=station)
        scheduler = self._scheduler

        def finish(ev):
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now, "cfp", "response",
                    station=sid, ok=ev.value.ok,
                    piggyback=bool(frame.piggyback),
                )
            scheduler.on_response(sid, frame, ev.value.ok, self.sim.now)
            # TXOP continuation: a backlogged station keeps the floor,
            # SIFS-separated, up to the opportunity limit — but only a
            # real backlog (not a keepalive piggyback) extends it.
            backlog = bool(frame.info and frame.info.get("backlog"))
            if burst_left > 1 and frame.piggyback and backlog:
                self.sim.call_in(
                    self.timing.sifs, self._respond_station,
                    sid, remaining, burst_left - 1,
                )
            else:
                self.sim.call_in(self.timing.sifs, self._responses, remaining)

        done.add_callback(finish)

    def _send_cf_end(self) -> None:
        frame = Frame(FrameType.CF_END, src=self.ap_id, dest=BROADCAST)
        done = self.channel.transmit(frame, frame.airtime(self.timing), sender=self)
        done.add_callback(lambda ev: self._finished(ev.value.ok))

    def _finished(self, cf_end_ok: bool = True) -> None:
        now = self.sim.now
        self.stats.cfp_time += now - self._cfp_start
        if self.trace is not None:
            self.trace.emit(
                now, "cfp", "end",
                duration=now - self._cfp_start, cf_end_ok=cf_end_ok,
            )
        if cf_end_ok or not self.strict_cf_end:
            self.nav.clear(now)
        else:
            # The CF-End never reached the stations: their NAVs stay
            # armed until the beacon's announced deadline expires (the
            # duration-field fallback).  Leaving the shared NAV set
            # models exactly that — contention resumes at the deadline.
            self.stats.cf_ends_lost += 1
        self._active = False
        scheduler, self._scheduler = self._scheduler, None
        on_end, self._on_end = self._on_end, None
        if on_end is not None:
            on_end()
