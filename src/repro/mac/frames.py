"""MAC frame types and sizes.

Frames are plain value objects; airtime is computed from
:class:`~repro.phy.timing.PhyTiming`.  Only the fields the simulation
dynamics actually depend on are modelled (type, addressing, payload
size, piggyback bit, poll lists, CFP duration announcements).
"""

from __future__ import annotations

import dataclasses
import enum
import typing

from ..phy.timing import PhyTiming

__all__ = ["FrameType", "Frame", "BROADCAST"]

#: broadcast destination address
BROADCAST = "*"


class FrameType(enum.Enum):
    """802.11 frame kinds used by the simulation."""

    DATA = "data"  # DCF data MPDU (contention period)
    ACK = "ack"
    RTS = "rts"  # request-to-send (virtual carrier-sense handshake)
    CTS = "cts"  # clear-to-send
    REQUEST = "request"  # resource-request MPDU sent in the CP
    BEACON = "beacon"  # starts a CFP
    CF_POLL = "cf_poll"  # polls one station
    CF_MULTIPOLL = "cf_multipoll"  # 802.11e-style multipoll (list of stations)
    CF_DATA = "cf_data"  # polled uplink real-time MPDU (+ piggyback bit)
    CF_END = "cf_end"  # ends a CFP

    # members are singletons, so identity hashing is equivalent to the
    # default name hash — but it is a C-level slot, and frame types key
    # the airtime/header-bits dicts on the per-frame hot path
    __hash__ = object.__hash__


@dataclasses.dataclass(slots=True)
class Frame:
    """One MAC frame on the air.

    Attributes
    ----------
    ftype:
        Frame kind.
    src / dest:
        Station identifiers (``BROADCAST`` for beacons/CF-End).
    payload_bits:
        MSDU payload carried (0 for control frames).
    packet:
        The :class:`~repro.traffic.base.Packet` carried, if any.
    piggyback:
        For CF_DATA: "my buffer is still non-empty" (PGBK request bit).
    poll_list:
        For CF_MULTIPOLL: ordered station ids being polled.
    nav_duration:
        For BEACON: announced maximum CFP duration (sets receivers' NAV).
    info:
        Small free-form side channel (request descriptors etc.).
    """

    ftype: FrameType
    src: str
    dest: str
    payload_bits: int = 0
    packet: typing.Any = None
    piggyback: bool = False
    poll_list: tuple[str, ...] = ()
    nav_duration: float = 0.0
    info: typing.Any = None

    def __post_init__(self) -> None:
        if self.payload_bits < 0:
            raise ValueError(f"negative payload {self.payload_bits}")

    @property
    def total_bits(self) -> int:
        """Bits exposed to the BER model (header + payload)."""
        return self.payload_bits + _HEADER_BITS.get(self.ftype, 272)

    def airtime(self, timing: PhyTiming) -> float:
        """Time this frame occupies the medium.

        Delegates to the memoized :meth:`PhyTiming.frame_duration`
        (keyed by frame type, payload size, and — for multipolls —
        the ~2-octet-per-entry poll-list surcharge).
        """
        ftype = self.ftype
        if ftype is FrameType.CF_MULTIPOLL:
            return timing.frame_duration(ftype, 0, 16 * len(self.poll_list))
        return timing.frame_duration(ftype, self.payload_bits)


#: header bits per frame type, for the BER model
_HEADER_BITS: dict[FrameType, int] = {
    FrameType.DATA: 272,
    FrameType.CF_DATA: 272,
    FrameType.ACK: 112,
    FrameType.RTS: 160,  # 20 octets
    FrameType.CTS: 112,  # 14 octets
    FrameType.REQUEST: 272,
    FrameType.BEACON: 400,
    FrameType.CF_POLL: 272,
    FrameType.CF_MULTIPOLL: 272,
    FrameType.CF_END: 272,
}

#: QoS descriptor carried by a REQUEST frame (traffic parameters)
_REQUEST_PAYLOAD_BITS = 128
