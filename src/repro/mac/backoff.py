"""Backoff-policy interface and the standard binary exponential backoff.

The DCF engine is parametric in its backoff policy; this is the hook
through which the paper's contribution (the partitioned priority
backoff with adaptive contention windows, in :mod:`repro.core`) plugs
into an otherwise standard CSMA/CA MAC.

Priority levels follow the paper's Table I convention:

* level 0 — real-time handoff requests (highest);
* level 1 — admitted, currently inactive real-time sources asking to
  be reactivated;
* level 2 — new connection requests and pure data (lowest).

The plain 802.11 BEB ignores the level entirely.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "BackoffPolicy",
    "StandardBEB",
    "LEVEL_HANDOFF",
    "LEVEL_REACTIVATION",
    "LEVEL_NEW_OR_DATA",
    "NUM_LEVELS",
]

LEVEL_HANDOFF = 0
LEVEL_REACTIVATION = 1
LEVEL_NEW_OR_DATA = 2
NUM_LEVELS = 3


class BackoffPolicy:
    """Strategy object consulted by the DCF engine.

    Subclasses must implement :meth:`draw_slots`.  The ``observe_*``
    hooks feed channel observations to adaptive policies; the defaults
    are no-ops.
    """

    def draw_slots(
        self, level: int, stage: int, rng: np.random.Generator
    ) -> int:  # pragma: no cover - abstract
        """Number of backoff slots for a station of ``level`` at retry
        ``stage`` (0 = first attempt)."""
        raise NotImplementedError

    def max_stage(self) -> int:
        """Stage at which the window stops growing (standard ``m``)."""
        return 5

    def draw_slots_batch(
        self,
        levels: np.ndarray,
        stages: np.ndarray,
        uniforms: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`draw_slots`: one round's draws at once.

        ``uniforms`` carries one ``[0, 1)`` variate per station in the
        round (from :class:`repro.accel.rng.BatchedRngAdapter`); the
        policy maps each through the same ``(level, stage)`` window
        geometry its scalar draw uses.  The default loops the scalar
        window; vector-friendly policies override it.
        """
        out = np.empty(len(uniforms), dtype=np.int64)
        for i in range(len(uniforms)):
            offset, width = self.draw_window(int(levels[i]), int(stages[i]))
            if width <= 0:
                raise NotImplementedError(
                    f"{type(self).__name__} does not expose window "
                    "geometry; batched draws are unavailable"
                )
            out[i] = offset + int(uniforms[i] * width)
        return out

    def draw_window(self, level: int, stage: int) -> tuple[int, int]:
        """``(offset, width)`` of the slot range :meth:`draw_slots`
        samples for ``level`` at ``stage`` — the priority window the
        trace records alongside each draw.  ``(0, 0)`` means the
        policy does not expose its window geometry."""
        return (0, 0)

    def extra_ifs(self, level: int) -> float:
        """Additional interframe space (seconds) before level ``level``
        may begin counting slots — the AIFS knob of 802.11e-style
        differentiation.  The default (0) means plain DIFS for all."""
        return 0.0

    # -- observation hooks (for adaptive policies) -------------------------
    def observe_slots(self, idle_slots: int, busy_events: int) -> None:
        """``idle_slots`` counted down, interrupted by ``busy_events``."""

    def observe_span(self, start: int, end: int, interrupted: bool) -> None:
        """Positional observation: slots ``[start, end)`` of the
        station's current virtual contention window were seen idle; if
        ``interrupted``, the medium went busy at index ``end``.

        Because draws are absolute indices within the partitioned
        window, these positions let an adaptive policy attribute busy
        slots to priority classes (the paper's per-class utilization
        factors).  The default forwards to :meth:`observe_slots`.
        """
        self.observe_slots(max(0, end - start), 1 if interrupted else 0)

    def observe_outcome(self, success: bool) -> None:
        """One of our own transmissions succeeded/failed."""


class StandardBEB(BackoffPolicy):
    """IEEE 802.11 binary exponential backoff.

    ``CW(stage) = min(cw_min * 2**stage, cw_max)``; the draw is uniform
    over ``[0, CW)``.  The paper describes the initial window as 8
    slots (draws 0–7, doubling to 0–15 after one collision); the 802.11
    DSSS default is 32.  Both are expressible here.
    """

    def __init__(self, cw_min: int = 32, cw_max: int = 1024) -> None:
        if cw_min < 1 or cw_max < cw_min:
            raise ValueError(f"invalid CW bounds [{cw_min}, {cw_max}]")
        self.cw_min = cw_min
        self.cw_max = cw_max

    def window(self, stage: int) -> int:
        """Contention-window size at ``stage``."""
        if stage < 0:
            raise ValueError(f"negative stage {stage}")
        return min(self.cw_min * (2**stage), self.cw_max)

    def max_stage(self) -> int:
        stage = 0
        while self.cw_min * (2**stage) < self.cw_max:
            stage += 1
        return stage

    def draw_slots(self, level: int, stage: int, rng: np.random.Generator) -> int:
        return int(rng.integers(0, self.window(stage)))

    def draw_slots_batch(
        self,
        levels: np.ndarray,
        stages: np.ndarray,
        uniforms: np.ndarray,
    ) -> np.ndarray:
        """One numpy expression for the whole round: ``floor(u * CW)``.

        ``CW(stage) = min(cw_min * 2**stage, cw_max)`` exactly as the
        scalar :meth:`window`; levels are ignored (plain BEB).
        """
        windows = np.minimum(
            self.cw_min * (1 << np.minimum(stages, 63).astype(np.int64)),
            self.cw_max,
        )
        return (uniforms * windows).astype(np.int64)
