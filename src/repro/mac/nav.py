"""Network allocation vector shared by all stations of a BSS.

The beacon that opens a contention-free period announces its maximum
duration; every DCF station sets its NAV and refrains from contending
until either the announced time passes or a CF-End frame resets it.

That "either" is the CF-End-loss fallback contract: :meth:`Nav.blocked`
compares against the wall clock, so a NAV that is never cleared simply
expires at the beacon-announced deadline and contention resumes on its
own.  When the coordinator runs with ``strict_cf_end`` (fault-injected
scenarios), a corrupted CF-End deliberately skips :meth:`Nav.clear` and
the BSS degrades to exactly this expiry path — losing the remainder of
the announced CFP window to silence, but never deadlocking.
"""

from __future__ import annotations

__all__ = ["Nav"]


class Nav:
    """A single shared virtual-carrier-sense value."""

    __slots__ = ("until",)

    def __init__(self) -> None:
        self.until = 0.0

    def set(self, until: float) -> None:
        """Extend the NAV (never shrinks it except through clear())."""
        if until > self.until:
            self.until = until

    def clear(self, now: float) -> None:
        """CF-End received: medium is contention-ready again."""
        self.until = now

    def blocked(self, now: float) -> bool:
        """True while virtual carrier sense forbids contention."""
        return now < self.until

    def remaining(self, now: float) -> float:
        """Seconds of NAV left (0 if expired)."""
        return max(0.0, self.until - now)
