"""Station state machines.

:class:`RealTimeStation` implements the paper's Fig. 2 three-state
model — **Empty**, **Request**, **Wait-to-Transmit**:

* a station whose buffer fills while Empty enters Request and contends
  (through the priority DCF) with a resource-request frame;
* once the AP has the request it waits to be polled (Wait-to-Transmit);
* a polled station answers with one packet plus the PGBK piggyback bit
  ("my buffer is still non-empty"); a zero piggyback returns it to
  Empty.

Real-time packets whose deadline (jitter budget for voice, delay budget
for video) lapses while queued are discarded and counted as lost —
exactly the paper's loss semantics.

:class:`DataStation` is the plain best-effort DCF station.
"""

from __future__ import annotations

import collections
import enum
import typing

from ..sim.engine import Simulator
from ..traffic.base import Packet, TrafficKind
from .backoff import LEVEL_HANDOFF, LEVEL_NEW_OR_DATA, LEVEL_REACTIVATION
from .dcf import DcfTransmitter
from .frames import Frame, FrameType

__all__ = ["RTState", "RealTimeStation", "DataStation"]


class RTState(enum.Enum):
    """The paper's Fig. 2 station states."""

    EMPTY = "empty"
    REQUEST = "request"
    WAIT = "wait_to_transmit"


class RealTimeStation:
    """A voice or video terminal.

    Parameters
    ----------
    sim:
        Simulator.
    station_id:
        Unique id (doubles as MAC address).
    dcf:
        Contention engine used for request frames.
    ap_id:
        Where requests are addressed.
    kind:
        VOICE or VIDEO.
    qos:
        The traffic declaration carried inside request frames
        (``VoiceParams`` or ``VideoParams``).
    is_handoff:
        Handoff calls send their (re)requests at the highest priority.
    on_packet_outcome:
        ``fn(packet, delivered: bool)`` metric callback.
    """

    def __init__(
        self,
        sim: Simulator,
        station_id: str,
        dcf: DcfTransmitter,
        ap_id: str,
        kind: TrafficKind,
        qos: typing.Any,
        is_handoff: bool = False,
        handoff_time: float = 0.0,
        on_packet_outcome: typing.Callable[[Packet, bool], None] | None = None,
        service_margin: float = 0.0,
    ) -> None:
        self.sim = sim
        self.station_id = station_id
        self.dcf = dcf
        self.ap_id = ap_id
        self.kind = kind
        self.qos = qos
        self.is_handoff = is_handoff
        self.handoff_time = handoff_time
        self.on_packet_outcome = on_packet_outcome
        #: lookahead applied when purging expired packets: a packet
        #: that cannot *finish* (poll + airtime) inside its deadline is
        #: already lost, so "delivered" strictly implies "on time"
        self.service_margin = service_margin

        self.state = RTState.EMPTY
        self.admitted = False
        self.eof = False  # the call has ended upstream
        #: fault injection: radio out (crash or freeze) — the station
        #: can neither hear polls nor transmit until fault_cleared()
        self.radio_down = False
        #: the AP evicted this session (missed-poll escalation); the
        #: station must re-request admission before transmitting again
        self.was_evicted = False
        self._crashed = False
        #: fault/recovery counters
        self.faults_suffered = 0
        self.recoveries = 0
        self.crash_losses = 0
        #: optional "is the stream still active?" probe (e.g. the voice
        #: source's talk-spurt flag).  While it returns True the station
        #: answers empty-buffer polls with a CF-Null carrying PGBK=1,
        #: keeping the AP's token pipeline alive across the small phase
        #: offsets between polls and packet arrivals.
        self.activity_probe: typing.Callable[[], bool] | None = None
        self.buffer: collections.deque[Packet] = collections.deque()
        self._last_arrival: float | None = None
        #: packets dropped because their deadline lapsed in the buffer
        self.deadline_drops = 0
        #: packets lost to channel errors during their polled slot
        self.error_losses = 0
        self.requests_sent = 0

    # -- traffic sink -----------------------------------------------------
    def packet_arrival(self, packet: Packet) -> None:
        """Sink handed to the traffic source."""
        if self.eof:
            return
        if self.radio_down and self._crashed:
            # device is rebooting: arrivals are lost outright
            self.crash_losses += 1
            packet.expired = True
            if self.on_packet_outcome is not None:
                self.on_packet_outcome(packet, False)
            return
        self.buffer.append(packet)
        self._last_arrival = packet.created
        if self.radio_down or self.state != RTState.EMPTY:
            # frozen radios cannot contend; queued packets age in place
            return
        if self.admitted:
            self._send_request(reactivation=True)
        elif self.was_evicted:
            # an evicted session must re-earn admission from scratch
            self._send_request(reactivation=False)

    # -- request path ---------------------------------------------------------
    def request_priority(self, reactivation: bool) -> int:
        """Backoff level for this station's requests (paper Table I)."""
        if self.is_handoff and not self.admitted:
            return LEVEL_HANDOFF
        if reactivation:
            return LEVEL_REACTIVATION
        return LEVEL_NEW_OR_DATA

    def start_admission_request(
        self, on_done: typing.Callable[[bool], None] | None = None
    ) -> None:
        """Contend with the initial connection request (new or handoff)."""
        if self.admitted:
            raise RuntimeError(f"{self.station_id} is already admitted")
        self.state = RTState.REQUEST
        self._send_request(reactivation=False, on_done=on_done)

    def _send_request(
        self,
        reactivation: bool,
        on_done: typing.Callable[[bool], None] | None = None,
    ) -> None:
        self.state = RTState.REQUEST
        self.requests_sent += 1
        frame = Frame(
            FrameType.REQUEST,
            src=self.station_id,
            dest=self.ap_id,
            info={
                "kind": self.kind,
                "qos": self.qos,
                "handoff": self.is_handoff,
                "handoff_time": self.handoff_time,
                "reactivation": reactivation,
            },
        )
        level = self.request_priority(reactivation)

        def done(success: bool) -> None:
            if not success and self.state == RTState.REQUEST:
                self.state = RTState.EMPTY
            if on_done is not None:
                on_done(success)

        self.dcf.enqueue(frame, level, done)

    # -- AP control plane -------------------------------------------------------
    def grant(self) -> None:
        """The AP admitted (or re-activated polling for) this station."""
        self.admitted = True
        self.was_evicted = False
        self.state = RTState.WAIT

    def deny(self) -> None:
        """The AP rejected the connection request."""
        self.state = RTState.EMPTY

    def end_call(self) -> None:
        """Upstream call termination; remaining buffer drains as EOF."""
        self.eof = True

    def evicted(self) -> None:
        """The AP dropped this session after consecutive missed polls.

        The token buffer and admitted bandwidth are gone; the station
        must contend for admission again before it is polled.
        """
        self.admitted = False
        self.was_evicted = True
        if self.state == RTState.WAIT:
            self.state = RTState.EMPTY

    # -- fault injection --------------------------------------------------
    def fault(self, crash: bool = False) -> None:
        """Take the radio down (idempotent while already down).

        ``crash=True`` models a device reboot: everything queued is
        lost and arrivals are discarded until recovery.  ``crash=False``
        is a freeze (radio mute): the codec keeps producing and packets
        queue — and age toward their deadlines — in place.
        """
        if self.radio_down:
            self._crashed = self._crashed or crash
            return
        self.radio_down = True
        self._crashed = crash
        self.faults_suffered += 1
        if crash:
            while self.buffer:
                pkt = self.buffer.popleft()
                pkt.expired = True
                self.crash_losses += 1
                if self.on_packet_outcome is not None:
                    self.on_packet_outcome(pkt, False)

    def fault_cleared(self) -> None:
        """Radio back up: rejoin the BSS (no-op if it was never down).

        A station the AP still carries (it recovered before the missed-
        poll eviction) re-arms its token pipeline with a reactivation
        request; an evicted one contends for re-admission from scratch.
        """
        if not self.radio_down:
            return
        self.radio_down = False
        self._crashed = False
        self.recoveries += 1
        self._purge_expired(self.sim.now)
        if self.eof:
            return
        backlog = bool(self.buffer) or self._still_active()
        if self.admitted:
            if backlog:
                self._send_request(reactivation=True)
        elif self.was_evicted and backlog:
            self._send_request(reactivation=False)

    # -- CFP poll response ---------------------------------------------------------
    def _purge_expired(self, now: float) -> None:
        while self.buffer and self.buffer[0].deadline is not None and (
            self.buffer[0].deadline <= now + self.service_margin
        ):
            pkt = self.buffer.popleft()
            pkt.expired = True
            self.deadline_drops += 1
            if self.on_packet_outcome is not None:
                self.on_packet_outcome(pkt, False)

    def _still_active(self) -> bool:
        return (
            not self.eof
            and self.activity_probe is not None
            and self.activity_probe()
        )

    def cf_response(self, now: float) -> Frame | None:
        """Uplink frame for a CF-Poll (None if nothing sendable)."""
        self._purge_expired(now)
        if not self.buffer:
            if self._still_active():
                # CF-Null with PGBK=1: "nothing right now, keep polling".
                # The station knows its own codec cadence, so it also
                # tells the AP when its next packet is due (TSPEC-style
                # signalling) — the AP re-phases its token to that ETA
                # instead of blindly hunting.
                next_eta = None
                rate = getattr(self.qos, "rate", None)
                if rate and self._last_arrival is not None:
                    next_eta = max(0.0, self._last_arrival + 1.0 / rate - now)
                return Frame(
                    FrameType.CF_DATA,
                    src=self.station_id,
                    dest=self.ap_id,
                    piggyback=True,
                    info={"eof": False, "backlog": False, "next_eta": next_eta},
                )
            if self.state == RTState.WAIT:
                self.state = RTState.EMPTY
            return None
        pkt = self.buffer.popleft()
        backlog = bool(self.buffer)
        piggyback = backlog or self._still_active()
        if not piggyback:
            self.state = RTState.EMPTY
        return Frame(
            FrameType.CF_DATA,
            src=self.station_id,
            dest=self.ap_id,
            payload_bits=pkt.bits,
            packet=pkt,
            piggyback=piggyback,
            info={"eof": self.eof and not self.buffer, "backlog": backlog},
        )

    def delivery_outcome(self, packet: Packet, ok: bool, now: float) -> None:
        """Called by the AP scheduler once the polled frame left the air."""
        if ok:
            packet.completed = now
        else:
            self.error_losses += 1
        if self.on_packet_outcome is not None:
            self.on_packet_outcome(packet, ok)


class DataStation:
    """Best-effort station: every data packet contends through DCF."""

    def __init__(
        self,
        sim: Simulator,
        station_id: str,
        dcf: DcfTransmitter,
        ap_id: str,
        on_packet_outcome: typing.Callable[[Packet, bool], None] | None = None,
    ) -> None:
        self.sim = sim
        self.station_id = station_id
        self.dcf = dcf
        self.ap_id = ap_id
        self.on_packet_outcome = on_packet_outcome
        self.delivered = 0
        self.dropped = 0

    def packet_arrival(self, packet: Packet) -> None:
        """Sink handed to the traffic source."""
        frame = Frame(
            FrameType.DATA,
            src=self.station_id,
            dest=self.ap_id,
            payload_bits=packet.bits,
            packet=packet,
        )

        def done(success: bool) -> None:
            if success:
                packet.completed = self.sim.now
                self.delivered += 1
            else:
                self.dropped += 1
            if self.on_packet_outcome is not None:
                self.on_packet_outcome(packet, success)

        self.dcf.enqueue(frame, LEVEL_NEW_OR_DATA, done)
