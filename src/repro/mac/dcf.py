"""The DCF engine: CSMA/CA with a pluggable backoff policy.

One :class:`DcfTransmitter` serves one station's contention-period
traffic.  It is event-driven (no per-slot events): when the medium goes
idle the remaining backoff is scheduled as a single timer; when the
medium goes busy the timer is cancelled and the elapsed whole slots are
subtracted — the standard freeze-and-resume semantics, which the paper
points out also auto-promotes stations that have waited long.

Faithful-to-the-paper simplifications (single BSS, all stations in
range):

* the ACK a receiver would send is put on the air by the engine itself
  SIFS after a correctly received frame — behaviourally identical on a
  broadcast medium and it spares every station a full receive path;
* EIFS is not modelled (the paper never mentions it); a failed exchange
  defers for the ACK-timeout and re-contends with a doubled window.
"""

from __future__ import annotations

import collections
import dataclasses
import typing

import numpy as np

from ..phy.channel import Channel, ChannelListener, TxOutcome
from ..phy.timing import PhyTiming
from ..sim.engine import Simulator, TimerHandle
from .backoff import BackoffPolicy
from .frames import Frame, FrameType
from .nav import Nav

__all__ = ["DcfTransmitter", "DcfStats"]

#: slack added when converting elapsed time to whole slots, to absorb
#: float rounding (fraction of one slot)
_SLOT_EPSILON = 1e-6


@dataclasses.dataclass
class DcfStats:
    """Counters exposed for tests and metrics."""

    enqueued: int = 0
    attempts: int = 0
    successes: int = 0
    failures: int = 0  # collided or corrupted attempts
    drops: int = 0  # frames abandoned after retry_limit
    idle_slots_observed: int = 0
    busy_freezes: int = 0
    rts_handshakes: int = 0


@dataclasses.dataclass
class _Entry:
    frame: Frame
    level: int
    on_done: typing.Callable[[bool], None] | None


class DcfTransmitter(ChannelListener):
    """CSMA/CA contention engine for a single station.

    Parameters
    ----------
    sim, channel, timing:
        Simulation substrate.
    policy:
        Backoff policy (standard BEB or the paper's priority scheme).
    rng:
        This station's random stream.
    station_id:
        Identifier stamped on outgoing frames.
    nav:
        The BSS-wide NAV (shared with all other stations).
    retry_limit:
        Attempts before a frame is dropped (802.11 long-retry default 7).
    rts_threshold:
        DATA frames whose payload exceeds this many bits are protected
        by an RTS/CTS handshake, so a collision costs only the short
        RTS instead of the whole frame.  (In this single-BSS model —
        no hidden terminals, per the paper — that collision-cost
        reduction is RTS/CTS's only effect.)  Default: disabled.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: Channel,
        timing: PhyTiming,
        policy: BackoffPolicy,
        rng: np.random.Generator,
        station_id: str,
        nav: Nav,
        retry_limit: int = 7,
        rts_threshold: float = float("inf"),
    ) -> None:
        self.sim = sim
        self.channel = channel
        self.timing = timing
        self.policy = policy
        self.rng = rng
        self.station_id = station_id
        self.nav = nav
        self.retry_limit = retry_limit
        self.rts_threshold = rts_threshold
        self.stats = DcfStats()

        # hot-path constants: every derived duration below is a pure
        # function of the (immutable) timing bundle, and the per-level
        # IFS memo assumes the policy's AIFS surcharge is a static QoS
        # parameter (it is, for every policy in this repo — see
        # DESIGN.md "Performance")
        self._slot = timing.slot
        self._ack_timeout = timing.sifs + timing.ack_time() + timing.slot
        self._cts_timeout = (
            timing.sifs
            + timing.frame_duration(FrameType.CTS)
            + timing.slot
        )
        self._ifs_memo: dict[int, float] = {}

        self._queue: collections.deque[_Entry] = collections.deque()
        self._head: _Entry | None = None
        self._stage = 0
        self._slots_left: int | None = None
        self._draw_value = 0
        self._count_begin: float | None = None
        self._timer: TimerHandle | None = None
        self._nav_timer: TimerHandle | None = None
        self._in_exchange = False
        #: optional :class:`repro.obs.trace.TraceRecorder` (``backoff``)
        self.trace = None

        channel.attach(self)

    # -- public API ----------------------------------------------------------
    def enqueue(
        self,
        frame: Frame,
        level: int,
        on_done: typing.Callable[[bool], None] | None = None,
    ) -> None:
        """Queue ``frame`` for contention at priority ``level``.

        ``on_done(success)`` fires when the frame is either acknowledged
        or dropped after the retry limit.
        """
        self.stats.enqueued += 1
        self._queue.append(_Entry(frame, level, on_done))
        if self._head is None and not self._in_exchange:
            self._start_next(fresh_arrival=True)

    @property
    def pending(self) -> int:
        """Frames waiting (including the one in contention)."""
        return len(self._queue) + (1 if self._head is not None else 0)

    @property
    def busy(self) -> bool:
        """True while a frame is queued, contending or mid-exchange."""
        return self._head is not None or bool(self._queue) or self._in_exchange

    def shutdown(self) -> None:
        """Detach from the channel (departing station)."""
        self._cancel_timer()
        if self._nav_timer is not None:
            self._nav_timer.cancel()
            self._nav_timer = None
        self.channel.detach(self)

    # -- contention machinery --------------------------------------------------
    def _ifs(self, level: int) -> float:
        """DIFS plus the policy's (static) AIFS surcharge for ``level``."""
        ifs = self._ifs_memo.get(level)
        if ifs is None:
            ifs = self._ifs_memo[level] = (
                self.timing.difs + self.policy.extra_ifs(level)
            )
        return ifs

    def _start_next(self, fresh_arrival: bool) -> None:
        if self._head is not None or not self._queue:
            return
        self._head = self._queue.popleft()
        self._stage = 0
        now = self.sim.now
        ifs = self._ifs(self._head.level)
        if (
            fresh_arrival
            and not self.channel.is_busy
            and not self.nav.blocked(now)
            and self.channel.idle_duration(now) >= ifs - 1e-12
        ):
            # 802.11 immediate access: medium already idle for >= DIFS.
            self._slots_left = 0
            self._transmit()
            return
        self._draw_backoff()
        self._arm()

    def _draw_backoff(self) -> None:
        assert self._head is not None
        stage = min(self._stage, self.policy.max_stage())
        self._slots_left = self.policy.draw_slots(
            self._head.level, stage, self.rng
        )
        # the draw's absolute position inside the (possibly partitioned)
        # window, for positional channel observations
        self._draw_value = self._slots_left
        if self.trace is not None:
            offset, width = self.policy.draw_window(self._head.level, stage)
            self.trace.emit(
                self.sim.now, "backoff", "draw",
                station=self.station_id,
                level=self._head.level,
                stage=self._stage,
                slots=self._slots_left,
                window_offset=offset,
                window_width=width,
            )

    def _arm(self) -> None:
        """Schedule the backoff-completion timer if conditions allow."""
        if self._head is None or self._slots_left is None or self._timer is not None:
            return
        sim = self.sim
        now = sim._now
        if self.channel._active:
            return  # on_medium_idle will re-arm
        if self.nav.blocked(now):
            if self._nav_timer is None:
                self._nav_timer = sim.call_at(self.nav.until, self._nav_expired)
            return
        # Slot counting begins DIFS (plus the level's AIFS surcharge,
        # if the policy differentiates IFS) after the medium went idle —
        # or now, whichever is later: a frame that arrived mid-idle
        # cannot claim credit for slots it never observed.
        begin = self.channel.idle_since + self._ifs(self._head.level)
        if begin < now:
            begin = now
        self._count_begin = begin
        self._timer = sim.call_at(
            begin + self._slots_left * self._slot, self._backoff_complete
        )

    def _nav_expired(self) -> None:
        self._nav_timer = None
        self._arm()

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._count_begin = None

    def _consume_elapsed_slots(self, now: float) -> None:
        """Freeze: subtract the whole slots counted before ``now``."""
        if self._count_begin is None or self._slots_left is None:
            return
        elapsed = now - self._count_begin
        if elapsed <= 0:
            consumed = 0
        else:
            consumed = int(elapsed / self._slot + _SLOT_EPSILON)
        consumed = min(consumed, self._slots_left)
        start = self._draw_value - self._slots_left
        self._slots_left -= consumed
        self.stats.idle_slots_observed += consumed
        self.policy.observe_span(start, start + consumed, interrupted=True)

    # -- channel listener callbacks ----------------------------------------------
    def on_medium_busy(self, now: float) -> None:
        if self._timer is None:
            return
        # If our own timer is due exactly now (counter hit zero at this
        # very slot boundary) we are *also* transmitting in this slot:
        # leave the timer so the collision actually happens.
        self._consume_elapsed_slots(now)
        if self._slots_left == 0 and self._timer.time <= now + 1e-15:
            self._count_begin = None
            return
        self.stats.busy_freezes += 1
        self._cancel_timer()

    def on_medium_idle(self, now: float) -> None:
        # duplicate _arm()'s cheap rejects: most idle transitions reach
        # a station with nothing to contend for, and the fan-out visits
        # every attached station per transmission
        if (
            self._in_exchange
            or self._head is None
            or self._slots_left is None
            or self._timer is not None
        ):
            return
        self._arm()

    def on_frame(self, frame: Frame, ok: bool, now: float) -> None:
        if not ok:
            return
        ftype = frame.ftype
        if ftype is FrameType.BEACON:
            self.nav.set(now + frame.nav_duration)
            if self._timer is not None:
                self._consume_elapsed_slots(now)
                self._cancel_timer()
        elif ftype is FrameType.CF_END:
            self.nav.clear(now)
            # medium idle callback follows the CF-End and re-arms us

    # -- transmission ------------------------------------------------------------
    def _backoff_complete(self) -> None:
        self._timer = None
        self._count_begin = None
        if self._slots_left:
            self.stats.idle_slots_observed += self._slots_left
            start = self._draw_value - self._slots_left
            self.policy.observe_span(start, self._draw_value, interrupted=False)
        self._slots_left = 0
        self._transmit()

    def _transmit(self) -> None:
        assert self._head is not None
        entry = self._head
        self._in_exchange = True
        self._slots_left = None
        self.stats.attempts += 1
        if (
            entry.frame.ftype is FrameType.DATA
            and entry.frame.payload_bits > self.rts_threshold
        ):
            self._send_rts(entry)
        else:
            self._send_data(entry)

    def _send_data(self, entry: _Entry) -> None:
        duration = entry.frame.airtime(self.timing)
        done = self.channel.transmit(entry.frame, duration, sender=self)
        done.add_callback(lambda ev: self._data_done(ev.value))

    # -- RTS/CTS handshake -------------------------------------------------
    def _send_rts(self, entry: _Entry) -> None:
        self.stats.rts_handshakes += 1
        rts = Frame(FrameType.RTS, src=entry.frame.src, dest=entry.frame.dest)
        done = self.channel.transmit(rts, rts.airtime(self.timing), sender=self)
        done.add_callback(lambda ev: self._rts_done(entry, ev.value))

    def _rts_done(self, entry: _Entry, outcome: TxOutcome) -> None:
        if outcome.ok:
            self.sim.call_in(self.timing.sifs, self._send_cts, entry)
        else:
            # no CTS will arrive; pay only the short CTS timeout
            self.sim.call_in(self._cts_timeout, self._resolve, False)

    def _send_cts(self, entry: _Entry) -> None:
        cts = Frame(FrameType.CTS, src=entry.frame.dest, dest=entry.frame.src)
        done = self.channel.transmit(cts, cts.airtime(self.timing), sender=self)

        def after(ev):
            if ev.value.ok:
                self.sim.call_in(self.timing.sifs, self._send_data, entry)
            else:
                self._resolve(False)

        done.add_callback(after)

    def _data_done(self, outcome: TxOutcome) -> None:
        entry = self._head
        assert entry is not None
        ftype = entry.frame.ftype
        needs_ack = ftype is FrameType.DATA or ftype is FrameType.REQUEST
        if not needs_ack:
            self._resolve(outcome.ok)
            return
        if outcome.ok:
            # Receiver ACKs after SIFS.  The engine puts the ACK on the
            # air itself (see module docstring).
            self.sim.call_in(self.timing.sifs, self._send_ack, entry)
        else:
            # No ACK will come; wait the ACK timeout, then recontend.
            self.sim.call_in(self._ack_timeout, self._resolve, False)

    def _send_ack(self, entry: _Entry) -> None:
        ack = Frame(FrameType.ACK, src=entry.frame.dest, dest=entry.frame.src)
        done = self.channel.transmit(ack, ack.airtime(self.timing), sender=self)
        done.add_callback(lambda ev: self._resolve(ev.value.ok))

    def _resolve(self, success: bool) -> None:
        entry = self._head
        assert entry is not None
        self._in_exchange = False
        self.policy.observe_outcome(success)
        if success:
            self.stats.successes += 1
            self._finish(entry, True)
            return
        self.stats.failures += 1
        self._stage += 1
        if self._stage >= self.retry_limit:
            self.stats.drops += 1
            self._finish(entry, False)
            return
        self._draw_backoff()
        self._arm()

    def _finish(self, entry: _Entry, success: bool) -> None:
        self._head = None
        self._stage = 0
        self._slots_left = None
        if entry.on_done is not None:
            entry.on_done(success)
        # Post-backoff: the next queued frame always contends afresh.
        if self._queue and self._head is None and not self._in_exchange:
            self._start_next(fresh_arrival=False)
