"""Deterministic fault injection for the simulated BSS.

The subsystem splits into a *description* layer and three *execution*
layers plus a soak harness:

* :mod:`repro.faults.plan` — :class:`FaultPlan` and its parts: the
  serializable description that rides inside a
  :class:`~repro.network.bss.ScenarioConfig` (and hence inside the
  execution subsystem's content-addressed cache keys);
* :mod:`repro.faults.gilbert` — the two-state Gilbert–Elliott bursty
  channel error model (drop-in for
  :class:`~repro.phy.error_model.BitErrorModel`);
* :mod:`repro.faults.injector` — frame-type-targeted loss (lose
  CF-Polls, ACKs, CF-End specifically);
* :mod:`repro.faults.stations` — scheduled station crash/freeze/recover
  faults;
* :mod:`repro.faults.chaos` — the ``python -m repro chaos`` soak
  harness: a grid of fault mixes through the sweep executor with the
  invariant monitors armed, summarized into a degradation report.

Every injector draws from its own seeded RNG stream (``faults/channel``,
``faults/frames``, ``faults/stations``) so faulted runs are bit-for-bit
reproducible and fault-free runs see exactly the seed's draw sequences.
"""

from .gilbert import GilbertElliottModel
from .injector import FrameLossInjector
from .plan import (
    FAULT_KINDS,
    FAULT_MODES,
    ApFault,
    FaultPlan,
    FrameLossRule,
    GilbertElliottParams,
    LinkFault,
    StationFault,
)
from .stations import StationFaultDriver

__all__ = [
    "FaultPlan",
    "GilbertElliottParams",
    "FrameLossRule",
    "StationFault",
    "LinkFault",
    "ApFault",
    "FAULT_MODES",
    "FAULT_KINDS",
    "GilbertElliottModel",
    "FrameLossInjector",
    "StationFaultDriver",
]
