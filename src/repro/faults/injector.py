"""Frame-type-targeted loss injection.

:class:`FrameLossInjector` hangs off the channel
(``Channel.fault_injector``): after the collision/BER verdict, each
surviving frame is checked against the plan's
:class:`~repro.faults.plan.FrameLossRule` list and corrupted with the
rule's probability.  This is how a chaos scenario loses CF-Polls, ACKs
or CF-Ends *specifically* — the control frames the paper's Theorems
quietly assume always arrive — without touching the data plane.

One rng draw happens per (matching, active) rule per frame, all from
the dedicated ``faults/frames`` stream, so injection is reproducible
and independent of the scenario's other randomness.
"""

from __future__ import annotations

import typing

import numpy as np

from .plan import FrameLossRule

__all__ = ["FrameLossInjector"]


class FrameLossInjector:
    """Corrupts frames by type according to a rule list."""

    def __init__(
        self,
        rules: typing.Sequence[FrameLossRule],
        rng: np.random.Generator,
    ) -> None:
        self.rules = tuple(rules)
        self._rng = rng
        #: frames corrupted, per frame-type value ("cf_poll", ...)
        self.injected: dict[str, int] = {}
        #: frames inspected (any rule matched its type, active or not)
        self.considered = 0
        #: optional :class:`repro.obs.trace.TraceRecorder` (``fault``)
        self.trace = None

    def corrupts(self, frame: typing.Any, now: float) -> bool:
        """Should ``frame`` (which survived BER/collision) be corrupted?"""
        ftype = getattr(frame, "ftype", None)
        value = getattr(ftype, "value", ftype)
        matched = False
        for rule in self.rules:
            if rule.ftype != value:
                continue
            matched = True
            if not rule.active(now):
                continue
            if rule.probability > 0.0 and self._rng.random() < rule.probability:
                self.injected[value] = self.injected.get(value, 0) + 1
                self.considered += 1
                if self.trace is not None:
                    self.trace.emit(
                        now, "fault", "frame_loss", ftype=value,
                        src=getattr(frame, "src", None),
                        dest=getattr(frame, "dest", None),
                    )
                return True
        if matched:
            self.considered += 1
        return False
