"""Chaos soak harness: fault-scenario grids -> degradation report.

``python -m repro chaos --tier {smoke,full}`` lands here.  A chaos
tier crosses the canonical evaluation point with a set of named
**fault mixes** — reproducible :class:`~repro.faults.plan.FaultPlan`
instances ranging from the empty plan (hardened semantics armed,
nothing injected) to combined bursty-channel + control-frame-loss +
station-churn storms.  The grid executes through
:class:`repro.exec.SweepExecutor` (parallel, content-address cached,
resumable) with the runtime invariant monitors armed, and the rows are
summarized into a JSON **degradation report**: which QoS budgets held
or broke under each mix, how many stations were evicted, how much
admitted bandwidth was reclaimed and later re-admitted.

The gate is deliberately asymmetric:

* **structural invariants** (clock, NAV, token discipline, CFP
  accounting) must hold under *every* mix — injected faults may
  degrade service, never break the protocol machinery;
* **QoS budgets** must hold only under the ``baseline`` mix (no
  injection); under injected loss a budget miss is expected
  degradation and is reported, not gated.

Exit-code contract (mirrors ``validate``): 0 = gates green, 1 = a
gate failed, 2 = grid points permanently failed to execute.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing

from ..exec import SweepExecutor
from ..experiments.config import sweep_config
from ..network.bss import ScenarioConfig
from .plan import FaultPlan, FrameLossRule, GilbertElliottParams, StationFault

__all__ = [
    "ChaosTierSpec",
    "CHAOS_TIERS",
    "fault_mix",
    "MIX_NAMES",
    "chaos_grid",
    "MixSummary",
    "ChaosReport",
    "run_chaos",
]


@dataclasses.dataclass(frozen=True)
class ChaosTierSpec:
    """One named chaos tier: evaluation points x fault mixes."""

    name: str
    description: str
    schemes: tuple[str, ...]
    loads: tuple[float, ...]
    seeds: tuple[int, ...]
    sim_time: float
    warmup: float
    mixes: tuple[str, ...]

    @property
    def grid_points(self) -> int:
        return (
            len(self.schemes) * len(self.loads) * len(self.seeds)
            * len(self.mixes)
        )


#: canonical mix order (render order of the report)
MIX_NAMES = (
    "baseline",
    "bursty-channel",
    "control-loss",
    "station-churn",
    "combined",
)

#: moderately bursty channel: ~9% of frames see the Bad state in bursts
#: of mean length 5; a 512-octet MPDU survives a Bad frame ~42% of the
#: time, so the long-run frame loss sits near 5%
_GE_MODERATE = GilbertElliottParams(
    p_good_to_bad=0.02, p_bad_to_good=0.2, ber_good=1e-6, ber_bad=2e-4
)


def _churn_schedule(
    sim_time: float, warmup: float, heavy: bool
) -> tuple[StationFault, ...]:
    """Freeze/crash/recover schedule spread over the measured window.

    Durations are sized well past the AP's missed-poll eviction horizon
    (a few hundred ms at the default K=6), so each fault exercises the
    full evict -> reclaim -> recover -> re-admit cycle; recoveries land
    with plenty of holding time left for the re-admission to happen.
    """
    span = sim_time - warmup
    faults = [
        StationFault(at=warmup + 0.15 * span, mode="freeze", duration=2.0),
        StationFault(at=warmup + 0.35 * span, mode="crash", duration=2.5),
        StationFault(
            at=warmup + 0.55 * span, mode="freeze", duration=2.0, kind="voice"
        ),
        StationFault(
            at=warmup + 0.70 * span, mode="crash", duration=2.0, kind="video"
        ),
    ]
    if heavy:
        faults += [
            StationFault(at=warmup + 0.25 * span, mode="freeze", duration=1.5),
            StationFault(at=warmup + 0.80 * span, mode="crash", duration=None),
        ]
    return tuple(faults)


def fault_mix(name: str, sim_time: float, warmup: float) -> FaultPlan:
    """Build the named mix's plan for a given simulation horizon."""
    if name == "baseline":
        return FaultPlan()
    if name == "bursty-channel":
        return FaultPlan(gilbert_elliott=_GE_MODERATE)
    if name == "control-loss":
        return FaultPlan(
            frame_loss=(
                FrameLossRule("cf_poll", 0.2),
                FrameLossRule("ack", 0.1),
                FrameLossRule("cf_end", 0.5),
            )
        )
    if name == "station-churn":
        return FaultPlan(
            station_faults=_churn_schedule(sim_time, warmup, heavy=True)
        )
    if name == "combined":
        return FaultPlan(
            gilbert_elliott=_GE_MODERATE,
            frame_loss=(
                FrameLossRule("cf_poll", 0.1),
                FrameLossRule("cf_end", 0.25),
            ),
            station_faults=_churn_schedule(sim_time, warmup, heavy=False),
        )
    raise ValueError(f"unknown fault mix {name!r}; available: {MIX_NAMES}")


CHAOS_TIERS: dict[str, ChaosTierSpec] = {
    "smoke": ChaosTierSpec(
        name="smoke",
        description=(
            "all five fault mixes on the proposed scheme at load 1, "
            "two seeds, sim_time=30; sized for CI (~2-3 min on 2 "
            "workers)"
        ),
        schemes=("proposed",),
        loads=(1.0,),
        seeds=(1, 2),
        sim_time=30.0,
        warmup=4.0,
        mixes=MIX_NAMES,
    ),
    "full": ChaosTierSpec(
        name="full",
        description=(
            "all fault mixes x all schemes x light/heavy load x three "
            "seeds at sim_time=60; release-grade soak"
        ),
        schemes=("proposed", "proposed-multipoll", "conventional"),
        loads=(0.5, 2.0),
        seeds=(1, 2, 3),
        sim_time=60.0,
        warmup=6.0,
        mixes=MIX_NAMES,
    ),
}


def _resolve(tier: str | ChaosTierSpec) -> ChaosTierSpec:
    if isinstance(tier, ChaosTierSpec):
        return tier
    try:
        return CHAOS_TIERS[tier]
    except KeyError:
        raise ValueError(
            f"unknown chaos tier {tier!r}; available: {sorted(CHAOS_TIERS)}"
        ) from None


def chaos_grid(
    tier: str | ChaosTierSpec,
) -> list[tuple[str, ScenarioConfig]]:
    """(mix name, config) pairs; configs carry plans + armed monitors."""
    spec = _resolve(tier)
    return [
        (
            mix,
            dataclasses.replace(
                sweep_config(scheme, load, seed, spec.sim_time, spec.warmup),
                monitor_invariants=True,
                faults=fault_mix(mix, spec.sim_time, spec.warmup),
            ),
        )
        for mix in spec.mixes
        for scheme in spec.schemes
        for load in spec.loads
        for seed in spec.seeds
    ]


_SUMMED_COUNTERS = (
    "poll_retries",
    "polls_lost",
    "ghost_polls",
    "unreachable_nulls",
    "cf_ends_lost",
    "evictions",
    "readmissions",
    "station_crashes",
    "station_freezes",
    "station_recoveries",
)


@dataclasses.dataclass(frozen=True)
class MixSummary:
    """Aggregated degradation of one fault mix across its grid rows."""

    name: str
    rows: int
    #: summed protocol/fault counters (see _SUMMED_COUNTERS)
    counters: dict[str, int]
    #: summed admitted airtime fraction returned by evictions
    reclaimed_bandwidth: float
    #: QoS budget misses across the mix's rows (expected degradation)
    qos_breaches: int
    #: worst single breach, as a multiple of its budget (0 = none)
    worst_breach_ratio: float
    #: structural invariant violations (must be zero, every mix)
    invariant_violations: int
    #: delivered / (delivered + lost) across real-time packets
    rt_delivery_ratio: float

    def as_dict(self) -> dict[str, typing.Any]:
        return dataclasses.asdict(self)


def _summarize_mix(name: str, rows: list[dict]) -> MixSummary:
    counters = {key: 0 for key in _SUMMED_COUNTERS}
    reclaimed = 0.0
    breaches = 0
    worst_ratio = 0.0
    violations = 0
    delivered = lost = 0
    for row in rows:
        violations += len(row.get("invariant_violations", ()))
        faults = row.get("faults") or {}
        for key in _SUMMED_COUNTERS:
            counters[key] += int(faults.get(key, 0))
        reclaimed += float(faults.get("reclaimed_bandwidth", 0.0))
        for breach in faults.get("qos_breaches", ()):
            breaches += 1
            budget = float(breach.get("budget", 0.0)) or 1.0
            worst_ratio = max(
                worst_ratio, float(breach.get("measured", 0.0)) / budget
            )
        for kind in ("voice", "video", "ho-voice", "ho-video"):
            delivered += int(row.get(f"{kind}_delivered", 0))
            lost += int(row.get(f"{kind}_losses", 0))
    total = delivered + lost
    return MixSummary(
        name=name,
        rows=len(rows),
        counters=counters,
        reclaimed_bandwidth=reclaimed,
        qos_breaches=breaches,
        worst_breach_ratio=worst_ratio,
        invariant_violations=violations,
        rt_delivery_ratio=delivered / total if total else 1.0,
    )


@dataclasses.dataclass(frozen=True)
class ChaosReport:
    """The degradation report of one chaos run."""

    tier: str
    mixes: tuple[MixSummary, ...]
    grid_rows: int
    telemetry: dict[str, typing.Any] = dataclasses.field(default_factory=dict)

    def _mix(self, name: str) -> MixSummary | None:
        for m in self.mixes:
            if m.name == name:
                return m
        return None

    @property
    def structural_clean(self) -> bool:
        """No mix broke a structural invariant."""
        return all(m.invariant_violations == 0 for m in self.mixes)

    @property
    def baseline_clean(self) -> bool:
        """The no-injection mix held every QoS budget (vacuously true
        when the tier does not run a baseline mix)."""
        base = self._mix("baseline")
        return base is None or base.qos_breaches == 0

    @property
    def passed(self) -> bool:
        return self.structural_clean and self.baseline_clean

    def to_dict(self) -> dict[str, typing.Any]:
        return {
            "tier": self.tier,
            "passed": self.passed,
            "structural_clean": self.structural_clean,
            "baseline_clean": self.baseline_clean,
            "grid_rows": self.grid_rows,
            "mixes": [m.as_dict() for m in self.mixes],
            "telemetry": self.telemetry,
        }

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write the JSON degradation report; returns the path."""
        p = pathlib.Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return p

    def render(self) -> str:
        """Human-readable per-mix degradation summary."""
        lines = [
            f"chaos tier '{self.tier}': "
            f"{'PASSED' if self.passed else 'FAILED'}"
            f" (structural {'clean' if self.structural_clean else 'BROKEN'},"
            f" baseline QoS "
            f"{'held' if self.baseline_clean else 'BREACHED'})"
        ]
        for m in self.mixes:
            c = m.counters
            lines.append(
                f"  [{m.name}] rows={m.rows} "
                f"rt-delivery={m.rt_delivery_ratio:.3f} "
                f"qos-breaches={m.qos_breaches} "
                f"invariants={m.invariant_violations}"
            )
            lines.append(
                f"      polls: {c['poll_retries']} retried, "
                f"{c['polls_lost']} lost, {c['ghost_polls']} ghost, "
                f"{c['unreachable_nulls']} unreachable; "
                f"cf-ends lost: {c['cf_ends_lost']}"
            )
            lines.append(
                f"      stations: {c['station_crashes']} crashed, "
                f"{c['station_freezes']} frozen, "
                f"{c['station_recoveries']} recovered; "
                f"evicted {c['evictions']} "
                f"(reclaimed {m.reclaimed_bandwidth:.4f} airtime), "
                f"re-admitted {c['readmissions']}"
            )
        return "\n".join(lines)


def run_chaos(
    tier: str | ChaosTierSpec,
    *,
    executor: SweepExecutor | None = None,
) -> ChaosReport:
    """Execute one chaos tier end to end.

    Parameters
    ----------
    tier:
        A name from :data:`CHAOS_TIERS` or a custom spec.
    executor:
        Pre-configured sweep executor (workers/cache/journal); a
        serial uncached one is built when omitted.
    """
    spec = _resolve(tier)
    pairs = chaos_grid(spec)
    if executor is None:
        executor = SweepExecutor()
    rows = executor.run([cfg for _, cfg in pairs])
    # the executor returns rows in input order: pair them positionally
    by_mix: dict[str, list[dict]] = {name: [] for name in spec.mixes}
    for (mix, _), row in zip(pairs, rows):
        by_mix[mix].append(row)
    summaries = tuple(
        _summarize_mix(name, by_mix[name]) for name in spec.mixes
    )
    return ChaosReport(
        tier=spec.name,
        mixes=summaries,
        grid_rows=len(rows),
        telemetry=executor.summary(),
    )
