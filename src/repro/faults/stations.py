"""Scheduled station crash/freeze/recover faults.

:class:`StationFaultDriver` executes a plan's
:class:`~repro.faults.plan.StationFault` schedule against one BSS: at
each fault's time it picks a currently-reachable admitted real-time
terminal (via the seeded ``faults/stations`` stream, so the victim is
reproducible), takes its radio down through
:meth:`~repro.mac.station.RealTimeStation.fault`, and — for bounded
faults — brings it back with
:meth:`~repro.mac.station.RealTimeStation.fault_cleared` after the
fault's duration.

The *protocol's* reaction (bounded re-poll, eviction after K missed
polls, bandwidth reclamation, re-admission on recovery) lives in the
mac/core layers; this driver only turns radios off and on.
"""

from __future__ import annotations

import typing

import numpy as np

from ..mac.station import RealTimeStation
from ..sim.engine import Simulator
from ..traffic.base import TrafficKind
from .plan import StationFault

__all__ = ["StationFaultDriver"]

_KIND_FILTER = {
    "voice": TrafficKind.VOICE,
    "video": TrafficKind.VIDEO,
}


class StationFaultDriver:
    """Applies a station-fault schedule to a running scenario.

    Parameters
    ----------
    sim:
        Scenario simulator (fault times run on its clock).
    stations:
        The AP's live station registry (id -> station); consulted at
        fire time so only stations that still exist are hit.
    faults:
        The schedule from the :class:`~repro.faults.plan.FaultPlan`.
    rng:
        Seeded generator used only for victim selection.
    """

    def __init__(
        self,
        sim: Simulator,
        stations: typing.Mapping[str, RealTimeStation],
        faults: typing.Sequence[StationFault],
        rng: np.random.Generator,
    ) -> None:
        self.sim = sim
        self.stations = stations
        self._rng = rng
        #: (time, station_id, mode) per fault actually applied
        self.applied: list[tuple[float, str, str]] = []
        self.crashes = 0
        self.freezes = 0
        self.recoveries = 0
        #: faults that found no eligible victim when they fired
        self.skipped = 0
        #: optional :class:`repro.obs.trace.TraceRecorder` (``fault``)
        self.trace = None
        for fault in faults:
            sim.call_at(fault.at, self._fire, fault)

    # -- firing ------------------------------------------------------------
    def _candidates(self, kind: str) -> list[RealTimeStation]:
        want = _KIND_FILTER.get(kind)
        out = [
            st
            for sid, st in sorted(self.stations.items())
            if st.admitted
            and not st.radio_down
            and not st.eof
            and (want is None or st.kind == want)
        ]
        return out

    def _fire(self, fault: StationFault) -> None:
        candidates = self._candidates(fault.kind)
        if not candidates:
            self.skipped += 1
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now, "fault", "skip",
                    mode=fault.mode, kind=fault.kind,
                )
            return
        victim = candidates[int(self._rng.integers(len(candidates)))]
        crash = fault.mode == "crash"
        victim.fault(crash=crash)
        if crash:
            self.crashes += 1
        else:
            self.freezes += 1
        self.applied.append((self.sim.now, victim.station_id, fault.mode))
        if self.trace is not None:
            self.trace.emit(
                self.sim.now, "fault", fault.mode,
                station=victim.station_id,
                duration=fault.duration,
            )
        if fault.duration is not None:
            self.sim.call_in(fault.duration, self._recover, victim)

    def _recover(self, station: RealTimeStation) -> None:
        # the call may have torn down (or ended) while the radio was out
        if station.eof or station.station_id not in self.stations:
            return
        station.fault_cleared()
        self.recoveries += 1
        if self.trace is not None:
            self.trace.emit(
                self.sim.now, "fault", "recovery", station=station.station_id
            )
