"""Two-state Gilbert–Elliott bursty channel error model.

A drop-in alternative to :class:`~repro.phy.error_model.BitErrorModel`
(same ``success_probability`` / ``frame_survives`` interface the
:class:`~repro.phy.channel.Channel` consumes): the channel alternates
between a **Good** and a **Bad** state, each with its own BER, and a
frame's survival is sampled against the state it was transmitted in.
The state chain advances one step per frame, so loss comes in *bursts*
(mean bad-burst length ``1/p_bad_to_good`` frames) instead of the seed
model's i.i.d. corruption — the regime the 802.11 QoS surveys stress
that delay/jitter guarantees must be evaluated under.

All draws come from one dedicated seeded RNG stream, so a faulted run
stays bit-for-bit reproducible and cache-keyable.
"""

from __future__ import annotations

import numpy as np

from .plan import GilbertElliottParams

__all__ = ["GilbertElliottModel"]


class GilbertElliottModel:
    """Bursty frame corruption (see module docstring).

    Parameters
    ----------
    params:
        Transition probabilities and per-state BERs.
    rng:
        Numpy generator for state transitions and survival draws.
    start_bad:
        Initial state (default Good, matching a freshly idle channel).
    """

    def __init__(
        self,
        params: GilbertElliottParams,
        rng: np.random.Generator,
        start_bad: bool = False,
    ) -> None:
        self.params = params
        self._rng = rng
        self.bad = bool(start_bad)
        #: frames sampled / frames sampled while Bad (for telemetry)
        self.frames_seen = 0
        self.frames_in_bad = 0

    @property
    def ber(self) -> float:
        """Current-state BER (mirrors ``BitErrorModel.ber``)."""
        return self.params.ber_bad if self.bad else self.params.ber_good

    def success_probability(self, frame_bits: int) -> float:
        """``(1 - BER_state)^L`` in the *current* state."""
        if frame_bits < 0:
            raise ValueError(f"negative frame size {frame_bits}")
        ber = self.ber
        if ber == 0.0:
            return 1.0
        return (1.0 - ber) ** frame_bits

    def expected_loss_rate(self, frame_bits: int) -> float:
        """Stationary long-run frame-loss rate for ``L``-bit frames.

        ``pi_bad * (1 - (1-ber_bad)^L) + pi_good * (1 - (1-ber_good)^L)``
        — what the property tests check the sampled rate against.
        """
        if frame_bits < 0:
            raise ValueError(f"negative frame size {frame_bits}")
        p = self.params
        pi_bad = p.stationary_bad
        loss_good = 1.0 - (1.0 - p.ber_good) ** frame_bits
        loss_bad = 1.0 - (1.0 - p.ber_bad) ** frame_bits
        return pi_bad * loss_bad + (1.0 - pi_bad) * loss_good

    def frame_survives(self, frame_bits: int) -> bool:
        """Advance the state chain one step, then sample survival."""
        p = self.params
        if self.bad:
            if self._rng.random() < p.p_bad_to_good:
                self.bad = False
        else:
            if self._rng.random() < p.p_good_to_bad:
                self.bad = True
        self.frames_seen += 1
        if self.bad:
            self.frames_in_bad += 1
        prob = self.success_probability(frame_bits)
        if prob >= 1.0:
            return True
        return bool(self._rng.random() < prob)
