"""The serializable description of what a run injects: :class:`FaultPlan`.

A fault plan rides inside :class:`~repro.network.bss.ScenarioConfig`
(its ``faults`` field), so it is part of a simulation point's identity:
two runs with different plans hash to different
:func:`~repro.exec.hashing.config_key` addresses, and a plan-free run
keys (and behaves) exactly like the seed's fault-free scenarios.

Three injector families, all optional:

* **channel** — replace the i.i.d. ``(1-BER)^L`` error model with the
  two-state Gilbert–Elliott bursty model
  (:class:`~repro.faults.gilbert.GilbertElliottModel`);
* **frames** — corrupt specific frame *types* with a target
  probability, optionally inside a time window
  (:class:`~repro.faults.injector.FrameLossInjector`) — lose CF-Polls,
  ACKs or CF-Ends specifically;
* **stations** — crash or freeze admitted real-time terminals on a
  schedule (:class:`~repro.faults.stations.StationFaultDriver`).

Attaching *any* plan — even an empty ``FaultPlan()`` — arms the
hardened protocol semantics (strict CF-End delivery with NAV-expiry
fallback); see ``network/bss.py``.  Fault-free configs (``faults is
None``) keep the seed's idealizations so the golden quickstart row and
every shape claim reproduce byte-identically.
"""

from __future__ import annotations

import dataclasses
import typing

__all__ = [
    "GilbertElliottParams",
    "FrameLossRule",
    "StationFault",
    "LinkFault",
    "ApFault",
    "FaultPlan",
    "FAULT_MODES",
    "FAULT_KINDS",
]

#: station fault modes: ``crash`` loses the buffer (device reboot),
#: ``freeze`` keeps it (radio mute; packets queue and expire in place)
FAULT_MODES = ("crash", "freeze")

#: station targeting filters
FAULT_KINDS = ("any", "voice", "video")


@dataclasses.dataclass(frozen=True)
class GilbertElliottParams:
    """Two-state bursty channel: Good/Bad with per-state BER.

    The state chain advances one step per frame; the stationary bad
    probability is ``p_good_to_bad / (p_good_to_bad + p_bad_to_good)``.
    """

    p_good_to_bad: float
    p_bad_to_good: float
    ber_good: float = 0.0
    ber_bad: float = 1e-3

    def __post_init__(self) -> None:
        for name in ("p_good_to_bad", "p_bad_to_good"):
            p = getattr(self, name)
            if not 0.0 < p <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {p}")
        for name in ("ber_good", "ber_bad"):
            b = getattr(self, name)
            if not 0.0 <= b < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {b}")

    @property
    def stationary_bad(self) -> float:
        """Long-run fraction of frames seeing the Bad state."""
        return self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)


@dataclasses.dataclass(frozen=True)
class FrameLossRule:
    """Corrupt frames of one type with probability ``probability``.

    ``ftype`` is a :class:`~repro.mac.frames.FrameType` value string
    (``"cf_poll"``, ``"ack"``, ``"cf_end"``, ...).  The rule applies
    from ``start`` until ``end`` (``None`` = forever).
    """

    ftype: str
    probability: float
    start: float = 0.0
    end: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.start < 0.0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.end is not None and self.end <= self.start:
            raise ValueError(
                f"need end > start, got [{self.start}, {self.end})"
            )

    def active(self, now: float) -> bool:
        return self.start <= now and (self.end is None or now < self.end)


@dataclasses.dataclass(frozen=True)
class StationFault:
    """One scheduled station fault.

    At time ``at`` the driver picks one currently-reachable admitted
    real-time station (filtered by ``kind``, chosen via the seeded
    fault RNG stream) and takes its radio down.  ``duration`` seconds
    later it recovers and rejoins; ``duration=None`` means the station
    never comes back (the call eventually ends upstream).
    """

    at: float
    mode: str = "freeze"
    duration: float | None = None
    kind: str = "any"

    def __post_init__(self) -> None:
        if self.at < 0.0:
            raise ValueError(f"at must be >= 0, got {self.at}")
        if self.mode not in FAULT_MODES:
            raise ValueError(
                f"mode must be one of {FAULT_MODES}, got {self.mode!r}"
            )
        if self.duration is not None and self.duration <= 0.0:
            raise ValueError(
                f"duration must be > 0 or None, got {self.duration}"
            )
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )


@dataclasses.dataclass(frozen=True)
class LinkFault:
    """One backhaul-link outage window in an ESS topology.

    ``a`` and ``b`` name the APs the faulted link connects (order is
    irrelevant — the link is undirected).  The link is down from
    ``start`` until ``end`` (``None`` = for the rest of the run).
    While it is down, handoff signalling that would cross it fails
    over to the node-disjoint alternate path
    (:class:`~repro.ess.routing.BackhaulRouter`); consumed by the ESS
    coordinator, not by the single-BSS injectors above.
    """

    a: str
    b: str
    start: float = 0.0
    end: float | None = None

    def __post_init__(self) -> None:
        if not self.a or not self.b:
            raise ValueError("link endpoints must be non-empty AP ids")
        if self.a == self.b:
            raise ValueError(f"link endpoints must differ, got {self.a!r}")
        if self.start < 0.0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.end is not None and self.end <= self.start:
            raise ValueError(
                f"need end > start, got [{self.start}, {self.end})"
            )

    def key(self) -> tuple[str, str]:
        """Canonical undirected link identity."""
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)

    def active_during(self, t0: float, t1: float) -> bool:
        """Does the outage overlap the ``[t0, t1)`` window?"""
        return self.start < t1 and (self.end is None or self.end > t0)


@dataclasses.dataclass(frozen=True)
class ApFault:
    """One whole-AP outage window in an ESS topology.

    ``ap`` names the access point that goes dark.  The AP is down from
    ``start`` until ``end`` (``None`` = for the rest of the run).
    While it is down its microcell sheds resident calls, refuses new
    admissions and inbound handoffs (all ledgered, never raised), and
    the backhaul router treats every path through the AP as unhealthy —
    traffic between healthy APs fails over to the node-disjoint
    alternate exactly as under a :class:`LinkFault`.  Windows are
    honoured at epoch granularity (same convention as link faults).
    """

    ap: str
    start: float = 0.0
    end: float | None = None

    def __post_init__(self) -> None:
        if not self.ap:
            raise ValueError("ap must be a non-empty AP id")
        if self.start < 0.0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.end is not None and self.end <= self.start:
            raise ValueError(
                f"need end > start, got [{self.start}, {self.end})"
            )

    def active_during(self, t0: float, t1: float) -> bool:
        """Does the outage overlap the ``[t0, t1)`` window?"""
        return self.start < t1 and (self.end is None or self.end > t0)


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """Everything one run injects (see module docstring)."""

    gilbert_elliott: GilbertElliottParams | None = None
    frame_loss: tuple[FrameLossRule, ...] = ()
    station_faults: tuple[StationFault, ...] = ()

    def __post_init__(self) -> None:
        # tolerate lists from hand-written configs
        if not isinstance(self.frame_loss, tuple):
            object.__setattr__(self, "frame_loss", tuple(self.frame_loss))
        if not isinstance(self.station_faults, tuple):
            object.__setattr__(
                self, "station_faults", tuple(self.station_faults)
            )

    @property
    def injects_anything(self) -> bool:
        """False for the empty plan (hardening armed, nothing injected)."""
        return bool(
            self.gilbert_elliott or self.frame_loss or self.station_faults
        )

    # -- serialization (JSON round-trip safe, cache-key canonical) --------
    def to_dict(self) -> dict[str, typing.Any]:
        return {
            "gilbert_elliott": (
                dataclasses.asdict(self.gilbert_elliott)
                if self.gilbert_elliott is not None
                else None
            ),
            "frame_loss": [dataclasses.asdict(r) for r in self.frame_loss],
            "station_faults": [
                dataclasses.asdict(f) for f in self.station_faults
            ],
        }

    @classmethod
    def from_dict(cls, data: typing.Mapping[str, typing.Any]) -> "FaultPlan":
        ge = data.get("gilbert_elliott")
        return cls(
            gilbert_elliott=(
                GilbertElliottParams(**ge) if isinstance(ge, typing.Mapping)
                else ge
            ),
            frame_loss=tuple(
                r if isinstance(r, FrameLossRule) else FrameLossRule(**r)
                for r in data.get("frame_loss", ())
            ),
            station_faults=tuple(
                f if isinstance(f, StationFault) else StationFault(**f)
                for f in data.get("station_faults", ())
            ),
        )
