"""Generator-coroutine processes on top of the event kernel.

A *process* wraps a Python generator.  The generator models activity by
yielding things it wants to wait on:

* a number — sleep that many time units;
* an :class:`~repro.sim.events.Event` — wait for it (its value is sent
  back in; a failed event raises inside the generator);
* another :class:`Process` — join it (the target's return value is sent
  back in).

Processes are themselves events: they trigger when the generator
returns (value = ``StopIteration`` value) or raises.  They can be
interrupted asynchronously with :meth:`Process.interrupt`, which raises
:class:`Interrupt` at the current yield point.
"""

from __future__ import annotations

import typing

from .events import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from .engine import Simulator

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Raised inside a process generator by :meth:`Process.interrupt`.

    Attributes
    ----------
    cause:
        Arbitrary object passed by the interrupter.
    """

    def __init__(self, cause: typing.Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running generator coroutine; also an event that fires on exit."""

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(
        self,
        sim: "Simulator",
        generator: typing.Generator,
        name: str | None = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick-start at the current instant (through the agenda so that
        # creation order, not call stack depth, decides ordering).
        start = Event(sim)
        start.succeed(None)
        self._waiting_on = start
        start.add_callback(self._resume)

    # -- public API --------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not exited."""
        return not self.triggered

    def interrupt(self, cause: typing.Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its yield point.

        Interrupting a dead process raises ``RuntimeError``.  The
        interrupt is delivered immediately (synchronously): by the time
        this returns the generator has run to its next yield.
        """
        if not self.is_alive:
            raise RuntimeError(f"cannot interrupt dead process {self.name!r}")
        # Detach from the current wait so its eventual firing is ignored
        # by _resume's staleness check, then deliver the interrupt.
        self._waiting_on = None
        self._step(Interrupt(cause))

    # -- driving the generator -----------------------------------------------
    def _resume(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wake-up from an interrupted wait
        self._waiting_on = None
        if event._ok:
            value = event._value
            if event._pooled:
                # engine-recycled numeric-yield timeout: its fire is
                # consumed, nothing else can reach it — free-list it
                # before stepping so the next numeric yield can reuse it
                self.sim._release_timeout(event)  # type: ignore[arg-type]
            self._step(value)
        else:
            self._step(event._value, throw=True)

    def _step(self, value: typing.Any, throw: bool = False) -> None:
        try:
            if isinstance(value, Interrupt):
                target = self._generator.throw(value)
            elif throw:
                target = self._generator.throw(value)
            else:
                target = self._generator.send(value)
        except StopIteration as exc:
            self.succeed(exc.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        self._wait_on(target)

    def _wait_on(self, target: typing.Any) -> None:
        if isinstance(target, Event):
            event = target
        elif isinstance(target, (int, float)):
            event = self.sim._acquire_timeout(target)
        else:
            err = TypeError(
                f"process {self.name!r} yielded unwaitable {target!r}; "
                "yield an Event, Process, or a numeric delay"
            )
            self._step(err, throw=True)
            return
        self._waiting_on = event
        event.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.is_alive else "dead"
        return f"<Process {self.name!r} {state}>"
