"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot synchronization point.  It starts
*pending*, is *triggered* exactly once (either :meth:`Event.succeed` or
:meth:`Event.fail`), and then delivers its value (or raises its
exception) to every registered callback when the simulator processes it.

Processes (see :mod:`repro.sim.process`) wait on events by yielding
them; plain callbacks may also be attached for callback-style models.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Simulator

__all__ = [
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "EventAlreadyTriggered",
]


class EventAlreadyTriggered(RuntimeError):
    """Raised when succeed/fail is called on a non-pending event."""


PENDING = "pending"
TRIGGERED = "triggered"
PROCESSED = "processed"


class Event:
    """A one-shot occurrence inside a :class:`~repro.sim.engine.Simulator`.

    Parameters
    ----------
    sim:
        Owning simulator.  The event schedules itself on the simulator's
        agenda when triggered.

    Notes
    -----
    Events follow the SimPy state machine: ``pending`` → ``triggered``
    (value is known, sits on the agenda) → ``processed`` (callbacks have
    run).  Triggering is immediate from the caller's point of view but
    callbacks run at the *current simulation time* through the agenda,
    which keeps event ordering deterministic.
    """

    __slots__ = ("sim", "callbacks", "_state", "_value", "_ok")

    #: events are never cancellable — the class-level flag lets the
    #: engine's agenda loop test ``item.cancelled`` uniformly on timers
    #: and events without an ``isinstance`` dispatch
    cancelled = False
    #: True only on engine-recycled Timeouts (see Process._wait_on)
    _pooled = False

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        pool = sim._cb_pool
        self.callbacks: list[typing.Callable[["Event"], None]] | None = (
            pool.pop() if pool else []
        )
        self._state = PENDING
        self._value: typing.Any = None
        self._ok = True

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (may not yet be processed)."""
        return self._state != PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> typing.Any:
        """The event's value; raises if the event failed or is pending."""
        if self._state == PENDING:
            raise RuntimeError("value of a pending event is not available")
        if not self._ok:
            raise self._value
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: typing.Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        self.sim._enqueue_triggered(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to be raised in waiters."""
        if self._state != PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = TRIGGERED
        self.sim._enqueue_triggered(self)
        return self

    def trigger(self, other: "Event") -> None:
        """Copy the outcome of an already-triggered ``other`` event."""
        if not other.triggered:
            raise RuntimeError("cannot mirror a pending event")
        if other._ok:
            self.succeed(other._value)
        else:
            self.fail(other._value)

    # -- callbacks ---------------------------------------------------------
    def add_callback(self, fn: typing.Callable[["Event"], None]) -> None:
        """Register ``fn(event)`` to run when the event is processed.

        If the event was already processed, the callback runs
        immediately (still at the current simulation time).
        """
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def _process(self) -> None:
        """Run callbacks.  Called by the simulator core only."""
        callbacks, self.callbacks = self.callbacks, None
        self._state = PROCESSED
        if callbacks is None:
            return
        if callbacks:
            for fn in callbacks:
                fn(self)
            callbacks.clear()
        # the detached list is dead — recycle it for the next event
        pool = self.sim._cb_pool
        if len(pool) < 256:
            pool.append(callbacks)

    #: the engine's uniform dispatch slot: firing an event means running
    #: its callbacks (timers alias ``_fire`` to their callback instead)
    _fire = _process

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} state={self._state} ok={self._ok}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` time units from *now*.

    Parameters
    ----------
    sim:
        Owning simulator.
    delay:
        Non-negative delay in simulation time units.
    value:
        Value delivered to waiters (defaults to ``None``).
    priority:
        Tie-break priority among events scheduled for the same instant;
        lower fires first.
    """

    __slots__ = ("delay", "_pooled")

    def __init__(
        self,
        sim: "Simulator",
        delay: float,
        value: typing.Any = None,
        priority: int = 0,
    ) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._pooled = False
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        sim._enqueue_at(sim.now + delay, priority, self)

    def _reinit(self, delay: float) -> None:
        """Re-arm a recycled engine-private timeout (free-list path).

        Only :class:`~repro.sim.process.Process` numeric yields recycle
        Timeouts, and only after the waiting process consumed the fire —
        nothing else can hold a reference, so resetting in place is
        unobservable.  User-created timeouts are never recycled.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        sim = self.sim
        pool = sim._cb_pool
        self.callbacks = pool.pop() if pool else []
        self._state = TRIGGERED
        self._ok = True
        self._value = None
        self.delay = delay
        sim._enqueue_at(sim._now + delay, 0, self)


class _Condition(Event):
    """Common machinery for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("_events", "_pending_count")

    def __init__(self, sim: "Simulator", events: typing.Iterable[Event]) -> None:
        super().__init__(sim)
        self._events = tuple(events)
        for ev in self._events:
            if ev.sim is not sim:
                raise ValueError("all events must belong to the same simulator")
        self._pending_count = sum(1 for ev in self._events if not ev.processed)
        if self._satisfied():
            # Already satisfiable at construction time.
            self.succeed(self._collect())
        else:
            for ev in self._events:
                if not ev.processed:
                    ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev._ok:
            self.fail(ev._value)
            return
        self._pending_count -= 1
        if self._satisfied():
            self.succeed(self._collect())

    def _collect(self) -> dict[Event, typing.Any]:
        return {ev: ev._value for ev in self._events if ev.processed and ev._ok}

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Succeeds as soon as any child event is processed successfully."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._pending_count < len(self._events) or not self._events


class AllOf(_Condition):
    """Succeeds once every child event has been processed successfully."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._pending_count == 0
