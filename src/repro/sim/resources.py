"""Shared-resource primitives: FIFO resources and object stores.

These are thin, deterministic queueing helpers used by the MAC layer
(e.g. per-station transmit queues) and by examples/tests.  They follow
the usual DES semantics: ``request``/``get``/``put`` return events that
a process yields on.
"""

from __future__ import annotations

import collections
import typing

from .engine import Simulator
from .events import Event

__all__ = ["Resource", "Store"]


class _Request(Event):
    """Pending claim on a :class:`Resource`; release through the resource."""

    __slots__ = ()


class Resource:
    """A capacity-limited resource with FIFO granting.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Number of simultaneous holders (>= 1).
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._queue: collections.deque[_Request] = collections.deque()
        self._users: set[_Request] = set()

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self._users)

    @property
    def queued(self) -> int:
        """Number of waiting requests."""
        return len(self._queue)

    def request(self) -> Event:
        """Claim one unit; the returned event fires when granted."""
        req = _Request(self.sim)
        self._queue.append(req)
        self._grant()
        return req

    def release(self, request: Event) -> None:
        """Return a previously granted unit."""
        try:
            self._users.remove(request)  # type: ignore[arg-type]
        except KeyError:
            raise RuntimeError("release() of a request that is not held") from None
        self._grant()

    def _grant(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            req = self._queue.popleft()
            self._users.add(req)
            req.succeed(req)


class Store:
    """An unbounded-or-bounded FIFO buffer of arbitrary items.

    ``put`` blocks when the store is full (if ``capacity`` is finite);
    ``get`` blocks when it is empty.  Items come out in insertion order.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.items: collections.deque[typing.Any] = collections.deque()
        self._getters: collections.deque[Event] = collections.deque()
        self._putters: collections.deque[tuple[Event, typing.Any]] = collections.deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: typing.Any) -> Event:
        """Insert ``item``; the returned event fires once accepted."""
        ev = Event(self.sim)
        self._putters.append((ev, item))
        self._settle()
        return ev

    def get(self) -> Event:
        """Remove the oldest item; the returned event carries it."""
        ev = Event(self.sim)
        self._getters.append(ev)
        self._settle()
        return ev

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self.items) < self.capacity:
                ev, item = self._putters.popleft()
                self.items.append(item)
                ev.succeed(None)
                progressed = True
            while self._getters and self.items:
                ev = self._getters.popleft()
                ev.succeed(self.items.popleft())
                progressed = True
