"""Discrete-event simulation kernel (substrate).

The paper's evaluation was built on the commercial Simscript II.5 tool;
this package is the from-scratch replacement: a deterministic
process-oriented DES kernel with events, timers, interrupts, resources,
named random streams and instrumentation.
"""

from .engine import Simulator, StopSimulation, TimerHandle
from .events import AllOf, AnyOf, Event, EventAlreadyTriggered, Timeout
from .monitor import TimeSeries, TimeWeighted, Trace
from .process import Interrupt, Process
from .resources import Resource, Store
from .rng import RandomStreams

__all__ = [
    "Simulator",
    "StopSimulation",
    "TimerHandle",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "EventAlreadyTriggered",
    "Process",
    "Interrupt",
    "Resource",
    "Store",
    "RandomStreams",
    "TimeSeries",
    "TimeWeighted",
    "Trace",
]
