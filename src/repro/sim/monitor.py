"""Lightweight instrumentation: time series, tallies and trace hooks."""

from __future__ import annotations

import typing

__all__ = ["TimeSeries", "TimeWeighted", "Trace"]


class TimeSeries:
    """Append-only ``(time, value)`` record with array export."""

    __slots__ = ("times", "values")

    def __init__(self) -> None:
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        """Append an observation (times must be non-decreasing)."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time going backwards: {time} < {self.times[-1]}"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> typing.Iterator[tuple[float, float]]:
        return iter(zip(self.times, self.values))


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal.

    Typical use: channel occupancy, queue length.  Call
    :meth:`update` whenever the signal changes; :meth:`average`
    integrates up to the query time.
    """

    __slots__ = ("_last_time", "_last_value", "_area", "_start")

    def __init__(self, start_time: float = 0.0, initial: float = 0.0) -> None:
        self._start = start_time
        self._last_time = start_time
        self._last_value = initial
        self._area = 0.0

    def update(self, time: float, value: float) -> None:
        """Record that the signal takes ``value`` from ``time`` onwards."""
        if time < self._last_time:
            raise ValueError(f"time going backwards: {time} < {self._last_time}")
        self._area += self._last_value * (time - self._last_time)
        self._last_time = time
        self._last_value = value

    def average(self, now: float) -> float:
        """Time-weighted mean over ``[start, now]``."""
        span = now - self._start
        if span <= 0:
            return self._last_value
        area = self._area + self._last_value * (now - self._last_time)
        return area / span

    @property
    def current(self) -> float:
        return self._last_value


class Trace:
    """Optional structured event trace (disabled by default; zero cost off)."""

    __slots__ = ("enabled", "records", "filters")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.records: list[tuple[float, str, dict]] = []
        self.filters: set[str] | None = None

    def log(self, time: float, kind: str, **fields: typing.Any) -> None:
        """Record a trace entry if tracing is on (and kind passes filter)."""
        if not self.enabled:
            return
        if self.filters is not None and kind not in self.filters:
            return
        self.records.append((time, kind, fields))

    def of_kind(self, kind: str) -> list[tuple[float, dict]]:
        """All records of one kind, as ``(time, fields)`` pairs."""
        return [(t, f) for (t, k, f) in self.records if k == kind]
