"""Reproducible named random-number streams.

Every stochastic component of the simulation (each traffic source, the
channel error model, the call generator, ...) draws from its *own*
stream, derived deterministically from a single master seed and the
stream's name.  This gives two properties the experiments rely on:

* **bit-for-bit reproducibility** of a whole run from one integer seed;
* **variance isolation** — adding a new random component does not shift
  the draws seen by existing ones, so paired comparisons between the
  proposed scheme and the baseline use identical arrival sequences
  (common random numbers).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """Factory of independent, name-keyed :class:`numpy.random.Generator` s.

    Parameters
    ----------
    master_seed:
        Non-negative integer seeding the whole family.

    Examples
    --------
    >>> streams = RandomStreams(7)
    >>> a = streams.get("voice/3")
    >>> b = streams.get("voice/3")
    >>> a is b
    True
    >>> float(a.random()) == float(RandomStreams(7).get("voice/3").random())
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        if master_seed < 0:
            raise ValueError(f"master_seed must be >= 0, got {master_seed}")
        self.master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def _seed_for(self, name: str) -> int:
        digest = hashlib.sha256(
            f"{self.master_seed}:{name}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "little")

    def get(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.Generator(np.random.PCG64(self._seed_for(name)))
            self._streams[name] = gen
        return gen

    def fork(self, sub_seed: int) -> "RandomStreams":
        """Derive a related but independent family (for replications)."""
        return RandomStreams(self._seed_for(f"fork/{sub_seed}") % (2**63))

    def __contains__(self, name: str) -> bool:
        return name in self._streams
