"""The discrete-event simulation core.

:class:`Simulator` owns the clock and the agenda (a binary heap of
triggered events keyed by ``(time, priority, sequence)``).  It offers
three styles of modelling, all interoperable:

* **timer callbacks** — ``sim.call_at(t, fn)`` / ``sim.call_in(dt, fn)``;
* **events** — create an :class:`~repro.sim.events.Event` and trigger it;
* **processes** — generator coroutines spawned via :meth:`Simulator.process`.

Determinism: two events scheduled for the same instant fire in
``(priority, insertion order)`` — there is no reliance on hash order or
wall-clock anywhere, so a run is exactly reproducible from its seed.

Hot-path layout (see DESIGN.md "Performance"):

* :meth:`Simulator.run` inlines the agenda loop — ``heappop`` is bound
  to a local, dispatch goes through the uniform ``_fire`` slot every
  agenda item carries (no ``isinstance``), and consecutive entries at
  the same timestamp are batched past the deadline/clock bookkeeping.
* Cancelled :class:`TimerHandle` *tombstones* are counted as they are
  created; once they outnumber the live half of the heap the agenda is
  compacted in place.  Tombstones are never dispatched and never count
  toward :attr:`Simulator.events_processed` — only live fires do.
* When an observer hook is attached (``step_observer`` for the
  validation monitors, ``profiler`` for :class:`~repro.obs.profiler.
  EngineProfiler`) the loop drops to an instrumented path with
  identical semantics; a detached simulator pays nothing for either.
"""

from __future__ import annotations

import heapq
import typing

from .events import Event, Timeout
from .process import Process

__all__ = ["Simulator", "StopSimulation", "TimerHandle", "SlabAgenda"]

#: a heap must hold at least this many cancelled entries before a
#: tombstone compaction can trigger (tiny heaps are cheaper to drain)
_COMPACT_MIN_TOMBSTONES = 16

#: upper bound on the pooled callback lists / recycled Timeouts kept
#: per simulator (see DESIGN.md "Performance" for reuse rules)
_FREELIST_CAP = 256


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` early."""


class TimerHandle:
    """Cancellable handle returned by :meth:`Simulator.call_at`."""

    __slots__ = ("time", "_fn", "_args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        fn: typing.Callable,
        args: tuple,
        sim: "Simulator | None" = None,
    ) -> None:
        self.time = time
        self._fn = fn
        self._args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent).

        The heap entry stays behind as a *tombstone*; the owning
        simulator counts it and compacts the agenda once tombstones
        outnumber live entries.
        """
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._note_tombstone()

    def _fire(self) -> None:
        if not self.cancelled:
            self._fn(*self._args)


class SlabAgenda:
    """Array-of-structs agenda: typed numpy slabs + a heap of indices.

    The general agenda stores one Python object per entry (a timer
    handle or event) because callbacks are arbitrary.  The batched
    engine tier (:mod:`repro.accel`) schedules only *typed* work —
    arrivals, round completions, housekeeping ticks — so its entries
    need no objects at all: each occupies one slot across three
    parallel numpy slabs (``float64`` timestamp, ``int32`` kind,
    ``int32`` owner id) and the heap orders bare ``(time, seq, slot)``
    triples.  No allocation happens per event after the slabs reach
    steady-state size; cancellation marks the slot and the pop loop
    skips it (same tombstone discipline as the object agenda).

    Determinism: ties on time pop in insertion order (``seq``), exactly
    like the object agenda's ``(time, priority, sequence)`` key with a
    single priority class.
    """

    __slots__ = ("times", "kinds", "owners", "_heap", "_free", "_seq", "_live")

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        import numpy as np

        self.times = np.zeros(capacity, dtype=np.float64)
        self.kinds = np.zeros(capacity, dtype=np.int32)
        self.owners = np.zeros(capacity, dtype=np.int32)
        self._heap: list[tuple[float, int, int]] = []
        self._free = list(range(capacity - 1, -1, -1))
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def _grow(self) -> None:
        import numpy as np

        old = len(self.times)
        new = old * 2
        for name in ("times", "kinds", "owners"):
            slab = getattr(self, name)
            grown = np.zeros(new, dtype=slab.dtype)
            grown[:old] = slab
            setattr(self, name, grown)
        self._free.extend(range(new - 1, old - 1, -1))

    def push(self, time: float, kind: int, owner: int) -> int:
        """Schedule a typed entry; returns its slot (for cancel)."""
        if not self._free:
            self._grow()
        slot = self._free.pop()
        self.times[slot] = time
        self.kinds[slot] = kind
        self.owners[slot] = owner
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, slot))
        self._live += 1
        return slot

    def cancel(self, slot: int) -> None:
        """Tombstone a scheduled slot (idempotent for live slots)."""
        if self.kinds[slot] >= 0:
            self.kinds[slot] = -1 - self.kinds[slot]
            self._live -= 1

    def peek_time(self) -> float:
        """Time of the next live entry, or ``inf`` when empty."""
        heap = self._heap
        while heap:
            _, _, slot = heap[0]
            if self.kinds[slot] < 0:
                heapq.heappop(heap)
                self._free.append(slot)
                continue
            return heap[0][0]
        return float("inf")

    def pop(self) -> tuple[float, int, int]:
        """Pop the next live entry as ``(time, kind, owner)``.

        Raises ``IndexError`` when no live entry remains.
        """
        heap = self._heap
        kinds = self.kinds
        while True:
            time, _, slot = heapq.heappop(heap)
            if kinds[slot] < 0:
                self._free.append(slot)
                continue
            kind = int(kinds[slot])
            owner = int(self.owners[slot])
            kinds[slot] = -1
            self._free.append(slot)
            self._live -= 1
            return time, kind, owner


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (default ``0.0``).

    Examples
    --------
    >>> sim = Simulator()
    >>> out = []
    >>> def proc(sim):
    ...     yield sim.timeout(1.5)
    ...     out.append(sim.now)
    >>> _ = sim.process(proc(sim))
    >>> sim.run()
    >>> out
    [1.5]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[tuple[float, int, int, typing.Any]] = []
        self._seq = 0
        self._running = False
        #: live agenda fires so far (telemetry for sweep runs);
        #: cancelled-timer tombstones are *not* counted
        self.events_processed = 0
        #: cancelled TimerHandle entries believed to still sit in the
        #: heap (advisory — compaction recomputes the exact set)
        self._tombstones = 0
        #: recycled empty callback lists shared by this sim's events
        self._cb_pool: list[list] = []
        #: recycled process-private Timeouts (see Process._wait_on)
        self._timeout_pool: list[Timeout] = []
        #: optional ``fn(time)`` called before each agenda entry fires
        #: (the validation monitors' clock-monotonicity hook)
        self.step_observer: typing.Callable[[float], None] | None = None
        #: optional :class:`repro.obs.profiler.EngineProfiler`; when
        #: attached it fires (and times) every agenda item — detached,
        #: the hot path pays one ``is None`` check
        self.profiler: typing.Any | None = None

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def peek(self) -> float:
        """Time of the next live scheduled occurrence, or ``inf`` if none."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[3].cancelled:
                heapq.heappop(heap)
                if self._tombstones:
                    self._tombstones -= 1
                continue
            return entry[0]
        return float("inf")

    # -- tombstone accounting ---------------------------------------------
    def _note_tombstone(self) -> None:
        """A timer on the agenda was cancelled; maybe compact."""
        self._tombstones = tombstones = self._tombstones + 1
        if (
            tombstones > _COMPACT_MIN_TOMBSTONES
            and tombstones * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify, in place.

        In place matters: :meth:`run` holds a local alias of the heap
        list, so the list object's identity must survive compaction.
        Entry keys are untouched, so heap order (time, priority,
        insertion sequence) is exactly preserved.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[3].cancelled]
        heapq.heapify(heap)
        self._tombstones = 0

    # -- scheduling primitives --------------------------------------------
    def _push(self, time: float, priority: int, item: typing.Any) -> None:
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past ({time} < now={self._now})"
            )
        self._seq += 1
        heapq.heappush(self._heap, (time, priority, self._seq, item))

    def _enqueue_triggered(self, event: Event) -> None:
        """Place an already-triggered event on the agenda for *now*."""
        self._seq = seq = self._seq + 1
        heapq.heappush(self._heap, (self._now, 0, seq, event))

    def _enqueue_at(self, time: float, priority: int, event: Event) -> None:
        self._push(time, priority, event)

    def call_at(
        self, time: float, fn: typing.Callable, *args: typing.Any, priority: int = 0
    ) -> TimerHandle:
        """Run ``fn(*args)`` at absolute simulation ``time``; cancellable."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past ({time} < now={self._now})"
            )
        handle = TimerHandle(time, fn, args, self)
        self._seq = seq = self._seq + 1
        heapq.heappush(self._heap, (time, priority, seq, handle))
        return handle

    def call_in(
        self, delay: float, fn: typing.Callable, *args: typing.Any, priority: int = 0
    ) -> TimerHandle:
        """Run ``fn(*args)`` after ``delay`` time units; cancellable."""
        # call_at's body, duplicated: this is the single most common
        # scheduling entrypoint and the extra frame is measurable
        time = self._now + delay
        if delay < 0:
            raise ValueError(
                f"cannot schedule in the past ({time} < now={self._now})"
            )
        handle = TimerHandle(time, fn, args, self)
        self._seq = seq = self._seq + 1
        heapq.heappush(self._heap, (time, priority, seq, handle))
        return handle

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending :class:`Event` owned by this simulator."""
        return Event(self)

    def timeout(
        self, delay: float, value: typing.Any = None, priority: int = 0
    ) -> Timeout:
        """Create an event that fires ``delay`` from now."""
        return Timeout(self, delay, value=value, priority=priority)

    def process(self, generator: typing.Generator) -> Process:
        """Spawn a generator coroutine as a simulation process."""
        return Process(self, generator)

    # -- engine-private timeout recycling -----------------------------------
    def _acquire_timeout(self, delay: float) -> Timeout:
        """A Timeout for a process numeric yield, recycled when possible.

        Only :class:`~repro.sim.process.Process` may call this: the
        returned event is marked ``_pooled`` and goes back on the
        free-list by ``Process._resume`` once its fire was consumed.
        """
        pool = self._timeout_pool
        if pool:
            timeout = pool.pop()
            timeout._reinit(delay)
            return timeout
        timeout = Timeout(self, delay)
        timeout._pooled = True
        return timeout

    def _release_timeout(self, timeout: Timeout) -> None:
        if len(self._timeout_pool) < _FREELIST_CAP:
            self._timeout_pool.append(timeout)

    # -- execution ----------------------------------------------------------
    def step(self) -> None:
        """Process the single next *live* agenda entry.

        Cancelled-timer tombstones encountered on the way are discarded
        without firing or counting.

        Raises
        ------
        IndexError
            If the agenda holds no live entry.
        """
        heap = self._heap
        while True:
            time, _prio, _seq, item = heapq.heappop(heap)
            if item.cancelled:
                if self._tombstones:
                    self._tombstones -= 1
                continue
            break
        self._now = time
        self.events_processed += 1
        if self.step_observer is not None:
            self.step_observer(time)
        if self.profiler is not None:
            self.profiler.fire(item)
        else:
            item._fire()

    def _loop(self, deadline: float) -> None:
        """Drain the agenda up to ``deadline`` (inclusive).

        The deadline comparison is always made against the next *live*
        entry — leading tombstones are popped first, so the loop and
        :meth:`peek` agree on what the head of the agenda is.
        """
        if self.step_observer is not None or self.profiler is not None:
            self._loop_instrumented(deadline)
            return
        heap = self._heap
        pop = heapq.heappop
        processed = 0
        try:
            while heap:
                entry = heap[0]
                item = entry[3]
                if item.cancelled:
                    pop(heap)
                    if self._tombstones:
                        self._tombstones -= 1
                    continue
                time = entry[0]
                if time > deadline:
                    break
                pop(heap)
                self._now = time
                processed += 1
                item._fire()
                # batch: everything else scheduled for this same instant
                # skips the deadline check and the clock write
                while heap:
                    entry = heap[0]
                    if entry[0] != time:
                        break
                    item = entry[3]
                    pop(heap)
                    if item.cancelled:
                        if self._tombstones:
                            self._tombstones -= 1
                        continue
                    processed += 1
                    item._fire()
        finally:
            self.events_processed += processed

    def _loop_instrumented(self, deadline: float) -> None:
        """Same semantics as the fast loop, one entry per :meth:`step`."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[3].cancelled:
                heapq.heappop(heap)
                if self._tombstones:
                    self._tombstones -= 1
                continue
            if entry[0] > deadline:
                break
            self.step()

    def run(self, until: float | Event | None = None) -> typing.Any:
        """Run until the agenda drains, a deadline, or an event fires.

        Parameters
        ----------
        until:
            ``None`` — run to agenda exhaustion.  A number — run until the
            clock would pass it (the clock is then set to it).  An
            :class:`Event` — run until that event is processed, returning
            its value.
        """
        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run())")
        self._running = True
        try:
            if isinstance(until, Event):
                sentinel = until
                result: list[typing.Any] = []

                def _stop(ev: Event) -> None:
                    result.append(ev.value)
                    raise StopSimulation

                sentinel.add_callback(_stop)
                try:
                    self._loop(float("inf"))
                except StopSimulation:
                    return result[0]
                if not sentinel.processed:
                    raise RuntimeError(
                        "run(until=event): agenda drained before event fired"
                    )
                return result[0]

            deadline = float("inf") if until is None else float(until)
            if deadline < self._now:
                raise ValueError(f"deadline {deadline} is in the past")
            self._loop(deadline)
            if deadline != float("inf"):
                self._now = deadline
            return None
        finally:
            self._running = False
