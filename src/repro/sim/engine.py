"""The discrete-event simulation core.

:class:`Simulator` owns the clock and the agenda (a binary heap of
triggered events keyed by ``(time, priority, sequence)``).  It offers
three styles of modelling, all interoperable:

* **timer callbacks** — ``sim.call_at(t, fn)`` / ``sim.call_in(dt, fn)``;
* **events** — create an :class:`~repro.sim.events.Event` and trigger it;
* **processes** — generator coroutines spawned via :meth:`Simulator.process`.

Determinism: two events scheduled for the same instant fire in
``(priority, insertion order)`` — there is no reliance on hash order or
wall-clock anywhere, so a run is exactly reproducible from its seed.
"""

from __future__ import annotations

import heapq
import typing

from .events import Event, Timeout
from .process import Process

__all__ = ["Simulator", "StopSimulation", "TimerHandle"]


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` early."""


class TimerHandle:
    """Cancellable handle returned by :meth:`Simulator.call_at`."""

    __slots__ = ("time", "_fn", "_args", "cancelled")

    def __init__(self, time: float, fn: typing.Callable, args: tuple) -> None:
        self.time = time
        self._fn = fn
        self._args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self.cancelled = True

    def _fire(self) -> None:
        if not self.cancelled:
            self._fn(*self._args)


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (default ``0.0``).

    Examples
    --------
    >>> sim = Simulator()
    >>> out = []
    >>> def proc(sim):
    ...     yield sim.timeout(1.5)
    ...     out.append(sim.now)
    >>> _ = sim.process(proc(sim))
    >>> sim.run()
    >>> out
    [1.5]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[tuple[float, int, int, typing.Any]] = []
        self._seq = 0
        self._running = False
        #: agenda entries processed so far (telemetry for sweep runs)
        self.events_processed = 0
        #: optional ``fn(time)`` called before each agenda entry fires
        #: (the validation monitors' clock-monotonicity hook)
        self.step_observer: typing.Callable[[float], None] | None = None
        #: optional :class:`repro.obs.profiler.EngineProfiler`; when
        #: attached it fires (and times) every agenda item — detached,
        #: the hot path pays one ``is None`` check
        self.profiler: typing.Any | None = None

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def peek(self) -> float:
        """Time of the next scheduled occurrence, or ``inf`` if none."""
        while self._heap:
            time, _prio, _seq, item = self._heap[0]
            if isinstance(item, TimerHandle) and item.cancelled:
                heapq.heappop(self._heap)
                continue
            return time
        return float("inf")

    # -- scheduling primitives --------------------------------------------
    def _push(self, time: float, priority: int, item: typing.Any) -> None:
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past ({time} < now={self._now})"
            )
        self._seq += 1
        heapq.heappush(self._heap, (time, priority, self._seq, item))

    def _enqueue_triggered(self, event: Event) -> None:
        """Place an already-triggered event on the agenda for *now*."""
        self._push(self._now, 0, event)

    def _enqueue_at(self, time: float, priority: int, event: Event) -> None:
        self._push(time, priority, event)

    def call_at(
        self, time: float, fn: typing.Callable, *args: typing.Any, priority: int = 0
    ) -> TimerHandle:
        """Run ``fn(*args)`` at absolute simulation ``time``; cancellable."""
        handle = TimerHandle(time, fn, args)
        self._push(time, priority, handle)
        return handle

    def call_in(
        self, delay: float, fn: typing.Callable, *args: typing.Any, priority: int = 0
    ) -> TimerHandle:
        """Run ``fn(*args)`` after ``delay`` time units; cancellable."""
        return self.call_at(self._now + delay, fn, *args, priority=priority)

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending :class:`Event` owned by this simulator."""
        return Event(self)

    def timeout(
        self, delay: float, value: typing.Any = None, priority: int = 0
    ) -> Timeout:
        """Create an event that fires ``delay`` from now."""
        return Timeout(self, delay, value=value, priority=priority)

    def process(self, generator: typing.Generator) -> Process:
        """Spawn a generator coroutine as a simulation process."""
        return Process(self, generator)

    # -- execution ----------------------------------------------------------
    def step(self) -> None:
        """Process the single next agenda entry.

        Raises
        ------
        IndexError
            If the agenda is empty.
        """
        time, _prio, _seq, item = heapq.heappop(self._heap)
        self._now = time
        self.events_processed += 1
        if self.step_observer is not None:
            self.step_observer(time)
        if self.profiler is not None:
            self.profiler.fire(item)
        elif isinstance(item, TimerHandle):
            item._fire()
        else:
            item._process()

    def run(self, until: float | Event | None = None) -> typing.Any:
        """Run until the agenda drains, a deadline, or an event fires.

        Parameters
        ----------
        until:
            ``None`` — run to agenda exhaustion.  A number — run until the
            clock would pass it (the clock is then set to it).  An
            :class:`Event` — run until that event is processed, returning
            its value.
        """
        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run())")
        self._running = True
        try:
            if isinstance(until, Event):
                sentinel = until
                result: list[typing.Any] = []

                def _stop(ev: Event) -> None:
                    result.append(ev.value)
                    raise StopSimulation

                sentinel.add_callback(_stop)
                try:
                    while self._heap:
                        self.step()
                except StopSimulation:
                    return result[0]
                if not sentinel.processed:
                    raise RuntimeError(
                        "run(until=event): agenda drained before event fired"
                    )
                return result[0]

            deadline = float("inf") if until is None else float(until)
            if deadline < self._now:
                raise ValueError(f"deadline {deadline} is in the past")
            while self._heap:
                if self._heap[0][0] > deadline:
                    break
                self.step()
            if deadline != float("inf"):
                self._now = deadline
            return None
        finally:
            self._running = False
