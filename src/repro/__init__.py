"""repro — reproduction of Deng & Yen's IEEE 802.11 QoS provisioning system.

Quality-of-Service Provisioning System for Multimedia Transmission in
IEEE 802.11 Wireless LANs (IEEE JSAC, 2005), rebuilt from scratch:
a discrete-event kernel (`repro.sim`), an 802.11 PHY/MAC substrate
(`repro.phy`, `repro.mac`), traffic models (`repro.traffic`), the
paper's mechanisms (`repro.core`), the conventional baseline
(`repro.baseline`), call-level scenarios (`repro.network`) and the
evaluation harness (`repro.experiments`).

Typical entry point::

    from repro.network import BssScenario, ScenarioConfig
    results = BssScenario(ScenarioConfig(scheme="proposed")).run()
"""

__version__ = "1.0.0"

from .network.bss import BssScenario, ScenarioConfig  # noqa: F401

__all__ = ["BssScenario", "ScenarioConfig", "__version__"]
