"""Leaky-bucket (token-bucket) arrival-curve utilities.

Theorem 3's proof treats video arrivals as ``(rho, sigma)``-upper
constrained: over any window ``[s, t]`` at most ``rho*(t-s) + sigma``
packets arrive.  This module provides both the *regulator* (shapes or
polices a packet stream to conform) and the *characterizer* (computes
the tightest ``sigma`` for a given ``rho`` from an observed arrival
trace), which the tests use to validate the video source against its
declaration.
"""

from __future__ import annotations

import typing

__all__ = ["LeakyBucket", "tightest_sigma", "conforms"]


class LeakyBucket:
    """Token-bucket policer: ``rho`` tokens/s, depth ``sigma``.

    The bucket starts full.  :meth:`conforming` asks whether an arrival
    of ``count`` packets at ``time`` fits; :meth:`consume` commits it.
    """

    def __init__(self, rho: float, sigma: float) -> None:
        if rho <= 0:
            raise ValueError(f"rho must be > 0, got {rho}")
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        self.rho = float(rho)
        self.sigma = float(sigma)
        self._tokens = float(sigma)
        self._last = 0.0

    def _refill(self, time: float) -> None:
        if time < self._last:
            raise ValueError(f"time going backwards: {time} < {self._last}")
        self._tokens = min(self.sigma, self._tokens + self.rho * (time - self._last))
        self._last = time

    def conforming(self, time: float, count: float = 1.0) -> bool:
        """Would ``count`` packets at ``time`` conform?"""
        self._refill(time)
        return count <= self._tokens + 1e-12

    def consume(self, time: float, count: float = 1.0) -> bool:
        """Commit an arrival; returns conformance (non-conforming still
        drains the bucket to zero, modelling a policer that marks)."""
        self._refill(time)
        ok = count <= self._tokens + 1e-12
        self._tokens = max(0.0, self._tokens - count)
        return ok

    def delay_until_conforming(self, time: float, count: float = 1.0) -> float:
        """Shaper view: how long must ``count`` packets wait at ``time``?"""
        self._refill(time)
        deficit = count - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rho


def tightest_sigma(
    arrivals: typing.Sequence[float], rho: float, counts: typing.Sequence[float] | None = None
) -> float:
    """Smallest ``sigma`` such that the trace is (rho, sigma)-constrained.

    ``sigma* = max over prefixes of (cumulative count - rho * elapsed)``,
    evaluated at arrival instants (where the envelope is tight).
    """
    if rho <= 0:
        raise ValueError(f"rho must be > 0, got {rho}")
    if counts is None:
        counts = [1.0] * len(arrivals)
    if len(counts) != len(arrivals):
        raise ValueError("arrivals and counts must have equal length")
    # The binding window always starts just before some arrival i and
    # ends at some arrival j >= i:
    #   sigma* = max_j [ (cum_{j+1} - rho*t_j) + max_{i<=j} (rho*t_i - cum_i) ]
    # which a single pass computes with a running maximum.
    sigma = 0.0
    cum = 0.0  # packets strictly before the current arrival
    best_start = float("-inf")  # max over i<=j of (rho*t_i - cum_i)
    prev = None
    for t, c in zip(arrivals, counts):
        if prev is not None and t < prev:
            raise ValueError("arrival times must be non-decreasing")
        prev = t
        best_start = max(best_start, rho * t - cum)
        cum += c
        sigma = max(sigma, cum - rho * t + best_start)
    return sigma


def conforms(
    arrivals: typing.Sequence[float],
    rho: float,
    sigma: float,
    counts: typing.Sequence[float] | None = None,
) -> bool:
    """Is the trace (rho, sigma)-upper constrained?"""
    return tightest_sigma(arrivals, rho, counts) <= sigma + 1e-9
