"""Maglaris autoregressive video source.

The paper uses the source model of Maglaris et al., "Performance models
of statistical multiplexing in packet video communications": the bit
rate of a single source for the n-th frame follows the AR(1) recursion

    lambda_n = a * lambda_{n-1} + b * w_n   [bit/pixel]

with ``a = 0.8781``, ``b = 0.1108`` and ``w_n`` i.i.d. Gaussian with
mean 0.572 and variance 1, clamped at zero.  Every frame interval the
frame's bits are fragmented into fixed-size real-time MPDUs, each
stamped with the video delay budget ``D``.

The video *declaration* used by admission control is the leaky-bucket
triple ``(rho, sigma, D)`` — average rate, maximum burstiness (packets)
and maximum tolerable delay.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from ..sim.engine import Simulator
from ..sim.process import Interrupt
from .base import Packet, TrafficKind, TrafficSource

__all__ = ["VideoParams", "MaglarisVideoSource"]

#: Maglaris et al. AR(1) coefficients
AR_A = 0.8781
AR_B = 0.1108
AR_W_MEAN = 0.572


@dataclasses.dataclass(frozen=True)
class VideoParams:
    """The paper's video characterization ``(rho, sigma, D)``.

    Attributes
    ----------
    avg_rate:
        Declared average rate ``rho`` in packets/second.
    burstiness:
        Declared maximum burstiness ``sigma`` in packets.
    max_delay:
        Maximum tolerable packet transfer delay ``D`` (seconds).
    packet_bits:
        Fixed real-time MPDU payload size.
    frame_rate:
        Video frames per second.
    pixels_per_frame:
        Spatial resolution driving the AR bit/pixel process.  The
        default is scaled so one source averages ~ ``avg_rate`` packets
        per second; override to model other resolutions.
    """

    avg_rate: float
    burstiness: float
    max_delay: float
    packet_bits: int = 512 * 8
    frame_rate: float = 25.0
    pixels_per_frame: int | None = None

    def __post_init__(self) -> None:
        if self.avg_rate <= 0:
            raise ValueError(f"avg_rate must be > 0, got {self.avg_rate}")
        if self.burstiness < 0:
            raise ValueError(f"burstiness must be >= 0, got {self.burstiness}")
        if self.max_delay <= 0:
            raise ValueError(f"max_delay must be > 0, got {self.max_delay}")
        if self.packet_bits <= 0 or self.frame_rate <= 0:
            raise ValueError("packet_bits and frame_rate must be > 0")

    @property
    def mean_bit_per_pixel(self) -> float:
        """Stationary mean of the AR(1) process: b*E[w]/(1-a)."""
        return AR_B * AR_W_MEAN / (1.0 - AR_A)

    def resolved_pixels_per_frame(self) -> int:
        """Pixels per frame, derived from the declared rate if not set.

        Chosen so that the stationary mean *packet* rate equals the
        declared ``avg_rate``.  Fragmentation rounds each frame up to a
        whole number of packets (the fractional last fragment still
        costs one MPDU), adding on average half a packet per frame, so
        the bit target is reduced by ``0.5 * packet_bits`` per frame.
        """
        if self.pixels_per_frame is not None:
            return self.pixels_per_frame
        packets_per_frame = self.avg_rate / self.frame_rate
        target_bits_per_frame = max(0.5, packets_per_frame - 0.5) * self.packet_bits
        return max(1, int(round(target_bits_per_frame / self.mean_bit_per_pixel)))


class MaglarisVideoSource(TrafficSource):
    """AR(1) frame-size video packetizer."""

    kind = TrafficKind.VIDEO

    def __init__(
        self,
        sim: Simulator,
        source_id: str,
        sink: typing.Callable[[Packet], None],
        rng: np.random.Generator,
        params: VideoParams,
    ) -> None:
        super().__init__(sim, source_id, sink)
        self._rng = rng
        self.params = params
        self._pixels = params.resolved_pixels_per_frame()
        # start the AR process at its stationary mean
        self._bit_per_pixel = params.mean_bit_per_pixel
        self.frames_generated = 0

    def next_frame_bits(self) -> int:
        """Advance the AR(1) recursion and return the next frame's bits."""
        w = self._rng.normal(AR_W_MEAN, 1.0)
        self._bit_per_pixel = max(0.0, AR_A * self._bit_per_pixel + AR_B * w)
        self.frames_generated += 1
        return int(round(self._bit_per_pixel * self._pixels))

    def _run(self) -> typing.Generator:
        p = self.params
        frame_interval = 1.0 / p.frame_rate
        try:
            while True:
                yield frame_interval
                bits = self.next_frame_bits()
                deadline = self.sim.now + p.max_delay
                while bits > 0:
                    chunk = min(bits, p.packet_bits)
                    self._emit(chunk, deadline=deadline)
                    bits -= chunk
        except Interrupt:
            return
