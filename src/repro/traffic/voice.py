"""Two-state on/off Markov voice source.

From the paper's simulation model: "The voice stream is modeled as a
two state Markov on/off process, where stations are either transmitting
(on) or listening (off).  The amount of time in the off or on state is
exponentially distributed, where the mean value of the silence (off)
period is 1.5 s, and the mean value of the talk spurt (on) period is
1.35 s."  During a talk spurt the codec emits fixed-size packets at
rate ``r``; each packet carries the jitter budget ``delta`` as its
deadline.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from ..sim.engine import Simulator
from ..sim.process import Interrupt
from .base import Packet, TrafficKind, TrafficSource

__all__ = ["VoiceParams", "OnOffVoiceSource"]


@dataclasses.dataclass(frozen=True)
class VoiceParams:
    """The paper's voice characterization ``(r, delta)``.

    Attributes
    ----------
    rate:
        Packets per second during a talk spurt (``r``).
    max_jitter:
        Maximum tolerable packet-delay variation in seconds (``delta``).
    packet_bits:
        Fixed real-time MPDU payload size.
    mean_on / mean_off:
        Talk-spurt / silence exponential means.
    """

    rate: float
    max_jitter: float
    packet_bits: int = 512 * 8
    mean_on: float = 1.35
    mean_off: float = 1.5

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.max_jitter <= 0:
            raise ValueError(f"max_jitter must be > 0, got {self.max_jitter}")
        if self.packet_bits <= 0:
            raise ValueError(f"packet_bits must be > 0, got {self.packet_bits}")
        if self.mean_on <= 0 or self.mean_off <= 0:
            raise ValueError("on/off means must be > 0")

    @property
    def average_rate(self) -> float:
        """Long-run packet rate including silences (activity factor x r)."""
        activity = self.mean_on / (self.mean_on + self.mean_off)
        return self.rate * activity


class OnOffVoiceSource(TrafficSource):
    """Markov-modulated constant-rate voice packetizer."""

    kind = TrafficKind.VOICE

    def __init__(
        self,
        sim: Simulator,
        source_id: str,
        sink: typing.Callable[[Packet], None],
        rng: np.random.Generator,
        params: VoiceParams,
        start_talking: bool = False,
    ) -> None:
        super().__init__(sim, source_id, sink)
        self._rng = rng
        self.params = params
        self._start_talking = start_talking
        #: True while in a talk spurt (useful for tests/instrumentation)
        self.talking = False

    def _run(self) -> typing.Generator:
        rng = self._rng
        p = self.params
        interval = 1.0 / p.rate
        talking = self._start_talking
        try:
            while True:
                if talking:
                    self.talking = True
                    spurt = rng.exponential(p.mean_on)
                    # emit packets every 1/r for the duration of the spurt
                    elapsed = 0.0
                    first_of_spurt = True
                    while elapsed + interval <= spurt:
                        yield interval
                        elapsed += interval
                        self._emit(
                            p.packet_bits,
                            deadline=self.sim.now + p.max_jitter,
                            new_stream=first_of_spurt,
                        )
                        first_of_spurt = False
                    remainder = spurt - elapsed
                    if remainder > 0:
                        yield remainder
                    self.talking = False
                    talking = False
                else:
                    yield rng.exponential(p.mean_off)
                    talking = True
        except Interrupt:
            self.talking = False
            return
