"""Common traffic-source machinery: packets, descriptors, source base.

The paper characterizes the three traffic classes it simulates as:

* **data** — Poisson MSDU arrivals, exponential length (mean 1024 B);
* **voice** — two-state on/off Markov source, parameters ``(r, delta)``
  = packet rate and maximum tolerable *jitter*;
* **video** — Maglaris-style autoregressive source, parameters
  ``(rho, sigma, D)`` = average rate, maximum burstiness and maximum
  tolerable *delay*.

Sources here are simulation processes that emit :class:`Packet` objects
into a sink callable (typically a station's transmit queue).
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
import typing

from ..sim.engine import Simulator

__all__ = ["TrafficKind", "Packet", "TrafficSource"]


class TrafficKind(enum.Enum):
    """Traffic class of a packet/source."""

    DATA = "data"
    VOICE = "voice"
    VIDEO = "video"


_packet_ids = itertools.count()


@dataclasses.dataclass
class Packet:
    """One MAC-layer packet (MPDU payload unit).

    Timing fields are filled in as the packet moves through the system;
    ``None`` means "hasn't happened".
    """

    created: float
    bits: int
    source_id: str
    kind: TrafficKind
    seq: int
    #: absolute deadline (creation + delta/D) for real-time packets
    deadline: float | None = None
    #: first packet of a fresh stream segment (e.g. a new talk spurt);
    #: jitter chains restart here — playout re-synchronizes after a
    #: silence, and the spurt's first packet additionally pays the
    #: reactivation-request latency that the steady-state token
    #: pipeline (and Theorem 1's bound) does not include
    new_stream: bool = False
    #: set by the MAC when the packet finishes successful transmission
    completed: float | None = None
    #: True if the deadline lapsed before delivery (packet discarded)
    expired: bool = False
    uid: int = dataclasses.field(default_factory=lambda: next(_packet_ids))

    @property
    def total_bits(self) -> int:
        """Bits on the wire for this payload (header added by the MAC)."""
        return self.bits

    def access_delay(self) -> float:
        """Queueing + contention delay (creation to completion)."""
        if self.completed is None:
            raise RuntimeError("packet not yet completed")
        return self.completed - self.created


class TrafficSource:
    """Base class: a process that emits packets into ``sink``.

    Subclasses implement :meth:`_run` as a generator; :meth:`start`
    spawns it.  ``sink(packet)`` is called for every generated packet.
    """

    kind: TrafficKind = TrafficKind.DATA

    def __init__(
        self,
        sim: Simulator,
        source_id: str,
        sink: typing.Callable[[Packet], None],
    ) -> None:
        self.sim = sim
        self.source_id = source_id
        self.sink = sink
        self._seq = 0
        self.packets_emitted = 0
        self.bits_emitted = 0
        self.process: typing.Any = None

    def start(self) -> None:
        """Spawn the generation process (idempotent)."""
        if self.process is None:
            self.process = self.sim.process(self._run())

    def stop(self) -> None:
        """Terminate the generation process, if running."""
        if self.process is not None and self.process.is_alive:
            self.process.interrupt("source stopped")

    def _emit(
        self,
        bits: int,
        deadline: float | None = None,
        new_stream: bool = False,
    ) -> Packet:
        pkt = Packet(
            created=self.sim.now,
            bits=bits,
            source_id=self.source_id,
            kind=self.kind,
            seq=self._seq,
            deadline=deadline,
            new_stream=new_stream,
        )
        self._seq += 1
        self.packets_emitted += 1
        self.bits_emitted += bits
        self.sink(pkt)
        return pkt

    def _run(self) -> typing.Generator:  # pragma: no cover - abstract
        raise NotImplementedError
        yield
