"""Traffic substrate: data/voice/video sources and leaky-bucket tools."""

from .base import Packet, TrafficKind, TrafficSource
from .data import PoissonDataSource
from .leaky_bucket import LeakyBucket, conforms, tightest_sigma
from .video import MaglarisVideoSource, VideoParams
from .voice import OnOffVoiceSource, VoiceParams

__all__ = [
    "Packet",
    "TrafficKind",
    "TrafficSource",
    "PoissonDataSource",
    "OnOffVoiceSource",
    "VoiceParams",
    "MaglarisVideoSource",
    "VideoParams",
    "LeakyBucket",
    "tightest_sigma",
    "conforms",
]
