"""Poisson best-effort data traffic.

"The arrival of data frames from a station's higher layer to MAC
sublayer is Poisson.  Frame length is assumed to be exponentially
distributed with mean length 1024 octets."  MSDUs longer than the MTU
are fragmented into MTU-sized MPDUs, mirroring the 802.11/IP
fragmentation the paper describes (MTU 1500 bytes).
"""

from __future__ import annotations

import typing

import numpy as np

from ..sim.engine import Simulator
from ..sim.process import Interrupt
from .base import Packet, TrafficKind, TrafficSource

__all__ = ["PoissonDataSource"]


class PoissonDataSource(TrafficSource):
    """Poisson MSDU arrivals with exponential lengths.

    Parameters
    ----------
    arrival_rate:
        MSDUs per second.
    mean_length_bits:
        Mean exponential MSDU length (default 1024 octets).
    mtu_bits:
        Fragmentation threshold (default 1500 octets).
    """

    kind = TrafficKind.DATA

    def __init__(
        self,
        sim: Simulator,
        source_id: str,
        sink: typing.Callable[[Packet], None],
        rng: np.random.Generator,
        arrival_rate: float,
        mean_length_bits: int = 1024 * 8,
        mtu_bits: int = 1500 * 8,
    ) -> None:
        if arrival_rate <= 0:
            raise ValueError(f"arrival_rate must be > 0, got {arrival_rate}")
        if mean_length_bits <= 0 or mtu_bits <= 0:
            raise ValueError("lengths must be positive")
        super().__init__(sim, source_id, sink)
        self._rng = rng
        self.arrival_rate = arrival_rate
        self.mean_length_bits = mean_length_bits
        self.mtu_bits = mtu_bits

    def fragment(self, msdu_bits: int) -> list[int]:
        """Split an MSDU into MTU-sized MPDU payloads (last one short)."""
        if msdu_bits <= 0:
            return []
        full, rest = divmod(msdu_bits, self.mtu_bits)
        sizes = [self.mtu_bits] * full
        if rest:
            sizes.append(rest)
        return sizes

    def _run(self) -> typing.Generator:
        rng = self._rng
        try:
            while True:
                yield rng.exponential(1.0 / self.arrival_rate)
                msdu = max(1, int(round(rng.exponential(self.mean_length_bits))))
                for mpdu_bits in self.fragment(msdu):
                    self._emit(mpdu_bits)
        except Interrupt:
            return
