"""Command-line front end: ``python -m repro <command>``.

Commands
--------
tables            print Tables I and II
quick             run one scenario and print its summary
fig5              regenerate Fig. 5 (bounds vs simulation)
sweep             run the Figs. 6-11 sweep and print every series
validate          run a validation tier; exit nonzero on failed claims
chaos             run a fault-injection soak tier; emit a degradation
                  report (structural invariants gate every mix, QoS
                  budgets gate the no-injection baseline mix)
trace             run one scenario with tracing + profiling on; write
                  the JSONL event trace and metrics snapshots, print a
                  CFP/CP timeline and the engine profile
bench             run the pinned-seed perf microbenchmarks and gate
                  them against the committed BENCH_KERNEL.json baseline
                  (``--update`` rewrites the baseline deliberately)
ess               run a multi-BSS Extended Service Set: a microcell
                  grid with roaming stations, AP-to-AP handoffs over
                  node-disjoint backhaul paths (with failover under
                  injected link and whole-AP faults), cross-BSS
                  conservation invariants, and a JSON report of
                  per-cell QoS, handoff-drop rate and backhaul
                  failover counts
redteam           run a seeded adversarial campaign over the fault /
                  load space, delta-debug champions down to minimal
                  reproducers (``--shrink``) and archive genuinely new
                  breaches as chaos-tier fixtures; the campaign JSON is
                  byte-identical for a fixed seed across worker counts
serve             serve capacity-planning queries over the cached sweep
                  surfaces: a stdlib HTTP JSON API (``/query``,
                  ``/healthz``, ``/metrics``, ``/surfaces``) with
                  deterministic interpolation, explicit extrapolation
                  refusal, and on-miss back-fill through the warm
                  sweep executor (202 + Retry-After)

Run with no command to see this help.

Exit codes: 0 success (for ``serve``: clean shutdown on SIGINT);
1 failed validation claims / chaos gates / perf-gate regressions /
ESS conservation violations / redteam execution failures / (serve) an
empty cache directory yielded no surfaces to serve; 2 sweep points
permanently failed after retries, or (redteam) a genuinely new breach
was found that is not yet in the archived reproducer corpus.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_tables(args: argparse.Namespace) -> int:
    from .experiments import render_table1, render_table2

    print(render_table1())
    print()
    print(render_table2())
    return 0


def _cmd_quick(args: argparse.Namespace) -> int:
    from .network import BssScenario, ScenarioConfig

    cfg = ScenarioConfig(
        scheme=args.scheme,
        seed=args.seed,
        sim_time=args.time,
        warmup=min(5.0, args.time / 6),
        load=args.load,
        new_voice_rate=0.3,
        new_video_rate=0.2,
        handoff_voice_rate=0.15,
        handoff_video_rate=0.1,
        mean_holding=20.0,
    )
    results = BssScenario(cfg).run()
    for key in sorted(results):
        if key.startswith("analytic"):
            continue
        print(f"{key}: {results[key]}")
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    from .experiments import fig5, format_table

    rows = fig5(sim_time=args.time, seed=args.seed)
    table = [
        {
            "sources (voice+video)": f"{r['n_voice']}+{r['n_video']}",
            "jitter bound (ms)": r["analytic_max_jitter"] * 1000,
            "sim jitter (ms)": r["simulated_max_jitter"] * 1000,
            "delay bound (ms)": r["analytic_max_delay"] * 1000,
            "sim delay (ms)": r["simulated_max_delay"] * 1000,
        }
        for r in rows
    ]
    print(
        format_table(
            table,
            list(table[0].keys()),
            title="Fig. 5 - analytical bounds vs simulated maxima",
        )
    )
    return 0


def _sweep_executor(args: argparse.Namespace):
    from .exec import ExecutorConfig, SweepExecutor

    return SweepExecutor(
        ExecutorConfig(
            workers=args.workers,
            schedule=args.schedule,
            cache_dir=None if args.no_cache else args.cache_dir,
            journal=args.journal,
            resume=args.resume,
            timeout=args.timeout,
        ),
        progress=lambda rec: print(
            f"  {rec.scheme} load={rec.load} seed={rec.seed} {rec.status}"
            + (f" [{rec.wall_time:.2f}s]" if rec.status == "executed" else ""),
            file=sys.stderr,
        ),
    )


def _print_failures(exc) -> None:
    print(
        f"error: {len(exc.failures)} sweep point(s) permanently failed "
        "after retries:",
        file=sys.stderr,
    )
    for f in exc.failures:
        print(
            f"  #{f.index} {f.config.scheme} load={f.config.load} "
            f"seed={f.config.seed}: {f.error}",
            file=sys.stderr,
        )


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .exec import SweepExecutionError
    from .experiments import (
        BENCH_LOADS,
        FIGURE_METRICS,
        fig6,
        fig7,
        fig8,
        fig9,
        fig10,
        fig11,
        format_table,
        run_sweep,
        save_results,
    )

    executor = _sweep_executor(args)
    try:
        rows = run_sweep(
            tuple(args.schemes),
            loads=tuple(args.loads) if args.loads else BENCH_LOADS,
            seeds=tuple(range(1, args.seeds + 1)),
            sim_time=args.time,
            warmup=min(8.0, args.time / 8),
            executor=executor,
            engine=args.engine,
        )
    except SweepExecutionError as exc:
        _print_failures(exc)
        return 2
    summary = executor.summary()
    print(
        "  sweep: {total_points} points, {executed} simulated, "
        "{cache_hits} cached, {resumed} resumed in {wall_time:.1f}s "
        "(workers={workers}, utilization={worker_utilization:.0%}, "
        "{sim_events} sim events, {events_per_sec:,.0f} events/s)".format(
            **summary
        ),
        file=sys.stderr,
    )
    if args.out:
        path = save_results(rows, args.out)
        print(f"  rows archived to {path}", file=sys.stderr)
    for name, fn in [
        ("fig6", fig6), ("fig7", fig7), ("fig8", fig8),
        ("fig9", fig9), ("fig10", fig10), ("fig11", fig11),
    ]:
        table = fn(rows)
        cols = ["scheme", "load"] + FIGURE_METRICS[name]
        print()
        print(format_table(table, cols, title=name))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json
    import os

    from .network import BssScenario, ScenarioConfig
    from .obs import (
        EngineProfiler,
        TraceConfig,
        render_category_counts,
        render_profile,
        render_timeline,
        validate_trace_file,
    )

    cfg = ScenarioConfig(
        scheme=args.scheme,
        seed=args.seed,
        sim_time=args.time,
        warmup=min(5.0, args.time / 6),
        load=args.load,
        new_voice_rate=0.3,
        new_video_rate=0.2,
        handoff_voice_rate=0.15,
        handoff_video_rate=0.1,
        mean_holding=20.0,
        trace=TraceConfig(
            categories=tuple(args.categories),
            capacity=args.capacity,
            snapshot_interval=args.snapshot_interval,
        ),
    )
    scenario = BssScenario(cfg)
    profiler = EngineProfiler()
    # wall-clock profiling never feeds results, so attaching it cannot
    # perturb the traced point's identity
    scenario.sim.profiler = profiler
    results = scenario.run()

    os.makedirs(args.out_dir, exist_ok=True)
    trace_path = os.path.join(args.out_dir, "trace.jsonl")
    assert scenario.trace is not None
    lines = scenario.trace.export_jsonl(trace_path)
    validated = validate_trace_file(trace_path)
    assert validated == lines
    metrics_path = os.path.join(args.out_dir, "metrics.json")
    with open(metrics_path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "final": scenario.metrics.snapshot(now=cfg.sim_time),
                "periodic": scenario.metrics.snapshots,
            },
            fh,
            indent=2,
            sort_keys=True,
        )

    print(f"trace written to {trace_path} ({lines} events, schema ok)")
    print(f"metrics written to {metrics_path} "
          f"({len(scenario.metrics.snapshots)} periodic snapshots)")
    print()
    print(render_category_counts(scenario.trace))
    print()
    print(render_timeline(scenario.trace))
    print()
    print(render_profile(profiler))
    print()
    for key in ("scheme", "load", "seed", "events_processed", "obs"):
        print(f"{key}: {results[key]}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .exec import SweepExecutionError
    from .validate import run_validation

    executor = _sweep_executor(args)
    try:
        report = run_validation(args.tier, executor=executor, engine=args.engine)
    except SweepExecutionError as exc:
        _print_failures(exc)
        return 2
    summary = executor.summary()
    print(
        "  grid: {total_points} points, {executed} simulated, "
        "{cache_hits} cached, {resumed} resumed in {wall_time:.1f}s "
        "(workers={workers})".format(**summary),
        file=sys.stderr,
    )
    out = args.out or f".repro-cache/validate-{report.tier}-report.json"
    path = report.save(out)
    print(f"  verdict report written to {path}", file=sys.stderr)
    print(report.render())
    return 0 if report.passed else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .exec import SweepExecutionError
    from .faults.chaos import run_chaos

    executor = _sweep_executor(args)
    try:
        report = run_chaos(args.tier, executor=executor)
    except SweepExecutionError as exc:
        _print_failures(exc)
        return 2
    summary = executor.summary()
    print(
        "  grid: {total_points} points, {executed} simulated, "
        "{cache_hits} cached, {resumed} resumed in {wall_time:.1f}s "
        "(workers={workers})".format(**summary),
        file=sys.stderr,
    )
    out = args.out or f".repro-cache/chaos-{report.tier}-report.json"
    path = report.save(out)
    print(f"  degradation report written to {path}", file=sys.stderr)
    print(report.render())
    return 0 if report.passed else 1


def _parse_link_fault(text: str):
    """``A-B[:start[:end]]`` -> LinkFault (AP ids may contain ``/``)."""
    from .faults import LinkFault

    parts = text.split(":")
    link, windows = parts[0], parts[1:]
    if "-" not in link:
        raise argparse.ArgumentTypeError(
            f"link fault must look like ap/0x0-ap/0x1[:start[:end]], got {text!r}"
        )
    a, _, b = link.partition("-")
    try:
        start = float(windows[0]) if len(windows) > 0 else 0.0
        end = float(windows[1]) if len(windows) > 1 else None
        return LinkFault(a=a, b=b, start=start, end=end)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad link fault {text!r}: {exc}")


def _parse_ap_fault(text: str):
    """``AP[:start[:end]]`` -> ApFault (AP ids may contain ``/``)."""
    from .faults import ApFault

    # AP ids look like ap/1x0 and never contain ":", so every ":"
    # separates window fields
    parts = text.split(":")
    ap, windows = parts[0], parts[1:]
    try:
        start = float(windows[0]) if len(windows) > 0 else 0.0
        end = float(windows[1]) if len(windows) > 1 else None
        return ApFault(ap=ap, start=start, end=end)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad AP fault {text!r}: {exc}")


def _cmd_ess(args: argparse.Namespace) -> int:
    from .ess import EssConfig, run_ess, save_report
    from .exec import SweepExecutionError

    config = EssConfig(
        rows=args.rows,
        cols=args.cols,
        seed=args.seed,
        epochs=args.epochs,
        epoch_length=args.epoch,
        new_call_rate=args.new_rate,
        mean_holding=args.holding,
        mean_residence=args.residence,
        mobility=args.mobility,
        capacity=args.capacity,
        overlap=args.overlap,
        disjoint_paths=args.disjoint_paths,
        backhaul_faults=tuple(args.fault or ()),
        ap_faults=tuple(args.ap_fault or ()),
        fidelity=args.fidelity,
        frames_time=args.frames_time,
        scheme=args.scheme,
        engine=args.engine,
    )
    executor = None
    if config.fidelity == "frames":
        executor = _sweep_executor(args)
    try:
        report = run_ess(config, executor=executor)
    except SweepExecutionError as exc:
        _print_failures(exc)
        return 2
    if executor is not None:
        summary = executor.summary()
        print(
            "  frames tier: {total_points} cell-epochs, {executed} simulated, "
            "{cache_hits} cached in {wall_time:.1f}s (workers={workers})".format(
                **summary
            ),
            file=sys.stderr,
        )
    out = args.out or ".repro-cache/ess-report.json"
    path = save_report(report, out)
    print(f"  ESS report written to {path}", file=sys.stderr)
    totals = report["totals"]
    backhaul = report["backhaul"]
    grid = f"{config.rows}x{config.cols}"
    print(f"ESS {grid}, {config.epochs} epochs x {config.epoch_length}s "
          f"({config.fidelity} fidelity, seed {config.seed})")
    print(f"  calls: created={totals['created']} "
          f"completed={totals['completed']} blocked={totals['blocked']} "
          f"resident={totals['resident_final']} "
          f"in-transit={totals['in_transit_final']}")
    print(f"  handoffs: attempts={totals['handoff_attempts']} "
          f"dropped-admission={totals['dropped_admission']} "
          f"dropped-backhaul={totals['dropped_backhaul']} "
          f"dropped-ap-down={totals['dropped_ap_down']} "
          f"drop-rate={totals['handoff_drop_rate']:.3%}")
    print(f"  backhaul: routed={backhaul['routed']} "
          f"failovers={backhaul['failovers']} "
          f"unroutable={backhaul['unroutable']} "
          f"faulted-links={backhaul['faulted_links']}")
    conservation = report["conservation"]
    if report["passed"]:
        print(f"  conservation: OK over {conservation['epochs_checked']} epochs")
        return 0
    print(f"  conservation: {len(conservation['violations'])} violation(s)")
    for message in conservation["violations"][:10]:
        print(f"    {message}")
    return 1


def _cmd_redteam(args: argparse.Namespace) -> int:
    from .exec import ExecutorConfig, SweepExecutionError, SweepExecutor
    from .redteam import (
        CampaignConfig,
        DecodeSettings,
        ExecEvaluator,
        ObjectiveConfig,
        run_campaign,
    )

    config = CampaignConfig(
        budget=args.budget,
        seed=args.seed,
        surface=args.surface,
        batch=args.batch,
        explore_ratio=args.explore,
        settings=DecodeSettings(sim_time=args.time),
        objective=ObjectiveConfig(),
        shrink=args.shrink,
        shrink_budget=args.shrink_budget,
    )
    executor = SweepExecutor(
        ExecutorConfig(
            workers=args.workers,
            schedule=args.schedule,
            cache_dir=None,
            timeout=args.timeout,
            on_failure="skip",
        )
    )
    evaluator = ExecEvaluator(config.settings, config.objective, executor)
    archive_dir = None if args.no_archive else args.archive_dir
    try:
        report = run_campaign(config, evaluator, archive_dir=archive_dir)
    except (SweepExecutionError, RuntimeError) as exc:
        print(f"error: campaign execution failed: {exc}", file=sys.stderr)
        return 1
    print(
        f"  campaign: {evaluator.evaluations} scenario evaluations "
        f"(workers={args.workers})",
        file=sys.stderr,
    )
    out = args.out or ".repro-cache/redteam-campaign.json"
    path = report.save(out)
    print(f"  campaign report written to {path}", file=sys.stderr)
    print(report.render())
    return 2 if report.new_unarchived else 0


def _parse_warm_spec(text: str) -> dict:
    """``schemes=a,b loads=0.5,1.0 seeds=1,2 time=8 warmup=1`` -> kwargs."""
    from .network.bss import SCHEMES

    spec = {
        "schemes": ("proposed",),
        "loads": (0.5, 1.0),
        "seeds": (1,),
        "time": 8.0,
        "warmup": 1.0,
    }
    for clause in text.split():
        name, sep, value = clause.partition("=")
        if not sep or name not in spec:
            raise argparse.ArgumentTypeError(
                f"bad warm clause {clause!r}: expected one of "
                f"{sorted(spec)} as name=value"
            )
        try:
            if name == "schemes":
                schemes = tuple(value.split(","))
                unknown = [s for s in schemes if s not in SCHEMES]
                if unknown:
                    raise ValueError(f"unknown scheme(s) {unknown}")
                spec[name] = schemes
            elif name == "loads":
                spec[name] = tuple(float(v) for v in value.split(","))
            elif name == "seeds":
                spec[name] = tuple(int(v) for v in value.split(","))
            else:
                spec[name] = float(value)
        except ValueError as exc:
            raise argparse.ArgumentTypeError(f"bad warm clause {clause!r}: {exc}")
    return spec


def _cmd_serve(args: argparse.Namespace) -> int:
    from .exec import ExecutorConfig, SweepExecutor
    from .experiments import sweep_grid
    from .serve import build_server

    if args.warm is not None:
        spec = args.warm
        grid = sweep_grid(
            spec["schemes"],
            loads=spec["loads"],
            seeds=spec["seeds"],
            sim_time=spec["time"],
            warmup=spec["warmup"],
        )
        executor = SweepExecutor(
            ExecutorConfig(
                workers=args.workers,
                cache_dir=args.cache_dir,
                on_failure="skip",
            )
        )
        executor.run(grid)
        summary = executor.summary()
        print(
            "  warm: {total_points} points, {executed} simulated, "
            "{cache_hits} cached in {wall_time:.1f}s".format(**summary),
            file=sys.stderr,
        )

    server = build_server(
        args.cache_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        backfill=not args.no_backfill,
        max_queue=args.max_queue,
    )
    if not server.index.surfaces:
        print(
            f"error: no sweep surfaces in {args.cache_dir!r} — run a "
            "cached sweep first (python -m repro sweep) or pass --warm",
            file=sys.stderr,
        )
        server.stop()
        return 1
    described = server.index.describe()
    print(
        f"  serving {len(described['surfaces'])} surface(s), "
        f"{described['rows']} rows at {server.url} "
        f"(backfill={'off' if args.no_backfill else 'on'})",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("  shutting down", file=sys.stderr)
    finally:
        server.stop()
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="802.11 QoS provisioning reproduction",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "exit codes:\n"
            "  0  success (for serve: clean shutdown on SIGINT)\n"
            "  1  failed validation claims / chaos gates / perf-gate\n"
            "     regressions / ESS conservation violations / redteam\n"
            "     execution failures / (serve) no surfaces in the cache\n"
            "  2  sweep points permanently failed after retries, or\n"
            "     (redteam) a new breach not yet in the archived corpus"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=False)

    sub.add_parser("tables", help="print Tables I and II")

    quick = sub.add_parser("quick", help="run one scenario")
    quick.add_argument("--scheme", default="proposed",
                       choices=["proposed", "proposed-multipoll", "conventional"])
    quick.add_argument("--load", type=float, default=1.0)
    quick.add_argument("--seed", type=int, default=1)
    quick.add_argument("--time", type=float, default=30.0)

    f5 = sub.add_parser("fig5", help="regenerate Fig. 5")
    f5.add_argument("--time", type=float, default=25.0)
    f5.add_argument("--seed", type=int, default=1)

    sweep = sub.add_parser("sweep", help="run the Figs. 6-11 sweep")
    sweep.add_argument("--loads", type=float, nargs="+", default=None,
                       help="load multipliers (default: the benchmark grid)")
    sweep.add_argument("--seeds", type=int, default=2)
    sweep.add_argument("--time", type=float, default=60.0)
    sweep.add_argument("--schemes", nargs="+",
                       default=["proposed", "proposed-multipoll", "conventional"],
                       choices=["proposed", "proposed-multipoll", "conventional"],
                       help="subset of schemes to sweep")
    sweep.add_argument("--workers", type=_positive_int, default=1,
                       help="process-pool size (1 = serial in-process)")
    sweep.add_argument("--schedule", default="cost", choices=["fifo", "cost"],
                       help="dispatch order in pool mode: grid order (fifo) "
                            "or longest-expected-first (cost, default)")
    sweep.add_argument("--resume", action="store_true",
                       help="skip points already in the checkpoint journal")
    sweep.add_argument("--no-cache", action="store_true",
                       help="disable the content-addressed result cache")
    sweep.add_argument("--cache-dir", default=".repro-cache",
                       help="result cache directory (default: .repro-cache)")
    sweep.add_argument("--journal", default=".repro-cache/sweep-journal.jsonl",
                       help="checkpoint journal path (JSON-lines)")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-point wall-clock budget in s (pool mode)")
    sweep.add_argument("--out", default=None,
                       help="also archive result rows to this JSON-lines file")
    sweep.add_argument("--engine", default="exact",
                       choices=["exact", "batched", "hybrid"],
                       help="engine tier (repro.accel; default: exact)")

    validate = sub.add_parser(
        "validate",
        help="run a validation tier (shape claims + invariant monitors)",
    )
    validate.add_argument("--tier", default="smoke", choices=["smoke", "full"],
                          help="which tier to run (default: smoke)")
    validate.add_argument("--workers", type=_positive_int, default=1,
                          help="process-pool size (1 = serial in-process)")
    validate.add_argument("--schedule", default="cost",
                          choices=["fifo", "cost"],
                          help="dispatch order in pool mode (default: cost)")
    validate.add_argument("--resume", action="store_true",
                          help="skip points already in the checkpoint journal")
    validate.add_argument("--no-cache", action="store_true",
                          help="disable the content-addressed result cache")
    validate.add_argument("--cache-dir", default=".repro-cache",
                          help="result cache directory (default: .repro-cache)")
    validate.add_argument("--journal",
                          default=".repro-cache/validate-journal.jsonl",
                          help="checkpoint journal path (JSON-lines)")
    validate.add_argument("--timeout", type=float, default=None,
                          help="per-point wall-clock budget in s (pool mode)")
    validate.add_argument("--out", default=None,
                          help="verdict report path (default: "
                               ".repro-cache/validate-<tier>-report.json)")
    validate.add_argument("--engine", default="exact",
                          choices=["exact", "batched", "hybrid"],
                          help="engine tier for the grid; non-exact also "
                               "runs the exact grid and reports per-claim "
                               "verdict deltas (informational)")

    chaos = sub.add_parser(
        "chaos",
        help="run a fault-injection soak tier (degradation report)",
    )
    chaos.add_argument("--tier", default="smoke", choices=["smoke", "full"],
                       help="which chaos tier to run (default: smoke)")
    chaos.add_argument("--workers", type=_positive_int, default=1,
                       help="process-pool size (1 = serial in-process)")
    chaos.add_argument("--schedule", default="cost", choices=["fifo", "cost"],
                       help="dispatch order in pool mode (default: cost)")
    chaos.add_argument("--resume", action="store_true",
                       help="skip points already in the checkpoint journal")
    chaos.add_argument("--no-cache", action="store_true",
                       help="disable the content-addressed result cache")
    chaos.add_argument("--cache-dir", default=".repro-cache",
                       help="result cache directory (default: .repro-cache)")
    chaos.add_argument("--journal",
                       default=".repro-cache/chaos-journal.jsonl",
                       help="checkpoint journal path (JSON-lines)")
    chaos.add_argument("--timeout", type=float, default=None,
                       help="per-point wall-clock budget in s (pool mode)")
    chaos.add_argument("--out", default=None,
                       help="degradation report path (default: "
                            ".repro-cache/chaos-<tier>-report.json)")

    from .obs import CATEGORIES

    trace = sub.add_parser(
        "trace",
        help="run one traced scenario; write JSONL trace + metrics, "
             "print timeline and profile",
    )
    trace.add_argument("--scheme", default="proposed",
                       choices=["proposed", "proposed-multipoll", "conventional"])
    trace.add_argument("--load", type=float, default=1.0)
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument("--time", type=float, default=10.0)
    trace.add_argument("--categories", nargs="+", default=list(CATEGORIES),
                       choices=list(CATEGORIES),
                       help="event categories to record (default: all)")
    trace.add_argument("--capacity", type=int, default=65536,
                       help="trace ring-buffer size in events (0 = unbounded)")
    trace.add_argument("--snapshot-interval", type=float, default=1.0,
                       help="metrics snapshot period in sim seconds (0 = off)")
    trace.add_argument("--out-dir", default=".repro-cache/trace",
                       help="directory for trace.jsonl and metrics.json")

    ess = sub.add_parser(
        "ess",
        help="run a multi-BSS ESS grid with roaming + disjoint-path "
             "backhaul; emit a JSON report",
    )
    ess.add_argument("--rows", type=_positive_int, default=3,
                     help="grid rows (default: 3)")
    ess.add_argument("--cols", type=_positive_int, default=3,
                     help="grid columns (default: 3)")
    ess.add_argument("--seed", type=int, default=1)
    ess.add_argument("--epochs", type=_positive_int, default=8,
                     help="number of sharded epochs (default: 8)")
    ess.add_argument("--epoch", type=float, default=30.0,
                     help="epoch length in sim seconds (default: 30)")
    ess.add_argument("--new-rate", type=float, default=0.08,
                     help="fresh-call arrival rate per kind per cell "
                          "(calls/s, default: 0.08)")
    ess.add_argument("--holding", type=float, default=60.0,
                     help="mean call holding time in s (default: 60)")
    ess.add_argument("--residence", type=float, default=45.0,
                     help="mean cell residence time in s (default: 45)")
    ess.add_argument("--mobility", type=float, default=1.0,
                     help="mobility intensity: scales 1/residence "
                          "(default: 1.0)")
    ess.add_argument("--capacity", type=_positive_int, default=12,
                     help="per-cell admitted-call capacity (default: 12)")
    ess.add_argument("--overlap", type=float, default=0.25,
                     help="cell-overlap guard fraction in [0,1]: handoffs "
                          "may use capacity*(1+overlap) (default: 0.25)")
    ess.add_argument("--disjoint-paths", type=_positive_int, default=2,
                     help="node-disjoint backhaul paths per AP pair "
                          "(default: 2)")
    ess.add_argument("--fault", action="append", type=_parse_link_fault,
                     metavar="A-B[:START[:END]]",
                     help="fault a backhaul link, e.g. ap/1x0-ap/1x1 or "
                          "ap/0x0-ap/0x1:10:50 (repeatable)")
    ess.add_argument("--ap-fault", action="append", type=_parse_ap_fault,
                     metavar="AP[:START[:END]]",
                     help="take a whole AP down, e.g. ap/1x1 or "
                          "ap/0x0:10:50: its cell sheds residents and "
                          "blocks arrivals, and backhaul routes avoid it "
                          "(repeatable)")
    ess.add_argument("--fidelity", default="calls",
                     choices=["calls", "frames"],
                     help="calls: call-level cells only; frames: also run "
                          "per-cell-epoch frame-level BSS shards through "
                          "the sweep executor (default: calls)")
    ess.add_argument("--frames-time", type=float, default=8.0,
                     help="sim seconds per frame-level cell shard "
                          "(frames fidelity only, default: 8)")
    ess.add_argument("--engine", default="exact",
                     choices=["exact", "batched", "hybrid"],
                     help="engine tier for frame-level cell runs "
                          "(fidelity=frames only; default: exact)")
    ess.add_argument("--scheme", default="proposed",
                     choices=["proposed", "proposed-multipoll", "conventional"],
                     help="MAC scheme for frame-level shards")
    ess.add_argument("--workers", type=_positive_int, default=1,
                     help="process-pool size for frames fidelity")
    ess.add_argument("--schedule", default="cost", choices=["fifo", "cost"],
                     help="shard dispatch order in pool mode: the cost "
                          "model weighs each shard's handoff-arrival count "
                          "(default: cost)")
    ess.add_argument("--resume", action="store_true",
                     help="skip shards already in the checkpoint journal")
    ess.add_argument("--no-cache", action="store_true",
                     help="disable the content-addressed result cache")
    ess.add_argument("--cache-dir", default=".repro-cache",
                     help="result cache directory (default: .repro-cache)")
    ess.add_argument("--journal", default=".repro-cache/ess-journal.jsonl",
                     help="checkpoint journal path (JSON-lines)")
    ess.add_argument("--timeout", type=float, default=None,
                     help="per-shard wall-clock budget in s (pool mode)")
    ess.add_argument("--out", default=None,
                     help="JSON report path (default: "
                          ".repro-cache/ess-report.json)")

    redteam = sub.add_parser(
        "redteam",
        help="adversarial scenario search: find, shrink and archive "
             "minimal breach reproducers",
    )
    redteam.add_argument("--budget", type=_positive_int, default=32,
                         help="total scenario evaluations to spend "
                              "(default: 32)")
    redteam.add_argument("--seed", type=int, default=0,
                         help="campaign RNG seed (default: 0)")
    redteam.add_argument("--surface", default="bss",
                         choices=["bss", "ess", "both"],
                         help="search surface: frame-level BSS points, "
                              "call-level ESS grids, or both (default: bss)")
    redteam.add_argument("--batch", type=_positive_int, default=8,
                         help="evaluations per batch / pool dispatch "
                              "(default: 8)")
    redteam.add_argument("--explore", type=float, default=0.5,
                         help="fraction of each batch kept pure-random "
                              "(default: 0.5)")
    redteam.add_argument("--time", type=float, default=12.0,
                         help="sim seconds per BSS evaluation (default: 12)")
    redteam.add_argument("--shrink", action="store_true",
                         help="delta-debug every champion down to a "
                              "minimal reproducer before archiving")
    redteam.add_argument("--shrink-budget", type=_positive_int, default=48,
                         help="per-champion shrink evaluation budget "
                              "(default: 48)")
    redteam.add_argument("--workers", type=_positive_int, default=1,
                         help="process-pool size (1 = serial in-process); "
                              "the report is byte-identical either way")
    redteam.add_argument("--schedule", default="cost",
                         choices=["fifo", "cost"],
                         help="dispatch order in pool mode (default: cost)")
    redteam.add_argument("--timeout", type=float, default=None,
                         help="per-point wall-clock budget in s (pool mode)")
    redteam.add_argument("--archive-dir", default="tests/faults/reproducers",
                         help="reproducer fixture corpus (default: "
                              "tests/faults/reproducers)")
    redteam.add_argument("--no-archive", action="store_true",
                         help="neither read nor write the corpus; every "
                              "champion counts as new")
    redteam.add_argument("--out", default=None,
                         help="campaign report path (default: "
                              ".repro-cache/redteam-campaign.json)")

    serve = sub.add_parser(
        "serve",
        help="serve capacity-planning queries over cached sweep surfaces "
             "(stdlib HTTP JSON API)",
    )
    serve.add_argument("--cache-dir", default=".repro-cache",
                       help="result cache directory to index "
                            "(default: .repro-cache)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8011,
                       help="bind port, 0 picks a free one (default: 8011)")
    serve.add_argument("--workers", type=_positive_int, default=1,
                       help="sweep-executor pool size for back-fill "
                            "(1 = serial in-process)")
    serve.add_argument("--no-backfill", action="store_true",
                       help="answer only from the existing cache; cache "
                            "misses return 404 instead of 202")
    serve.add_argument("--max-queue", type=_positive_int, default=64,
                       help="back-fill queue depth before shedding "
                            "(default: 64)")
    serve.add_argument("--warm", type=_parse_warm_spec, default=None,
                       metavar="SPEC",
                       help="populate the cache before serving, e.g. "
                            "'schemes=proposed,conventional "
                            "loads=0.5,1.0,2.0 seeds=1,2 time=8'")

    # the bench gate owns its full flag set (it is also reachable as
    # ``benchmarks/perf_gate.py``); argparse's REMAINDER cannot forward
    # leading optionals through a subparser, so dispatch before parsing
    sub.add_parser(
        "bench",
        help="perf microbenchmarks + regression gate (see bench --help)",
        add_help=False,
    )
    raw = sys.argv[1:] if argv is None else list(argv)
    if raw[:1] == ["bench"]:
        from .bench import main as bench_main

        return bench_main(raw[1:])

    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 0
    handlers = {
        "tables": _cmd_tables,
        "quick": _cmd_quick,
        "fig5": _cmd_fig5,
        "sweep": _cmd_sweep,
        "validate": _cmd_validate,
        "chaos": _cmd_chaos,
        "trace": _cmd_trace,
        "ess": _cmd_ess,
        "redteam": _cmd_redteam,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
