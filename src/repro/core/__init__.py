"""The paper's contribution: priority backoff, adaptive CW, token-based
transmit permission, theorem-based admission, adaptive bandwidth, and
the QoS access point that composes them."""

from .adaptive_cw import AdaptiveCW
from .admission import AdmissionController, Session, rt_exchange_time
from .bandwidth import AdaptiveBandwidthManager, BandwidthThresholds
from .edcf import AifsDifferentiation, CwDifferentiation
from .erlang import erlang_b, erlang_b_inverse_capacity, offered_load
from .capacity import (
    bianchi_tau,
    estimate_stations,
    failure_probability,
    optimal_attempt_probability,
    optimal_cw,
    saturation_throughput,
)
from .priority_backoff import PriorityBackoff
from .qos_ap import QosAccessPoint, QosApConfig
from .schedulability import (
    VideoFlow,
    VoiceFlow,
    optimal_voice_order,
    total_waiting_time,
    video_delay_bound,
    video_rate_latency,
    video_schedulable,
    voice_response_bound,
    voice_schedulable,
)
from .token_policy import TokenPolicy, TokenState

__all__ = [
    "PriorityBackoff",
    "CwDifferentiation",
    "AifsDifferentiation",
    "erlang_b",
    "erlang_b_inverse_capacity",
    "offered_load",
    "AdaptiveCW",
    "bianchi_tau",
    "failure_probability",
    "saturation_throughput",
    "optimal_attempt_probability",
    "optimal_cw",
    "estimate_stations",
    "VoiceFlow",
    "VideoFlow",
    "voice_response_bound",
    "voice_schedulable",
    "video_rate_latency",
    "video_delay_bound",
    "video_schedulable",
    "optimal_voice_order",
    "total_waiting_time",
    "AdmissionController",
    "Session",
    "rt_exchange_time",
    "TokenPolicy",
    "TokenState",
    "AdaptiveBandwidthManager",
    "BandwidthThresholds",
    "QosAccessPoint",
    "QosApConfig",
]
