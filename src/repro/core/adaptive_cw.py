"""The adaptive contention-window mechanism (paper Section II-A, end).

Stations continuously estimate the congestion level from the slots they
actually observe while backing off:

1. the **utilization factor** — the fraction of observed backoff slots
   that were busy — plus the station's own failed attempts give the
   failure-probability estimate ``p`` ("summing collisions, frame
   losses and busy slots, divided by total observed slots");
2. inverting Bianchi's relation with the current window estimates the
   number of active contenders ``n``;
3. the Cali-Conti-Gregori optimum maps ``n`` and the mean frame
   duration to ``CW_opt``;
4. the new window is smoothed —
   ``CW <- sigma_smooth * CW + (1 - sigma_smooth) * CW_opt`` — which is
   precisely the paper's fix for the "harmful fluctuation" of
   reallocate-every-transmission heuristics.

The controller drives a :class:`~repro.core.priority_backoff.PriorityBackoff`
through its ``scale`` knob, so all priority levels expand or contract
together while keeping their relative ``alpha`` partition (the paper:
"the parameters of different traffic should be adjusted at the same
time").
"""

from __future__ import annotations

from ..phy.timing import PhyTiming
from .capacity import estimate_stations, optimal_cw
from .priority_backoff import PriorityBackoff

__all__ = ["AdaptiveCW"]


class AdaptiveCW(PriorityBackoff):
    """Priority backoff with the paper's channel-adaptive window.

    Instances can be shared by any number of DCF engines; the
    observations simply pool, matching the fact that every station of a
    single BSS sees the same channel.

    Parameters
    ----------
    timing:
        PHY constants (for the slot/frame-time ratio ``T'``).
    mean_frame_bits:
        Mean contention-period frame size, setting ``T'``.
    sigma_smooth:
        Smoothing factor in [0, 1); larger = calmer adaptation.
    update_every:
        Recompute the window after this many observed slots.
    alphas, beta, max_stage_:
        Forwarded to :class:`PriorityBackoff`.
    """

    def __init__(
        self,
        timing: PhyTiming,
        mean_frame_bits: int = 1024 * 8,
        sigma_smooth: float = 0.8,
        update_every: int = 64,
        alphas: tuple[int, ...] = (4, 4, 8),
        beta: int = 0,
        max_stage_: int = 5,
    ) -> None:
        super().__init__(alphas=alphas, beta=beta, max_stage_=max_stage_)
        if not 0.0 <= sigma_smooth < 1.0:
            raise ValueError(f"sigma_smooth must be in [0,1), got {sigma_smooth}")
        if update_every < 1:
            raise ValueError(f"update_every must be >= 1, got {update_every}")
        self.timing = timing
        self.sigma_smooth = sigma_smooth
        self.update_every = update_every
        self._frame_slots = max(
            1.0, timing.data_exchange_time(mean_frame_bits) / timing.slot
        )
        # observation window counters
        self._idle_slots = 0
        self._busy_events = 0
        self._failures = 0
        self._successes = 0
        # per-class positional counters — the paper's utilization
        # factors: busy slots observed inside each priority level's
        # slot range of the current window, over slots observed there
        self._class_busy = [0] * self.num_levels
        self._class_observed = [0] * self.num_levels
        #: smoothed contention-window estimate (total slots, all levels)
        self.cw_estimate = float(self.total_window(0))
        self.updates = 0

    # -- observation hooks (called by the DCF engines) -----------------------
    def observe_slots(self, idle_slots: int, busy_events: int) -> None:
        self._idle_slots += idle_slots
        self._busy_events += busy_events
        if self._observed() >= self.update_every:
            self._update()

    def observe_span(self, start: int, end: int, interrupted: bool) -> None:
        """Positional version: attribute slots to priority classes.

        "We start by defining the utilization factor of a CW for
        real-time handoff traffic to be the number of busy slots
        observed in the first [alpha_0] slots divided by the size of
        the current CW [part]..." — generalized per level below.
        """
        for level in range(self.num_levels):
            offset, width = self.window(level, 0)
            lo = max(start, offset)
            hi = min(end, offset + width)
            if hi > lo:
                self._class_observed[level] += hi - lo
            if interrupted and offset <= end < offset + width:
                self._class_busy[level] += 1
                self._class_observed[level] += 1
        # aggregate bookkeeping + adaptation trigger
        super().observe_span(start, end, interrupted)

    def observe_outcome(self, success: bool) -> None:
        if success:
            self._successes += 1
        else:
            self._failures += 1

    def _observed(self) -> int:
        return self._idle_slots + self._busy_events + self._failures

    # -- adaptation ---------------------------------------------------------------
    def busy_fraction(self) -> float:
        """Current-window estimate of P(an observed slot is busy)."""
        total = self._observed()
        if total == 0:
            return 0.0
        return (self._busy_events + self._failures) / total

    def utilization_factor(self, level: int) -> float:
        """The paper's per-class utilization factor ``u_level``:
        busy fraction among slots observed inside that priority level's
        range of the current contention window."""
        if not 0 <= level < self.num_levels:
            raise ValueError(f"level {level} out of range")
        observed = self._class_observed[level]
        if observed == 0:
            return 0.0
        return self._class_busy[level] / observed

    def utilization_factors(self) -> tuple[float, ...]:
        """All per-class utilization factors, highest priority first."""
        return tuple(self.utilization_factor(j) for j in range(self.num_levels))

    def _update(self) -> None:
        p_busy = min(0.999, self.busy_fraction())
        n_est = estimate_stations(p_busy, self.cw_estimate)
        target = optimal_cw(max(1, round(n_est)), self._frame_slots)
        self.cw_estimate = (
            self.sigma_smooth * self.cw_estimate
            + (1.0 - self.sigma_smooth) * target
        )
        nominal_total = sum(self.alphas)
        self.set_scale(max(1.0 / nominal_total, self.cw_estimate / nominal_total))
        self.updates += 1
        self._idle_slots = 0
        self._busy_events = 0
        self._failures = 0
        self._successes = 0
        self._class_busy = [0] * self.num_levels
        self._class_observed = [0] * self.num_levels
