"""Capacity analysis of 802.11 DCF (Bianchi / Cali-Conti-Gregori).

The adaptive-CW mechanism needs three analytical pieces, all from the
models the paper builds on:

* **Bianchi's fixed point** — per-station attempt probability ``tau``
  given ``(W, m)`` and conditional failure probability ``p``, with
  ``p = 1 - (1-tau)^(n-1)`` closing the loop (extended with an
  independent frame-error probability for noisy channels);
* **saturation throughput** ``S(n, W, m)`` — used to validate that the
  "optimal" window really sits at the capacity peak;
* the **Cali-Conti-Gregori optimum** — balancing expected idle cost
  against expected collision cost gives the optimal per-slot attempt
  probability ``p_opt ~ 1/(n*sqrt(T'/2))`` for mean frame duration
  ``T'`` slots, hence ``CW_opt = 2/p_opt - 1``.
"""

from __future__ import annotations

import math

from ..phy.timing import PhyTiming

__all__ = [
    "bianchi_tau",
    "failure_probability",
    "saturation_throughput",
    "optimal_attempt_probability",
    "optimal_cw",
    "estimate_stations",
]


def bianchi_tau(n: int, cw_min: int, max_stage: int, pe: float = 0.0) -> float:
    """Per-station attempt probability at saturation.

    Solves the Bianchi (2000) fixed point by bisection on ``tau``:

        tau = 2(1-2p) / [ (1-2p)(W+1) + p W (1 - (2p)^m) ]
        p   = 1 - (1-tau)^(n-1) (1ubsequently combined with ``pe``)

    Parameters
    ----------
    n:
        Number of saturated stations (>= 1).
    cw_min:
        Minimum contention window ``W``.
    max_stage:
        Number of doubling stages ``m``.
    pe:
        Independent frame-error probability folded into ``p``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if cw_min < 1:
        raise ValueError(f"cw_min must be >= 1, got {cw_min}")
    if max_stage < 0:
        raise ValueError(f"max_stage must be >= 0, got {max_stage}")
    if not 0.0 <= pe < 1.0:
        raise ValueError(f"pe must be in [0,1), got {pe}")

    w = float(cw_min)
    m = max_stage

    def tau_of_p(p: float) -> float:
        if p == 0.5:
            # the (1-2p) terms vanish; take the analytic limit
            return 2.0 / (w + 1 + 0.5 * w * m)
        num = 2.0 * (1 - 2 * p)
        den = (1 - 2 * p) * (w + 1) + p * w * (1 - (2 * p) ** m)
        return num / den

    def p_of_tau(tau: float) -> float:
        p_coll = 1.0 - (1.0 - tau) ** (n - 1)
        return 1.0 - (1.0 - p_coll) * (1.0 - pe)

    # g(tau) = tau - tau_of_p(p_of_tau(tau)) is monotone increasing on
    # (0, 1); bisect.
    lo, hi = 1e-9, 1.0 - 1e-9

    def g(tau: float) -> float:
        return tau - tau_of_p(p_of_tau(tau))

    glo = g(lo)
    if glo > 0:
        return lo
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if g(mid) > 0:
            hi = mid
        else:
            lo = mid
    return 0.5 * (lo + hi)


def failure_probability(tau: float, n: int, pe: float = 0.0) -> float:
    """Probability a transmission fails (collision or frame error)."""
    if not 0.0 <= tau <= 1.0:
        raise ValueError(f"tau must be in [0,1], got {tau}")
    p_coll = 1.0 - (1.0 - tau) ** (n - 1)
    return 1.0 - (1.0 - p_coll) * (1.0 - pe)


def saturation_throughput(
    n: int,
    tau: float,
    timing: PhyTiming,
    payload_bits: int,
    pe: float = 0.0,
) -> float:
    """Normalized saturation throughput (payload fraction of airtime).

    Bianchi's renewal argument: a generic slot is empty w.p.
    ``(1-tau)^n``, holds a success w.p. ``n tau (1-tau)^(n-1) (1-pe)``,
    and otherwise holds a collision/error; each outcome has its own
    duration.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    p_idle = (1.0 - tau) ** n
    p_tx = 1.0 - p_idle
    p_succ_given_tx = 0.0
    if p_tx > 0:
        p_succ_given_tx = n * tau * (1.0 - tau) ** (n - 1) * (1.0 - pe) / p_tx

    t_success = timing.data_exchange_time(payload_bits) + timing.difs
    t_failure = (
        timing.frame_airtime(payload_bits)
        + timing.sifs
        + timing.ack_time()
        + timing.slot
        + timing.difs
    )
    payload_time = payload_bits / timing.data_rate

    num = p_tx * p_succ_given_tx * payload_time
    den = (
        p_idle * timing.slot
        + p_tx * p_succ_given_tx * t_success
        + p_tx * (1 - p_succ_given_tx) * t_failure
    )
    return num / den


def optimal_attempt_probability(n: int, frame_slots: float) -> float:
    """Cali-Conti-Gregori optimum ``p_opt ~ 1/(n*sqrt(T'/2))``.

    ``frame_slots`` is the mean frame transmission time in backoff
    slots (their ``T'``); the balance of idle vs. collision cost yields
    this closed form for large ``n``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if frame_slots <= 0:
        raise ValueError(f"frame_slots must be > 0, got {frame_slots}")
    p = 1.0 / (n * math.sqrt(frame_slots / 2.0))
    return min(1.0, p)


def optimal_cw(n: int, frame_slots: float) -> float:
    """Contention window whose mean backoff realizes ``p_opt``.

    A uniform draw over ``[0, CW)`` attempts with per-slot probability
    ``2/(CW+1)``; inverting gives ``CW_opt = 2/p_opt - 1``.
    """
    p_opt = optimal_attempt_probability(n, frame_slots)
    return max(1.0, 2.0 / p_opt - 1.0)


def estimate_stations(p_busy: float, cw: float) -> float:
    """Invert ``p = 1 - (1-tau)^(n-1)`` for ``n``.

    ``p_busy`` is the observed probability that a backoff slot is busy
    (the station's estimate of "someone else transmits"); ``tau`` is
    approximated from the *current* mean window as ``2/(cw+1)``.
    Returns a float >= 1 (callers round as needed).
    """
    if not 0.0 <= p_busy < 1.0:
        raise ValueError(f"p_busy must be in [0,1), got {p_busy}")
    if cw < 1:
        raise ValueError(f"cw must be >= 1, got {cw}")
    tau = 2.0 / (cw + 1.0)
    if p_busy == 0.0 or tau >= 1.0:
        return 1.0
    n = 1.0 + math.log(1.0 - p_busy) / math.log(1.0 - tau)
    return max(1.0, n)
