"""Admission control built on the Theorem 1/3 schedulability tests.

A connection (voice or video, new or handoff) is admitted only if,
with the candidate inserted at its priority position, **every** already
admitted source still meets its own bound — Theorem 1 for the voice
set, Theorem 3 for the video set (voice load feeds into the video
bounds, so a voice admission rechecks the videos too).

The bandwidth shares implement the paper's note after Theorem 1: the
per-packet medium time ``T`` is scaled by the share of channel I for
new real-time calls, and of channels I+II for handoff calls.

Video sources also get their token-regeneration fallback ``x_j``
engineered here: "to maximize bandwidth utilization one should have x
as large as possible; the largest x is obtained by solving
D_bound(x) = D" — i.e. all the slack that the rate-latency bound
leaves goes into x.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from ..phy.timing import PhyTiming
from ..traffic.video import VideoParams
from ..traffic.voice import VoiceParams
from .schedulability import (
    VideoFlow,
    VoiceFlow,
    video_delay_bound,
    video_rate_latency,
    video_schedulable,
    voice_schedulable,
)

__all__ = ["rt_exchange_time", "Session", "AdmissionController"]

_session_ids = itertools.count()


def rt_exchange_time(timing: PhyTiming, packet_bits: int) -> float:
    """Medium time of one polled real-time exchange (the theorems' T).

    CF-Poll + SIFS + CF-Data(packet) + SIFS before the next poll.
    """
    return (
        timing.poll_time()
        + timing.sifs
        + timing.frame_airtime(packet_bits)
        + timing.sifs
    )


@dataclasses.dataclass
class Session:
    """One admitted real-time connection."""

    station_id: str
    params: VoiceParams | VideoParams
    handoff: bool
    handoff_time: float
    #: video only: token regeneration fallback x_j (0 for voice)
    token_latency: float = 0.0
    uid: int = dataclasses.field(default_factory=lambda: next(_session_ids))

    @property
    def is_voice(self) -> bool:
        return isinstance(self.params, VoiceParams)


class ShareProvider(typing.Protocol):
    """Where the current channel-I/II splits come from (the bandwidth
    manager, or a fixed stub in tests)."""

    @property
    def share_i(self) -> float: ...

    @property
    def share_ii(self) -> float: ...


class AdmissionController:
    """Theorem-based connection admission for one BSS.

    Parameters
    ----------
    timing:
        PHY constants.
    packet_bits:
        The fixed real-time MPDU payload (all RT packets equal-sized,
        per the paper's formalization).
    shares:
        Live channel-share provider.
    """

    def __init__(
        self,
        timing: PhyTiming,
        packet_bits: int,
        shares: ShareProvider,
        token_latency_fraction: float = 0.25,
    ) -> None:
        if not 0.0 <= token_latency_fraction <= 1.0:
            raise ValueError(
                f"token_latency_fraction must be in [0,1], got {token_latency_fraction}"
            )
        self.timing = timing
        self.packet_bits = packet_bits
        self.shares = shares
        self.token_latency_fraction = token_latency_fraction
        self.packet_time = rt_exchange_time(timing, packet_bits)
        self.voice_sessions: list[Session] = []
        self.video_sessions: list[Session] = []
        self.admitted_count = 0
        self.rejected_count = 0

    # -- flow construction ---------------------------------------------------
    def _share_for(self, handoff: bool) -> float:
        if handoff:
            return min(1.0, self.shares.share_i + self.shares.share_ii)
        return self.shares.share_i

    def _voice_flows(self, sessions: list[Session]) -> list[VoiceFlow]:
        return [
            VoiceFlow(
                rate=s.params.rate,
                max_jitter=s.params.max_jitter,
                handoff_time=s.handoff_time if s.handoff else 0.0,
                share=self._share_for(s.handoff),
            )
            for s in sessions
        ]

    def _video_flows(self, sessions: list[Session]) -> list[VideoFlow]:
        return [
            VideoFlow(
                avg_rate=s.params.avg_rate,
                burstiness=s.params.burstiness,
                max_delay=s.params.max_delay,
                handoff_time=s.handoff_time if s.handoff else 0.0,
                share=self._share_for(s.handoff),
                token_latency=s.token_latency,
            )
            for s in sessions
        ]

    def _violations(
        self, voice: list[Session], video: list[Session]
    ) -> set[int]:
        """UIDs of sessions whose bound fails under the current shares."""
        vf = self._voice_flows(voice)
        df = self._video_flows(video)
        bad: set[int] = set()
        for s, ok in zip(voice, voice_schedulable(vf, self.packet_time)):
            if not ok:
                bad.add(s.uid)
        for s, ok in zip(video, video_schedulable(vf, df, self.packet_time)):
            if not ok:
                bad.add(s.uid)
        return bad

    def _candidate_acceptable(
        self,
        candidate: Session,
        voice: list[Session],
        video: list[Session],
    ) -> bool:
        """Admit iff the candidate's own bound holds and no previously
        feasible session becomes infeasible.

        The "previously feasible" qualifier matters: channel shares move
        under the adaptive bandwidth manager, so a session admitted
        under yesterday's generous share can read as violated today —
        that must not poison every future admission decision.
        """
        before = self._violations(self.voice_sessions, self.video_sessions)
        after = self._violations(voice, video)
        if candidate.uid in after:
            return False
        return after - before <= {candidate.uid}

    # -- ordering (Theorem 2 for voice; tightest delay first for video) ------
    @staticmethod
    def _voice_position(sessions: list[Session], params: VoiceParams) -> int:
        return sum(1 for s in sessions if s.params.rate <= params.rate)

    @staticmethod
    def _video_position(sessions: list[Session], params: VideoParams) -> int:
        return sum(1 for s in sessions if s.params.max_delay <= params.max_delay)

    # -- public API --------------------------------------------------------------
    def try_admit_voice(
        self,
        station_id: str,
        params: VoiceParams,
        handoff: bool = False,
        handoff_time: float = 0.0,
    ) -> Session | None:
        """Admit a voice call if every bound still holds; else None."""
        pos = self._voice_position(self.voice_sessions, params)
        candidate = Session(station_id, params, handoff, handoff_time)
        trial = list(self.voice_sessions)
        trial.insert(pos, candidate)
        if not self._candidate_acceptable(candidate, trial, self.video_sessions):
            self.rejected_count += 1
            return None
        self.voice_sessions = trial
        self.admitted_count += 1
        return candidate

    def try_admit_video(
        self,
        station_id: str,
        params: VideoParams,
        handoff: bool = False,
        handoff_time: float = 0.0,
    ) -> Session | None:
        """Admit a video call; engineers its ``x_j`` from the slack."""
        pos = self._video_position(self.video_sessions, params)
        candidate = Session(station_id, params, handoff, handoff_time)
        trial = list(self.video_sessions)
        trial.insert(pos, candidate)
        # First check feasibility with x_j = 0 ...
        if not self._candidate_acceptable(candidate, self.voice_sessions, trial):
            self.rejected_count += 1
            return None
        # ... then hand a configurable fraction of the remaining slack
        # to x_j (>= one packet time).  Giving x *all* the slack — the
        # paper's "as large as possible" — pins every admitted video at
        # exactly its bound and freezes further admissions; the paper
        # itself backs off from it ("larger x leads to unsmooth video")
        # by boosting reactivation priority, which we also do.
        vf = self._voice_flows(self.voice_sessions)
        df = self._video_flows(trial)
        bound = video_delay_bound(vf, df, pos, self.packet_time)
        slack = max(
            0.0, (params.max_delay - (handoff_time if handoff else 0.0)) - bound
        )
        # x_j gets a fraction of the slack, floored at one packet time
        # when the slack affords it — but never more than the slack
        # itself, or the session would violate its own bound the moment
        # it is admitted.
        floor = min(self.packet_time, slack)
        candidate.token_latency = max(floor, self.token_latency_fraction * slack)
        self.video_sessions = trial
        self.admitted_count += 1
        return candidate

    def remove(self, session: Session) -> None:
        """Release a departing session (idempotent)."""
        for pool in (self.voice_sessions, self.video_sessions):
            for i, s in enumerate(pool):
                if s.uid == session.uid:
                    del pool[i]
                    return

    # -- analytics exposed for Fig. 5 -----------------------------------------
    def voice_bounds(self) -> list[float]:
        """Analytical worst-case response per admitted voice source."""
        from .schedulability import voice_response_bound

        vf = self._voice_flows(self.voice_sessions)
        return [
            voice_response_bound(vf, i, self.packet_time)
            for i in range(len(vf))
        ]

    def video_bounds(self) -> list[float]:
        """Analytical worst-case delay per admitted video source."""
        vf = self._voice_flows(self.voice_sessions)
        df = self._video_flows(self.video_sessions)
        return [
            video_delay_bound(vf, df, j, self.packet_time)
            for j in range(len(df))
        ]

    def utilization_declared(self) -> float:
        """Declared RT load as a fraction of the medium (for reports)."""
        rate = sum(s.params.rate for s in self.voice_sessions) + sum(
            s.params.avg_rate for s in self.video_sessions
        )
        return rate * self.packet_time

    def find(self, station_id: str) -> Session | None:
        """Look up an admitted session by station id."""
        for s in self.voice_sessions + self.video_sessions:
            if s.station_id == station_id:
                return s
        return None
