"""The adaptive bandwidth management strategy (paper Section II-C).

The medium is logically partitioned into three channels:

* **channel I** — real-time traffic in the contention-free period;
* **channel II** — handoff real-time traffic, used *exclusively* and
  with preemptive priority by handoffs (this is what keeps the handoff
  dropping probability pinned below its threshold);
* **channel III** — new requests and data in the contention period,
  whose share is the guaranteed minimum for best-effort traffic.

The shares feed two places: the admission controller (a new call's
per-packet time ``T`` is scaled by ``share_i``, a handoff's by
``share_i + share_ii``) and the AP's CFP budgeting (per superframe the
CFP may use at most ``(share_i + share_ii)`` of the period, with the
channel-II part reserved for handoff polls).

``update`` is a line-by-line transcription of the paper's
``Adaptive Bandwidth Allocation`` pseudocode: dropping probability is
corrected first (it has priority over blocking), then blocking, and
only when both sit below their thresholds are the shares relaxed
toward their floors to hand bandwidth back to data traffic.
"""

from __future__ import annotations

import dataclasses

__all__ = ["BandwidthThresholds", "AdaptiveBandwidthManager"]


@dataclasses.dataclass(frozen=True)
class BandwidthThresholds:
    """Tunables of the adaptation loop (paper's threshold_* family)."""

    #: threshold_D — acceptable handoff dropping probability
    drop: float = 0.01
    #: threshold_B — acceptable new-call blocking probability
    block: float = 0.05
    #: eta — "good enough" bandwidth utilization.  Measured as channel
    #: busy fraction, whose saturation point on this PHY (header + IFS
    #: overheads included) sits near 0.65; eta defaults just below it.
    utilization: float = 0.55
    #: multiplicative expansion factor (paper's "up")
    up: float = 1.25
    #: multiplicative decay factor (paper's "down")
    down: float = 0.9
    #: threshold_channel_I_max — hard cap of channel I
    ch1_max: float = 0.6
    #: threshold_channel_I_medium — cap when utilization is already high
    ch1_medium: float = 0.5
    #: threshold_channel_I_min — floor of channel I.  Floors are kept
    #: high enough that a lightly loaded cell can still admit a
    #: handoff without waiting for the feedback loop to re-grow the
    #: channels (the decay branch reclaims idle bandwidth for data,
    #: not the ability to accept calls).
    ch1_min: float = 0.2
    #: threshold_channel_II_max — cap of channel II when utilization high
    ch2_max: float = 0.25
    #: threshold_channel_II_min — floor of channel II
    ch2_min: float = 0.1
    #: guaranteed minimum share of channel III (data)
    ch3_min: float = 0.15

    def __post_init__(self) -> None:
        for name in ("drop", "block", "utilization"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0,1], got {v}")
        if self.up <= 1.0:
            raise ValueError(f"up must be > 1, got {self.up}")
        if not 0.0 < self.down < 1.0:
            raise ValueError(f"down must be in (0,1), got {self.down}")
        if not (0.0 < self.ch1_min <= self.ch1_medium <= self.ch1_max <= 1.0):
            raise ValueError("need 0 < ch1_min <= ch1_medium <= ch1_max <= 1")
        if not (0.0 < self.ch2_min <= self.ch2_max <= 1.0):
            raise ValueError("need 0 < ch2_min <= ch2_max <= 1")
        if not 0.0 <= self.ch3_min < 1.0:
            raise ValueError(f"ch3_min must be in [0,1), got {self.ch3_min}")


class AdaptiveBandwidthManager:
    """Feedback controller over the (I, II, III) channel split."""

    def __init__(
        self,
        thresholds: BandwidthThresholds | None = None,
        initial_share_i: float = 0.4,
        initial_share_ii: float = 0.1,
    ) -> None:
        self.thresholds = thresholds or BandwidthThresholds()
        t = self.thresholds
        if not t.ch1_min <= initial_share_i <= t.ch1_max:
            raise ValueError(
                f"initial_share_i {initial_share_i} outside "
                f"[{t.ch1_min}, {t.ch1_max}]"
            )
        if not t.ch2_min <= initial_share_ii <= t.ch2_max:
            raise ValueError(
                f"initial_share_ii {initial_share_ii} outside "
                f"[{t.ch2_min}, {t.ch2_max}]"
            )
        self._share_i = initial_share_i
        self._share_ii = initial_share_ii
        #: current cap of channel II; the paper's drop-branch lifts it
        #: to the whole (III-protected) medium when utilization is low
        self._ii_cap = t.ch2_max
        self._clamp()
        self.updates = 0

    # -- ShareProvider protocol ----------------------------------------------
    @property
    def share_i(self) -> float:
        """Channel I share (real-time, CFP)."""
        return self._share_i

    @property
    def share_ii(self) -> float:
        """Channel II share (handoff real-time, CFP, exclusive)."""
        return self._share_ii

    @property
    def share_iii(self) -> float:
        """Channel III share (new requests + data, CP)."""
        return 1.0 - self._share_i - self._share_ii

    def _clamp(self) -> None:
        t = self.thresholds
        self._share_i = min(max(self._share_i, t.ch1_min), t.ch1_max)
        self._share_ii = min(max(self._share_ii, t.ch2_min), self._ii_cap)
        # never squeeze channel III below its guaranteed minimum
        excess = (self._share_i + self._share_ii) - (1.0 - t.ch3_min)
        if excess > 0:
            # shave channel I first (channel II protects handoffs)
            take = min(excess, self._share_i - t.ch1_min)
            self._share_i -= take
            excess -= take
            if excess > 0:
                self._share_ii = max(t.ch2_min, self._share_ii - excess)

    def update(
        self, drop_prob: float, block_prob: float, utilization: float
    ) -> None:
        """One adaptation step — the paper's pseudocode verbatim."""
        for name, v in (
            ("drop_prob", drop_prob),
            ("block_prob", block_prob),
            ("utilization", utilization),
        ):
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0,1], got {v}")
        t = self.thresholds
        if drop_prob > t.drop:
            grown = max(self._share_i, self._share_ii) * t.up
            if utilization < t.utilization:
                # "min(..., total bandwidth)" — only channel III's floor
                # limits how far the handoff channel may grow
                self._ii_cap = 1.0
                self._share_ii = min(grown, 1.0)
            else:
                self._ii_cap = t.ch2_max
                self._share_ii = min(grown, t.ch2_max)
        elif block_prob > t.block:
            if utilization < t.utilization:
                self._share_i = min(self._share_i * t.up, t.ch1_max)
            else:
                self._share_i = min(self._share_i * t.up, t.ch1_medium)
        elif utilization < t.utilization:
            self._ii_cap = t.ch2_max
            self._share_ii = max(self._share_ii * t.down, t.ch2_min)
            self._share_i = max(self._share_i * t.down, t.ch1_min)
        self._clamp()
        self.updates += 1
