"""Theorems 1-3: jitter/delay bounds and the optimal voice order.

These are the paper's analytical guarantees, reconstructed from the
proof skeletons that survive in the text (see DESIGN.md):

* **Theorem 1 (voice jitter).**  With the voice sources served in
  priority order and ``T`` the medium time of one polled real-time
  exchange, the worst-case response for source ``i`` is bounded by

      W_i = T * ( i + delta_i * sum_{k<=i} r_k )

  (each higher-or-equal priority source k contributes at most
  ``delta_i * r_k + 1`` packets inside a window of length
  ``delta_i``).  Source ``i`` meets its jitter budget if
  ``W_i <= phi * (delta_i - t_h)``, where ``phi`` is the bandwidth
  share available to its class (channel I, or I+II for handoffs,
  per the paper's note after Theorem 1) and ``t_h`` its handoff
  latency (0 for new calls).

* **Theorem 2 (optimal voice order).**  Serving voice sources in
  non-decreasing per-cycle demand (ascending rate — "the smaller the
  average rate, the higher the priority") minimizes the average
  waiting time; an SPT exchange argument.

* **Theorem 3 (video delay).**  After the voice sources and the
  ``j-1`` higher-priority video sources, video ``j`` sees a
  latency-rate server with

      R_j = phi / T - sum_k r_k - sum_{m<j} rho_m        [packets/s]
      L_j = (T / phi) * (n_voice + j)                    [seconds]

  and, being ``(rho_j, sigma_j)``-upper constrained, its delay is at
  most ``L_j + (sigma_j + 1) / R_j``; add the token-regeneration
  latency ``x_j`` for a source reactivating from idle.  Admission
  requires the total to stay within ``D_j - t_h``.
"""

from __future__ import annotations

import dataclasses
import typing

__all__ = [
    "VoiceFlow",
    "VideoFlow",
    "voice_response_bound",
    "voice_schedulable",
    "video_rate_latency",
    "video_delay_bound",
    "video_schedulable",
    "optimal_voice_order",
    "total_waiting_time",
]


@dataclasses.dataclass(frozen=True)
class VoiceFlow:
    """Analytical view of one admitted voice source."""

    rate: float  # r_i, packets/s
    max_jitter: float  # delta_i, seconds
    handoff_time: float = 0.0  # t_h, seconds (0 for new calls)
    share: float = 1.0  # phi, bandwidth fraction of its class

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.max_jitter <= 0:
            raise ValueError("rate and max_jitter must be > 0")
        if self.handoff_time < 0:
            raise ValueError("handoff_time must be >= 0")
        if not 0 < self.share <= 1:
            raise ValueError("share must be in (0, 1]")


@dataclasses.dataclass(frozen=True)
class VideoFlow:
    """Analytical view of one admitted video source."""

    avg_rate: float  # rho_j, packets/s
    burstiness: float  # sigma_j, packets
    max_delay: float  # D_j, seconds
    handoff_time: float = 0.0
    share: float = 1.0
    token_latency: float = 0.0  # x_j, reactivation fallback interval

    def __post_init__(self) -> None:
        if self.avg_rate <= 0 or self.max_delay <= 0:
            raise ValueError("avg_rate and max_delay must be > 0")
        if self.burstiness < 0 or self.handoff_time < 0 or self.token_latency < 0:
            raise ValueError("burstiness/handoff_time/token_latency must be >= 0")
        if not 0 < self.share <= 1:
            raise ValueError("share must be in (0, 1]")


# ------------------------------------------------------------------ voice ----
def voice_response_bound(
    voices: typing.Sequence[VoiceFlow], index: int, packet_time: float
) -> float:
    """Theorem 1's worst-case response time ``W_i`` for ``voices[index]``.

    ``voices`` must already be in service-priority order; ``packet_time``
    is ``T``, the raw medium time of one polled exchange.
    """
    if not 0 <= index < len(voices):
        raise IndexError(f"index {index} out of range")
    if packet_time <= 0:
        raise ValueError(f"packet_time must be > 0, got {packet_time}")
    flow = voices[index]
    higher = voices[: index + 1]
    rate_sum = sum(v.rate for v in higher)
    raw = packet_time * (len(higher) + flow.max_jitter * rate_sum)
    return raw / flow.share


def voice_schedulable(
    voices: typing.Sequence[VoiceFlow], packet_time: float
) -> list[bool]:
    """Per-source Theorem 1 check, in the given priority order."""
    return [
        voice_response_bound(voices, i, packet_time)
        <= v.max_jitter - v.handoff_time
        for i, v in enumerate(voices)
    ]


# ------------------------------------------------------------------ video ----
def video_rate_latency(
    voices: typing.Sequence[VoiceFlow],
    videos: typing.Sequence[VideoFlow],
    index: int,
    packet_time: float,
) -> tuple[float, float]:
    """Theorem 3's service curve ``(R_j, L_j)`` for ``videos[index]``."""
    if not 0 <= index < len(videos):
        raise IndexError(f"index {index} out of range")
    if packet_time <= 0:
        raise ValueError(f"packet_time must be > 0, got {packet_time}")
    flow = videos[index]
    voice_rate = sum(v.rate for v in voices)
    higher_video = sum(v.avg_rate for v in videos[:index])
    rate = flow.share / packet_time - voice_rate - higher_video
    latency = (packet_time / flow.share) * (len(voices) + index + 1)
    return rate, latency


def video_delay_bound(
    voices: typing.Sequence[VoiceFlow],
    videos: typing.Sequence[VideoFlow],
    index: int,
    packet_time: float,
) -> float:
    """Theorem 3's delay bound for ``videos[index]`` (inf if overloaded)."""
    flow = videos[index]
    rate, latency = video_rate_latency(voices, videos, index, packet_time)
    if rate <= 0:
        return float("inf")
    return flow.token_latency + latency + (flow.burstiness + 1.0) / rate


def video_schedulable(
    voices: typing.Sequence[VoiceFlow],
    videos: typing.Sequence[VideoFlow],
    packet_time: float,
) -> list[bool]:
    """Per-source Theorem 3 check, in the given priority order."""
    return [
        video_delay_bound(voices, videos, j, packet_time)
        <= v.max_delay - v.handoff_time
        for j, v in enumerate(videos)
    ]


# --------------------------------------------------------------- theorem 2 ----
def optimal_voice_order(
    voices: typing.Sequence[VoiceFlow],
) -> list[VoiceFlow]:
    """Theorem 2's optimal service order: ascending rate.

    "In token buffers for voice sources, the smaller the average rate
    is, the higher the priority becomes" — the SPT order over per-cycle
    service demands (which grow with the rate).
    """
    return sorted(voices, key=lambda v: v.rate)


def total_waiting_time(demands: typing.Sequence[float]) -> float:
    """Total waiting time of a service order with per-source demands.

    Source ``i`` waits for everything scheduled before it:
    ``sum_i sum_{k<i} d_k``.  Theorem 2: minimized by ascending
    ``d_i`` (used by the ablation benchmark and the property tests).
    """
    if any(d < 0 for d in demands):
        raise ValueError("demands must be >= 0")
    waiting = 0.0
    acc = 0.0
    for d in demands:
        waiting += acc
        acc += d
    return waiting
