"""The paper's priority enforcement mechanism for request access.

Instead of the standard single backoff range, the backoff-time
generation function partitions each contention window by priority
level ``j``:

    backoff(i, j)  is uniform over
        [ offset_j(i),  offset_j(i) + alpha_j * 2**i )
    with offset_j(i) = sum_{k < j} alpha_k * 2**i  +  beta * j

where ``i`` is the retry stage, ``alpha_j`` sets the number of slots of
level ``j``'s own window and ``beta`` inserts guard slots between
levels.  A level-0 station therefore always draws a numerically
smaller backoff than any level-1 station in the same stage, giving it
strict precedence both on first access and after collisions, while
windows still double with ``i`` so same-level collisions stay
resolvable (the paper's Table I shows the 4/4/8-slot example).

The paper's Table I assignment: level 0 = real-time handoff requests,
level 1 = admitted-but-inactive video (here: real-time) reactivations,
level 2 = new requests and data — with the widest window for level 2
because that class has the most contenders.

Because a frozen timer keeps its absolute slot position, a low-priority
station that has deferred repeatedly drifts toward the front — the
mechanism the paper credits for starvation-freedom.
"""

from __future__ import annotations

import math

import numpy as np

from ..mac.backoff import BackoffPolicy

__all__ = ["PriorityBackoff"]


class PriorityBackoff(BackoffPolicy):
    """Partitioned multi-level backoff (the paper's Section II-A).

    Parameters
    ----------
    alphas:
        Slots of each level's base (stage-0) window, highest priority
        first.  Paper default ``(4, 4, 8)``.
    beta:
        Guard slots between consecutive levels (paper's ``beta``).
    max_stage_:
        Stage at which windows stop doubling.
    scale:
        Multiplies every ``alpha_j`` — the knob the adaptive-CW
        controller turns.  Windows never shrink below one slot.
    """

    def __init__(
        self,
        alphas: tuple[int, ...] = (4, 4, 8),
        beta: int = 0,
        max_stage_: int = 5,
        scale: float = 1.0,
    ) -> None:
        if not alphas:
            raise ValueError("need at least one priority level")
        if any(a < 1 for a in alphas):
            raise ValueError(f"alphas must be >= 1, got {alphas}")
        if beta < 0:
            raise ValueError(f"beta must be >= 0, got {beta}")
        if max_stage_ < 0:
            raise ValueError(f"max_stage_ must be >= 0, got {max_stage_}")
        if scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        self.alphas = tuple(alphas)
        self.beta = beta
        self._max_stage = max_stage_
        self.scale = scale

    @property
    def num_levels(self) -> int:
        return len(self.alphas)

    def max_stage(self) -> int:
        return self._max_stage

    def _width(self, level: int, stage: int) -> int:
        base = max(1, int(math.ceil(self.alphas[level] * self.scale)))
        return base * (2 ** min(stage, self._max_stage))

    def window(self, level: int, stage: int) -> tuple[int, int]:
        """``(offset, width)`` of level ``level``'s slots at ``stage``.

        The draw is uniform over ``[offset, offset + width)``.
        """
        if not 0 <= level < self.num_levels:
            raise ValueError(
                f"level {level} out of range [0, {self.num_levels})"
            )
        if stage < 0:
            raise ValueError(f"negative stage {stage}")
        offset = sum(self._width(k, stage) for k in range(level)) + self.beta * level
        return offset, self._width(level, stage)

    def draw_slots(self, level: int, stage: int, rng: np.random.Generator) -> int:
        offset, width = self.window(level, stage)
        return offset + int(rng.integers(0, width))

    def draw_window(self, level: int, stage: int) -> tuple[int, int]:
        return self.window(level, stage)

    def set_scale(self, scale: float) -> None:
        """Adaptive-CW hook: rescale every level's window."""
        if scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        self.scale = scale

    def total_window(self, stage: int) -> int:
        """Slots spanned by all levels at ``stage`` (incl. guard slots)."""
        last = self.num_levels - 1
        offset, width = self.window(last, stage)
        return offset + width

    def table(self, stages: int = 3) -> list[dict]:
        """The paper's Table I: backoff ranges per level and stage."""
        rows = []
        for stage in range(stages):
            for level in range(self.num_levels):
                offset, width = self.window(level, stage)
                rows.append(
                    {
                        "stage": stage,
                        "level": level,
                        "range": (offset, offset + width - 1),
                    }
                )
        return rows
