"""Erlang loss analysis of the call-admission layer.

With Poisson call arrivals, exponential holding times and
blocked-calls-cleared admission (exactly what the call generator and
either AP implement), a single-class cell is an M/M/N/N system: the
blocking probability is Erlang's B formula.  This gives a closed-form
cross-check of the whole call-level pipeline — arrivals, admission
capacity, holding-time departures — independent of the MAC below it
(`tests/network/test_erlang_validation.py`).
"""

from __future__ import annotations

import math

__all__ = ["erlang_b", "erlang_b_inverse_capacity", "offered_load"]


def erlang_b(servers: int, offered: float) -> float:
    """Erlang-B blocking probability for ``servers`` lines and
    ``offered`` Erlangs.

    Uses the numerically stable recurrence
    ``B(0) = 1;  B(n) = a*B(n-1) / (n + a*B(n-1))``.
    """
    if servers < 0:
        raise ValueError(f"servers must be >= 0, got {servers}")
    if offered < 0:
        raise ValueError(f"offered must be >= 0, got {offered}")
    if offered == 0:
        return 0.0
    b = 1.0
    for n in range(1, servers + 1):
        b = offered * b / (n + offered * b)
    return b


def erlang_b_inverse_capacity(offered: float, target_blocking: float) -> int:
    """Smallest number of servers keeping blocking <= target."""
    if not 0 < target_blocking < 1:
        raise ValueError(f"target_blocking must be in (0,1), got {target_blocking}")
    if offered < 0:
        raise ValueError(f"offered must be >= 0, got {offered}")
    n = 0
    while erlang_b(n, offered) > target_blocking:
        n += 1
        if n > 10_000:  # pragma: no cover - absurd input guard
            raise RuntimeError("capacity search diverged")
    return n


def offered_load(arrival_rate: float, mean_holding: float) -> float:
    """Offered traffic in Erlangs: ``lambda * holding``."""
    if arrival_rate < 0 or mean_holding < 0:
        raise ValueError("arrival_rate and mean_holding must be >= 0")
    return arrival_rate * mean_holding


def erlang_b_exact(servers: int, offered: float) -> float:
    """Direct-sum Erlang B (for cross-checking the recurrence in tests)."""
    if offered == 0:
        return 0.0
    terms = [offered**n / math.factorial(n) for n in range(servers + 1)]
    return terms[-1] / sum(terms)
