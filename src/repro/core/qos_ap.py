"""The proposed QoS access point: admission + tokens + adaptive bandwidth.

This class wires the paper's three mechanisms to the MAC substrate:

* it receives request frames from the (priority-) contention period and
  runs the Theorem 1/3 **admission control** — handoff requests are
  tested against the channel I+II share, new calls against channel I;
* it drives CFPs with the **token-buffer transmit-permission policy**;
  a CFP starts as soon as a token exists (subject to channel III's
  guaranteed contention-period share), which is why the proposed
  scheme's light-load delay beats the fixed-superframe baseline, and
  the next CFP is announced by observing the earliest pending token;
* per superframe-equivalent it budgets CFP time into channel I
  (real-time) and channel II (handoff-exclusive), with the
  **adaptive bandwidth manager** moving the splits in response to the
  measured dropping/blocking/utilization triple.
"""

from __future__ import annotations

import dataclasses
import typing

from ..mac.frames import Frame, FrameType
from ..mac.pcf import PcfCoordinator, PollAction
from ..mac.station import RealTimeStation
from ..obs.registry import MetricsRegistry, counter_property
from ..phy.channel import Channel, ChannelListener
from ..phy.timing import PhyTiming
from ..sim.engine import Simulator, TimerHandle
from ..traffic.base import TrafficKind
from ..traffic.video import VideoParams
from ..traffic.voice import VoiceParams
from .admission import AdmissionController, Session
from .bandwidth import AdaptiveBandwidthManager
from .token_policy import TokenPolicy

__all__ = ["QosApConfig", "QosAccessPoint"]


@dataclasses.dataclass(frozen=True)
class QosApConfig:
    """Tunables of the proposed AP."""

    #: superframe-equivalent period over which channel shares are budgeted
    superframe: float = 0.075
    #: fixed real-time MPDU payload
    rt_packet_bits: int = 512 * 8
    #: 1 = single CF-Polls; >1 = CF-MultiPoll batches of this size
    multipoll_size: int = 1
    #: period of the adaptive-bandwidth feedback loop (0 disables)
    adaptation_interval: float = 1.0
    #: voice scan order; 'ascending' is Theorem 2's optimum
    voice_order: str = "ascending"
    #: HCF-style TXOP: max frames a backlogged station may send per
    #: poll (1 = classic PCF single response)
    txop_packets: int = 1
    #: evict an admitted source after this many consecutive abnormal
    #: nulls (polls that never reached it); its token buffer and
    #: admitted bandwidth are reclaimed and it must re-request
    #: admission.  0 disables eviction.
    evict_after_nulls: int = 6
    #: upper bound on the contention-period gap owed after one CFP.
    #: The long-run channel-III share is protected by admission (RT
    #: load is capped at the I+II shares), so this gate only needs to
    #: guarantee data some airtime between CFPs; letting one long CFP
    #: impose its full proportional debt would instead stall the next
    #: poll past the voice sources' Theorem 1 bounds.
    cp_debt_cap: float = 0.002

    def __post_init__(self) -> None:
        if self.superframe <= 0:
            raise ValueError(f"superframe must be > 0, got {self.superframe}")
        if self.rt_packet_bits <= 0:
            raise ValueError("rt_packet_bits must be > 0")
        if self.multipoll_size < 1:
            raise ValueError("multipoll_size must be >= 1")
        if self.adaptation_interval < 0:
            raise ValueError("adaptation_interval must be >= 0")
        if self.cp_debt_cap < 0:
            raise ValueError("cp_debt_cap must be >= 0")
        if self.txop_packets < 1:
            raise ValueError("txop_packets must be >= 1")
        if self.evict_after_nulls < 0:
            raise ValueError("evict_after_nulls must be >= 0")


#: the AP's registry-backed decision counters (``ap_<name>`` metrics)
_AP_COUNTERS = (
    "admitted_new",
    "admitted_handoff",
    "blocked_new",
    "rejected_handoff",
    "reactivations",
    "evictions",
    "readmissions",
    "reclaimed_bandwidth",  # admitted airtime fraction returned by evictions
)


class QosAccessPoint(ChannelListener):
    """The paper's QoS provisioning system, running at the AP.

    Parameters
    ----------
    sim, channel, timing, nav:
        MAC substrate (the nav is shared with all stations).
    config:
        See :class:`QosApConfig`.
    bandwidth:
        Adaptive bandwidth manager (a default one is built if omitted).
    feedback:
        ``fn() -> (drop_prob, block_prob, utilization)`` sampled every
        ``adaptation_interval`` to drive the bandwidth manager.
    ap_id:
        MAC address of the AP.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: Channel,
        timing: PhyTiming,
        nav,
        config: QosApConfig | None = None,
        bandwidth: AdaptiveBandwidthManager | None = None,
        feedback: typing.Callable[[], tuple[float, float, float]] | None = None,
        ap_id: str = "ap",
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.sim = sim
        self.channel = channel
        self.timing = timing
        self.ap_id = ap_id
        self.config = config or QosApConfig()
        self.bandwidth = bandwidth or AdaptiveBandwidthManager()
        self.feedback = feedback
        #: the scenario-wide metrics registry (one is created when the
        #: AP is built standalone); the token policy and coordinator
        #: register their instruments in the same registry
        self.metrics = metrics or MetricsRegistry()
        self.admission = AdmissionController(
            timing, self.config.rt_packet_bits, self.bandwidth
        )
        self.policy = TokenPolicy(
            sim,
            multipoll_size=self.config.multipoll_size,
            budget_check=self._budget_allows,
            voice_order=self.config.voice_order,
            drain_interval=self.admission.packet_time,
            evict_after=self.config.evict_after_nulls,
            metrics=self.metrics,
        )
        self.policy.on_token = self._maybe_start_cfp
        self.policy.on_evict = self._evict_station
        self.coordinator = PcfCoordinator(
            sim, channel, timing, nav, ap_id,
            txop_packets=self.config.txop_packets,
            metrics=self.metrics,
        )
        self.stations: dict[str, RealTimeStation] = {}
        #: optional :class:`repro.validate.invariants.InvariantSuite`
        self.monitor = None
        #: optional :class:`repro.obs.trace.TraceRecorder` (``admission``)
        self.trace = None

        self._earliest_next_cfp = 0.0
        self._cfp_started_at = 0.0
        self._check_timer: TimerHandle | None = None
        self._used_new = 0.0
        self._used_handoff = 0.0

        #: registry-backed decision counters; the ``ap.<name>``
        #: attributes (``admitted_new`` etc.) read and write these via
        #: :func:`repro.obs.registry.counter_property`, so existing
        #: call sites and tests are unchanged
        self._counters = {
            name: self.metrics.counter(f"ap_{name}") for name in _AP_COUNTERS
        }
        self._evicted_ids: set[str] = set()

        channel.attach(self)
        if self.feedback is not None and self.config.adaptation_interval > 0:
            self.sim.call_in(self.config.adaptation_interval, self._adapt)

    # -- station registry -----------------------------------------------------
    def register_station(self, station: RealTimeStation) -> None:
        """Attach a real-time terminal (called by the call generator)."""
        self.stations[station.station_id] = station
        self.coordinator.register(station.station_id, station)

    def station_departed(self, station_id: str) -> None:
        """Tear down a terminated/left call (idempotent)."""
        self.stations.pop(station_id, None)
        self.coordinator.unregister(station_id)
        self.policy.remove_session(station_id)
        self._evicted_ids.discard(station_id)
        session = self.admission.find(station_id)
        if session is not None:
            self.admission.remove(session)

    def _evict_station(self, station_id: str) -> None:
        """Missed-poll escalation: reclaim an unreachable session.

        Unlike :meth:`station_departed` the station stays registered
        (with the AP and the coordinator) so a recovery can re-request
        admission through the normal REQUEST path; only its token
        buffer and admitted bandwidth are torn down.
        """
        session = self.admission.find(station_id)
        if session is not None:
            rate = (
                session.params.rate
                if session.is_voice
                else session.params.avg_rate
            )
            self.reclaimed_bandwidth += rate * self.admission.packet_time
            self.admission.remove(session)
        self.policy.remove_session(station_id)
        station = self.stations.get(station_id)
        if station is not None:
            station.evicted()
        self.evictions += 1
        self._evicted_ids.add(station_id)
        if self.trace is not None:
            self.trace.emit(
                self.sim.now, "admission", "evict", station=station_id
            )
        if self.monitor is not None:
            self.monitor.session_evicted(station_id, self.sim.now)

    # -- request handling (ChannelListener) -----------------------------------
    def on_frame(self, frame: Frame, ok: bool, now: float) -> None:
        if not ok or frame.ftype != FrameType.REQUEST or frame.dest != self.ap_id:
            return
        info = frame.info or {}
        sid = frame.src
        station = self.stations.get(sid)
        if station is None:
            # e.g. a request that was still on the air when its call
            # tore down — admitting it would create a ghost session
            # the coordinator can never poll
            return
        if info.get("reactivation"):
            self.reactivations += 1
            if self.trace is not None:
                self.trace.emit(now, "admission", "reactivation", station=sid)
            if self.policy.grant_token(sid) and station is not None:
                station.grant()
            return
        if self.admission.find(sid) is not None:
            # duplicate request (lost ACK path): re-grant idempotently
            if station is not None:
                station.grant()
            return
        handoff = bool(info.get("handoff"))
        handoff_time = float(info.get("handoff_time", 0.0))
        qos = info.get("qos")
        session: Session | None
        if info.get("kind") == TrafficKind.VOICE or isinstance(qos, VoiceParams):
            session = self.admission.try_admit_voice(sid, qos, handoff, handoff_time)
        else:
            session = self.admission.try_admit_video(sid, qos, handoff, handoff_time)
        if session is None:
            if handoff:
                self.rejected_handoff += 1
            else:
                self.blocked_new += 1
            if self.trace is not None:
                self.trace.emit(
                    now, "admission", "reject", station=sid, handoff=handoff
                )
            if station is not None:
                station.deny()
            return
        if handoff:
            self.admitted_handoff += 1
        else:
            self.admitted_new += 1
        readmitted = sid in self._evicted_ids
        if readmitted:
            # a previously evicted session earned its way back in
            self.readmissions += 1
            self._evicted_ids.discard(sid)
        if self.trace is not None:
            self.trace.emit(
                now, "admission", "accept", station=sid, handoff=handoff,
                kind=("voice" if session.is_voice else "video"),
                readmission=readmitted,
            )
        self.policy.add_session(session)
        if self.monitor is not None:
            self.monitor.session_admitted(session)
        if station is not None:
            station.grant()

    # -- CFP budgeting (channels I and II) -----------------------------------
    def _budget_allows(self, session: Session) -> bool:
        sf = self.config.superframe
        cost = self.admission.packet_time
        budget_i = self.bandwidth.share_i * sf
        budget_ii = self.bandwidth.share_ii * sf
        if session.handoff:
            # channel II is handoff-exclusive; spare channel I time may
            # also be used, but never ahead of non-handoff RT demand.
            spare_i = max(0.0, budget_i - self._used_new)
            return self._used_handoff + cost <= budget_ii + spare_i
        return self._used_new + cost <= budget_i

    # -- CFP lifecycle --------------------------------------------------------
    def _maybe_start_cfp(self) -> None:
        if self.coordinator.active or not self.policy.any_token():
            return
        now = self.sim.now
        if now < self._earliest_next_cfp:
            self._schedule_check(self._earliest_next_cfp)
            return
        self._used_new = 0.0
        self._used_handoff = 0.0
        self._cfp_started_at = now
        max_dur = (
            (self.bandwidth.share_i + self.bandwidth.share_ii)
            * self.config.superframe
        )
        if self.monitor is not None:
            self.monitor.cfp_started(now, max_dur)
        self.coordinator.start_cfp(self, max_dur, self._cfp_ended)

    def _cfp_ended(self) -> None:
        now = self.sim.now
        # Channel III's guaranteed contention-period share, charged
        # proportionally to the CFP time actually consumed: a CFP of
        # duration d owes the CP  d * share_iii / (share_i + share_ii),
        # which preserves the long-run split while letting short CFPs
        # recur quickly (the proposed scheme's on-demand CFP start).
        cfp_share = self.bandwidth.share_i + self.bandwidth.share_ii
        duration = now - self._cfp_started_at
        debt = min(
            duration * self.bandwidth.share_iii / cfp_share,
            self.config.cp_debt_cap,
        )
        self._earliest_next_cfp = now + debt
        if self.monitor is not None:
            self.monitor.cfp_ended(now, duration, debt)
        if self.policy.any_token():
            self._schedule_check(self._earliest_next_cfp)
        else:
            regen = self.policy.next_token_time()
            if regen < float("inf"):
                self._schedule_check(max(regen, self._earliest_next_cfp))

    def _schedule_check(self, at: float) -> None:
        if self._check_timer is not None and not self._check_timer.cancelled:
            if self._check_timer.time <= at:
                return  # an earlier check is already pending
            self._check_timer.cancel()
        self._check_timer = self.sim.call_at(at, self._check_fired)

    def _check_fired(self) -> None:
        self._check_timer = None
        self._maybe_start_cfp()

    # -- CfpScheduler interface (delegates to the token policy) ---------------
    def next_action(self, now: float, elapsed: float) -> PollAction | None:
        return self.policy.next_action(now, elapsed)

    def on_response(
        self, station_id: str, frame: Frame | None, ok: bool, now: float
    ) -> None:
        if frame is None and not ok:
            # Abnormal null: the poll never reached the station, so no
            # exchange happened — nothing is charged to the channel
            # budgets; the policy runs its miss escalation.
            self.policy.on_response(station_id, frame, ok, now)
            return
        state = self.policy.get(station_id)
        if state is not None:
            # charge the nominal exchange time to the right channel
            if state.session.handoff:
                self._used_handoff += self.admission.packet_time
            else:
                self._used_new += self.admission.packet_time
        self.policy.on_response(station_id, frame, ok, now)
        if frame is not None and frame.packet is not None:
            station = self.stations.get(station_id)
            if station is not None:
                station.delivery_outcome(frame.packet, ok, now)

    # -- adaptive bandwidth loop -------------------------------------------------
    def _adapt(self) -> None:
        assert self.feedback is not None
        drop, block, util = self.feedback()
        self.bandwidth.update(drop, block, util)
        self.sim.call_in(self.config.adaptation_interval, self._adapt)


for _field in _AP_COUNTERS:
    setattr(QosAccessPoint, _field, counter_property(_field))
del _field
