"""The packet transmit-permission policy (paper Section II-B).

The AP keeps one *token buffer* per admitted real-time source and runs
the CFP polls off them:

1. scan the **voice** token buffers in priority order (ascending rate —
   Theorem 2's optimal order).  Token found → remove it, poll that
   terminal; if the response carried the piggyback bit, generate the
   next token ``1/r_i`` after the transmission;
2. otherwise scan the **video** token buffers (ascending delay bound).
   Token found → poll, but do **not** remove the token while responses
   keep the piggyback set (the backlogged burst is drained
   back-to-back).  A zero piggyback that is not the last (EOF) packet
   removes the token and regenerates it ``x_j`` later — unless a
   reactivation request re-arms it first;
3. no tokens anywhere → end the CFP; the next CFP is announced by
   observing the earliest pending token regeneration.

The CF-MultiPoll variant gathers up to ``multipoll_size`` token holders
into a single poll frame.
"""

from __future__ import annotations

import typing

from ..mac.frames import Frame
from ..mac.pcf import PollAction
from ..obs.registry import MetricsRegistry
from ..sim.engine import Simulator, TimerHandle
from .admission import Session

__all__ = ["TokenState", "TokenPolicy"]


class TokenState:
    """Token buffer of one admitted source."""

    __slots__ = (
        "session",
        "has_token",
        "regen_handle",
        "polls",
        "tokens_generated",
        "last_token_time",
        "misses",
    )

    def __init__(self, session: Session, now: float = 0.0) -> None:
        self.session = session
        self.has_token = True  # a freshly admitted source is pollable
        self.regen_handle: TimerHandle | None = None
        self.polls = 0
        self.tokens_generated = 1
        #: when the current/most recent token appeared — the anchor of
        #: the drift-free 1/r pacing clock for voice
        self.last_token_time = now
        #: consecutive *abnormal* nulls (lost poll / unreachable radio);
        #: legit empty-buffer nulls do not count
        self.misses = 0

    @property
    def station_id(self) -> str:
        return self.session.station_id


class TokenPolicy:
    """Token bookkeeping + the CFP scheduling policy built on it.

    Parameters
    ----------
    sim:
        Simulator (token regeneration runs on timers).
    multipoll_size:
        1 = classic single CF-Polls; >1 = CF-MultiPoll batches.
    budget_check:
        Optional ``fn(session) -> bool`` consulted before polling —
        the AP's channel-I/II time budgeting hook.
    drain_interval:
        Voice token regeneration when the response signalled an actual
        *backlog*: a source that fell behind catches up at one packet
        per ``drain_interval`` instead of ``1/r``.  A piggyback that
        only signals an ongoing-but-currently-drained spurt still
        paces at ``1/r``.  0 disables draining (always ``1/r``).
    evict_after:
        Drop a source after this many *consecutive* abnormal nulls
        (corrupted polls that exhausted their retries, unreachable
        radios) via the ``on_evict`` callback; legit empty-buffer
        nulls never count.  0 (the default) disables eviction.
    """

    def __init__(
        self,
        sim: Simulator,
        multipoll_size: int = 1,
        budget_check: typing.Callable[[Session], bool] | None = None,
        voice_order: str = "ascending",
        drain_interval: float = 0.0,
        evict_after: int = 0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if multipoll_size < 1:
            raise ValueError(f"multipoll_size must be >= 1, got {multipoll_size}")
        if voice_order not in ("ascending", "descending", "arrival"):
            raise ValueError(
                "voice_order must be 'ascending' (Theorem 2), 'descending' "
                f"or 'arrival', got {voice_order!r}"
            )
        self.sim = sim
        self.multipoll_size = multipoll_size
        self.budget_check = budget_check
        #: Theorem 2 uses 'ascending'; the others exist for the ablation
        self.voice_order = voice_order
        if drain_interval < 0:
            raise ValueError(f"drain_interval must be >= 0, got {drain_interval}")
        self.drain_interval = drain_interval
        #: target head-of-line wait for phase-locked voice polling: the
        #: next token lands this long after the next expected packet
        #: arrival (see on_response)
        self.voice_guard = 0.001
        #: ascending rate (Theorem 2)
        self.voice: list[TokenState] = []
        #: ascending delay bound
        self.video: list[TokenState] = []
        self._by_station: dict[str, TokenState] = {}
        #: fired whenever a token appears (AP hooks CFP scheduling here)
        self.on_token: typing.Callable[[], None] | None = None
        if evict_after < 0:
            raise ValueError(f"evict_after must be >= 0, got {evict_after}")
        #: evict a source after this many consecutive abnormal nulls
        #: (lost polls / unreachable radio); 0 disables eviction
        self.evict_after = evict_after
        #: ``fn(station_id)`` the AP installs to reclaim the session
        self.on_evict: typing.Callable[[str], None] | None = None
        #: optional :class:`repro.validate.invariants.InvariantSuite`
        self.monitor = None
        #: optional :class:`repro.obs.trace.TraceRecorder` (``token``)
        self.trace = None
        # policy-level aggregates, registry-backed (the per-station
        #: TokenState slots stay plain — they are the per-poll hot path)
        m = metrics or MetricsRegistry()
        self.metrics = m
        self._m_tokens = m.counter("token_generated")
        self._m_misses = m.counter("token_misses")
        self._m_evictions = m.counter("token_evictions")

    # -- membership ---------------------------------------------------------
    def add_session(self, session: Session) -> TokenState:
        """Create the token buffer for a newly admitted session."""
        if session.station_id in self._by_station:
            raise ValueError(f"{session.station_id} already has a token buffer")
        state = TokenState(session, now=self.sim.now)
        if session.is_voice:
            if self.voice_order == "ascending":
                pos = sum(
                    1
                    for s in self.voice
                    if s.session.params.rate <= session.params.rate
                )
            elif self.voice_order == "descending":
                pos = sum(
                    1
                    for s in self.voice
                    if s.session.params.rate >= session.params.rate
                )
            else:  # arrival order
                pos = len(self.voice)
            self.voice.insert(pos, state)
        else:
            pos = sum(
                1
                for s in self.video
                if s.session.params.max_delay <= session.params.max_delay
            )
            self.video.insert(pos, state)
        self._by_station[session.station_id] = state
        self._m_tokens.inc()  # the freshly admitted source's first token
        if self.trace is not None:
            self.trace.emit(
                self.sim.now, "token", "buffer_added",
                station=session.station_id,
                kind="voice" if session.is_voice else "video",
            )
        self._notify()
        return state

    def remove_session(self, station_id: str) -> None:
        """Tear down a departing source's token buffer (idempotent)."""
        state = self._by_station.pop(station_id, None)
        if state is None:
            return
        self._cancel_regen(state)
        for pool in (self.voice, self.video):
            if state in pool:
                pool.remove(state)
                return

    def get(self, station_id: str) -> TokenState | None:
        return self._by_station.get(station_id)

    # -- token mechanics ---------------------------------------------------------
    def _notify(self) -> None:
        if self.on_token is not None and self.any_token():
            self.on_token()

    def _cancel_regen(self, state: TokenState) -> None:
        if state.regen_handle is not None:
            state.regen_handle.cancel()
            state.regen_handle = None

    def _schedule_regen(self, state: TokenState, delay: float) -> None:
        if self.monitor is not None:
            self.monitor.token_regen_scheduled(state, delay, self.sim.now)
        self._cancel_regen(state)
        state.regen_handle = self.sim.call_in(delay, self._regen_fire, state)

    def _regen_fire(self, state: TokenState) -> None:
        state.regen_handle = None
        if self.monitor is not None:
            self.monitor.token_granted(state, self.sim.now)
        if not state.has_token:
            state.has_token = True
            state.tokens_generated += 1
            state.last_token_time = self.sim.now
            self._m_tokens.inc()
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now, "token", "grant", station=state.station_id
                )
            self._notify()

    def grant_token(self, station_id: str) -> bool:
        """Reactivation request received: arm the token immediately."""
        state = self._by_station.get(station_id)
        if state is None:
            return False
        state.misses = 0
        self._cancel_regen(state)
        if not state.has_token:
            state.has_token = True
            state.tokens_generated += 1
            state.last_token_time = self.sim.now
            self._m_tokens.inc()
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now, "token", "grant",
                    station=station_id, reactivation=True,
                )
            self._notify()
        return True

    def any_token(self) -> bool:
        """Is anything pollable right now?"""
        return any(s.has_token for s in self.voice) or any(
            s.has_token for s in self.video
        )

    def next_token_time(self) -> float:
        """Earliest pending regeneration ("observe the token buffer of
        highest priority" for announcing the next CFP); inf if none."""
        times = [
            s.regen_handle.time
            for s in self.voice + self.video
            if s.regen_handle is not None and not s.regen_handle.cancelled
        ]
        return min(times) if times else float("inf")

    # -- CfpScheduler interface ------------------------------------------------------
    def _eligible(self, state: TokenState) -> bool:
        if not state.has_token:
            return False
        if self.budget_check is not None and not self.budget_check(state.session):
            return False
        return True

    def next_action(self, now: float, elapsed: float) -> PollAction | None:
        batch: list[str] = []
        for state in self.voice:
            if len(batch) >= self.multipoll_size:
                break
            if self._eligible(state):
                # voice tokens are consumed at poll time (paper step 1)
                state.has_token = False
                state.polls += 1
                if self.trace is not None:
                    self.trace.emit(
                        now, "token", "consume", station=state.station_id
                    )
                batch.append(state.station_id)
        if len(batch) < self.multipoll_size:
            for state in self.video:
                if len(batch) >= self.multipoll_size:
                    break
                if self._eligible(state):
                    # video tokens persist while the burst drains
                    state.polls += 1
                    batch.append(state.station_id)
        if not batch:
            return None
        return PollAction(tuple(batch))

    def on_response(
        self, station_id: str, frame: Frame | None, ok: bool, now: float
    ) -> None:
        """Token bookkeeping after a polled exchange.

        Note: the piggyback bit is honoured even when the frame was
        corrupted — the AP would otherwise deadlock a backlogged
        station that believes it is on the polling pipeline (a real AP
        recovers by re-polling; consuming the bit is the simpler
        equivalent on a single-BSS simulator).
        """
        state = self._by_station.get(station_id)
        if state is None:
            return
        if frame is None and not ok:
            # Abnormal null: the poll never reached the station (lost
            # after retries, or its radio is down).  This is a *miss*,
            # not an empty buffer — escalate instead of pacing.
            self._poll_missed(state, now)
            return
        state.misses = 0
        session = state.session
        if session.is_voice:
            if frame is not None and frame.piggyback:
                backlog = bool(frame.info and frame.info.get("backlog"))
                period = 1.0 / session.params.rate
                if backlog and self.drain_interval > 0:
                    # actual queue behind this packet: drain fast
                    self._schedule_regen(state, self.drain_interval)
                elif frame.packet is not None:
                    # Phase-locked pacing: the source emits exactly every
                    # 1/r, so the next packet arrives at created + 1/r;
                    # aim the next token a small guard after that.  (The
                    # 802.11e QoS-control field carries the queue-timing
                    # feedback this stands on.)  Anchoring to the token
                    # clock instead would freeze in whatever phase offset
                    # the spurt's reactivation request happened to have —
                    # the whole spurt would inherit its start latency.
                    target = frame.packet.created + period + self.voice_guard
                    self._schedule_regen(state, max(target - now, self.voice_guard))
                else:
                    # CF-Null keepalive: the token fired ahead of the
                    # packet (or the spurt is ending).  Use the ETA the
                    # station signalled to land the next token a guard
                    # past the expected arrival; without one, retry at a
                    # quarter period.
                    eta = None
                    if frame.info:
                        eta = frame.info.get("next_eta")
                    if eta is not None:
                        self._schedule_regen(state, eta + self.voice_guard)
                    else:
                        self._schedule_regen(state, period / 4.0)
            return
        # video
        eof = bool(frame is not None and frame.info and frame.info.get("eof"))
        if frame is not None and frame.piggyback:
            return  # keep the token; the burst continues
        state.has_token = False
        if eof or frame is None:
            # EOF: the call is over.  Null response: the station has
            # fallen back to Empty and will send a (class-1) reactivation
            # request with its next burst — re-polling every x_j here
            # would only burn CFP time on more nulls.
            return
        self._schedule_regen(state, session.token_latency)

    def _poll_missed(self, state: TokenState, now: float) -> None:
        """Escalation ladder for a poll that never reached its station.

        Count the miss; at ``evict_after`` consecutive misses hand the
        session to ``on_evict`` (the AP reclaims its bandwidth).  Below
        the threshold, keep the source reachable: a voice source's
        token was already consumed at poll time, so without a probe
        regeneration it would starve forever — re-arm at a quarter
        period (well inside the monitors' ``2/r`` pacing envelope).  A
        video token persists across the miss, so the very next
        scheduling step re-polls it without any extra timer.
        """
        state.misses += 1
        self._m_misses.inc()
        if self.trace is not None:
            self.trace.emit(
                now, "token", "miss",
                station=state.station_id, misses=state.misses,
            )
        if self.evict_after > 0 and state.misses >= self.evict_after:
            self._m_evictions.inc()
            if self.trace is not None:
                self.trace.emit(
                    now, "token", "escalate", station=state.station_id
                )
            if self.on_evict is not None:
                self.on_evict(state.station_id)
            return
        session = state.session
        if (
            session.is_voice
            and not state.has_token
            and state.regen_handle is None
        ):
            self._schedule_regen(state, (1.0 / session.params.rate) / 4.0)
