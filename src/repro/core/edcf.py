"""802.11e-EDCF-style differentiation policies (paper Section II-A).

The paper motivates its contention-window partition by the observation
(citing Xiao's WCNC'03 study) that "differentiating the initial CW
size is better than differentiating the IFS in terms of total
throughput and delay ... the different initial CW size has both the
function of reducing collisions and providing priorities, whereas the
arbitration IFS has the function of providing priorities, but can not
reduce collisions."

These two policies isolate that comparison:

* :class:`CwDifferentiation` — per-level initial windows (smaller =
  higher priority), common DIFS;
* :class:`AifsDifferentiation` — one common window for every level,
  but per-level AIFS surcharges (fewer extra slots = higher priority).

The ablation benchmark races them under identical traffic.
"""

from __future__ import annotations

import numpy as np

from ..mac.backoff import BackoffPolicy
from ..phy.timing import PhyTiming

__all__ = ["CwDifferentiation", "AifsDifferentiation"]


class CwDifferentiation(BackoffPolicy):
    """EDCF-style per-class CWmin, shared AIFS (= DIFS).

    ``cw_mins`` are the per-level initial windows, highest priority
    first; windows double per retry stage up to ``cw_max``.  Unlike
    :class:`~repro.core.priority_backoff.PriorityBackoff`, the ranges
    *overlap* (every level draws from 0), which is exactly how EDCF
    differentiates — and why its priority is probabilistic rather than
    strict.
    """

    def __init__(
        self,
        cw_mins: tuple[int, ...] = (8, 16, 32),
        cw_max: int = 1024,
    ) -> None:
        if not cw_mins or any(w < 1 for w in cw_mins):
            raise ValueError(f"invalid cw_mins {cw_mins}")
        if cw_max < max(cw_mins):
            raise ValueError(f"cw_max {cw_max} below largest cw_min")
        self.cw_mins = tuple(cw_mins)
        self.cw_max = cw_max

    def window(self, level: int, stage: int) -> int:
        if not 0 <= level < len(self.cw_mins):
            raise ValueError(f"level {level} out of range")
        if stage < 0:
            raise ValueError(f"negative stage {stage}")
        return min(self.cw_mins[level] * (2**stage), self.cw_max)

    def draw_slots(self, level: int, stage: int, rng: np.random.Generator) -> int:
        return int(rng.integers(0, self.window(level, stage)))


class AifsDifferentiation(BackoffPolicy):
    """EDCF-style per-class AIFS, shared contention window.

    Every level draws from the same ``[0, cw_min * 2**stage)`` window;
    level ``j`` additionally waits ``aifs_slots[j]`` extra slot times
    before its counter may run.
    """

    def __init__(
        self,
        timing: PhyTiming,
        aifs_slots: tuple[int, ...] = (0, 2, 4),
        cw_min: int = 16,
        cw_max: int = 1024,
    ) -> None:
        if not aifs_slots or any(s < 0 for s in aifs_slots):
            raise ValueError(f"invalid aifs_slots {aifs_slots}")
        if cw_min < 1 or cw_max < cw_min:
            raise ValueError(f"invalid CW bounds [{cw_min}, {cw_max}]")
        self.timing = timing
        self.aifs_slots = tuple(aifs_slots)
        self.cw_min = cw_min
        self.cw_max = cw_max

    def window(self, stage: int) -> int:
        if stage < 0:
            raise ValueError(f"negative stage {stage}")
        return min(self.cw_min * (2**stage), self.cw_max)

    def extra_ifs(self, level: int) -> float:
        if not 0 <= level < len(self.aifs_slots):
            raise ValueError(f"level {level} out of range")
        return self.aifs_slots[level] * self.timing.slot

    def draw_slots(self, level: int, stage: int, rng: np.random.Generator) -> int:
        return int(rng.integers(0, self.window(stage)))
