"""Call-level dynamics of one ESS microcell.

Each cell owns its resident calls outright — a station belongs to
exactly one BSS at any instant, the invariant the cross-BSS
conservation checks lean on.  A cell advances epoch by epoch through
its own event heap:

* **new calls** arrive Poisson per traffic class and are admitted
  while occupancy is below ``capacity`` (else *blocked*);
* **admitted calls** dwell via the shared
  :func:`~repro.network.mobility.draw_roam_step` race — the call
  either *completes* in this cell or survives the dwell and departs
  toward a geometric neighbour (*handoff out*);
* **inbound handoffs** (delivered by the coordinator after backhaul
  routing) are admitted up to ``handoff_capacity`` — the overlap
  region between adjacent microcells gives roamers a grace margin new
  calls don't get (``handoff_capacity >= capacity``);
* a handoff refused for capacity is a *handoff admission drop*
  (distinct from a *backhaul drop*, which the router accounts).

All draws come from cell-named :class:`~repro.sim.rng.RandomStreams`
streams and every heap tie breaks on a monotone sequence number, so a
cell's trajectory is a pure function of ``(master seed, cell id,
inbound schedule)`` — which is what lets the coordinator shard cells
across processes and still reproduce the serial run bit for bit.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import typing

from ..network.mobility import ROAM_KINDS, draw_roam_step
from ..sim.rng import RandomStreams

__all__ = ["RoamingCall", "HandoffDeparture", "CellConfig", "Cell"]


@dataclasses.dataclass(frozen=True)
class RoamingCall:
    """Identity of one call as it moves through the ESS."""

    call_id: int
    kind: str
    #: cell that admitted the call into the ESS
    born_in: str

    def __post_init__(self) -> None:
        if self.kind not in ROAM_KINDS:
            raise ValueError(
                f"kind must be one of {ROAM_KINDS}, got {self.kind!r}"
            )


@dataclasses.dataclass(frozen=True)
class HandoffDeparture:
    """A call leaving ``src`` toward ``dst`` at ``time`` (pre-routing)."""

    time: float
    call: RoamingCall
    src: str
    dst: str


@dataclasses.dataclass(frozen=True)
class CellConfig:
    """Per-cell call dynamics (shared by every cell of a uniform grid)."""

    #: fresh-call arrival rate per traffic class (calls/s)
    new_call_rate: float = 0.08
    mean_holding: float = 60.0
    mean_residence: float = 45.0
    #: concurrent-call admission limit for new calls
    capacity: int = 12
    #: admission limit for inbound handoffs (>= capacity; the excess
    #: models the microcell overlap region roamers may linger in)
    handoff_capacity: int = 12

    def __post_init__(self) -> None:
        if self.new_call_rate < 0:
            raise ValueError(
                f"new_call_rate must be >= 0, got {self.new_call_rate}"
            )
        if self.mean_holding <= 0:
            raise ValueError(
                f"mean_holding must be > 0, got {self.mean_holding}"
            )
        if self.mean_residence <= 0:
            raise ValueError(
                f"mean_residence must be > 0, got {self.mean_residence}"
            )
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        if self.handoff_capacity < self.capacity:
            raise ValueError(
                "handoff_capacity must be >= capacity, got "
                f"{self.handoff_capacity} < {self.capacity}"
            )


class Cell:
    """One microcell's call population and epoch-stepped event heap."""

    def __init__(
        self,
        cell_id: str,
        neighbors: typing.Sequence[str],
        config: CellConfig,
        streams: RandomStreams,
        call_ids: typing.Iterator[int],
    ) -> None:
        if not neighbors:
            raise ValueError(f"cell {cell_id!r} needs at least one neighbour")
        self.cell_id = cell_id
        self.neighbors = tuple(sorted(neighbors))
        self.config = config
        self._call_ids = call_ids
        self._roam_rng = streams.get(f"ess/{cell_id}/roam")
        self._arrival_rng = {
            kind: streams.get(f"ess/{cell_id}/arrivals/{kind}")
            for kind in ROAM_KINDS
        }
        #: next fresh-arrival time per class (absolute ESS time)
        self._next_arrival = {kind: 0.0 for kind in ROAM_KINDS}
        self._primed = {kind: False for kind in ROAM_KINDS}
        self.resident: dict[int, RoamingCall] = {}
        self._heap: list[tuple[float, int, str, RoamingCall]] = []
        self._seq = itertools.count()
        #: AP outage flag (set by the coordinator at epoch granularity);
        #: while down the cell sheds residents and refuses all arrivals
        self.down = False
        # -- per-cell ledger ------------------------------------------------
        self.attempts_new = 0
        self.admitted_new = 0
        self.blocked = 0
        self.blocked_ap_down = 0
        self.completed = 0
        self.handoff_in = 0
        self.handoff_in_admitted = 0
        self.handoff_dropped_admission = 0
        self.handoff_dropped_ap_down = 0
        self.handoff_out = 0
        self.shed_ap_down = 0
        # occupancy time-integral for mean-occupancy reporting
        self._occ_time = 0.0
        self._occ_last_t = 0.0

    # -- occupancy bookkeeping ---------------------------------------------
    @property
    def occupancy(self) -> int:
        return len(self.resident)

    def _occ_advance(self, now: float) -> None:
        self._occ_time += self.occupancy * (now - self._occ_last_t)
        self._occ_last_t = now

    def mean_occupancy(self, horizon: float) -> float:
        return self._occ_time / horizon if horizon > 0 else 0.0

    # -- inbound -----------------------------------------------------------
    def deliver_handoff(self, time: float, call: RoamingCall) -> None:
        """Coordinator delivers a routed inbound handoff arrival."""
        heapq.heappush(self._heap, (time, next(self._seq), "handoff", call))

    # -- AP outage ---------------------------------------------------------
    def set_down(self, down: bool, now: float) -> int:
        """Flip the AP-outage flag; going down sheds every resident call.

        Shed calls leave the ESS immediately (their dwell events become
        tombstones the event loop skips); the count lands in
        ``shed_ap_down`` so the global conservation ledger still
        balances.  Returns how many calls were shed by this transition.
        """
        if down == self.down:
            return 0
        self.down = down
        if not down:
            return 0
        self._occ_advance(now)
        shed = len(self.resident)
        self.resident.clear()
        self.shed_ap_down += shed
        return shed

    # -- the epoch step ----------------------------------------------------
    def advance(self, t0: float, t1: float) -> list[HandoffDeparture]:
        """Process everything in ``[t0, t1)``; return outbound handoffs.

        Fresh arrivals are generated lazily from the per-class streams,
        already-scheduled dwell-ends and delivered handoffs come off the
        heap; everything is handled in (time, sequence) order.
        """
        if t1 <= t0:
            raise ValueError(f"need t1 > t0, got [{t0}, {t1})")
        self._prime_arrivals(t0)
        departures: list[HandoffDeparture] = []
        while True:
            arr_kind = min(ROAM_KINDS, key=lambda k: self._next_arrival[k])
            arr_time = self._next_arrival[arr_kind]
            head_time = self._heap[0][0] if self._heap else float("inf")
            if arr_time < t1 and arr_time <= head_time:
                # ties go to the fresh arrival (deterministic either way)
                self._fresh_arrival(arr_kind, arr_time)
                continue
            if head_time >= t1:
                break
            time, _, action, call = heapq.heappop(self._heap)
            self._occ_advance(time)
            if action == "handoff":
                self._admit_handoff(time, call)
            elif call.call_id not in self.resident:
                # tombstone: the call was shed by an AP outage after
                # its dwell event was scheduled — ledgered, not raised
                continue
            elif action == "complete":
                self._complete(call)
            else:  # "depart"
                departures.append(self._depart(time, call))
        self._occ_advance(t1)
        return departures

    # -- event handlers ----------------------------------------------------
    def _prime_arrivals(self, t0: float) -> None:
        rate = self.config.new_call_rate
        for kind in ROAM_KINDS:
            if not self._primed[kind]:
                self._primed[kind] = True
                if rate <= 0:
                    self._next_arrival[kind] = float("inf")
                else:
                    self._next_arrival[kind] = t0 + float(
                        self._arrival_rng[kind].exponential(1.0 / rate)
                    )

    def _fresh_arrival(self, kind: str, now: float) -> None:
        rate = self.config.new_call_rate
        self._next_arrival[kind] = now + float(
            self._arrival_rng[kind].exponential(1.0 / rate)
        )
        self._occ_advance(now)
        self.attempts_new += 1
        if self.down:
            # AP dark: the cell cannot serve anyone, but the arrival
            # stream still advances so recovery epochs stay aligned
            self.blocked += 1
            self.blocked_ap_down += 1
            return
        if self.occupancy >= self.config.capacity:
            self.blocked += 1
            return
        call = RoamingCall(next(self._call_ids), kind, self.cell_id)
        self.admitted_new += 1
        self._admit(now, call)

    def _admit_handoff(self, now: float, call: RoamingCall) -> None:
        self.handoff_in += 1
        if self.down:
            self.handoff_dropped_ap_down += 1
            return
        if self.occupancy >= self.config.handoff_capacity:
            self.handoff_dropped_admission += 1
            return
        self.handoff_in_admitted += 1
        self._admit(now, call)

    def _admit(self, now: float, call: RoamingCall) -> None:
        self.resident[call.call_id] = call
        dwell, call_ends = draw_roam_step(
            self._roam_rng, self.config.mean_holding, self.config.mean_residence
        )
        action = "complete" if call_ends else "depart"
        heapq.heappush(
            self._heap, (now + dwell, next(self._seq), action, call)
        )

    def _complete(self, call: RoamingCall) -> None:
        del self.resident[call.call_id]
        self.completed += 1

    def _depart(self, now: float, call: RoamingCall) -> HandoffDeparture:
        del self.resident[call.call_id]
        self.handoff_out += 1
        target = self.neighbors[
            int(self._roam_rng.integers(len(self.neighbors)))
        ]
        return HandoffDeparture(now, call, self.cell_id, target)

    # -- reporting ---------------------------------------------------------
    def ledger(self, horizon: float) -> dict[str, typing.Any]:
        """Per-cell summary; inputs to the conservation checks."""
        return {
            "attempts_new": self.attempts_new,
            "admitted_new": self.admitted_new,
            "blocked": self.blocked,
            "blocked_ap_down": self.blocked_ap_down,
            "completed": self.completed,
            "handoff_in": self.handoff_in,
            "handoff_in_admitted": self.handoff_in_admitted,
            "handoff_dropped_admission": self.handoff_dropped_admission,
            "handoff_dropped_ap_down": self.handoff_dropped_ap_down,
            "handoff_out": self.handoff_out,
            "shed_ap_down": self.shed_ap_down,
            "resident": self.occupancy,
            "mean_occupancy": self.mean_occupancy(horizon),
            "blocking_rate": (
                self.blocked / self.attempts_new if self.attempts_new else 0.0
            ),
        }
