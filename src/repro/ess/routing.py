"""Health-aware backhaul routing over pre-computed disjoint path sets.

The router is the runtime face of :mod:`repro.ess.topology`: for every
AP pair it lazily computes (and caches) up to ``k`` node-disjoint
paths, then answers each handoff-signalling request with the first
path whose links are all healthy.  Because alternates share no
intermediate AP with the primary, any single link or AP fault leaves
at least one alternate intact on a 2-connected topology — the failover
requires no recomputation, just walking down the pre-computed list.

Link and AP health are driven from the outside (the coordinator
applies :class:`~repro.faults.plan.LinkFault` and
:class:`~repro.faults.plan.ApFault` windows at epoch boundaries).  A
faulted AP poisons every path it appears on — endpoints included, so
routing toward a dark AP is unroutable by construction while transit
traffic between healthy APs fails over to the node-disjoint alternate.
Per-pair and per-link traffic, failover and unroutable counts land in
a :class:`~repro.obs.registry.MetricsRegistry`.
"""

from __future__ import annotations

import dataclasses
import typing

from ..obs.registry import MetricsRegistry
from .topology import ApGraph, link_key, node_disjoint_paths

__all__ = ["RouteResult", "BackhaulRouter"]


@dataclasses.dataclass(frozen=True)
class RouteResult:
    """One successfully routed handoff request."""

    path: tuple[str, ...]
    #: index into the disjoint path set (0 = primary)
    path_index: int
    #: one-way signalling latency along the chosen path
    latency: float

    @property
    def failover(self) -> bool:
        return self.path_index > 0


class BackhaulRouter:
    """Routes AP-to-AP handoff signalling with disjoint-path failover.

    Parameters
    ----------
    graph:
        The AP interconnect.
    k:
        Disjoint paths kept per pair (primary + ``k - 1`` alternates).
    metrics:
        Optional registry receiving ``backhaul_*`` counters.
    """

    def __init__(
        self,
        graph: ApGraph,
        k: int = 2,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.graph = graph
        self.k = k
        self.metrics = metrics
        self._paths: dict[tuple[str, str], tuple[tuple[str, ...], ...]] = {}
        #: canonically-keyed links currently considered down
        self.faulted_links: set[tuple[str, str]] = set()
        #: APs currently dark (whole-node outages); every path through
        #: one — endpoints included — is unhealthy
        self.faulted_aps: set[str] = set()
        self.routed = 0
        self.failovers = 0
        self.unroutable = 0

    # -- link / AP health --------------------------------------------------
    def set_link_health(self, a: str, b: str, healthy: bool) -> None:
        if not self.graph.has_link(a, b):
            raise KeyError(f"no backhaul link {a!r}-{b!r}")
        key = link_key(a, b)
        if healthy:
            self.faulted_links.discard(key)
        else:
            self.faulted_links.add(key)

    def set_ap_health(self, ap: str, healthy: bool) -> None:
        if ap not in self.graph.aps():
            raise KeyError(f"no AP {ap!r} in the backhaul topology")
        if healthy:
            self.faulted_aps.discard(ap)
        else:
            self.faulted_aps.add(ap)

    def link_is_healthy(self, a: str, b: str) -> bool:
        return link_key(a, b) not in self.faulted_links

    def ap_is_healthy(self, ap: str) -> bool:
        return ap not in self.faulted_aps

    def path_is_healthy(self, path: typing.Sequence[str]) -> bool:
        if self.faulted_aps and any(ap in self.faulted_aps for ap in path):
            return False
        return all(
            link_key(a, b) not in self.faulted_links
            for a, b in zip(path, path[1:])
        )

    # -- routing -----------------------------------------------------------
    def paths(self, src: str, dst: str) -> tuple[tuple[str, ...], ...]:
        """The cached disjoint path set for ``src -> dst``.

        Sets are computed on the canonical orientation and reversed on
        demand, so both directions of a pair share one computation.
        """
        if src == dst:
            raise ValueError(f"src and dst must differ, got {src!r}")
        canon = (src, dst) if src <= dst else (dst, src)
        found = self._paths.get(canon)
        if found is None:
            found = tuple(
                tuple(p)
                for p in node_disjoint_paths(self.graph, *canon, k=self.k)
            )
            self._paths[canon] = found
        if canon == (src, dst):
            return found
        return tuple(tuple(reversed(p)) for p in found)

    def route(self, src: str, dst: str) -> RouteResult | None:
        """First healthy path from the disjoint set, or ``None``.

        ``None`` means every pre-computed disjoint path crosses a
        faulted link — the handoff request cannot be signalled and the
        caller must drop the call (counted as a backhaul drop).
        """
        result = None
        for index, path in enumerate(self.paths(src, dst)):
            if self.path_is_healthy(path):
                result = RouteResult(
                    path=path,
                    path_index=index,
                    latency=self.graph.path_latency(path),
                )
                break
        self._account(src, dst, result)
        return result

    # -- accounting --------------------------------------------------------
    def _account(self, src: str, dst: str, result: RouteResult | None) -> None:
        m = self.metrics
        if result is None:
            self.unroutable += 1
            if m is not None:
                m.counter("backhaul_unroutable", src=src, dst=dst).inc()
            return
        self.routed += 1
        if result.failover:
            self.failovers += 1
        if m is not None:
            m.counter("backhaul_routed", src=src, dst=dst).inc()
            if result.failover:
                m.counter("backhaul_failover", src=src, dst=dst).inc()
            for a, b in zip(result.path, result.path[1:]):
                ka, kb = link_key(a, b)
                m.counter("backhaul_link_handoffs", link=f"{ka}|{kb}").inc()

    def summary(self) -> dict[str, typing.Any]:
        """JSON-ready routing totals for the ESS report."""
        return {
            "routed": self.routed,
            "failovers": self.failovers,
            "unroutable": self.unroutable,
            "faulted_links": sorted(
                f"{a}|{b}" for a, b in self.faulted_links
            ),
            "faulted_aps": sorted(self.faulted_aps),
            "disjoint_paths_per_pair": self.k,
        }
