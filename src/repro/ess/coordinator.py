"""The ESS coordinator: sharded epochs, backhaul exchange, global ledger.

One :class:`EssCoordinator` owns a grid of microcells
(:class:`~repro.ess.cells.Cell`), their AP interconnect
(:class:`~repro.ess.topology.ApGraph`) and the health-aware
:class:`~repro.ess.routing.BackhaulRouter`.  Time advances in
*epochs*: within an epoch every cell evolves independently (which is
what makes the grid partitionable), and handoff departures collected
during epoch *e* are routed over the backhaul and delivered into their
target cells at the start of epoch *e + 1* (offset by the routed
path's signalling latency).  A handoff whose every node-disjoint path
crosses a faulted link is dropped — the *backhaul drop* the report and
the chaos-style CI gate watch.

After every epoch the coordinator takes an
:class:`~repro.validate.ess.EssLedgerSnapshot` and the cross-BSS
conservation invariant is checked: calls created = completed + dropped
+ resident + in-transit, globally.

Two fidelity tiers:

* ``"calls"`` (default) — the call-level layer above is the whole
  story: fast, exact conservation, scales to hundreds of cells;
* ``"frames"`` — additionally shards one frame-level
  :class:`~repro.network.bss.BssScenario` per (cell, epoch) across the
  :mod:`repro.exec` executor (parallel, content-addressed-cached),
  with the epoch's routed inbound handoffs injected on schedule via
  :class:`~repro.network.mobility.EssCellContext`; per-cell QoS
  (delay/utilization) comes from these runs.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import pathlib
import typing
import zlib

from ..faults.plan import ApFault, LinkFault
from ..network.mobility import EssCellContext
from ..obs.registry import MetricsRegistry
from ..sim.rng import RandomStreams
from ..validate.ess import (
    EssLedgerSnapshot,
    cell_ledger_violations,
    conservation_violations,
)
from .cells import Cell, CellConfig, RoamingCall
from .routing import BackhaulRouter
from .topology import grid_ap_id, grid_topology

__all__ = [
    "ESS_REPORT_SCHEMA",
    "FIDELITIES",
    "EssConfig",
    "EssCoordinator",
    "run_ess",
    "save_report",
]

ESS_REPORT_SCHEMA = "repro/ess-report/2"

FIDELITIES = ("calls", "frames")


@dataclasses.dataclass(frozen=True)
class EssConfig:
    """Everything one ESS run needs (serializable, seed-deterministic)."""

    rows: int = 3
    cols: int = 3
    seed: int = 1
    epochs: int = 8
    epoch_length: float = 30.0
    #: fresh-call arrival rate per cell per traffic class (calls/s)
    new_call_rate: float = 0.08
    mean_holding: float = 60.0
    #: base exponential cell-residence time; divided by ``mobility``
    mean_residence: float = 45.0
    #: roaming intensity multiplier (2.0 = stations move twice as often)
    mobility: float = 1.0
    #: concurrent-call admission limit per cell (new calls)
    capacity: int = 12
    #: microcell overlap fraction — inbound handoffs may occupy the
    #: overlap region, so they admit up to ``capacity * (1 + overlap)``
    overlap: float = 0.25
    #: node-disjoint backhaul paths kept per AP pair (primary + spares)
    disjoint_paths: int = 2
    link_capacity: float = 100.0
    link_latency: float = 0.001
    #: backhaul outage windows (:class:`~repro.faults.plan.LinkFault`)
    backhaul_faults: tuple[LinkFault, ...] = ()
    #: whole-AP outage windows (:class:`~repro.faults.plan.ApFault`);
    #: a dark AP's cell sheds its calls and refuses arrivals, and the
    #: router fails transit traffic over to disjoint alternates
    ap_faults: tuple[ApFault, ...] = ()
    #: ``"calls"`` or ``"frames"`` (see module docstring)
    fidelity: str = "calls"
    #: per-(cell, epoch) frame-level sim length, frames fidelity only
    frames_time: float = 8.0
    #: scheme the frame-level cell runs use
    scheme: str = "proposed"
    #: engine tier for the frame-level cell runs (repro.accel); only
    #: meaningful with ``fidelity="frames"``
    engine: str = "exact"

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"grid must be >= 1x1, got {self.rows}x{self.cols}")
        if self.rows * self.cols < 2:
            raise ValueError("an ESS needs at least two cells")
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.epoch_length <= 0:
            raise ValueError(
                f"epoch_length must be > 0, got {self.epoch_length}"
            )
        if self.mobility <= 0:
            raise ValueError(f"mobility must be > 0, got {self.mobility}")
        if not 0.0 <= self.overlap <= 1.0:
            raise ValueError(f"overlap must be in [0, 1], got {self.overlap}")
        if self.disjoint_paths < 1:
            raise ValueError(
                f"disjoint_paths must be >= 1, got {self.disjoint_paths}"
            )
        if self.fidelity not in FIDELITIES:
            raise ValueError(
                f"fidelity must be one of {FIDELITIES}, got {self.fidelity!r}"
            )
        if self.frames_time <= 2.0:
            raise ValueError(
                f"frames_time must be > 2 s, got {self.frames_time}"
            )
        from ..network.bss import ENGINES

        if self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if not isinstance(self.backhaul_faults, tuple):
            object.__setattr__(
                self, "backhaul_faults", tuple(self.backhaul_faults)
            )
        if not isinstance(self.ap_faults, tuple):
            object.__setattr__(self, "ap_faults", tuple(self.ap_faults))
        # CellConfig re-validates rates/holding/capacity
        self.cell_config()

    # -- derived views ----------------------------------------------------
    @property
    def horizon(self) -> float:
        return self.epochs * self.epoch_length

    def cell_config(self) -> CellConfig:
        capacity = self.capacity
        return CellConfig(
            new_call_rate=self.new_call_rate,
            mean_holding=self.mean_holding,
            mean_residence=self.mean_residence / self.mobility,
            capacity=capacity,
            handoff_capacity=int(capacity * (1.0 + self.overlap)),
        )

    def to_dict(self) -> dict[str, typing.Any]:
        d = dataclasses.asdict(self)
        d["backhaul_faults"] = [
            dataclasses.asdict(f) for f in self.backhaul_faults
        ]
        d["ap_faults"] = [dataclasses.asdict(f) for f in self.ap_faults]
        return d

    @classmethod
    def from_dict(cls, data: typing.Mapping[str, typing.Any]) -> "EssConfig":
        d = dict(data)
        d["backhaul_faults"] = tuple(
            f if isinstance(f, LinkFault) else LinkFault(**f)
            for f in d.get("backhaul_faults", ())
        )
        d["ap_faults"] = tuple(
            f if isinstance(f, ApFault) else ApFault(**f)
            for f in d.get("ap_faults", ())
        )
        return cls(**d)


def _frames_seed(seed: int, cell: str, epoch: int) -> int:
    """Stable per-(cell, epoch) seed for the frame-level sub-runs."""
    return zlib.crc32(f"{seed}/{cell}/{epoch}".encode("utf-8")) & 0x7FFFFFFF


class EssCoordinator:
    """Runs one ESS scenario; see the module docstring."""

    def __init__(self, config: EssConfig) -> None:
        self.config = config
        self.graph = grid_topology(
            config.rows,
            config.cols,
            capacity=config.link_capacity,
            latency=config.link_latency,
        )
        for fault in config.backhaul_faults:
            if not self.graph.has_link(fault.a, fault.b):
                raise ValueError(
                    f"backhaul fault names a link the topology lacks: "
                    f"{fault.a!r}-{fault.b!r}"
                )
        ap_ids = set(self.graph.aps())
        for ap_fault in config.ap_faults:
            if ap_fault.ap not in ap_ids:
                raise ValueError(
                    f"AP fault names an AP the topology lacks: "
                    f"{ap_fault.ap!r}"
                )
        self.metrics = MetricsRegistry(subsystem="ess", seed=config.seed)
        self.router = BackhaulRouter(
            self.graph, k=config.disjoint_paths, metrics=self.metrics
        )
        self.streams = RandomStreams(config.seed)
        call_ids = itertools.count(1)
        cell_cfg = config.cell_config()
        self.cells: dict[str, Cell] = {}
        for ap_id in self.graph.aps():
            self.cells[ap_id] = Cell(
                ap_id,
                self.graph.neighbors(ap_id),
                cell_cfg,
                self.streams,
                call_ids,
            )
        #: deliveries scheduled per epoch: (time, dst, call)
        self._inbox: dict[int, list[tuple[float, str, RoamingCall]]] = {}
        #: routed inbound log per (cell, epoch) — feeds the frames tier
        self._delivered: dict[tuple[str, int], list[tuple[float, str]]] = {}
        self.handoffs_sent = 0
        self.snapshots: list[EssLedgerSnapshot] = []
        self._ran = False

    # -- the epoch loop ----------------------------------------------------
    def run(self) -> None:
        """Advance every epoch; idempotence guarded (build once, run once)."""
        if self._ran:
            raise RuntimeError("EssCoordinator.run() may only be called once")
        self._ran = True
        cfg = self.config
        for epoch in range(cfg.epochs):
            t0 = epoch * cfg.epoch_length
            t1 = t0 + cfg.epoch_length
            self._apply_faults(t0, t1)
            for time, dst, call in self._inbox.pop(epoch, ()):
                self.cells[dst].deliver_handoff(time, call)
            departures = []
            for cell_id in sorted(self.cells):
                departures.extend(self.cells[cell_id].advance(t0, t1))
            # global chronological order, stable across cell iteration
            departures.sort(key=lambda d: (d.time, d.call.call_id))
            for dep in departures:
                result = self.router.route(dep.src, dep.dst)
                if result is None:
                    continue  # backhaul drop, accounted by the router
                deliver_at = t1 + result.latency
                self._inbox.setdefault(epoch + 1, []).append(
                    (deliver_at, dep.dst, dep.call)
                )
                self._delivered.setdefault((dep.dst, epoch + 1), []).append(
                    (result.latency, dep.call.kind)
                )
                self.handoffs_sent += 1
            self.snapshots.append(self._ledger_snapshot(epoch))
            self._record_epoch_metrics(t1)

    def _apply_faults(self, t0: float, t1: float) -> None:
        """Honour link and AP outage windows at epoch granularity.

        A cell whose AP goes dark sheds its residents at the epoch
        boundary (ledgered as ``shed_ap_down``), refuses arrivals for
        the whole epoch, and the router treats every path through the
        AP as unhealthy — graceful degradation, never an exception.
        """
        self.router.faulted_links = {
            fault.key()
            for fault in self.config.backhaul_faults
            if fault.active_during(t0, t1)
        }
        dark = {
            fault.ap
            for fault in self.config.ap_faults
            if fault.active_during(t0, t1)
        }
        self.router.faulted_aps = dark
        for cell_id in sorted(self.cells):
            self.cells[cell_id].set_down(cell_id in dark, t0)

    def _ledger_snapshot(self, epoch: int) -> EssLedgerSnapshot:
        cells = self.cells.values()
        handoffs_seen = sum(c.handoff_in for c in cells)
        return EssLedgerSnapshot(
            epoch=epoch,
            created=sum(c.admitted_new for c in cells),
            completed=sum(c.completed for c in cells),
            dropped_admission=sum(
                c.handoff_dropped_admission for c in cells
            ),
            dropped_backhaul=self.router.unroutable,
            resident=sum(c.occupancy for c in cells),
            in_transit=self.handoffs_sent - handoffs_seen,
            dropped_ap_down=sum(
                c.shed_ap_down + c.handoff_dropped_ap_down for c in cells
            ),
        )

    def _record_epoch_metrics(self, now: float) -> None:
        for cell_id in sorted(self.cells):
            cell = self.cells[cell_id]
            self.metrics.gauge("ess_resident", cell=cell_id).set(
                cell.occupancy
            )
        self.metrics.snapshots.append(self.metrics.snapshot(now=now))

    # -- frame-level sharding (fidelity="frames") --------------------------
    def frames_grid(self) -> list[typing.Any]:
        """One frame-level ``ScenarioConfig`` per (cell, epoch).

        Inbound handoffs the backhaul routed into a cell during an
        epoch are replayed inside the cell's run at offsets scaled into
        the measured window, via :class:`EssCellContext`; the Poisson
        handoff streams are zeroed so scheduled arrivals are the only
        handoff traffic.
        """
        from ..network.bss import ScenarioConfig

        cfg = self.config
        warmup = min(2.0, cfg.frames_time / 4)
        measured = cfg.frames_time - warmup
        grid = []
        for epoch in range(cfg.epochs):
            for cell_id in sorted(self.cells):
                arrivals = tuple(
                    (
                        warmup
                        + (latency / cfg.epoch_length) * measured,
                        kind,
                    )
                    for latency, kind in sorted(
                        self._delivered.get((cell_id, epoch), ())
                    )
                )
                grid.append(
                    ScenarioConfig(
                        scheme=cfg.scheme,
                        seed=_frames_seed(cfg.seed, cell_id, epoch),
                        sim_time=cfg.frames_time,
                        warmup=warmup,
                        load=1.0,
                        new_voice_rate=cfg.new_call_rate,
                        new_video_rate=cfg.new_call_rate,
                        handoff_voice_rate=0.0,
                        handoff_video_rate=0.0,
                        mean_holding=cfg.mean_holding,
                        n_data_stations=2,
                        ess=EssCellContext(
                            cell=cell_id,
                            epoch=epoch,
                            epoch_start=epoch * cfg.epoch_length,
                            handoff_arrivals=arrivals,
                        ),
                        engine=cfg.engine,
                    )
                )
        return grid

    def frames_summary(
        self, rows: typing.Sequence[dict]
    ) -> dict[str, dict[str, typing.Any]]:
        """Aggregate executor rows back into per-cell QoS."""
        per_cell: dict[str, dict[str, typing.Any]] = {}
        for row in rows:
            cell_id = row["ess"]["cell"]
            agg = per_cell.setdefault(
                cell_id,
                {
                    "epochs": 0,
                    "handoffs_injected": 0,
                    "worst_video_delay": 0.0,
                    "goodput_utilization": 0.0,
                    "channel_busy_fraction": 0.0,
                },
            )
            agg["epochs"] += 1
            agg["handoffs_injected"] += row["ess"]["handoffs_injected"]
            worst = row.get("worst_video_delay") or 0.0
            agg["worst_video_delay"] = max(agg["worst_video_delay"], worst)
            agg["goodput_utilization"] += row["goodput_utilization"]
            agg["channel_busy_fraction"] += row["channel_busy_fraction"]
        for agg in per_cell.values():
            n = agg["epochs"]
            agg["goodput_utilization"] /= n
            agg["channel_busy_fraction"] /= n
        return per_cell

    # -- reporting ---------------------------------------------------------
    def report(
        self, frames_rows: typing.Sequence[dict] | None = None
    ) -> dict[str, typing.Any]:
        cfg = self.config
        horizon = cfg.horizon
        per_cell = {
            cell_id: self.cells[cell_id].ledger(horizon)
            for cell_id in sorted(self.cells)
        }
        violations = conservation_violations(self.snapshots)
        for cell_id, ledger in per_cell.items():
            violations.extend(cell_ledger_violations(cell_id, ledger))
        final = self.snapshots[-1]
        handoff_attempts = sum(c.handoff_out for c in self.cells.values())
        dropped_total = final.dropped_total
        report: dict[str, typing.Any] = {
            "schema": ESS_REPORT_SCHEMA,
            "config": cfg.to_dict(),
            "topology": self.graph.to_dict(),
            "totals": {
                "created": final.created,
                "completed": final.completed,
                "blocked": sum(c.blocked for c in self.cells.values()),
                "dropped_admission": final.dropped_admission,
                "dropped_backhaul": final.dropped_backhaul,
                "dropped_ap_down": final.dropped_ap_down,
                "dropped_total": dropped_total,
                "resident_final": final.resident,
                "in_transit_final": final.in_transit,
                "handoff_attempts": handoff_attempts,
                "handoff_drop_rate": (
                    dropped_total / handoff_attempts if handoff_attempts else 0.0
                ),
            },
            "backhaul": {
                **self.router.summary(),
                "per_link_handoffs": {
                    key: value
                    for key, value in self.metrics.snapshot()[
                        "counters"
                    ].items()
                    if key.startswith("backhaul_link_handoffs")
                },
            },
            "per_cell": per_cell,
            "conservation": {
                "epochs_checked": len(self.snapshots),
                "violations": violations,
            },
            "passed": not violations,
        }
        if frames_rows is not None:
            report["frames"] = self.frames_summary(frames_rows)
        return report


def run_ess(
    config: EssConfig,
    executor: typing.Any | None = None,
) -> dict[str, typing.Any]:
    """Run one ESS scenario end to end and return its JSON-ready report.

    ``executor`` (a :class:`~repro.exec.executor.SweepExecutor`) is
    only consulted in ``fidelity="frames"`` — the per-(cell, epoch)
    frame-level grid is dispatched through it, so workers, caching,
    resume and cost-aware scheduling all apply to ESS sharding exactly
    as to figure sweeps.  Shards vary widely in cost (a cell-epoch with
    many handoff arrivals simulates far more traffic), which is why the
    default executor uses the ``cost`` schedule: its prior includes a
    per-handoff-arrival term, so heavy shards dispatch first instead of
    straggling at the tail of the epoch.
    """
    coordinator = EssCoordinator(config)
    coordinator.run()
    frames_rows = None
    if config.fidelity == "frames":
        if executor is None:
            from ..exec import ExecutorConfig, SweepExecutor

            executor = SweepExecutor(ExecutorConfig(schedule="cost"))
        frames_rows = executor.run(coordinator.frames_grid())
    return coordinator.report(frames_rows)


def save_report(
    report: dict[str, typing.Any], path: str | pathlib.Path
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
