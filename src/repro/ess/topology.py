"""AP interconnect topology: a pure-Python graph with disjoint paths.

The Extended Service Set wires its access points into a backhaul graph
(the "distribution system" of 802.11 parlance).  Handoff signalling
between APs rides this graph, so its fault tolerance is governed by the
classic survivability question the repo's nominal source paper asks of
hierarchical hypercubes: *how many node-disjoint paths connect two
nodes?*  Two paths that share no intermediate AP cannot be severed by
any single AP or link failure, so routing a handoff over a primary path
with a node-disjoint alternate pre-computed gives one-fault failover
with zero re-convergence delay.

No networkx dependency: :class:`ApGraph` is a sorted adjacency dict,
and the disjoint-path finder is Menger via maximum flow on the
vertex-split transform (every AP becomes an ``in -> out`` arc of unit
capacity, so augmenting paths can share no intermediate AP).  By the
max-flow/min-cut duality this finds *exactly* ``min(k, vertex
connectivity)`` paths — the iterative shortest-path-with-removal
heuristic would miss feasible sets on butterfly-shaped graphs.

Everything iterates in sorted order, so path sets are deterministic
functions of the graph alone.
"""

from __future__ import annotations

import dataclasses
import heapq
import typing

__all__ = [
    "Link",
    "ApGraph",
    "grid_topology",
    "node_disjoint_paths",
    "max_disjoint_paths",
    "shortest_path",
]


@dataclasses.dataclass(frozen=True)
class Link:
    """One undirected backhaul link's attributes."""

    #: handoff-signalling capacity (events per epoch; informational)
    capacity: float = 100.0
    #: one-way signalling latency in seconds
    latency: float = 0.001

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"link capacity must be > 0, got {self.capacity}")
        if self.latency < 0:
            raise ValueError(f"link latency must be >= 0, got {self.latency}")


def link_key(a: str, b: str) -> tuple[str, str]:
    """Canonical undirected identity of the ``a``–``b`` link."""
    return (a, b) if a <= b else (b, a)


class ApGraph:
    """Undirected AP interconnect with per-link attributes.

    A plain adjacency mapping ``ap -> {neighbour -> Link}``; mutation
    is add-only (topologies are built once, then routed over).  Link
    *health* is runtime state and lives in the router, not here.
    """

    def __init__(self) -> None:
        self._adj: dict[str, dict[str, Link]] = {}

    # -- construction ------------------------------------------------------
    def add_ap(self, ap_id: str) -> None:
        if not ap_id:
            raise ValueError("ap_id must be non-empty")
        self._adj.setdefault(ap_id, {})

    def add_link(
        self, a: str, b: str, capacity: float = 100.0, latency: float = 0.001
    ) -> None:
        if a == b:
            raise ValueError(f"self-link {a!r}-{b!r} not allowed")
        self.add_ap(a)
        self.add_ap(b)
        link = Link(capacity=capacity, latency=latency)
        self._adj[a][b] = link
        self._adj[b][a] = link

    # -- queries -----------------------------------------------------------
    def aps(self) -> list[str]:
        return sorted(self._adj)

    def neighbors(self, ap_id: str) -> list[str]:
        return sorted(self._adj[ap_id])

    def has_ap(self, ap_id: str) -> bool:
        return ap_id in self._adj

    def has_link(self, a: str, b: str) -> bool:
        return a in self._adj and b in self._adj[a]

    def link(self, a: str, b: str) -> Link:
        try:
            return self._adj[a][b]
        except KeyError:
            raise KeyError(f"no link {a!r}-{b!r}") from None

    def links(self) -> list[tuple[str, str, Link]]:
        """Every undirected link once, canonically ordered."""
        out = []
        for a in self.aps():
            for b, link in sorted(self._adj[a].items()):
                if a < b:
                    out.append((a, b, link))
        return out

    def path_latency(self, path: typing.Sequence[str]) -> float:
        return sum(self.link(a, b).latency for a, b in zip(path, path[1:]))

    def to_dict(self) -> dict[str, typing.Any]:
        """JSON-ready shape (used by the ESS report)."""
        return {
            "aps": self.aps(),
            "links": [
                {"a": a, "b": b, "capacity": l.capacity, "latency": l.latency}
                for a, b, l in self.links()
            ],
        }


def grid_ap_id(row: int, col: int) -> str:
    return f"ap/{row}x{col}"


def grid_topology(
    rows: int,
    cols: int,
    capacity: float = 100.0,
    latency: float = 0.001,
) -> ApGraph:
    """A ``rows x cols`` microcell mesh (4-neighbour backhaul links).

    Any grid with both dimensions >= 2 is 2-connected, so every AP pair
    has at least two node-disjoint backhaul paths — single-fault
    failover is always available.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"grid must be >= 1x1, got {rows}x{cols}")
    graph = ApGraph()
    for r in range(rows):
        for c in range(cols):
            graph.add_ap(grid_ap_id(r, c))
            if r > 0:
                graph.add_link(
                    grid_ap_id(r - 1, c), grid_ap_id(r, c), capacity, latency
                )
            if c > 0:
                graph.add_link(
                    grid_ap_id(r, c - 1), grid_ap_id(r, c), capacity, latency
                )
    return graph


# -- shortest path (deterministic Dijkstra) --------------------------------
def shortest_path(
    graph: ApGraph,
    src: str,
    dst: str,
    exclude_nodes: typing.Collection[str] = (),
    exclude_links: typing.Collection[tuple[str, str]] = (),
) -> list[str] | None:
    """Minimum-latency ``src -> dst`` path, or ``None`` when cut off.

    ``exclude_nodes`` never appear as intermediates; ``exclude_links``
    (canonical :func:`link_key` pairs) are skipped entirely.  Ties
    break on the lexicographically smallest path, so the result is a
    pure function of its inputs.
    """
    if not graph.has_ap(src) or not graph.has_ap(dst):
        raise KeyError(f"unknown endpoint {src!r} or {dst!r}")
    banned = set(exclude_nodes) - {src, dst}
    cut = {link_key(a, b) for a, b in exclude_links}
    best: dict[str, tuple[float, tuple[str, ...]]] = {}
    heap: list[tuple[float, tuple[str, ...]]] = [(0.0, (src,))]
    while heap:
        dist, path = heapq.heappop(heap)
        node = path[-1]
        if node == dst:
            return list(path)
        seen = best.get(node)
        if seen is not None and seen <= (dist, path):
            continue
        best[node] = (dist, path)
        for nxt in graph.neighbors(node):
            if nxt in banned or nxt in path:
                continue
            if link_key(node, nxt) in cut:
                continue
            step = graph.link(node, nxt).latency
            heapq.heappush(heap, (dist + step, path + (nxt,)))
    return None


# -- node-disjoint paths via vertex-split max flow --------------------------
def _split_adjacency(
    graph: ApGraph, src: str, dst: str
) -> dict[tuple[str, int], dict[tuple[str, int], int]]:
    """Unit-capacity digraph of the vertex-split transform.

    Nodes are ``(ap, 0)`` = in-side and ``(ap, 1)`` = out-side.  The
    ``in -> out`` arc carries capacity 1 (∞ for the endpoints), each
    undirected link becomes two unit arcs ``a_out -> b_in``.
    """
    inf = len(graph.aps()) + 1  # effectively unbounded for unit arcs
    cap: dict[tuple[str, int], dict[tuple[str, int], int]] = {}
    for ap in graph.aps():
        through = inf if ap in (src, dst) else 1
        cap.setdefault((ap, 0), {})[(ap, 1)] = through
        cap.setdefault((ap, 1), {})
        for nxt in graph.neighbors(ap):
            cap[(ap, 1)][(nxt, 0)] = 1
            cap.setdefault((nxt, 0), {})
    return cap


def node_disjoint_paths(
    graph: ApGraph, src: str, dst: str, k: int | None = None
) -> list[list[str]]:
    """Up to ``k`` pairwise node-disjoint ``src -> dst`` paths.

    Paths share no intermediate AP (endpoints excepted).  With
    ``k=None`` the full maximum set is returned — by Menger's theorem
    its size equals the minimum vertex cut separating ``src`` from
    ``dst`` (unbounded when they are adjacent, since no vertex set
    separates neighbours).  Augmenting paths are found by BFS over
    sorted adjacency, so output is deterministic; the final set is
    ordered by (latency, hop count, path) — element 0 is the primary
    route, the rest are its failover alternates.
    """
    if src == dst:
        raise ValueError(f"src and dst must differ, got {src!r}")
    if not graph.has_ap(src) or not graph.has_ap(dst):
        raise KeyError(f"unknown endpoint {src!r} or {dst!r}")
    if k is not None and k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    cap = _split_adjacency(graph, src, dst)
    flow: dict[tuple, dict[tuple, int]] = {u: {} for u in cap}
    source, sink = (src, 1), (dst, 0)
    found = 0
    limit = k if k is not None else len(graph.aps())
    while found < limit:
        # BFS (Edmonds–Karp) for an augmenting path in the residual graph
        parents: dict[tuple, tuple] = {source: source}
        queue = [source]
        while queue and sink not in parents:
            nxt_queue = []
            for u in queue:
                candidates = set(cap[u]) | set(flow[u])
                residual = [
                    v
                    for v in candidates
                    if v not in parents
                    and cap[u].get(v, 0) - flow[u].get(v, 0) > 0
                ]
                for v in sorted(residual):
                    parents[v] = u
                    nxt_queue.append(v)
            queue = nxt_queue
        if sink not in parents:
            break
        node = sink
        while node != source:
            prev = parents[node]
            flow[prev][node] = flow[prev].get(node, 0) + 1
            flow[node][prev] = flow[node].get(prev, 0) - 1
            node = prev
        found += 1
    # decompose the integral flow into vertex-disjoint paths, consuming
    # each unit arc as it is walked (unit through-capacities guarantee
    # the walks are simple and pairwise disjoint over intermediates)
    paths: list[list[str]] = []
    for _ in range(found):
        path = [src]
        node = source
        while node != sink:
            nxt = min(v for v, f in flow[node].items() if f > 0)
            flow[node][nxt] -= 1
            flow[nxt][node] += 1
            if nxt[0] != path[-1]:
                path.append(nxt[0])
            node = nxt
        paths.append(path)
    paths.sort(key=lambda p: (graph.path_latency(p), len(p), p))
    return paths


def max_disjoint_paths(graph: ApGraph, src: str, dst: str) -> int:
    """Size of the maximum node-disjoint path set (Menger number)."""
    return len(node_disjoint_paths(graph, src, dst))
