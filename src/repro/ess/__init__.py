"""Multi-BSS Extended Service Set: topology, roaming, sharded epochs.

The single-BSS layers below simulate one microcell in frame-level
detail; this package scales *out*: a grid of microcells whose APs are
wired into a backhaul graph, stations owned by one BSS at a time and
roaming to geometric neighbours, and handoff signalling routed AP-to-AP
over **node-disjoint backhaul paths** — the survivability structure the
repo's nominal source paper studies on hierarchical hypercubes, applied
here to the AP interconnect (primary path + pre-computed disjoint
alternates, single-fault failover with no re-convergence).

* :mod:`repro.ess.topology` — pure-Python AP graph; max-flow
  (vertex-split) node-disjoint path finder; deterministic Dijkstra;
* :mod:`repro.ess.routing` — health-aware router with failover and
  per-link metrics;
* :mod:`repro.ess.cells` — call-level microcell model (ownership,
  admission with overlap grace, roam-step dynamics);
* :mod:`repro.ess.coordinator` — the epoch-sharded runner, cross-BSS
  conservation snapshots, the optional frame-level tier dispatched
  through :mod:`repro.exec`, and the JSON report behind
  ``python -m repro ess``.
"""

from .cells import Cell, CellConfig, HandoffDeparture, RoamingCall
from .coordinator import (
    ESS_REPORT_SCHEMA,
    FIDELITIES,
    EssConfig,
    EssCoordinator,
    run_ess,
    save_report,
)
from .routing import BackhaulRouter, RouteResult
from .topology import (
    ApGraph,
    Link,
    grid_ap_id,
    grid_topology,
    max_disjoint_paths,
    node_disjoint_paths,
    shortest_path,
)

__all__ = [
    "ApGraph",
    "Link",
    "grid_ap_id",
    "grid_topology",
    "node_disjoint_paths",
    "max_disjoint_paths",
    "shortest_path",
    "BackhaulRouter",
    "RouteResult",
    "Cell",
    "CellConfig",
    "RoamingCall",
    "HandoffDeparture",
    "EssConfig",
    "EssCoordinator",
    "run_ess",
    "save_report",
    "ESS_REPORT_SCHEMA",
    "FIDELITIES",
]
