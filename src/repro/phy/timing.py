"""802.11 PHY/MAC timing constants (the paper's Table II defaults).

All times are in **seconds** and all sizes in **bits** unless a name
says otherwise.  The defaults model the 11 Mb/s DSSS (802.11b-class)
PHY used in the paper's simulation: 20 us slots, SIFS 10 us, a long
PLCP preamble+header sent at 1 Mb/s, and payloads at the channel rate.
"""

from __future__ import annotations

import dataclasses
import typing

__all__ = ["PhyTiming"]


@dataclasses.dataclass(frozen=True)
class PhyTiming:
    """Immutable bundle of PHY timing parameters.

    Notes
    -----
    ``pifs`` and ``difs`` are derived per the standard
    (``SIFS + slot`` and ``SIFS + 2*slot``) unless overridden.

    Because the bundle is immutable, every derived duration is a pure
    function of its fields; :meth:`frame_duration` memoizes the airtime
    of each ``(frame type, payload size)`` the simulation actually uses
    so the hot path replaces float math with one dict lookup.  The memo
    is identity-local (it never leaks between differently-parameterized
    bundles) and excluded from equality/hashing.
    """

    #: payload channel bit rate (bits/second)
    data_rate: float = 11e6
    #: rate at which the PLCP preamble+header is sent (bits/second)
    plcp_rate: float = 1e6
    #: backoff slot duration (seconds)
    slot: float = 20e-6
    #: short interframe space (seconds)
    sifs: float = 10e-6
    #: PLCP preamble + header (bits, sent at plcp_rate)
    plcp_bits: int = 192
    #: MAC data-frame header + FCS (bits) — 34 octets
    mac_header_bits: int = 272
    #: ACK frame body (bits) — 14 octets
    ack_bits: int = 112
    #: CF-Poll / CF-End control frames (bits) — Data+CF-Poll sized
    poll_bits: int = 272
    #: beacon frame body (bits)
    beacon_bits: int = 400
    #: one-way propagation delay (seconds); single-BSS, effectively 1 us
    prop_delay: float = 1e-6

    def __post_init__(self) -> None:
        # the frozen dataclass blocks normal attribute writes; the memo
        # is not a field (it must not participate in eq/hash/repr)
        object.__setattr__(self, "_duration_memo", {})

    def frame_duration(
        self, ftype: typing.Any, payload_bits: int = 0, extra_bits: int = 0
    ) -> float:
        """Memoized airtime of one MAC frame (see ``Frame.airtime``).

        ``ftype`` is a :class:`~repro.mac.frames.FrameType` member (any
        hashable key works); ``extra_bits`` carries the multipoll list
        surcharge.  Results are cached per (ftype, payload, extra).
        """
        key = (ftype, payload_bits, extra_bits)
        memo: dict = self._duration_memo  # type: ignore[attr-defined]
        duration = memo.get(key)
        if duration is None:
            duration = memo[key] = self._compute_frame_duration(
                ftype, payload_bits, extra_bits
            )
        return duration

    def _compute_frame_duration(
        self, ftype: typing.Any, payload_bits: int, extra_bits: int
    ) -> float:
        from ..mac.frames import _HEADER_BITS, _REQUEST_PAYLOAD_BITS, FrameType

        if ftype is FrameType.ACK:
            return self.ack_time()
        if ftype is FrameType.RTS:
            return self.plcp_time() + _HEADER_BITS[FrameType.RTS] / self.data_rate
        if ftype is FrameType.CTS:
            return self.plcp_time() + _HEADER_BITS[FrameType.CTS] / self.data_rate
        if ftype is FrameType.BEACON:
            return self.beacon_time()
        if ftype is FrameType.CF_POLL or ftype is FrameType.CF_END:
            return self.poll_time()
        if ftype is FrameType.CF_MULTIPOLL:
            return self.poll_time(extra_payload_bits=extra_bits)
        if ftype is FrameType.REQUEST:
            return self.frame_airtime(_REQUEST_PAYLOAD_BITS)
        return self.frame_airtime(payload_bits)

    @property
    def pifs(self) -> float:
        """PCF interframe space: SIFS + one slot."""
        return self.sifs + self.slot

    @property
    def difs(self) -> float:
        """DCF interframe space: SIFS + two slots."""
        return self.sifs + 2 * self.slot

    # -- durations -----------------------------------------------------------
    def plcp_time(self) -> float:
        """Airtime of the PLCP preamble+header."""
        return self.plcp_bits / self.plcp_rate

    def frame_airtime(self, payload_bits: int, with_mac_header: bool = True) -> float:
        """Airtime of a frame carrying ``payload_bits`` of MSDU payload."""
        if payload_bits < 0:
            raise ValueError(f"negative payload {payload_bits}")
        body = payload_bits + (self.mac_header_bits if with_mac_header else 0)
        return self.plcp_time() + body / self.data_rate

    def ack_time(self) -> float:
        """Airtime of an ACK control frame."""
        return self.plcp_time() + self.ack_bits / self.data_rate

    def poll_time(self, extra_payload_bits: int = 0) -> float:
        """Airtime of a CF-Poll (optionally piggybacking payload bits)."""
        return self.plcp_time() + (self.poll_bits + extra_payload_bits) / self.data_rate

    def beacon_time(self) -> float:
        """Airtime of a beacon frame."""
        return self.plcp_time() + self.beacon_bits / self.data_rate

    def data_exchange_time(self, payload_bits: int) -> float:
        """DATA + SIFS + ACK — the cost of one successful DCF exchange."""
        return self.frame_airtime(payload_bits) + self.sifs + self.ack_time()

    def slots_for(self, duration: float) -> int:
        """Number of whole backoff slots covered by ``duration``."""
        if duration < 0:
            raise ValueError(f"negative duration {duration}")
        return int(duration / self.slot)
