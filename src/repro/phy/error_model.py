"""Frame-error model.

The paper computes the probability of successful frame delivery as
``P_success = (1 - BER)^L`` with ``L`` the frame length in bits — i.e.
independent bit errors, any bit error killing the frame.  That formula
is reproduced here verbatim; a noiseless channel is ``BER = 0``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BitErrorModel"]


class BitErrorModel:
    """Independent-bit-error frame corruption model.

    Parameters
    ----------
    ber:
        Channel bit-error rate in [0, 1).
    rng:
        Numpy generator used for the per-frame Bernoulli draws.
    """

    def __init__(self, ber: float, rng: np.random.Generator) -> None:
        if not 0.0 <= ber < 1.0:
            raise ValueError(f"BER must be in [0, 1), got {ber}")
        self.ber = float(ber)
        self._rng = rng
        #: frame_bits -> (1-BER)^L memo; the power is a pure function of
        #: the (few, repeated) frame sizes a scenario puts on the air
        self._p_success: dict[int, float] = {}

    def success_probability(self, frame_bits: int) -> float:
        """``(1 - BER)^L`` for an ``L``-bit frame (memoized per size)."""
        if frame_bits < 0:
            raise ValueError(f"negative frame size {frame_bits}")
        if self.ber == 0.0:
            return 1.0
        p = self._p_success.get(frame_bits)
        if p is None:
            p = self._p_success[frame_bits] = (1.0 - self.ber) ** frame_bits
        return p

    def frame_survives(self, frame_bits: int) -> bool:
        """Sample whether one frame is delivered intact.

        A noiseless channel consumes no random draw (and a noisy one
        exactly one) — callers rely on this for reproducibility.
        """
        if self.ber == 0.0:
            return True
        return bool(self._rng.random() < self.success_probability(frame_bits))
