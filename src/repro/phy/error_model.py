"""Frame-error model.

The paper computes the probability of successful frame delivery as
``P_success = (1 - BER)^L`` with ``L`` the frame length in bits — i.e.
independent bit errors, any bit error killing the frame.  That formula
is reproduced here verbatim; a noiseless channel is ``BER = 0``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BitErrorModel"]


class BitErrorModel:
    """Independent-bit-error frame corruption model.

    Parameters
    ----------
    ber:
        Channel bit-error rate in [0, 1).
    rng:
        Numpy generator used for the per-frame Bernoulli draws.
    """

    def __init__(self, ber: float, rng: np.random.Generator) -> None:
        if not 0.0 <= ber < 1.0:
            raise ValueError(f"BER must be in [0, 1), got {ber}")
        self.ber = float(ber)
        self._rng = rng
        #: frame_bits -> (1-BER)^L memo; the power is a pure function of
        #: the (few, repeated) frame sizes a scenario puts on the air
        self._p_success: dict[int, float] = {}
        #: batched-draw buffer (engine="batched"): when a block size is
        #: set, uniforms are drawn ``block`` at a time with one
        #: ``Generator.random(n)`` call and served from the buffer.
        #: ``Generator.random(n)`` consumes the underlying bit stream
        #: exactly like ``n`` scalar ``random()`` calls, so the served
        #: sequence is *identical* to the unbuffered one — buffering
        #: changes allocation behaviour, never results.
        self._batch: np.ndarray | None = None
        self._batch_next = 0

    def enable_batch(self, block: int = 256) -> None:
        """Switch per-frame draws to block-buffered vectorized draws."""
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        self._batch = np.empty(0, dtype=np.float64)
        self._batch_next = 0
        self._block = int(block)

    def _next_uniform(self) -> float:
        batch = self._batch
        assert batch is not None
        if self._batch_next >= len(batch):
            self._batch = batch = self._rng.random(self._block)
            self._batch_next = 0
        u = batch[self._batch_next]
        self._batch_next += 1
        return float(u)

    def success_probability(self, frame_bits: int) -> float:
        """``(1 - BER)^L`` for an ``L``-bit frame (memoized per size)."""
        if frame_bits < 0:
            raise ValueError(f"negative frame size {frame_bits}")
        if self.ber == 0.0:
            return 1.0
        p = self._p_success.get(frame_bits)
        if p is None:
            p = self._p_success[frame_bits] = (1.0 - self.ber) ** frame_bits
        return p

    def frame_survives(self, frame_bits: int) -> bool:
        """Sample whether one frame is delivered intact.

        A noiseless channel consumes no random draw (and a noisy one
        exactly one) — callers rely on this for reproducibility.
        """
        if self.ber == 0.0:
            return True
        if self._batch is not None:
            return self._next_uniform() < self.success_probability(frame_bits)
        return bool(self._rng.random() < self.success_probability(frame_bits))
