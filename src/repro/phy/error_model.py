"""Frame-error model.

The paper computes the probability of successful frame delivery as
``P_success = (1 - BER)^L`` with ``L`` the frame length in bits — i.e.
independent bit errors, any bit error killing the frame.  That formula
is reproduced here verbatim; a noiseless channel is ``BER = 0``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BitErrorModel"]


class BitErrorModel:
    """Independent-bit-error frame corruption model.

    Parameters
    ----------
    ber:
        Channel bit-error rate in [0, 1).
    rng:
        Numpy generator used for the per-frame Bernoulli draws.
    """

    def __init__(self, ber: float, rng: np.random.Generator) -> None:
        if not 0.0 <= ber < 1.0:
            raise ValueError(f"BER must be in [0, 1), got {ber}")
        self.ber = float(ber)
        self._rng = rng

    def success_probability(self, frame_bits: int) -> float:
        """``(1 - BER)^L`` for an ``L``-bit frame."""
        if frame_bits < 0:
            raise ValueError(f"negative frame size {frame_bits}")
        if self.ber == 0.0:
            return 1.0
        return (1.0 - self.ber) ** frame_bits

    def frame_survives(self, frame_bits: int) -> bool:
        """Sample whether one frame is delivered intact."""
        if self.ber == 0.0:
            return True
        return bool(self._rng.random() < self.success_probability(frame_bits))
