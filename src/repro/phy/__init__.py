"""PHY substrate: timing constants, BER error model, broadcast channel."""

from .channel import Channel, ChannelListener, Transmission, TxOutcome
from .error_model import BitErrorModel
from .timing import PhyTiming

__all__ = [
    "PhyTiming",
    "BitErrorModel",
    "Channel",
    "ChannelListener",
    "Transmission",
    "TxOutcome",
]
