"""Broadcast radio channel with collision detection.

Single-BSS assumptions straight from the paper's simulation model:
every station hears every other (no hidden/exposed terminals, no
capture effect, no interference from neighbouring BSSs).  The channel
is therefore one shared medium:

* it is **busy** whenever at least one transmission is in flight;
* two transmissions overlapping in time **collide** and both are lost;
* a non-collided frame is additionally subjected to the BER frame-error
  model (``(1-BER)^L``).

Stations interact through :class:`ChannelListener` callbacks (carrier
sense transitions and frame delivery) plus :meth:`Channel.transmit`.
"""

from __future__ import annotations

import dataclasses
import typing

from ..sim.engine import Simulator
from ..sim.events import Event
from .error_model import BitErrorModel

__all__ = ["Channel", "ChannelListener", "TxOutcome", "Transmission"]


class ChannelListener:
    """Callbacks a station registers with the channel (all optional)."""

    def on_medium_busy(self, now: float) -> None:
        """Medium transitioned idle → busy."""

    def on_medium_idle(self, now: float) -> None:
        """Medium transitioned busy → idle."""

    def on_frame(self, frame: typing.Any, ok: bool, now: float) -> None:
        """A frame finished on the air.

        Called for every attached listener except the sender; ``ok`` is
        False for collided or bit-error-corrupted frames.  Addressing is
        the listener's job (frames carry ``dest``).
        """


@dataclasses.dataclass(slots=True)
class Transmission:
    """One in-flight frame."""

    frame: typing.Any
    sender: typing.Any
    start: float
    end: float
    collided: bool = False
    done: "Event | None" = None


class TxOutcome:
    """Result of a completed transmission, delivered to the sender.

    ``ok`` is precomputed at construction (it is read once per attached
    listener on the hot path); treat instances as immutable.
    """

    __slots__ = ("frame", "collided", "bit_errors", "ok")

    def __init__(
        self, frame: typing.Any, collided: bool, bit_errors: bool
    ) -> None:
        self.frame = frame
        self.collided = collided
        self.bit_errors = bit_errors
        self.ok = not (collided or bit_errors)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TxOutcome(frame={self.frame!r}, collided={self.collided}, "
            f"bit_errors={self.bit_errors})"
        )


class Channel:
    """The shared medium.

    Parameters
    ----------
    sim:
        Owning simulator.
    error_model:
        BER frame-corruption model applied to non-collided frames.
    """

    def __init__(self, sim: Simulator, error_model: BitErrorModel) -> None:
        self.sim = sim
        self.error_model = error_model
        self._listeners: list[ChannelListener] = []
        #: immutable snapshots of ``_listeners``, rebuilt on attach/detach —
        #: the hot path iterates these instead of copying the list per
        #: frame; busy/idle carry pre-bound methods, the frame fan-out
        #: carries (listener, bound on_frame) pairs so the sender can be
        #: skipped by identity
        self._fanout: tuple[ChannelListener, ...] = ()
        self._fanout_busy: tuple = ()
        self._fanout_idle: tuple = ()
        self._fanout_frame: tuple = ()
        #: pre-bound BER sampler (the model is fixed at construction)
        self._survives = error_model.frame_survives
        self._active: list[Transmission] = []
        #: time the medium last became idle (for DIFS/PIFS deference)
        self.idle_since: float = sim.now
        #: cumulative busy airtime (for utilization accounting)
        self.busy_time: float = 0.0
        self._busy_started: float | None = None
        #: optional :class:`repro.faults.injector.FrameLossInjector`
        #: consulted (``corrupts(frame, now)``) for every frame that
        #: survived collisions and the BER model — targeted fault
        #: injection rides on top of the physical error processes
        self.fault_injector = None
        #: optional :class:`repro.obs.trace.TraceRecorder` (``frame``
        #: category); None keeps the hot path to a single guard
        self.trace = None

    # -- attachment ----------------------------------------------------------
    def attach(self, listener: ChannelListener) -> None:
        """Register a listener for carrier-sense and frame callbacks."""
        if listener in self._listeners:
            raise ValueError("listener already attached")
        self._listeners.append(listener)
        self._rebuild_fanout()

    def detach(self, listener: ChannelListener) -> None:
        """Remove a listener (e.g. a departing station)."""
        self._listeners.remove(listener)
        self._rebuild_fanout()

    def _rebuild_fanout(self) -> None:
        listeners = self._listeners
        self._fanout = tuple(listeners)
        self._fanout_busy = tuple(l.on_medium_busy for l in listeners)
        self._fanout_idle = tuple(l.on_medium_idle for l in listeners)
        self._fanout_frame = tuple((l, l.on_frame) for l in listeners)

    # -- sensing ---------------------------------------------------------------
    @property
    def is_busy(self) -> bool:
        """True while at least one transmission is in flight."""
        return bool(self._active)

    def idle_duration(self, now: float) -> float:
        """How long the medium has been continuously idle (0 if busy)."""
        if self._active:
            return 0.0
        return now - self.idle_since

    def utilization(self, now: float) -> float:
        """Fraction of elapsed time the medium has been busy."""
        busy = self.busy_time
        if self._busy_started is not None:
            busy += now - self._busy_started
        return busy / now if now > 0 else 0.0

    # -- transmission -----------------------------------------------------------
    def transmit(
        self, frame: typing.Any, duration: float, sender: typing.Any
    ) -> Event:
        """Put ``frame`` on the air for ``duration`` seconds.

        Returns an event that fires at the end of the transmission with
        a :class:`TxOutcome` value.  Overlap with any other transmission
        collides **both**.
        """
        if duration <= 0:
            raise ValueError(f"transmission duration must be > 0, got {duration}")
        sim = self.sim
        now = sim._now
        tx = Transmission(frame, sender, now, now + duration, False, Event(sim))
        active = self._active
        if active:
            # Overlap: everything currently in flight (and this frame)
            # is corrupted.
            tx.collided = True
            for other in active:
                other.collided = True
        active.append(tx)
        if len(active) == 1:
            self._busy_started = now
            for on_busy in self._fanout_busy:
                on_busy(now)
        sim.call_at(tx.end, self._finish, tx, priority=-1)
        return tx.done

    def _finish(self, tx: Transmission) -> None:
        now = self.sim._now
        active = self._active
        active.remove(tx)
        frame = tx.frame
        collided = tx.collided
        bit_errors = False
        if not collided:
            frame_bits = getattr(frame, "total_bits", 0)
            bit_errors = not self._survives(frame_bits)
            if not bit_errors and self.fault_injector is not None:
                bit_errors = self.fault_injector.corrupts(frame, now)
        outcome = TxOutcome(frame, collided, bit_errors)
        ok = outcome.ok
        if self.trace is not None:
            ftype = getattr(frame, "ftype", None)
            self.trace.emit(
                now, "frame", "tx",
                ftype=getattr(ftype, "value", ftype),
                src=getattr(frame, "src", None),
                dest=getattr(frame, "dest", None),
                start=tx.start,
                ok=ok,
                collided=collided,
                bit_errors=bit_errors,
            )
        if not active:
            self.idle_since = now
            if self._busy_started is not None:
                self.busy_time += now - self._busy_started
                self._busy_started = None
        # Deliver to receivers first, then complete the sender's event,
        # then announce idle — so receivers see the frame before anyone
        # reacts to the idle medium.
        sender = tx.sender
        for listener, on_frame in self._fanout_frame:
            if listener is not sender:
                on_frame(frame, ok, now)
        assert tx.done is not None
        tx.done.succeed(outcome)
        if not active:
            for on_idle in self._fanout_idle:
                on_idle(now)
