"""Cross-BSS conservation invariants for the ESS layer.

The single-BSS invariant monitors (:mod:`repro.validate.invariants`)
gate one cell's internals; the ESS coordinator needs the *global*
ledger to balance across cells and across the backhaul: every call
admitted anywhere in the ESS is, at any epoch boundary, in exactly one
of six states — completed, dropped at handoff admission, dropped by an
unroutable backhaul, dropped by an AP outage (shed while resident or
refused on inbound delivery to a dark cell), resident in some cell, or
in transit between two cells.  Blocked new calls never enter the
ledger (they were never admitted).

Violations are rendered as strings (same convention as
:class:`~repro.validate.invariants.Violation`) so the ESS report can
embed them directly and the CLI can gate its exit code on the list
being empty.
"""

from __future__ import annotations

import dataclasses
import typing

__all__ = [
    "EssLedgerSnapshot",
    "conservation_violations",
    "cell_ledger_violations",
]


@dataclasses.dataclass(frozen=True)
class EssLedgerSnapshot:
    """The global call ledger at one epoch boundary."""

    epoch: int
    #: calls admitted into the ESS anywhere (new-call admissions)
    created: int
    completed: int
    #: handoffs refused at the target cell for capacity
    dropped_admission: int
    #: handoffs with every disjoint backhaul path faulted
    dropped_backhaul: int
    #: calls currently owned by some cell
    resident: int
    #: routed handoffs not yet processed by their target cell
    in_transit: int
    #: calls lost to AP outages: shed while resident in a cell whose AP
    #: went dark, plus inbound handoffs refused by a dark cell
    dropped_ap_down: int = 0

    @property
    def dropped_total(self) -> int:
        return (
            self.dropped_admission
            + self.dropped_backhaul
            + self.dropped_ap_down
        )

    def violation(self) -> str | None:
        """``created = completed + dropped + resident + in_transit``."""
        accounted = (
            self.completed
            + self.dropped_total
            + self.resident
            + self.in_transit
        )
        if self.created != accounted:
            return (
                f"epoch {self.epoch}: conservation broken: "
                f"created={self.created} != completed={self.completed} "
                f"+ dropped_admission={self.dropped_admission} "
                f"+ dropped_backhaul={self.dropped_backhaul} "
                f"+ dropped_ap_down={self.dropped_ap_down} "
                f"+ resident={self.resident} + in_transit={self.in_transit} "
                f"(= {accounted})"
            )
        if min(
            self.created,
            self.completed,
            self.dropped_admission,
            self.dropped_backhaul,
            self.dropped_ap_down,
            self.resident,
            self.in_transit,
        ) < 0:
            return f"epoch {self.epoch}: negative ledger term: {self}"
        return None


def conservation_violations(
    snapshots: typing.Iterable[EssLedgerSnapshot],
) -> list[str]:
    """Every epoch-boundary violation, chronologically."""
    out = []
    for snap in snapshots:
        message = snap.violation()
        if message is not None:
            out.append(message)
    return out


def cell_ledger_violations(
    cell_id: str, ledger: typing.Mapping[str, typing.Any]
) -> list[str]:
    """One cell's flow balance, from :meth:`repro.ess.cells.Cell.ledger`.

    Calls entering a cell (new admissions + admitted inbound handoffs)
    must equal calls that left it (completed + handed off) plus calls
    still resident; attempts must split exactly into admitted/refused.
    """
    out = []
    shed = ledger.get("shed_ap_down", 0)
    ho_ap_down = ledger.get("handoff_dropped_ap_down", 0)
    inflow = ledger["admitted_new"] + ledger["handoff_in_admitted"]
    outflow = (
        ledger["completed"]
        + ledger["handoff_out"]
        + ledger["resident"]
        + shed
    )
    if inflow != outflow:
        out.append(
            f"cell {cell_id}: flow imbalance: in={inflow} != out={outflow}"
        )
    if ledger["attempts_new"] != ledger["admitted_new"] + ledger["blocked"]:
        out.append(
            f"cell {cell_id}: new-call attempts do not split into "
            f"admitted + blocked: {ledger['attempts_new']} != "
            f"{ledger['admitted_new']} + {ledger['blocked']}"
        )
    if (
        ledger["handoff_in"]
        != ledger["handoff_in_admitted"]
        + ledger["handoff_dropped_admission"]
        + ho_ap_down
    ):
        out.append(
            f"cell {cell_id}: inbound handoffs do not split into "
            f"admitted + dropped: {ledger['handoff_in']} != "
            f"{ledger['handoff_in_admitted']} + "
            f"{ledger['handoff_dropped_admission']} + {ho_ap_down}"
        )
    return out
