"""Tiered validation runs: grid -> claims -> JSON verdict report.

``python -m repro validate --tier {smoke,full}`` lands here.  A tier
is a named sweep grid (schemes x loads x seeds, with the runtime
invariant monitors switched on) plus a Fig. 5 static-population run;
the grid executes through :class:`repro.exec.SweepExecutor` — so it is
parallel, content-address cached and resumable like any other sweep —
and the rows feed :func:`repro.validate.shapes.evaluate_claims`.

The **smoke** tier gates CI: the load extremes only, three seeds,
sized to finish in a few minutes on two workers.  The **full** tier
covers the whole evaluation load axis for release-grade checks.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing

from ..exec import SweepExecutor
from ..experiments.config import EVALUATION_LOADS, sweep_config
from ..network.bss import SCHEMES, ScenarioConfig
from .shapes import ClaimResult, ShapeThresholds, evaluate_claims

__all__ = [
    "TierSpec",
    "TIERS",
    "validation_grid",
    "ValidationReport",
    "run_validation",
]


@dataclasses.dataclass(frozen=True)
class TierSpec:
    """One named validation tier: grid shape + Fig. 5 populations."""

    name: str
    description: str
    schemes: tuple[str, ...]
    loads: tuple[float, ...]
    seeds: tuple[int, ...]
    sim_time: float
    warmup: float
    fig5_populations: tuple[tuple[int, int], ...]
    fig5_sim_time: float

    @property
    def grid_points(self) -> int:
        return len(self.schemes) * len(self.loads) * len(self.seeds)


TIERS: dict[str, TierSpec] = {
    "smoke": TierSpec(
        name="smoke",
        description=(
            "load extremes x 3 seeds x all schemes at sim_time=80 "
            "(the shortest horizon where the Fig. 10 reversal holds "
            "per-seed), plus a reduced Fig. 5 population ladder; "
            "sized for CI (~2-4 min on 2 workers)"
        ),
        schemes=SCHEMES,
        loads=(0.5, 3.0),
        seeds=(1, 2, 3),
        sim_time=80.0,
        warmup=8.0,
        fig5_populations=((1, 1), (2, 1), (3, 2)),
        fig5_sim_time=20.0,
    ),
    "full": TierSpec(
        name="full",
        description=(
            "the whole evaluation load axis x 3 seeds x all schemes "
            "at sim_time=80, plus the paper's full Fig. 5 ladder; "
            "release-grade (tens of minutes serial, minutes on a pool)"
        ),
        schemes=SCHEMES,
        loads=tuple(EVALUATION_LOADS),
        seeds=(1, 2, 3),
        sim_time=80.0,
        warmup=8.0,
        fig5_populations=((1, 1), (2, 1), (3, 2), (4, 2)),
        fig5_sim_time=30.0,
    ),
}


def _resolve(tier: str | TierSpec) -> TierSpec:
    if isinstance(tier, TierSpec):
        return tier
    try:
        return TIERS[tier]
    except KeyError:
        raise ValueError(
            f"unknown tier {tier!r}; available: {sorted(TIERS)}"
        ) from None


def validation_grid(
    tier: str | TierSpec, engine: str = "exact"
) -> list[ScenarioConfig]:
    """The tier's sweep grid, with the runtime monitors switched on.

    ``engine`` selects the execution tier for every point (see
    DESIGN.md "Engine tiers"); non-exact grids hash to distinct cache
    keys, so batched validation rows never collide with exact ones.
    """
    spec = _resolve(tier)
    return [
        dataclasses.replace(
            sweep_config(
                scheme, load, seed, spec.sim_time, spec.warmup, engine
            ),
            monitor_invariants=True,
        )
        for scheme in spec.schemes
        for load in spec.loads
        for seed in spec.seeds
    ]


@dataclasses.dataclass(frozen=True)
class ValidationReport:
    """The verdict of one validation run."""

    tier: str
    claims: tuple[ClaimResult, ...]
    grid_rows: int
    fig5_rows: int
    telemetry: dict[str, typing.Any] = dataclasses.field(default_factory=dict)
    #: engine tier the grid ran under ("exact" unless --engine was given)
    engine: str = "exact"
    #: per-claim verdict comparison vs an exact reference run, present
    #: only for non-exact engines.  Informational: deltas never gate
    #: :attr:`passed` — they tell you where the accelerated tier's
    #: statistics diverge enough to flip a shape claim.
    claim_deltas: tuple[dict[str, typing.Any], ...] = ()

    @property
    def failed(self) -> tuple[ClaimResult, ...]:
        return tuple(c for c in self.claims if c.status == "fail")

    @property
    def skipped(self) -> tuple[ClaimResult, ...]:
        return tuple(c for c in self.claims if c.status == "skip")

    @property
    def passed(self) -> bool:
        """Green iff no claim failed (skips are not failures)."""
        return not self.failed

    def to_dict(self) -> dict[str, typing.Any]:
        counts = {"pass": 0, "fail": 0, "skip": 0}
        for c in self.claims:
            counts[c.status] += 1
        out: dict[str, typing.Any] = {
            "tier": self.tier,
            "engine": self.engine,
            "passed": self.passed,
            "counts": counts,
            "grid_rows": self.grid_rows,
            "fig5_rows": self.fig5_rows,
            "claims": [c.as_dict() for c in self.claims],
            "telemetry": self.telemetry,
        }
        if self.engine != "exact":
            out["claim_deltas"] = list(self.claim_deltas)
        return out

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write the JSON verdict report; returns the path."""
        p = pathlib.Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return p

    def render(self) -> str:
        """Human-readable one-line-per-claim summary."""
        mark = {"pass": "PASS", "fail": "FAIL", "skip": "skip"}
        engine = "" if self.engine == "exact" else f" (engine={self.engine})"
        lines = [f"validation tier '{self.tier}'{engine}: "
                 f"{'PASSED' if self.passed else 'FAILED'}"]
        for c in self.claims:
            lines.append(f"  [{mark[c.status]}] {c.claim_id}: {c.detail}")
        changed = [d for d in self.claim_deltas if d["changed"]]
        if self.claim_deltas:
            lines.append(
                f"  deltas vs exact: {len(changed)} of "
                f"{len(self.claim_deltas)} claims changed verdict "
                "(informational)"
            )
            for d in changed:
                lines.append(
                    f"    [delta] {d['claim_id']}: exact "
                    f"{d['exact_status']} -> {self.engine} "
                    f"{d['engine_status']}"
                )
        return "\n".join(lines)


def run_validation(
    tier: str | TierSpec,
    *,
    executor: SweepExecutor | None = None,
    thresholds: ShapeThresholds | None = None,
    include_fig5: bool = True,
    engine: str = "exact",
) -> ValidationReport:
    """Execute one validation tier end to end.

    Parameters
    ----------
    tier:
        A name from :data:`TIERS` or a custom :class:`TierSpec`.
    executor:
        Pre-configured sweep executor (workers/cache/journal); a
        serial uncached one is built when omitted.
    thresholds:
        Gate constants override (defaults are the calibrated ones).
    include_fig5:
        Skip the static-population Fig. 5 run when False (its claim
        then reports ``skip``).
    engine:
        Engine tier for the grid.  Non-exact engines additionally run
        the exact grid and report per-claim verdict deltas in the
        report — informational only; ``passed`` reflects the requested
        engine's claims.
    """
    spec = _resolve(tier)
    if executor is None:
        executor = SweepExecutor()
    rows = executor.run(validation_grid(spec, engine))
    fig5_rows: list[dict] = []
    if include_fig5:
        from ..experiments.figures import fig5

        fig5_rows = fig5(
            populations=spec.fig5_populations,
            seed=spec.seeds[0],
            sim_time=spec.fig5_sim_time,
        )
    claims = evaluate_claims(rows, fig5_rows or None, thresholds)
    claim_deltas: tuple[dict[str, typing.Any], ...] = ()
    if engine != "exact":
        # the informational exact reference: same tier, same fig5 rows
        # (the fig5 path is always exact), claims re-evaluated
        exact_rows = executor.run(validation_grid(spec, "exact"))
        exact_claims = evaluate_claims(exact_rows, fig5_rows or None, thresholds)
        exact_by_id = {c.claim_id: c for c in exact_claims}
        claim_deltas = tuple(
            {
                "claim_id": c.claim_id,
                "engine_status": c.status,
                "exact_status": (
                    exact_by_id[c.claim_id].status
                    if c.claim_id in exact_by_id else "missing"
                ),
                "changed": exact_by_id.get(c.claim_id) is None
                or exact_by_id[c.claim_id].status != c.status,
            }
            for c in claims
        )
    return ValidationReport(
        tier=spec.name,
        claims=tuple(claims),
        grid_rows=len(rows),
        fig5_rows=len(fig5_rows),
        telemetry=executor.summary(),
        engine=engine,
        claim_deltas=claim_deltas,
    )
