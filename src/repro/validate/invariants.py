"""Opt-in runtime invariant monitors for a simulated BSS.

``ScenarioConfig(monitor_invariants=True)`` makes :class:`BssScenario`
build one :class:`InvariantSuite` and hook it into the DES kernel, the
shared NAV, the token policy and the QoS AP.  Monitored runs check,
while the simulation executes:

* the event clock never moves backwards;
* the NAV is never set to a time already in the past;
* token regeneration obeys its rule — non-negative delay, never armed
  while the token is still present, voice delays within the pacing
  envelope (``2/r`` plus the guard), video delays exactly the
  engineered ``x_j``;
* CFPs never overlap, never start before the contention-period debt of
  the previous one is paid, and never run past their announced maximum
  (plus one in-flight exchange of slack);

and, at :meth:`InvariantSuite.finalize`:

* channel time accounting is sane (busy ≤ elapsed, CFP ≤ elapsed,
  idle ≥ 0);
* every admitted source's *measured* max jitter (voice, Theorem 1) or
  max access delay (video, Theorem 3) sits under its QoS budget.

Violations are collected, not raised: a monitored sweep finishes and
reports ``invariant_violations`` in its result row, which the
``invariants.clean`` claim in :mod:`repro.validate.shapes` then gates.
"""

from __future__ import annotations

import dataclasses
import typing

from ..mac.nav import Nav

if typing.TYPE_CHECKING:  # pragma: no cover
    from ..core.admission import Session
    from ..core.qos_ap import QosAccessPoint
    from ..core.token_policy import TokenPolicy, TokenState
    from ..metrics.collectors import MetricsCollector
    from ..phy.channel import Channel
    from ..sim.engine import Simulator

__all__ = ["Violation", "MonitoredNav", "InvariantSuite"]

_EPS = 1e-9

#: a CFP may finish the exchange in flight when its budget expires, so
#: the duration check allows one worst-case exchange of slack
_CFP_OVERRUN_SLACK = 0.010


@dataclasses.dataclass(frozen=True)
class Violation:
    """One observed invariant breach."""

    time: float
    monitor: str
    message: str

    def render(self) -> str:
        return f"[{self.monitor} t={self.time:.6f}] {self.message}"


class MonitoredNav(Nav):
    """NAV that reports set-in-the-past calls to the suite.

    A subclass (not a monkeypatch) because :class:`Nav` uses
    ``__slots__``; behaviour is otherwise identical.
    """

    __slots__ = ("_suite",)

    def __init__(self, suite: "InvariantSuite") -> None:
        super().__init__()
        self._suite = suite

    def set(self, until: float) -> None:
        now = self._suite.sim.now
        if until < now - _EPS and until > self.until:
            self._suite.record(
                "nav", f"NAV set to {until:.6f}, already past now={now:.6f}"
            )
        super().set(until)


class InvariantSuite:
    """Collects runtime invariant violations for one scenario run.

    Parameters
    ----------
    sim:
        The scenario's simulator; the suite installs itself as its
        ``step_observer``.
    max_violations:
        Recording cap — a badly broken run should not balloon its
        result row; the total count is always exact.
    qos_gate:
        When True (the default) finalize-time QoS budget misses are
        invariant violations.  Fault-injected runs set it False: a
        budget miss under injected loss is expected *degradation*, so
        it lands in :attr:`qos_breaches` (structured, for the chaos
        degradation report) instead of failing the run.  The
        structural monitors (clock, NAV, tokens, CFP accounting) gate
        either way — faults must degrade service, never break the
        protocol machinery.
    """

    def __init__(
        self,
        sim: "Simulator",
        max_violations: int = 100,
        qos_gate: bool = True,
    ) -> None:
        self.sim = sim
        self.max_violations = max_violations
        self.qos_gate = qos_gate
        self.violations: list[Violation] = []
        self.total_violations = 0
        #: finalize-time QoS budget misses when ``qos_gate`` is False:
        #: ``{"station", "kind", "measured", "budget"}`` dicts
        self.qos_breaches: list[dict[str, typing.Any]] = []
        #: stations evicted by the AP's missed-poll escalation; their
        #: QoS budgets are not enforced (service was withdrawn, and the
        #: paper's Theorems only cover carried sessions)
        self.evicted: set[str] = set()
        self._last_step_time = float("-inf")
        self.channel: Channel | None = None
        # CFP bookkeeping (independent of the AP's own)
        self._cfp_open = False
        self._cfp_started_at = 0.0
        self._cfp_max_dur = 0.0
        self._cfp_busy_at_start = 0.0
        self._cfp_total = 0.0
        self._earliest_next_cfp = 0.0
        #: every session ever admitted, for the finalize-time QoS check
        self.admitted: dict[str, "Session"] = {}
        sim.step_observer = self._on_step

    # -- recording -----------------------------------------------------------
    def record(self, monitor: str, message: str) -> None:
        self.total_violations += 1
        if len(self.violations) < self.max_violations:
            self.violations.append(Violation(self.sim.now, monitor, message))

    @property
    def clean(self) -> bool:
        return self.total_violations == 0

    def _effective_busy(self, now: float) -> float:
        """Channel busy airtime including the interval still in flight
        (``busy_time`` itself is only credited once the medium goes
        idle, so a raw snapshot would misattribute straddling bursts)."""
        assert self.channel is not None
        busy = self.channel.busy_time
        if self.channel._busy_started is not None:
            busy += now - self.channel._busy_started
        return busy

    # -- wiring --------------------------------------------------------------
    def monitored_nav(self) -> MonitoredNav:
        return MonitoredNav(self)

    def attach_channel(self, channel: "Channel") -> None:
        self.channel = channel

    def attach_token_policy(self, policy: "TokenPolicy") -> None:
        policy.monitor = self

    def attach_ap(self, ap: "QosAccessPoint") -> None:
        ap.monitor = self
        self.attach_token_policy(ap.policy)

    # -- simulator hook ------------------------------------------------------
    def _on_step(self, time: float) -> None:
        if time < self._last_step_time:
            self.record(
                "clock",
                f"event clock moved backwards: {time:.9f} after "
                f"{self._last_step_time:.9f}",
            )
        self._last_step_time = time

    # -- token policy hooks --------------------------------------------------
    def token_regen_scheduled(
        self, state: "TokenState", delay: float, now: float
    ) -> None:
        sid = state.station_id
        if delay < 0.0:
            self.record("token", f"{sid}: negative regeneration delay {delay:.6f}")
        if state.has_token:
            self.record(
                "token", f"{sid}: regeneration armed while token still present"
            )
        session = state.session
        if session.is_voice:
            period = 1.0 / session.params.rate
            limit = 2.0 * period + 0.002
            if delay > limit + _EPS:
                self.record(
                    "token",
                    f"{sid}: voice regen delay {delay:.6f} exceeds pacing "
                    f"envelope {limit:.6f}",
                )
        elif abs(delay - session.token_latency) > _EPS:
            self.record(
                "token",
                f"{sid}: video regen delay {delay:.6f} != engineered "
                f"x_j {session.token_latency:.6f}",
            )

    def token_granted(self, state: "TokenState", now: float) -> None:
        if state.has_token:
            self.record(
                "token",
                f"{state.station_id}: token granted while already holding one",
            )

    # -- QoS AP hooks --------------------------------------------------------
    def session_admitted(self, session: "Session") -> None:
        self.admitted[session.station_id] = session
        # a re-admitted session is carried again: budgets apply anew
        self.evicted.discard(session.station_id)

    def session_evicted(self, station_id: str, now: float) -> None:
        """The AP withdrew service after consecutive missed polls."""
        self.evicted.add(station_id)

    def cfp_started(self, now: float, max_dur: float) -> None:
        if self._cfp_open:
            self.record(
                "cfp",
                f"CFP started at {now:.6f} while the one from "
                f"{self._cfp_started_at:.6f} is still open",
            )
        if now < self._earliest_next_cfp - _EPS:
            self.record(
                "cfp",
                f"CFP started at {now:.6f} before the contention-period "
                f"debt expires at {self._earliest_next_cfp:.6f}",
            )
        self._cfp_open = True
        self._cfp_started_at = now
        self._cfp_max_dur = max_dur
        if self.channel is not None:
            self._cfp_busy_at_start = self._effective_busy(now)

    def cfp_ended(self, now: float, duration: float, debt: float) -> None:
        if not self._cfp_open:
            self.record("cfp", f"CFP ended at {now:.6f} without a matching start")
            return
        self._cfp_open = False
        self._cfp_total += duration
        self._earliest_next_cfp = now + debt
        if duration < -_EPS:
            self.record("cfp", f"negative CFP duration {duration:.6f}")
        if duration > self._cfp_max_dur + _CFP_OVERRUN_SLACK:
            self.record(
                "cfp",
                f"CFP ran {duration:.6f}, past its announced maximum "
                f"{self._cfp_max_dur:.6f} (+{_CFP_OVERRUN_SLACK} slack)",
            )
        if self.channel is not None:
            busy_in_cfp = self._effective_busy(now) - self._cfp_busy_at_start
            if busy_in_cfp > duration + _EPS:
                self.record(
                    "cfp",
                    f"channel busy {busy_in_cfp:.6f} inside a CFP of only "
                    f"{duration:.6f}",
                )

    # -- end-of-run checks ---------------------------------------------------
    def finalize(
        self, collector: "MetricsCollector", sim_time: float
    ) -> list[str]:
        """Run the end-of-run checks; return all violations, rendered."""
        if self.channel is not None:
            busy = self.channel.busy_time
            if busy > sim_time + _EPS:
                self.record(
                    "accounting",
                    f"channel busy {busy:.6f} exceeds elapsed time "
                    f"{sim_time:.6f}",
                )
            idle = sim_time - busy
            if idle < -_EPS:
                self.record("accounting", f"negative idle time {idle:.6f}")
        if self._cfp_total > sim_time + _EPS:
            self.record(
                "accounting",
                f"total CFP time {self._cfp_total:.6f} exceeds elapsed "
                f"time {sim_time:.6f}",
            )
        for sid, session in sorted(self.admitted.items()):
            if sid in self.evicted:
                continue  # service was withdrawn; no budget to honour
            if session.is_voice:
                kind, budget = "jitter", session.params.max_jitter
                tracker = collector.jitter.get(sid)
                measured = tracker.max_jitter if tracker is not None else None
                theorem = "Theorem 1"
            else:
                kind, budget = "delay", session.params.max_delay
                measured = collector.max_delay.get(sid)
                theorem = "Theorem 3"
            if measured is None or measured <= budget + _EPS:
                continue
            if self.qos_gate:
                self.record(
                    "qos",
                    f"{sid}: measured max {kind} {measured:.6f} over the "
                    f"{theorem} budget {budget:.6f}",
                )
            else:
                self.qos_breaches.append(
                    {
                        "station": sid,
                        "kind": kind,
                        "measured": measured,
                        "budget": budget,
                    }
                )
        return [v.render() for v in self.violations] + (
            [f"... {self.total_violations - len(self.violations)} more"]
            if self.total_violations > len(self.violations)
            else []
        )
