"""Statistical validation: CI-gated shape checks and runtime invariants.

DESIGN.md's "Shape targets" section states the paper's headline claims
in prose (bounds conservative in Fig. 5, dropping pinned in Fig. 6,
delay orderings in Figs. 8-10, ...).  This package turns them into
machine-checkable gates so a refactor that silently inverts a figure
fails CI instead of shipping:

* :mod:`repro.validate.stats` — Student-t confidence intervals over
  seed replications and *paired* common-random-number comparisons, so
  scheme orderings are asserted on per-seed deltas rather than on two
  noisy means;
* :mod:`repro.validate.shapes` — one declarative
  :class:`~repro.validate.shapes.ClaimResult` per DESIGN shape target,
  evaluated against sweep rows;
* :mod:`repro.validate.invariants` — opt-in runtime monitors
  (``ScenarioConfig(monitor_invariants=True)``) hooked into the DES
  kernel, the NAV, the token policy and the QoS AP: clock
  monotonicity, NAV never set in the past, token regeneration obeying
  its rule, CFP budgeting/time accounting, and every admitted source's
  measured jitter/delay staying under its Theorem 1/3 budget;
* :mod:`repro.validate.runner` — tiered execution
  (``python -m repro validate --tier {smoke,full}``) riding
  :mod:`repro.exec` (parallel, cached, resumable) and emitting a JSON
  verdict report per claim.
"""

from .ess import (
    EssLedgerSnapshot,
    cell_ledger_violations,
    conservation_violations,
)
from .invariants import InvariantSuite, Violation
from .runner import TIERS, TierSpec, ValidationReport, run_validation, validation_grid
from .shapes import ClaimResult, ShapeThresholds, evaluate_claims
from .stats import (
    ConfidenceInterval,
    PairedComparison,
    mean_ci,
    paired_comparison,
    stats_ci,
    student_t_cdf,
    t_critical,
)

__all__ = [
    "InvariantSuite",
    "Violation",
    "EssLedgerSnapshot",
    "conservation_violations",
    "cell_ledger_violations",
    "TIERS",
    "TierSpec",
    "ValidationReport",
    "run_validation",
    "validation_grid",
    "ClaimResult",
    "ShapeThresholds",
    "evaluate_claims",
    "ConfidenceInterval",
    "PairedComparison",
    "mean_ci",
    "paired_comparison",
    "stats_ci",
    "student_t_cdf",
    "t_critical",
]
