"""Declarative encodings of DESIGN.md's shape targets.

Each claim is one function over sweep rows (plus the Fig. 5 rows for
the bound-conservatism check), returning a :class:`ClaimResult` whose
``evidence`` dict records the numbers the verdict was computed from —
the JSON report is meant to be debuggable, not just red/green.

Thresholds are calibrated against this repository's *measured*
behaviour (see EXPERIMENTS.md "Known divergences"), not the paper's
idealized figures: e.g. the proposed scheme's dropping probability is
pinned low but **not** under the paper's ``threshold_D = 0.01``, so
the Fig. 6 gate asserts the measured plateau, and the paired Fig. 7–10
orderings use the common-random-number machinery from
:mod:`repro.validate.stats` (unanimous per-seed sign, or a 95 % CI on
the mean per-seed delta excluding zero).

Ordering claims degrade to ``skipped`` when the rows lack a needed
scheme or load — a single-scheme sweep is not a failure, it is simply
not evidence.
"""

from __future__ import annotations

import dataclasses
import typing

from .stats import PairedComparison, mean_ci, paired_comparison, seed_values

__all__ = ["ShapeThresholds", "ClaimResult", "evaluate_claims", "CLAIM_IDS"]

PROPOSED = "proposed"
MULTIPOLL = "proposed-multipoll"
CONVENTIONAL = "conventional"


@dataclasses.dataclass(frozen=True)
class ShapeThresholds:
    """Calibrated gate constants (measured repo behaviour + margin)."""

    #: Fig 6 — proposed handoff dropping stays under this at every load
    #: (measured plateau 0.02-0.16 across loads/seeds; the paper's
    #: threshold_D = 0.01 is a known divergence, see EXPERIMENTS.md)
    dropping_cap: float = 0.25
    #: Fig 6 — conventional dropping must climb at least this much
    #: from the lightest to the heaviest load (measured ~0 -> ~0.48)
    conventional_climb_min: float = 0.05
    #: Fig 8 — conventional voice-delay variance over proposed, at the
    #: lightest load (measured ratio > 50x; 5x leaves refactor room)
    variance_ratio_min: float = 5.0
    #: Fig 8 — multipoll variance within this factor of single-poll
    mp_variance_ratio_max: float = 1.5
    mp_variance_abs_slack: float = 1e-6
    #: Fig 8 — multipoll mean voice delay within 5 % of single-poll
    #: (the two are seed-mixed at the 0.1 ms level, so a mean-ratio
    #: gate with absolute slack, not a paired one)
    mp_parity_ratio: float = 1.05
    mp_parity_abs_slack: float = 2e-4
    #: Fig 11 — proposed goodput at most this factor over conventional
    #: at heavy load (admission trades raw utilization for QoS)
    utilization_ratio_max: float = 1.05
    #: Fig 11 — multipoll keeps >= this fraction of single-poll goodput
    mp_goodput_ratio_min: float = 0.95
    #: Fig 11 — while spending no more channel-busy time than this
    mp_busy_ratio_max: float = 1.02
    confidence: float = 0.95


@dataclasses.dataclass(frozen=True)
class ClaimResult:
    """Verdict for one shape claim."""

    claim_id: str
    #: True = pass, False = fail, None = not evaluable on these rows
    passed: bool | None
    detail: str
    evidence: dict[str, typing.Any] = dataclasses.field(default_factory=dict)

    @property
    def status(self) -> str:
        if self.passed is None:
            return "skip"
        return "pass" if self.passed else "fail"

    def as_dict(self) -> dict[str, typing.Any]:
        return {
            "claim": self.claim_id,
            "status": self.status,
            "detail": self.detail,
            "evidence": self.evidence,
        }


#: every claim evaluate_claims can emit, in report order
CLAIM_IDS = (
    "fig5.bounds-conservative",
    "fig6.dropping-pinned",
    "fig6.conventional-climbs",
    "fig7.conservative-admission",
    "fig8.voice-delay-proposed-wins",
    "fig8.voice-variance-ordering",
    "fig8.multipoll-voice-parity",
    "fig9.video-delay-proposed-wins",
    "fig10.data-delay-reversal",
    "fig11.utilization-conservative",
    "fig11.multipoll-efficiency",
    "invariants.clean",
)


# -- row helpers -------------------------------------------------------------
def _loads(rows: typing.Sequence[typing.Mapping]) -> list[float]:
    return sorted({r["load"] for r in rows if "load" in r})


def _schemes(rows: typing.Sequence[typing.Mapping]) -> set[str]:
    return {r["scheme"] for r in rows if "scheme" in r}


def _cell_mean(
    rows: typing.Sequence[typing.Mapping], scheme: str, load: float, metric: str
) -> float | None:
    values = seed_values(rows, scheme, load, metric)
    if not values:
        return None
    return sum(values.values()) / len(values)


def _skip(claim_id: str, why: str) -> ClaimResult:
    return ClaimResult(claim_id, None, why)


def _paired_claim(
    claim_id: str,
    cmp: PairedComparison,
    want: str,
    detail: str,
) -> ClaimResult:
    """Verdict from a paired comparison expecting ``want`` in {'less','greater'}."""
    if cmp.n == 0:
        return _skip(claim_id, f"no paired seeds for {cmp.scheme_a} vs {cmp.scheme_b}")
    ok = cmp.supports_less() if want == "less" else cmp.supports_greater()
    return ClaimResult(claim_id, ok, detail, {"comparison": cmp.as_dict()})


# -- individual claims -------------------------------------------------------
def _fig5_bounds(
    fig5_rows: typing.Sequence[typing.Mapping] | None,
) -> ClaimResult:
    cid = "fig5.bounds-conservative"
    if not fig5_rows:
        return _skip(cid, "no fig5 rows supplied")
    worst: list[dict[str, typing.Any]] = []
    ok = True
    for r in fig5_rows:
        jit_ok = r["simulated_max_jitter"] <= r["analytic_max_jitter"]
        del_ok = r["simulated_max_delay"] <= r["analytic_max_delay"]
        ok = ok and jit_ok and del_ok
        worst.append(
            {
                "sources": f"{r.get('n_voice')}+{r.get('n_video')}",
                "jitter": [r["simulated_max_jitter"], r["analytic_max_jitter"]],
                "delay": [r["simulated_max_delay"], r["analytic_max_delay"]],
                "ok": jit_ok and del_ok,
            }
        )
    return ClaimResult(
        cid,
        ok,
        "simulated max jitter/delay never exceeds the Theorem 1/3 bound",
        {"populations": worst},
    )


def _fig6_dropping_pinned(
    rows: typing.Sequence[typing.Mapping], th: ShapeThresholds
) -> ClaimResult:
    cid = "fig6.dropping-pinned"
    per_load: dict[str, float] = {}
    for load in _loads(rows):
        m = _cell_mean(rows, PROPOSED, load, "dropping_probability")
        if m is not None:
            per_load[str(load)] = m
    if not per_load:
        return _skip(cid, "no proposed-scheme rows")
    worst = max(per_load.values())
    return ClaimResult(
        cid,
        worst <= th.dropping_cap,
        f"proposed mean dropping stays <= {th.dropping_cap} at every load",
        {"per_load": per_load, "worst": worst, "cap": th.dropping_cap},
    )


def _fig6_conventional_climbs(
    rows: typing.Sequence[typing.Mapping], th: ShapeThresholds
) -> ClaimResult:
    cid = "fig6.conventional-climbs"
    loads = _loads(rows)
    if CONVENTIONAL not in _schemes(rows) or len(loads) < 2:
        return _skip(cid, "needs conventional rows at >= 2 loads")
    light, heavy = loads[0], loads[-1]
    m_light = _cell_mean(rows, CONVENTIONAL, light, "dropping_probability")
    m_heavy = _cell_mean(rows, CONVENTIONAL, heavy, "dropping_probability")
    if m_light is None or m_heavy is None:
        return _skip(cid, "conventional dropping missing at the extreme loads")
    climbs = m_heavy >= m_light + th.conventional_climb_min
    evidence: dict[str, typing.Any] = {
        "light_load": light,
        "heavy_load": heavy,
        "mean_light": m_light,
        "mean_heavy": m_heavy,
        "min_climb": th.conventional_climb_min,
    }
    ok = climbs
    if PROPOSED in _schemes(rows):
        cmp = paired_comparison(
            rows, "dropping_probability", CONVENTIONAL, PROPOSED, heavy,
            th.confidence,
        )
        evidence["heavy_paired_conv_minus_prop"] = cmp.as_dict()
        ok = climbs and cmp.supports_greater()
    return ClaimResult(
        cid,
        ok,
        "conventional dropping climbs with load and exceeds proposed "
        "per-seed at heavy load",
        evidence,
    )


def _fig7_conservative_admission(
    rows: typing.Sequence[typing.Mapping], th: ShapeThresholds
) -> ClaimResult:
    cid = "fig7.conservative-admission"
    loads = _loads(rows)
    schemes = _schemes(rows)
    if not loads or PROPOSED not in schemes or CONVENTIONAL not in schemes:
        return _skip(cid, "needs proposed and conventional rows")
    heavy = loads[-1]
    cmp = paired_comparison(
        rows, "blocking_probability", PROPOSED, CONVENTIONAL, heavy, th.confidence
    )
    return _paired_claim(
        cid,
        cmp,
        "greater",
        "proposed blocks more new calls than conventional at heavy load "
        "(Theorem 1/3 admission protects admitted QoS; the paper's "
        "light-load crossover is a known divergence)",
    )


def _ordering_claim(
    rows: typing.Sequence[typing.Mapping],
    th: ShapeThresholds,
    cid: str,
    metric: str,
    want: str,
    detail: str,
) -> ClaimResult:
    loads = _loads(rows)
    schemes = _schemes(rows)
    if not loads or PROPOSED not in schemes or CONVENTIONAL not in schemes:
        return _skip(cid, "needs proposed and conventional rows")
    heavy = loads[-1]
    cmp = paired_comparison(rows, metric, PROPOSED, CONVENTIONAL, heavy, th.confidence)
    return _paired_claim(cid, cmp, want, detail)


def _fig8_variance_ordering(
    rows: typing.Sequence[typing.Mapping], th: ShapeThresholds
) -> ClaimResult:
    cid = "fig8.voice-variance-ordering"
    loads = _loads(rows)
    schemes = _schemes(rows)
    if not loads or PROPOSED not in schemes or CONVENTIONAL not in schemes:
        return _skip(cid, "needs proposed and conventional rows")
    light = loads[0]
    conv = _cell_mean(rows, CONVENTIONAL, light, "voice_delay_var")
    prop = _cell_mean(rows, PROPOSED, light, "voice_delay_var")
    if conv is None or prop is None:
        return _skip(cid, "voice delay variance missing at the lightest load")
    evidence: dict[str, typing.Any] = {
        "load": light,
        "conventional_var": conv,
        "proposed_var": prop,
        "min_ratio": th.variance_ratio_min,
    }
    ok = conv >= th.variance_ratio_min * prop
    if MULTIPOLL in schemes:
        mp = _cell_mean(rows, MULTIPOLL, light, "voice_delay_var")
        if mp is not None:
            evidence["multipoll_var"] = mp
            ok = ok and mp <= (
                prop * th.mp_variance_ratio_max + th.mp_variance_abs_slack
            )
    return ClaimResult(
        cid,
        ok,
        "polled voice delay variance: conventional >> proposed, with "
        "multipoll comparable to single-poll",
        evidence,
    )


def _fig8_multipoll_parity(
    rows: typing.Sequence[typing.Mapping], th: ShapeThresholds
) -> ClaimResult:
    cid = "fig8.multipoll-voice-parity"
    loads = _loads(rows)
    schemes = _schemes(rows)
    if not loads or PROPOSED not in schemes or MULTIPOLL not in schemes:
        return _skip(cid, "needs proposed and proposed-multipoll rows")
    per_load: dict[str, typing.Any] = {}
    ok = True
    evaluated = False
    for load in loads:
        sp = _cell_mean(rows, PROPOSED, load, "voice_delay_mean")
        mp = _cell_mean(rows, MULTIPOLL, load, "voice_delay_mean")
        if sp is None or mp is None:
            continue
        evaluated = True
        bound = sp * th.mp_parity_ratio + th.mp_parity_abs_slack
        per_load[str(load)] = {"single": sp, "multi": mp, "bound": bound}
        ok = ok and mp <= bound
    if not evaluated:
        return _skip(cid, "voice delay means missing")
    return ClaimResult(
        cid,
        ok,
        "multipoll mean voice delay stays within a few percent of "
        "single-poll at every load",
        {"per_load": per_load},
    )


def _fig11_utilization(
    rows: typing.Sequence[typing.Mapping], th: ShapeThresholds
) -> ClaimResult:
    cid = "fig11.utilization-conservative"
    loads = _loads(rows)
    schemes = _schemes(rows)
    if not loads or PROPOSED not in schemes or CONVENTIONAL not in schemes:
        return _skip(cid, "needs proposed and conventional rows")
    heavy = loads[-1]
    prop = _cell_mean(rows, PROPOSED, heavy, "goodput_utilization")
    conv = _cell_mean(rows, CONVENTIONAL, heavy, "goodput_utilization")
    if prop is None or conv is None:
        return _skip(cid, "goodput missing at heavy load")
    return ClaimResult(
        cid,
        prop <= conv * th.utilization_ratio_max,
        "proposed goodput sits at or slightly under conventional at "
        "heavy load (the price of admission control)",
        {
            "load": heavy,
            "proposed": prop,
            "conventional": conv,
            "max_ratio": th.utilization_ratio_max,
        },
    )


def _fig11_multipoll_efficiency(
    rows: typing.Sequence[typing.Mapping], th: ShapeThresholds
) -> ClaimResult:
    cid = "fig11.multipoll-efficiency"
    loads = _loads(rows)
    schemes = _schemes(rows)
    if not loads or PROPOSED not in schemes or MULTIPOLL not in schemes:
        return _skip(cid, "needs proposed and proposed-multipoll rows")
    heavy = loads[-1]
    sp_good = _cell_mean(rows, PROPOSED, heavy, "goodput_utilization")
    mp_good = _cell_mean(rows, MULTIPOLL, heavy, "goodput_utilization")
    sp_busy = _cell_mean(rows, PROPOSED, heavy, "channel_busy_fraction")
    mp_busy = _cell_mean(rows, MULTIPOLL, heavy, "channel_busy_fraction")
    if None in (sp_good, mp_good, sp_busy, mp_busy):
        return _skip(cid, "goodput/busy metrics missing at heavy load")
    ok = (
        mp_good >= sp_good * th.mp_goodput_ratio_min
        and mp_busy <= sp_busy * th.mp_busy_ratio_max
    )
    return ClaimResult(
        cid,
        ok,
        "batched polls keep single-poll goodput without spending more "
        "channel-busy time",
        {
            "load": heavy,
            "goodput": {"single": sp_good, "multi": mp_good},
            "busy": {"single": sp_busy, "multi": mp_busy},
        },
    )


def _invariants_clean(rows: typing.Sequence[typing.Mapping]) -> ClaimResult:
    cid = "invariants.clean"
    monitored = [r for r in rows if "invariant_violations" in r]
    if not monitored:
        return _skip(cid, "no monitored rows (monitor_invariants was off)")
    dirty = [
        {
            "scheme": r.get("scheme"),
            "load": r.get("load"),
            "seed": r.get("seed"),
            "violations": r["invariant_violations"][:10],
        }
        for r in monitored
        if r["invariant_violations"]
    ]
    return ClaimResult(
        cid,
        not dirty,
        f"runtime invariant monitors stayed silent across "
        f"{len(monitored)} monitored runs",
        {"monitored_rows": len(monitored), "dirty_rows": dirty},
    )


# -- entry point -------------------------------------------------------------
def evaluate_claims(
    rows: typing.Sequence[typing.Mapping],
    fig5_rows: typing.Sequence[typing.Mapping] | None = None,
    thresholds: ShapeThresholds | None = None,
) -> list[ClaimResult]:
    """Evaluate every shape claim against sweep (and Fig. 5) rows."""
    th = thresholds or ShapeThresholds()
    return [
        _fig5_bounds(fig5_rows),
        _fig6_dropping_pinned(rows, th),
        _fig6_conventional_climbs(rows, th),
        _fig7_conservative_admission(rows, th),
        _ordering_claim(
            rows, th,
            "fig8.voice-delay-proposed-wins",
            "voice_delay_mean",
            "less",
            "token-paced polling keeps voice access delay under "
            "contention at heavy load (paired per-seed)",
        ),
        _fig8_variance_ordering(rows, th),
        _fig8_multipoll_parity(rows, th),
        _ordering_claim(
            rows, th,
            "fig9.video-delay-proposed-wins",
            "video_delay_mean",
            "less",
            "video access delay: proposed under conventional at heavy "
            "load (paired per-seed)",
        ),
        _ordering_claim(
            rows, th,
            "fig10.data-delay-reversal",
            "data_delay_mean",
            "greater",
            "data pays for RT protection: proposed data delay above "
            "conventional at heavy load (paired per-seed)",
        ),
        _fig11_utilization(rows, th),
        _fig11_multipoll_efficiency(rows, th),
        _invariants_clean(rows),
    ]
