"""Interval statistics over seed replications.

Ordering claims ("proposed < conventional at heavy load") must not be
asserted on two noisy means: with common random numbers the per-seed
*delta* is the low-variance estimator (both schemes see identical call
arrivals, talk spurts and frame sizes at the same seed), so the gates
in :mod:`repro.validate.shapes` test the paired deltas — consistent
sign across every seed, or a Student-t confidence interval on the mean
delta excluding zero.

The Student-t machinery is self-contained (regularized incomplete
beta via Lentz's continued fraction) because scipy is a dev-only
dependency; the accumulators extend
:class:`repro.metrics.stats.OnlineStats`.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from ..metrics.stats import OnlineStats

__all__ = [
    "student_t_cdf",
    "t_critical",
    "ConfidenceInterval",
    "mean_ci",
    "stats_ci",
    "PairedComparison",
    "paired_comparison",
    "seed_values",
]

_MAX_ITER = 300
_CF_EPS = 3e-12
_FPMIN = 1e-300


def _betacf(a: float, b: float, x: float) -> float:
    """Lentz's continued fraction for the incomplete beta function."""
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < _FPMIN:
        d = _FPMIN
    d = 1.0 / d
    h = d
    for m in range(1, _MAX_ITER + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < _FPMIN:
            d = _FPMIN
        c = 1.0 + aa / c
        if abs(c) < _FPMIN:
            c = _FPMIN
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < _FPMIN:
            d = _FPMIN
        c = 1.0 + aa / c
        if abs(c) < _FPMIN:
            c = _FPMIN
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _CF_EPS:
            break
    return h


def _reg_incomplete_beta(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta I_x(a, b)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    # use the representation that converges fast for this x
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def student_t_cdf(t: float, df: float) -> float:
    """CDF of Student's t distribution with ``df`` degrees of freedom."""
    if df <= 0:
        raise ValueError(f"df must be > 0, got {df}")
    if t == 0.0:
        return 0.5
    x = df / (df + t * t)
    tail = 0.5 * _reg_incomplete_beta(df / 2.0, 0.5, x)
    return 1.0 - tail if t > 0 else tail


def t_critical(df: float, confidence: float = 0.95) -> float:
    """Two-sided Student-t critical value (e.g. df=10, 95 % → 2.228)."""
    if df <= 0:
        raise ValueError(f"df must be > 0, got {df}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0,1), got {confidence}")
    target = 0.5 + confidence / 2.0
    lo, hi = 0.0, 2.0
    while student_t_cdf(hi, df) < target:
        hi *= 2.0
        if hi > 1e9:  # pragma: no cover — df >= 1 converges far earlier
            return hi
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if student_t_cdf(mid, df) < target:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-10 * max(1.0, hi):
            break
    return 0.5 * (lo + hi)


@dataclasses.dataclass(frozen=True)
class ConfidenceInterval:
    """Student-t confidence interval for a mean over ``n`` replications."""

    mean: float
    half_width: float
    n: int
    confidence: float

    @property
    def lo(self) -> float:
        return self.mean - self.half_width

    @property
    def hi(self) -> float:
        return self.mean + self.half_width

    def excludes_zero(self) -> bool:
        """True when the whole interval sits on one side of zero."""
        return self.lo > 0.0 or self.hi < 0.0

    def as_dict(self) -> dict[str, typing.Any]:
        return {
            "mean": self.mean,
            "half_width": self.half_width,
            "lo": self.lo,
            "hi": self.hi,
            "n": self.n,
            "confidence": self.confidence,
        }


def stats_ci(stats: OnlineStats, confidence: float = 0.95) -> ConfidenceInterval:
    """CI for the mean of an accumulator (infinite width below n=2)."""
    if stats.count < 2:
        return ConfidenceInterval(stats.mean, math.inf, stats.count, confidence)
    half = t_critical(stats.count - 1, confidence) * stats.sem
    return ConfidenceInterval(stats.mean, half, stats.count, confidence)


def mean_ci(
    values: typing.Iterable[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """CI for the mean of raw replication values."""
    stats = OnlineStats()
    for v in values:
        stats.add(float(v))
    return stats_ci(stats, confidence)


def seed_values(
    rows: typing.Sequence[typing.Mapping],
    scheme: str,
    load: float,
    metric: str,
) -> dict[int, float]:
    """``{seed: metric}`` for one (scheme, load) cell of a sweep."""
    out: dict[int, float] = {}
    for row in rows:
        if row.get("scheme") != scheme or row.get("load") != load:
            continue
        value = row.get(metric)
        if isinstance(value, (int, float)):
            out[int(row["seed"])] = float(value)
    return out


@dataclasses.dataclass(frozen=True)
class PairedComparison:
    """Per-seed deltas ``metric(a) - metric(b)`` at one load point."""

    metric: str
    scheme_a: str
    scheme_b: str
    load: float
    seeds: tuple[int, ...]
    deltas: tuple[float, ...]
    ci: ConfidenceInterval

    @property
    def n(self) -> int:
        return len(self.deltas)

    def consistently_negative(self) -> bool:
        """Every paired seed puts scheme_a strictly below scheme_b."""
        return self.n > 0 and all(d < 0.0 for d in self.deltas)

    def consistently_positive(self) -> bool:
        return self.n > 0 and all(d > 0.0 for d in self.deltas)

    def significantly_negative(self) -> bool:
        return self.ci.hi < 0.0

    def significantly_positive(self) -> bool:
        return self.ci.lo > 0.0

    def supports_less(self) -> bool:
        """a < b, by unanimous per-seed sign or by the CI excluding 0."""
        return self.consistently_negative() or self.significantly_negative()

    def supports_greater(self) -> bool:
        return self.consistently_positive() or self.significantly_positive()

    def as_dict(self) -> dict[str, typing.Any]:
        return {
            "metric": self.metric,
            "scheme_a": self.scheme_a,
            "scheme_b": self.scheme_b,
            "load": self.load,
            "seeds": list(self.seeds),
            "deltas": list(self.deltas),
            "ci": self.ci.as_dict(),
        }


def paired_comparison(
    rows: typing.Sequence[typing.Mapping],
    metric: str,
    scheme_a: str,
    scheme_b: str,
    load: float,
    confidence: float = 0.95,
) -> PairedComparison:
    """Common-random-number comparison of two schemes at one load.

    Only seeds present for *both* schemes pair up; the CI is over the
    per-seed deltas (the low-variance estimator under CRN).
    """
    a = seed_values(rows, scheme_a, load, metric)
    b = seed_values(rows, scheme_b, load, metric)
    seeds = tuple(sorted(set(a) & set(b)))
    deltas = tuple(a[s] - b[s] for s in seeds)
    return PairedComparison(
        metric=metric,
        scheme_a=scheme_a,
        scheme_b=scheme_b,
        load=load,
        seeds=seeds,
        deltas=deltas,
        ci=mean_ci(deltas, confidence),
    )
