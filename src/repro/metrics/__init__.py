"""Measurement: online statistics and scenario-level collectors."""

from .collectors import MetricsCollector
from .stats import JitterTracker, OnlineStats, WindowedRatio

__all__ = ["OnlineStats", "JitterTracker", "WindowedRatio", "MetricsCollector"]
