"""Scenario-level metric aggregation.

One :class:`MetricsCollector` per simulated BSS gathers everything the
paper's figures report: per-class access delays (Figs. 8-10), per-source
max jitter/delay (Fig. 5), handoff dropping and new-call blocking
probabilities (Figs. 6-7), and bandwidth utilization (Fig. 11).
"""

from __future__ import annotations

import typing

from ..obs.registry import CounterMap, MetricsRegistry
from ..traffic.base import Packet, TrafficKind
from .stats import JitterTracker, OnlineStats, WindowedRatio

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Collects packet- and call-level outcomes for one scenario run.

    Per-kind delivered/loss tallies live in the scenario's
    :class:`~repro.obs.registry.MetricsRegistry` (``delivered{kind=..}``
    / ``losses{kind=..}``), exposed through dict-like facades so call
    sites are unchanged; access delays additionally feed per-kind
    registry histograms for snapshotting.
    """

    def __init__(
        self, warmup: float = 0.0, metrics: MetricsRegistry | None = None
    ) -> None:
        #: observations before this time are ignored (transient removal)
        self.warmup = warmup
        self.metrics = metrics or MetricsRegistry()
        self.access_delay: dict[TrafficKind, OnlineStats] = {
            k: OnlineStats() for k in TrafficKind
        }
        self._delay_hist = {
            k: self.metrics.histogram("access_delay", kind=k.value)
            for k in TrafficKind
        }
        self.losses = CounterMap(self.metrics, "losses", TrafficKind, "kind")
        self.delivered = CounterMap(
            self.metrics, "delivered", TrafficKind, "kind"
        )
        self.jitter: dict[str, JitterTracker] = {}
        self.max_delay: dict[str, float] = {}
        self.dropping = WindowedRatio()  # handoff calls
        self.blocking = WindowedRatio()  # new calls
        #: successfully delivered payload bits (utilization numerator)
        self.useful_bits = 0

    # -- packet level -----------------------------------------------------
    def packet_outcome(self, packet: Packet, delivered: bool) -> None:
        """Feed one packet's final fate (hook for stations)."""
        if packet.created < self.warmup:
            return
        kind = packet.kind
        if not delivered:
            self.losses[kind] += 1
            return
        self.delivered[kind] += 1
        self.useful_bits += packet.bits
        delay = packet.access_delay()
        self.access_delay[kind].add(delay)
        self._delay_hist[kind].observe(delay)
        if kind == TrafficKind.VOICE:
            tracker = self.jitter.setdefault(packet.source_id, JitterTracker())
            if packet.new_stream:
                tracker.reset_stream()
            tracker.delivered(packet.created, packet.completed)
        if kind in (TrafficKind.VOICE, TrafficKind.VIDEO):
            prev = self.max_delay.get(packet.source_id, 0.0)
            if delay > prev:
                self.max_delay[packet.source_id] = delay

    # -- call level --------------------------------------------------------------
    def handoff_outcome(self, dropped: bool, now: float) -> None:
        """One handoff attempt concluded."""
        if now >= self.warmup:
            self.dropping.record(dropped)

    def newcall_outcome(self, blocked: bool, now: float) -> None:
        """One new-call attempt concluded."""
        if now >= self.warmup:
            self.blocking.record(blocked)

    # -- feedback for the adaptive bandwidth manager -----------------------------
    def adaptation_sample(self, utilization: float) -> tuple[float, float, float]:
        """(drop, block, utilization) over the recent past; ages the window."""
        sample = (self.dropping.ratio(), self.blocking.ratio(), utilization)
        self.dropping.decay()
        self.blocking.decay()
        return sample

    # -- reporting ------------------------------------------------------------------
    def loss_rate(self, kind: TrafficKind) -> float:
        total = self.delivered[kind] + self.losses[kind]
        return self.losses[kind] / total if total else 0.0

    def worst_jitter(self) -> float:
        """Max observed voice jitter across all sources (Fig. 5 left)."""
        if not self.jitter:
            return 0.0
        return max(t.max_jitter for t in self.jitter.values())

    def worst_delay(self, source_prefix: str = "") -> float:
        """Max observed RT access delay (Fig. 5 right), optionally
        filtered by a source-id prefix like ``"video"``."""
        values = [
            d for sid, d in self.max_delay.items() if sid.startswith(source_prefix)
        ]
        return max(values) if values else 0.0

    def utilization(self, useful_time_denominator: float, data_rate: float) -> float:
        """Delivered-payload fraction of the raw channel capacity."""
        if useful_time_denominator <= 0:
            return 0.0
        return self.useful_bits / (data_rate * useful_time_denominator)

    def summary(self) -> dict[str, typing.Any]:
        """Flat dict of everything, for experiment tables."""
        out: dict[str, typing.Any] = {
            "dropping_probability": self.dropping.total_ratio(),
            "blocking_probability": self.blocking.total_ratio(),
            "worst_voice_jitter": self.worst_jitter(),
        }
        for kind in TrafficKind:
            stats = self.access_delay[kind]
            out[f"{kind.value}_delay_mean"] = stats.mean
            out[f"{kind.value}_delay_var"] = stats.variance
            out[f"{kind.value}_delivered"] = self.delivered[kind]
            out[f"{kind.value}_losses"] = self.losses[kind]
        return out
