"""Online statistics: Welford accumulators, jitter tracking, windowed ratios."""

from __future__ import annotations

import math

__all__ = ["OnlineStats", "JitterTracker", "WindowedRatio"]


class OnlineStats:
    """Numerically stable running mean/variance/extrema (Welford)."""

    __slots__ = ("count", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        """Fold one observation in."""
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def sem(self) -> float:
        """Standard error of the mean (inf below two observations)."""
        if self.count < 2:
            return math.inf
        return math.sqrt(self.variance / self.count)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Combine two accumulators (parallel Welford merge)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return self
        n = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / n
        self._mean += delta * other.count / n
        self.count = n
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "variance": self.variance,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class JitterTracker:
    """Per-source packet jitter, as the paper defines it.

    "Jitter is defined to be the difference between the time of two
    successive departures and the time of two successive arrivals":
    for consecutive delivered packets ``j = |(d_k - d_{k-1}) -
    (a_k - a_{k-1})|``.

    The chain resets across talk spurts (arrival gaps longer than
    ``spurt_gap``): a voice playout restarts after a silence, so the
    jitter of two packets separated by seconds of silence is not a
    meaningful quantity — and Theorem 1's bound only speaks about
    packets inside the token-serviced stream.
    """

    __slots__ = ("stats", "spurt_gap", "_last_arrival", "_last_departure")

    def __init__(self, spurt_gap: float = 0.5) -> None:
        if spurt_gap <= 0:
            raise ValueError(f"spurt_gap must be > 0, got {spurt_gap}")
        self.stats = OnlineStats()
        self.spurt_gap = spurt_gap
        self._last_arrival: float | None = None
        self._last_departure: float | None = None

    def delivered(self, arrival: float, departure: float) -> None:
        """Record one successfully delivered packet."""
        if departure < arrival:
            raise ValueError(f"departure {departure} before arrival {arrival}")
        if (
            self._last_arrival is not None
            and arrival - self._last_arrival > self.spurt_gap
        ):
            self.reset_stream()
        if self._last_arrival is not None:
            inter_a = arrival - self._last_arrival
            inter_d = departure - self._last_departure
            self.stats.add(abs(inter_d - inter_a))
        self._last_arrival = arrival
        self._last_departure = departure

    def reset_stream(self) -> None:
        """Break the chain (e.g. after a talk spurt ends)."""
        self._last_arrival = None
        self._last_departure = None

    @property
    def max_jitter(self) -> float:
        return self.stats.max if self.stats.count else 0.0


class WindowedRatio:
    """Ratio of events to trials with exponential forgetting.

    Used for the adaptation feedback (dropping/blocking probability
    over the recent past) while also keeping all-time totals for the
    final report.  Exponential decay, rather than a hard restart,
    matters when trials are sparse: a window with zero call attempts
    must not read as "probability zero" and trick the bandwidth
    manager into reclaiming the channels a moment after it grew them.
    """

    __slots__ = ("events", "trials", "total_events", "total_trials")

    def __init__(self) -> None:
        self.events = 0.0
        self.trials = 0.0
        self.total_events = 0
        self.total_trials = 0

    def record(self, event: bool) -> None:
        """One trial, flagged if it was an 'event' (drop/block/...)."""
        self.trials += 1.0
        self.total_trials += 1
        if event:
            self.events += 1.0
            self.total_events += 1

    def ratio(self) -> float:
        """Event fraction over the (decayed) recent past (0 if empty)."""
        return self.events / self.trials if self.trials else 0.0

    def total_ratio(self) -> float:
        """All-time event fraction (0 if no trials)."""
        return self.total_events / self.total_trials if self.total_trials else 0.0

    def decay(self, gamma: float = 0.7) -> None:
        """Age the window: past observations keep ``gamma`` weight."""
        if not 0.0 <= gamma < 1.0:
            raise ValueError(f"gamma must be in [0,1), got {gamma}")
        self.events *= gamma
        self.trials *= gamma

    def restart_window(self) -> None:
        """Forget the recent past entirely (totals keep running)."""
        self.events = 0.0
        self.trials = 0.0
