"""The conventional IEEE 802.11 comparison baseline."""

from .conventional import ConventionalAccessPoint, ConventionalApConfig

__all__ = ["ConventionalAccessPoint", "ConventionalApConfig"]
