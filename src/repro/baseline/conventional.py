"""The conventional IEEE 802.11 baseline the paper compares against.

From the evaluation section: "In the conventional IEEE 802.11 protocol,
CSMA/CA is adopted as the random access protocol for the contention
period, and a round-robin discipline is chosen as the scheduling policy
for AP in the contention free period.  That is, all traffics have the
same priority.  The admission control scheme ... is very simple and
intuitive" — a single utilization test over declared rates.  "The
duration of the contention free period and the length of each
superframe are set to be 50 and 75 ms" and CFPs begin strictly on the
fixed superframe schedule (the proposed scheme's ability to open a CFP
on demand is exactly what this baseline lacks); a CFP ends early once
the request table empties.

Stations reuse the same Fig. 2 request state machine, but every request
contends at the same (lowest) priority through plain binary-exponential
backoff.
"""

from __future__ import annotations

import dataclasses
import typing

from ..mac.frames import Frame, FrameType
from ..mac.pcf import PcfCoordinator, PollAction
from ..mac.station import RealTimeStation
from ..obs.registry import MetricsRegistry
from ..phy.channel import Channel, ChannelListener
from ..phy.timing import PhyTiming
from ..sim.engine import Simulator
from ..traffic.video import VideoParams
from ..traffic.voice import VoiceParams
from .. import core

__all__ = ["ConventionalApConfig", "ConventionalAccessPoint"]


@dataclasses.dataclass(frozen=True)
class ConventionalApConfig:
    """Fixed-schedule PCF parameters (paper's evaluation defaults)."""

    superframe: float = 0.075
    cfp_max: float = 0.050
    rt_packet_bits: int = 512 * 8

    def __post_init__(self) -> None:
        if self.superframe <= 0:
            raise ValueError(f"superframe must be > 0, got {self.superframe}")
        if not 0 < self.cfp_max < self.superframe:
            raise ValueError(
                f"need 0 < cfp_max < superframe, got {self.cfp_max}"
            )
        if self.rt_packet_bits <= 0:
            raise ValueError("rt_packet_bits must be > 0")


@dataclasses.dataclass
class _Admitted:
    station_id: str
    declared_rate: float  # packets/s (r for voice, rho for video)


class ConventionalAccessPoint(ChannelListener):
    """Plain 802.11 DCF + PCF with round-robin polling."""

    def __init__(
        self,
        sim: Simulator,
        channel: Channel,
        timing: PhyTiming,
        nav,
        config: ConventionalApConfig | None = None,
        ap_id: str = "ap",
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.sim = sim
        self.channel = channel
        self.timing = timing
        self.ap_id = ap_id
        self.config = config or ConventionalApConfig()
        self.metrics = metrics or MetricsRegistry()
        self.coordinator = PcfCoordinator(
            sim, channel, timing, nav, ap_id, metrics=self.metrics
        )
        self.packet_time = core.rt_exchange_time(timing, self.config.rt_packet_bits)
        #: fraction of the superframe the CFP may occupy
        self.cfp_share = self.config.cfp_max / self.config.superframe

        self.admitted: dict[str, _Admitted] = {}
        self.stations: dict[str, RealTimeStation] = {}
        #: stations that signalled pending traffic (the request table)
        self.request_table: list[str] = []
        self._rr_index = 0

        self.admitted_count = 0
        self.blocked_new = 0
        self.rejected_handoff = 0

        channel.attach(self)
        self.sim.call_in(self.config.superframe, self._superframe_tick)

    # -- registry ------------------------------------------------------------
    def register_station(self, station: RealTimeStation) -> None:
        """Attach a real-time terminal (same interface as the QoS AP)."""
        self.stations[station.station_id] = station
        self.coordinator.register(station.station_id, station)

    def station_departed(self, station_id: str) -> None:
        """Tear down a terminated call (idempotent)."""
        self.stations.pop(station_id, None)
        self.coordinator.unregister(station_id)
        self.admitted.pop(station_id, None)
        if station_id in self.request_table:
            self.request_table.remove(station_id)

    # -- admission (the paper's "simple and intuitive" test) ------------------
    def _declared_rate(self, qos: typing.Any) -> float:
        if isinstance(qos, VoiceParams):
            return qos.rate
        if isinstance(qos, VideoParams):
            return qos.avg_rate
        raise TypeError(f"unknown QoS declaration {type(qos).__name__}")

    def _admission_test(self, extra_rate: float) -> bool:
        load = sum(a.declared_rate for a in self.admitted.values()) + extra_rate
        return load * self.packet_time <= self.cfp_share

    # -- request handling -----------------------------------------------------
    def on_frame(self, frame: Frame, ok: bool, now: float) -> None:
        if not ok or frame.ftype != FrameType.REQUEST or frame.dest != self.ap_id:
            return
        sid = frame.src
        info = frame.info or {}
        station = self.stations.get(sid)
        if station is None:
            # late request from a torn-down call: ignore (see QoS AP)
            return
        if sid in self.admitted:
            # traffic (re)indication from an admitted station
            if sid not in self.request_table:
                self.request_table.append(sid)
            if station is not None:
                station.grant()
            return
        qos = info.get("qos")
        rate = self._declared_rate(qos)
        if not self._admission_test(rate):
            if info.get("handoff"):
                self.rejected_handoff += 1
            else:
                self.blocked_new += 1
            if station is not None:
                station.deny()
            return
        self.admitted[sid] = _Admitted(sid, rate)
        self.admitted_count += 1
        self.request_table.append(sid)
        if station is not None:
            station.grant()

    # -- fixed superframe schedule ----------------------------------------------
    def _superframe_tick(self) -> None:
        self.sim.call_in(self.config.superframe, self._superframe_tick)
        if self.request_table and not self.coordinator.active:
            self.coordinator.start_cfp(self, self.config.cfp_max, lambda: None)

    # -- CfpScheduler (round-robin over the request table) -----------------------
    def next_action(self, now: float, elapsed: float) -> PollAction | None:
        if not self.request_table:
            return None
        self._rr_index %= len(self.request_table)
        sid = self.request_table[self._rr_index]
        self._rr_index += 1
        return PollAction((sid,))

    def on_response(
        self, station_id: str, frame: Frame | None, ok: bool, now: float
    ) -> None:
        if frame is None or not frame.piggyback:
            # buffer drained (or nothing to send): leave the table
            if station_id in self.request_table:
                idx = self.request_table.index(station_id)
                self.request_table.remove(station_id)
                if idx < self._rr_index:
                    self._rr_index -= 1
        if frame is not None and frame.packet is not None:
            station = self.stations.get(station_id)
            if station is not None:
                station.delivery_outcome(frame.packet, ok, now)
