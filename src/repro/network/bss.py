"""Scenario assembly: one BSS under either scheme, ready to run.

This is the top-level entry point the examples, experiments and
benchmarks use: configure a :class:`ScenarioConfig`, build a
:class:`BssScenario`, call :meth:`BssScenario.run`, read the results
dict.  The three schemes of the paper's evaluation are selectable:

* ``"proposed"`` — the QoS AP with single CF-Polls;
* ``"proposed-multipoll"`` — the QoS AP with CF-MultiPoll batches;
* ``"conventional"`` — plain 802.11 DCF + round-robin PCF.

Common-random-number discipline: every stochastic component draws from
a stream named after its role, so two schemes run with the same seed
see identical call arrivals, talk spurts, video frame sizes and data
traffic — paired comparison with no extra variance.
"""

from __future__ import annotations

import dataclasses
import typing

from ..baseline.conventional import ConventionalAccessPoint, ConventionalApConfig
from ..core.adaptive_cw import AdaptiveCW
from ..core.bandwidth import AdaptiveBandwidthManager, BandwidthThresholds
from ..core.priority_backoff import PriorityBackoff
from ..core.qos_ap import QosAccessPoint, QosApConfig
from ..faults.plan import FaultPlan
from ..mac.backoff import StandardBEB
from ..mac.dcf import DcfTransmitter
from ..mac.nav import Nav
from ..mac.station import DataStation
from ..metrics.collectors import MetricsCollector
from ..obs.registry import MetricsRegistry
from ..obs.trace import TraceConfig, TraceRecorder
from ..phy.channel import Channel
from ..phy.error_model import BitErrorModel
from ..phy.timing import PhyTiming
from ..sim.engine import Simulator
from ..sim.rng import RandomStreams
from ..traffic.base import TrafficKind
from ..traffic.data import PoissonDataSource
from ..traffic.video import VideoParams
from ..traffic.voice import VoiceParams
from .calls import CallGenerator, CallMixConfig
from .mobility import EssCellContext

__all__ = ["ScenarioConfig", "BssScenario", "SCHEMES", "ENGINES"]

SCHEMES = ("proposed", "proposed-multipoll", "conventional")

#: engine tiers (see repro.accel and DESIGN.md "Engine tiers")
ENGINES = ("exact", "batched", "hybrid")

#: fixed real-time MPDU payload used throughout the evaluation
RT_PACKET_BITS = 512 * 8

DEFAULT_VOICE = VoiceParams(rate=25.0, max_jitter=0.030, packet_bits=RT_PACKET_BITS)
DEFAULT_VIDEO = VideoParams(
    avg_rate=60.0, burstiness=6.0, max_delay=0.050, packet_bits=RT_PACKET_BITS
)


@dataclasses.dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to reproduce one simulated point."""

    scheme: str = "proposed"
    seed: int = 1
    sim_time: float = 60.0
    warmup: float = 5.0
    #: scales call-arrival intensities and data traffic together
    load: float = 1.0
    ber: float = 1e-5
    #: per-superframe CF-MultiPoll batch (only for proposed-multipoll)
    multipoll_size: int = 4
    #: HCF-style TXOP packets per poll (applies to the proposed schemes)
    txop_packets: int = 1
    # traffic mix (rates at load = 1)
    n_data_stations: int = 4
    data_msdus_per_station: float = 12.0
    new_voice_rate: float = 0.05
    new_video_rate: float = 0.05
    handoff_voice_rate: float = 0.025
    handoff_video_rate: float = 0.025
    mean_holding: float = 40.0
    handoff_deadline: float = 0.5
    handoff_time: float = 0.005
    voice: VoiceParams = DEFAULT_VOICE
    video: VideoParams = DEFAULT_VIDEO
    #: handoff arrival model: "poisson" (the paper's abstraction) or
    #: "neighborhood" (state-dependent, from simulated neighbour cells;
    #: the handoff_*_rate fields are then ignored)
    mobility: str = "poisson"
    # ablation switches
    adaptive_cw: bool = True
    adaptive_bandwidth: bool = True
    voice_order: str = "ascending"
    #: attach the runtime invariant monitors (repro.validate.invariants)
    #: and report ``invariant_violations`` in the results dict
    monitor_invariants: bool = False
    #: fault-injection plan (repro.faults).  None (the default) keeps
    #: the seed's idealized fault-free behavior bit-for-bit; attaching
    #: any plan — even an empty one — also arms the hardened protocol
    #: semantics (strict CF-End delivery with NAV-expiry fallback) and
    #: adds a ``faults`` degradation sub-dict to the results
    faults: FaultPlan | None = None
    #: structured-event tracing (repro.obs).  None (the default) keeps
    #: tracing entirely off: no recorder is built, instrumented hot
    #: paths see ``trace is None``, and results are bit-for-bit the
    #: seed's.  Any config — even all-categories — only *adds* an
    #: ``obs`` sub-dict to the results
    trace: TraceConfig | None = None
    #: ESS cell context (repro.ess).  None (the default) keeps the
    #: scenario a plain single BSS, byte-identical to the seed's; a
    #: context schedules the backhaul-routed inbound handoffs of one
    #: (cell, epoch) shard at their offsets and adds an ``ess``
    #: sub-dict to the results
    ess: "EssCellContext | None" = None
    #: priority partition of the contention window (paper Table I)
    alphas: tuple[int, ...] = (4, 4, 8)
    beta: int = 0
    #: engine tier (repro.accel): "exact" (the default, byte-for-byte
    #: the seed's per-frame simulation), "batched" (vectorized RNG +
    #: slab agenda; statistically equivalent, own golden fixture) or
    #: "hybrid" (exact prefix + analytic closure once every station is
    #: saturated; rows flag ``fidelity``).  "exact" is omitted from
    #: :meth:`to_dict` so exact cache keys and journals never change.
    engine: str = "exact"

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ValueError(f"scheme must be one of {SCHEMES}, got {self.scheme!r}")
        if self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if self.engine == "hybrid" and (
            self.faults is not None or self.trace is not None
        ):
            # the analytic closure cannot represent injected faults or
            # per-frame trace events; refusing beats silently degrading
            raise ValueError(
                "engine='hybrid' is refused when a FaultPlan or trace "
                "is attached (see DESIGN.md 'Engine tiers')"
            )
        if self.mobility not in ("poisson", "neighborhood"):
            raise ValueError(
                f"mobility must be 'poisson' or 'neighborhood', got {self.mobility!r}"
            )
        if self.sim_time <= self.warmup:
            raise ValueError("sim_time must exceed warmup")
        if self.load <= 0:
            raise ValueError(f"load must be > 0, got {self.load}")

    def to_dict(self) -> dict[str, typing.Any]:
        """JSON-ready representation (nested params become dicts).

        The output is stable under ``json.dumps``/``json.loads`` and is
        the canonical input to the execution subsystem's content hash
        (:func:`repro.exec.hashing.config_key`) and sweep journals.
        """
        d = dataclasses.asdict(self)
        d["alphas"] = list(self.alphas)
        # asdict leaves the nested tuples; FaultPlan.to_dict emits the
        # JSON-stable (list-based) form
        d["faults"] = self.faults.to_dict() if self.faults is not None else None
        d["trace"] = self.trace.to_dict() if self.trace is not None else None
        d["ess"] = self.ess.to_dict() if self.ess is not None else None
        if self.engine == "exact":
            # exact points keep the pre-accel dict shape, so their
            # content-addressed keys (KEY_FORMAT 5) and cached rows
            # stay byte-identical; from_dict defaults engine back in
            del d["engine"]
        return d

    @classmethod
    def from_dict(cls, data: typing.Mapping[str, typing.Any]) -> "ScenarioConfig":
        """Rebuild a config from :meth:`to_dict` output (JSON round-trip safe)."""
        d = dict(data)
        if isinstance(d.get("voice"), typing.Mapping):
            d["voice"] = VoiceParams(**d["voice"])
        if isinstance(d.get("video"), typing.Mapping):
            d["video"] = VideoParams(**d["video"])
        if "alphas" in d:
            d["alphas"] = tuple(d["alphas"])
        if isinstance(d.get("faults"), typing.Mapping):
            d["faults"] = FaultPlan.from_dict(d["faults"])
        if isinstance(d.get("trace"), typing.Mapping):
            d["trace"] = TraceConfig.from_dict(d["trace"])
        if isinstance(d.get("ess"), typing.Mapping):
            d["ess"] = EssCellContext.from_dict(d["ess"])
        return cls(**d)

    def offered_load_bps(self) -> float:
        """Approximate offered traffic in bits/s (for plots' x-axis)."""
        voice_call_bps = self.voice.average_rate * self.voice.packet_bits
        video_call_bps = self.video.avg_rate * self.video.packet_bits
        voice_calls = (
            (self.new_voice_rate + self.handoff_voice_rate)
            * self.load
            * self.mean_holding
        )
        video_calls = (
            (self.new_video_rate + self.handoff_video_rate)
            * self.load
            * self.mean_holding
        )
        data_bps = (
            self.n_data_stations
            * self.data_msdus_per_station
            * self.load
            * 1024
            * 8
        )
        return voice_calls * voice_call_bps + video_calls * video_call_bps + data_bps

    def normalized_load(self, timing: PhyTiming | None = None) -> float:
        """Offered load as a fraction of the channel bit rate."""
        t = timing or PhyTiming()
        return self.offered_load_bps() / t.data_rate


class BssScenario:
    """One fully wired BSS; build once, :meth:`run` once."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config
        self.sim = Simulator()
        self.timing = PhyTiming()
        self.streams = RandomStreams(config.seed)
        plan = config.faults
        #: scenario-wide instrument registry (always built — creating
        #: instruments costs nothing on the event path)
        self.metrics = MetricsRegistry(scheme=config.scheme, seed=config.seed)
        #: trace recorder, or None when the config leaves tracing off
        self.trace = (
            TraceRecorder(config.trace) if config.trace is not None else None
        )
        # Fault injectors draw from their own streams (faults/*) so a
        # plan-free run sees exactly the seed's draw sequences.
        error_model = BitErrorModel(config.ber, self.streams.get("phy/errors"))
        if plan is not None and plan.gilbert_elliott is not None:
            from ..faults.gilbert import GilbertElliottModel

            error_model = GilbertElliottModel(
                plan.gilbert_elliott, self.streams.get("faults/channel")
            )
        self.channel = Channel(self.sim, error_model)
        self.frame_injector = None
        if plan is not None and plan.frame_loss:
            from ..faults.injector import FrameLossInjector

            self.frame_injector = FrameLossInjector(
                plan.frame_loss, self.streams.get("faults/frames")
            )
            self.channel.fault_injector = self.frame_injector
        self.invariants = None
        if config.monitor_invariants:
            # imported lazily: repro.validate rides the experiments
            # layer, which sits above this module
            from ..validate.invariants import InvariantSuite

            # under injected faults, QoS budget breaches are expected
            # degradation, reported separately — not invariant failures
            self.invariants = InvariantSuite(self.sim, qos_gate=plan is None)
            self.invariants.attach_channel(self.channel)
        self.nav = (
            self.invariants.monitored_nav() if self.invariants else Nav()
        )
        self.collector = MetricsCollector(
            warmup=config.warmup, metrics=self.metrics
        )

        self._shared_policy = self._build_policy()
        self.ap = self._build_ap()
        if plan is not None:
            # hardened semantics: honor CF-End delivery, fall back to
            # NAV expiry when it is lost (see mac/nav.py)
            self.ap.coordinator.strict_cf_end = True
        if self.invariants is not None and hasattr(self.ap, "policy"):
            self.invariants.attach_ap(self.ap)
        self.fault_driver = None
        if plan is not None and plan.station_faults:
            from ..faults.stations import StationFaultDriver

            self.fault_driver = StationFaultDriver(
                self.sim,
                self.ap.stations,
                plan.station_faults,
                self.streams.get("faults/stations"),
            )
        self.call_generator = CallGenerator(
            self.sim,
            self.ap,
            self.channel,
            self.timing,
            self.nav,
            lambda: self._shared_policy,
            self.streams,
            self._call_mix(),
            self.collector,
        )
        self.data_stations: list[DataStation] = []
        self._build_data_stations()
        self.mobility = None
        if config.mobility == "neighborhood":
            from .mobility import NeighborhoodConfig, NeighborhoodMobility

            # calibrated so the equilibrium handoff intensity matches
            # what the poisson model would have offered at this load:
            # target = pop / (res * d) with
            # pop = cells * lam / (1/holding + 1/(res*d))
            # => lam = target * (res*d/holding + 1) / cells
            target = (
                (config.handoff_voice_rate + config.handoff_video_rate)
                * config.load
                / 2.0
            )
            res, directions, cells = 30.0, 6, 6
            lam = target * (res * directions / config.mean_holding + 1.0) / cells
            ncfg = NeighborhoodConfig(
                cells=cells,
                mean_holding=config.mean_holding,
                mean_residence=res,
                directions=directions,
                new_call_rate=max(1e-9, lam),
            )
            self.mobility = NeighborhoodMobility(
                self.sim, self.call_generator, self.streams, ncfg
            )
        #: fired count of the ESS context's scheduled inbound handoffs
        self._ess_handoffs_injected = 0
        if config.ess is not None:
            for offset, kind in config.ess.handoff_arrivals:
                self.sim.call_in(
                    offset, self._inject_ess_handoff, TrafficKind(kind)
                )
        if self.trace is not None:
            self._wire_trace(self.trace)
        # utilization-window bookkeeping for the adaptation feedback
        self._last_busy = 0.0
        self._last_feedback_time = 0.0

    def _inject_ess_handoff(self, kind: TrafficKind) -> None:
        self._ess_handoffs_injected += 1
        self.call_generator.inject_handoff(kind)

    def _wire_trace(self, trace) -> None:
        """Hand the recorder to each instrumented component whose
        category is wanted; everything else keeps ``trace = None`` so
        its hot path stays a single dead branch."""
        if trace.wants("frame"):
            self.channel.trace = trace
        if trace.wants("cfp"):
            self.ap.coordinator.trace = trace
        if trace.wants("token") and hasattr(self.ap, "policy"):
            self.ap.policy.trace = trace
        if trace.wants("admission") and hasattr(self.ap, "policy"):
            self.ap.trace = trace
        if trace.wants("backoff"):
            # call stations are created on the fly; the generator
            # stamps the recorder onto each new transmitter
            self.call_generator.trace = trace
            for station in self.data_stations:
                station.dcf.trace = trace
        if trace.wants("fault"):
            if self.frame_injector is not None:
                self.frame_injector.trace = trace
            if self.fault_driver is not None:
                self.fault_driver.trace = trace
        if trace.config.snapshot_interval > 0:
            self.metrics.start_snapshots(
                self.sim, trace.config.snapshot_interval
            )

    # -- construction helpers ----------------------------------------------------
    def _build_policy(self):
        cfg = self.config
        if cfg.scheme == "conventional":
            return StandardBEB(cw_min=32, cw_max=1024)
        if cfg.adaptive_cw:
            return AdaptiveCW(
                self.timing, alphas=cfg.alphas, beta=cfg.beta
            )
        return PriorityBackoff(alphas=cfg.alphas, beta=cfg.beta)

    def _build_ap(self):
        cfg = self.config
        if cfg.scheme == "conventional":
            return ConventionalAccessPoint(
                self.sim,
                self.channel,
                self.timing,
                self.nav,
                ConventionalApConfig(rt_packet_bits=RT_PACKET_BITS),
                metrics=self.metrics,
            )
        multipoll = cfg.multipoll_size if cfg.scheme == "proposed-multipoll" else 1
        ap_cfg = QosApConfig(
            rt_packet_bits=RT_PACKET_BITS,
            multipoll_size=multipoll,
            adaptation_interval=1.0 if cfg.adaptive_bandwidth else 0.0,
            voice_order=cfg.voice_order,
            txop_packets=cfg.txop_packets,
        )
        bandwidth = AdaptiveBandwidthManager(BandwidthThresholds())
        return QosAccessPoint(
            self.sim,
            self.channel,
            self.timing,
            self.nav,
            config=ap_cfg,
            bandwidth=bandwidth,
            feedback=self._feedback if cfg.adaptive_bandwidth else None,
            metrics=self.metrics,
        )

    def _call_mix(self) -> CallMixConfig:
        cfg = self.config
        # under the neighbourhood mobility model handoffs come from the
        # simulated neighbour cells, not from fixed-rate streams
        poisson_handoffs = cfg.mobility == "poisson"
        return CallMixConfig(
            voice=cfg.voice,
            video=cfg.video,
            new_voice_rate=cfg.new_voice_rate * cfg.load,
            new_video_rate=cfg.new_video_rate * cfg.load,
            handoff_voice_rate=(
                cfg.handoff_voice_rate * cfg.load if poisson_handoffs else 0.0
            ),
            handoff_video_rate=(
                cfg.handoff_video_rate * cfg.load if poisson_handoffs else 0.0
            ),
            mean_holding=cfg.mean_holding,
            handoff_deadline=cfg.handoff_deadline,
            handoff_time=cfg.handoff_time,
        )

    def _build_data_stations(self) -> None:
        cfg = self.config
        for i in range(cfg.n_data_stations):
            sid = f"data/{i}"
            dcf = DcfTransmitter(
                self.sim,
                self.channel,
                self.timing,
                self._shared_policy,
                self.streams.get(f"dcf/{sid}"),
                sid,
                self.nav,
            )
            station = DataStation(
                self.sim,
                sid,
                dcf,
                self.ap.ap_id,
                on_packet_outcome=self.collector.packet_outcome,
            )
            source = PoissonDataSource(
                self.sim,
                sid,
                station.packet_arrival,
                self.streams.get(f"traffic/{sid}"),
                arrival_rate=cfg.data_msdus_per_station * cfg.load,
            )
            source.start()
            self.data_stations.append(station)

    # -- adaptation feedback --------------------------------------------------------
    def _window_utilization(self) -> float:
        now = self.sim.now
        busy = self.channel.busy_time
        if self.channel._busy_started is not None:
            busy += now - self.channel._busy_started
        span = now - self._last_feedback_time
        util = (busy - self._last_busy) / span if span > 0 else 0.0
        self._last_busy = busy
        self._last_feedback_time = now
        return min(1.0, max(0.0, util))

    def _feedback(self) -> tuple[float, float, float]:
        return self.collector.adaptation_sample(self._window_utilization())

    # -- fault telemetry ----------------------------------------------------
    def _fault_summary(self) -> dict[str, typing.Any]:
        """Degradation telemetry for a faulted run (results["faults"])."""
        stats = self.ap.coordinator.stats
        out: dict[str, typing.Any] = {
            "poll_retries": stats.poll_retries,
            "polls_lost": stats.polls_lost,
            "ghost_polls": stats.ghost_polls,
            "unreachable_nulls": stats.unreachable_nulls,
            "cf_ends_lost": stats.cf_ends_lost,
            "evictions": getattr(self.ap, "evictions", 0),
            "readmissions": getattr(self.ap, "readmissions", 0),
            "reclaimed_bandwidth": getattr(self.ap, "reclaimed_bandwidth", 0.0),
        }
        if self.fault_driver is not None:
            out.update(
                station_crashes=self.fault_driver.crashes,
                station_freezes=self.fault_driver.freezes,
                station_recoveries=self.fault_driver.recoveries,
                station_faults_skipped=self.fault_driver.skipped,
            )
        if self.frame_injector is not None:
            out["frames_injected"] = dict(self.frame_injector.injected)
        model = self.channel.error_model
        if hasattr(model, "frames_in_bad"):
            out["channel_bad_fraction"] = model.frames_in_bad / max(
                1, model.frames_seen
            )
        if self.invariants is not None:
            out["qos_breaches"] = list(self.invariants.qos_breaches)
        return out

    # -- execution ---------------------------------------------------------------------
    def begin(self) -> None:
        """Start the traffic generators without running the clock.

        :meth:`run` calls this itself; the hybrid engine tier calls it
        directly and then drives ``sim.run(until=...)`` in segments so
        its saturation detector can sample between them.
        """
        self.call_generator.start()
        if self.mobility is not None:
            self.mobility.start()

    def run(self) -> dict[str, typing.Any]:
        """Run to ``sim_time`` and summarize everything the figures need."""
        self.begin()
        self.sim.run(until=self.config.sim_time)
        return self.collect_results()

    def collect_results(
        self, horizon: float | None = None
    ) -> dict[str, typing.Any]:
        """Summarize the run as one result row.

        ``horizon`` is the simulated span the rates are normalized
        over; the default (``sim_time``) is the full-run case and
        reproduces the historical row byte-for-byte.  The hybrid tier
        passes the analytic switch time instead, so the exact-prefix
        statistics are normalized over the span actually simulated.
        """
        cfg = self.config
        if horizon is None:
            horizon = cfg.sim_time
        measured = horizon - cfg.warmup
        results = self.collector.summary()
        gen = self.call_generator
        results.update(
            {
                "scheme": cfg.scheme,
                "load": cfg.load,
                "normalized_load": cfg.normalized_load(self.timing),
                "seed": cfg.seed,
                "sim_time": cfg.sim_time,
                "warmup": cfg.warmup,
                "events_processed": self.sim.events_processed,
                "call_attempts_new": gen.attempts["new"],
                "call_attempts_handoff": gen.attempts["handoff"],
                "calls_admitted_new": gen.admitted["new"],
                "calls_admitted_handoff": gen.admitted["handoff"],
                "calls_blocked": gen.blocked,
                "calls_dropped": gen.dropped,
                "channel_busy_fraction": self.channel.utilization(horizon),
                "goodput_utilization": self.collector.utilization(
                    measured, self.timing.data_rate
                ),
                "worst_video_delay": self.collector.worst_delay("video")
                or self.collector.worst_delay("ho-video"),
            }
        )
        if hasattr(self.ap, "admission"):
            results["analytic_voice_bounds"] = self.ap.admission.voice_bounds()
            results["analytic_video_bounds"] = self.ap.admission.video_bounds()
        if self.invariants is not None:
            results["invariant_violations"] = self.invariants.finalize(
                self.collector, horizon
            )
        if cfg.faults is not None:
            # after finalize, so the QoS-breach degradation is included
            results["faults"] = self._fault_summary()
        if cfg.ess is not None:
            # only present on ESS cell shards, so single-BSS rows stay
            # byte-identical to the seed's
            results["ess"] = {
                "cell": cfg.ess.cell,
                "epoch": cfg.ess.epoch,
                "handoffs_scheduled": len(cfg.ess.handoff_arrivals),
                "handoffs_injected": self._ess_handoffs_injected,
            }
        if self.trace is not None:
            # only present on traced configs, so trace-free result rows
            # stay byte-identical to the seed's
            results["obs"] = {
                "trace_emitted": self.trace.emitted,
                "trace_buffered": len(self.trace),
                "trace_dropped": self.trace.dropped,
                "trace_counts": self.trace.counts_by_category(),
                "metrics_snapshots": len(self.metrics.snapshots),
            }
        return results
