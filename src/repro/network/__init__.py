"""Call-level dynamics, mobility, and full-BSS scenario assembly."""

from .bss import RT_PACKET_BITS, SCHEMES, BssScenario, ScenarioConfig
from .calls import ActiveCall, CallGenerator, CallMixConfig
from .mobility import (
    ROAM_KINDS,
    EssCellContext,
    NeighborhoodConfig,
    NeighborhoodMobility,
    draw_roam_step,
)

__all__ = [
    "CallGenerator",
    "CallMixConfig",
    "ActiveCall",
    "BssScenario",
    "ScenarioConfig",
    "SCHEMES",
    "RT_PACKET_BITS",
    "NeighborhoodConfig",
    "NeighborhoodMobility",
    "EssCellContext",
    "draw_roam_step",
    "ROAM_KINDS",
]
