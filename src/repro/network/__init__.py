"""Call-level dynamics, mobility, and full-BSS scenario assembly."""

from .bss import RT_PACKET_BITS, SCHEMES, BssScenario, ScenarioConfig
from .calls import ActiveCall, CallGenerator, CallMixConfig
from .mobility import NeighborhoodConfig, NeighborhoodMobility

__all__ = [
    "CallGenerator",
    "CallMixConfig",
    "ActiveCall",
    "BssScenario",
    "ScenarioConfig",
    "SCHEMES",
    "RT_PACKET_BITS",
    "NeighborhoodConfig",
    "NeighborhoodMobility",
]
