"""Microcell mobility: handoff arrivals driven by neighbour occupancy.

The paper motivates handoff prioritization with small-cell
(microcell/picocell) architectures where calls frequently cross cell
boundaries; its simulation abstracts geometry away.  This module
supplies the next step up in fidelity from a plain Poisson handoff
stream: the cells neighbouring the observed BSS carry their own call
populations (an M/M/∞ birth-death process per traffic class), and each
resident call hands off after an exponential cell-residence time,
heading for the observed cell with probability ``1/directions``.

The handoff arrival process into the observed cell is then *state
dependent* — intensity proportional to the current neighbour
population — which reproduces the bursty handoff clumps that fixed-rate
Poisson misses (a neighbour filling up precedes a wave of handoffs).
"""

from __future__ import annotations

import dataclasses
import typing

from ..sim.engine import Simulator
from ..sim.rng import RandomStreams
from ..traffic.base import TrafficKind

__all__ = [
    "NeighborhoodConfig",
    "NeighborhoodMobility",
    "EssCellContext",
    "draw_roam_step",
    "ROAM_KINDS",
]

#: traffic classes that roam between cells (data stations are fixed)
ROAM_KINDS = ("voice", "video")


def draw_roam_step(
    rng, mean_holding: float, mean_residence: float
) -> tuple[float, bool]:
    """One dwell of a call's life in a cell: ``(dwell, call_ends)``.

    Races the exponential remaining-holding clock against the
    exponential cell-residence clock (both memoryless, so drawing them
    fresh each dwell is exact).  ``call_ends`` is True when the call
    completes during this dwell; False means it survives the dwell and
    hands off to a neighbouring cell.  Shared by the single-observed-
    cell :class:`NeighborhoodMobility` and the ESS-wide cell model
    (:mod:`repro.ess.cells`), so both layers reproduce the same
    per-call dynamics.
    """
    holding = rng.exponential(mean_holding)
    residence = rng.exponential(mean_residence)
    if holding <= residence:
        return float(holding), True
    return float(residence), False


@dataclasses.dataclass(frozen=True)
class EssCellContext:
    """One cell-epoch's ESS context, riding in ``ScenarioConfig.ess``.

    When the ESS coordinator shards its grid across the executor, each
    per-cell frame-level run carries this context: which cell it is,
    which sharding epoch, and the handoff arrivals the backhaul routed
    *into* the cell during the epoch (offsets are sim-seconds from the
    start of the cell's run).  The BSS
    injects those arrivals at their offsets through the call
    generator's :meth:`~repro.network.calls.CallGenerator.inject_handoff`
    — deterministic scheduled handoffs replacing the synthetic Poisson
    stream.  ``ess=None`` configs behave (and hash) exactly like
    single-BSS scenarios.
    """

    cell: str
    epoch: int = 0
    #: absolute ESS-time at which this epoch starts (informational —
    #: part of the point's identity so epochs cache separately)
    epoch_start: float = 0.0
    #: routed inbound handoffs: (offset into the run, kind) pairs
    handoff_arrivals: tuple[tuple[float, str], ...] = ()

    def __post_init__(self) -> None:
        if not self.cell:
            raise ValueError("cell must be a non-empty id")
        if self.epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {self.epoch}")
        if self.epoch_start < 0:
            raise ValueError(
                f"epoch_start must be >= 0, got {self.epoch_start}"
            )
        arrivals = tuple(
            (float(offset), str(kind)) for offset, kind in self.handoff_arrivals
        )
        object.__setattr__(self, "handoff_arrivals", arrivals)
        for offset, kind in arrivals:
            if offset < 0:
                raise ValueError(
                    f"handoff arrival offset must be >= 0, got {offset}"
                )
            if kind not in ROAM_KINDS:
                raise ValueError(
                    f"handoff kind must be one of {ROAM_KINDS}, got {kind!r}"
                )

    def to_dict(self) -> dict[str, typing.Any]:
        """JSON-stable form (tuples become lists)."""
        return {
            "cell": self.cell,
            "epoch": self.epoch,
            "epoch_start": self.epoch_start,
            "handoff_arrivals": [
                [offset, kind] for offset, kind in self.handoff_arrivals
            ],
        }

    @classmethod
    def from_dict(cls, data: typing.Mapping[str, typing.Any]) -> "EssCellContext":
        return cls(
            cell=data["cell"],
            epoch=data.get("epoch", 0),
            epoch_start=data.get("epoch_start", 0.0),
            handoff_arrivals=tuple(
                (offset, kind)
                for offset, kind in data.get("handoff_arrivals", ())
            ),
        )


class HandoffSink(typing.Protocol):
    """Where handoff arrivals are delivered (the call generator)."""

    def inject_handoff(self, kind: TrafficKind) -> None: ...


@dataclasses.dataclass(frozen=True)
class NeighborhoodConfig:
    """Birth-death parameters of the neighbouring cells.

    Attributes
    ----------
    cells:
        Number of neighbouring cells feeding the observed one.
    new_call_rate:
        Fresh-call arrival rate *per neighbour cell* and per class
        (calls/s).
    mean_holding:
        Exponential call duration (shared with the observed cell).
    mean_residence:
        Exponential time a call stays in one cell before moving.
    directions:
        Possible handoff directions from a neighbour; the observed cell
        is chosen with probability ``1/directions``.
    """

    cells: int = 6
    new_call_rate: float = 0.05
    mean_holding: float = 40.0
    mean_residence: float = 30.0
    directions: int = 6

    def __post_init__(self) -> None:
        if self.cells < 1:
            raise ValueError(f"cells must be >= 1, got {self.cells}")
        if self.new_call_rate < 0:
            raise ValueError(
                f"new_call_rate must be >= 0, got {self.new_call_rate}"
            )
        if self.mean_holding <= 0:
            raise ValueError(
                f"mean_holding must be > 0, got {self.mean_holding}"
            )
        if self.mean_residence <= 0:
            raise ValueError(
                f"mean_residence must be > 0, got {self.mean_residence}"
            )
        if self.directions < 1:
            raise ValueError(f"directions must be >= 1, got {self.directions}")

    def equilibrium_population(self) -> float:
        """Expected total calls per class resident in the neighbourhood.

        A call leaves the neighbourhood when it ends (rate
        ``1/holding``) or when a cell change (rate ``1/residence``)
        happens to head into the observed cell (probability
        ``1/directions``) — moves between neighbours keep it resident.
        M/M/∞: ``cells * lambda / (1/holding + 1/(residence*directions))``.
        """
        departure = 1.0 / self.mean_holding + 1.0 / (
            self.mean_residence * self.directions
        )
        return self.cells * self.new_call_rate / departure

    def equilibrium_handoff_rate(self) -> float:
        """Expected handoff arrival rate into the observed cell per class."""
        return (
            self.equilibrium_population()
            / self.mean_residence
            / self.directions
        )


class NeighborhoodMobility:
    """Simulates the neighbour populations and injects handoffs.

    Parameters
    ----------
    sim:
        The same simulator the BSS runs on.
    sink:
        Receiver of handoff arrivals (``inject_handoff(kind)``).
    streams:
        Random streams (uses ``mobility/*`` names).
    config:
        Birth-death parameters.
    kinds:
        Which traffic classes roam (default voice + video).
    """

    def __init__(
        self,
        sim: Simulator,
        sink: HandoffSink,
        streams: RandomStreams,
        config: NeighborhoodConfig,
        kinds: tuple[TrafficKind, ...] = (TrafficKind.VOICE, TrafficKind.VIDEO),
    ) -> None:
        self.sim = sim
        self.sink = sink
        self.config = config
        self.kinds = kinds
        self._rng = streams.get("mobility/neighborhood")
        #: live neighbour population per class
        self.population: dict[TrafficKind, int] = {k: 0 for k in kinds}
        self.handoffs_injected = 0
        self._started = False

    def start(self, warm: bool = True) -> None:
        """Begin the birth-death dynamics (idempotent).

        ``warm`` seeds each class at its equilibrium population so the
        handoff stream is stationary from t = 0 instead of ramping up.
        """
        if self._started:
            return
        self._started = True
        for kind in self.kinds:
            if warm:
                seed = self._rng.poisson(self.config.equilibrium_population())
                for _ in range(int(seed)):
                    self._admit_call(kind)
            self.sim.process(self._births(kind))

    # -- birth-death machinery ---------------------------------------------
    def _births(self, kind: TrafficKind):
        rate = self.config.cells * self.config.new_call_rate
        if rate <= 0:
            return
        while True:
            yield self._rng.exponential(1.0 / rate)
            self._admit_call(kind)

    def _admit_call(self, kind: TrafficKind) -> None:
        self.population[kind] += 1
        self.sim.process(self._resident(kind))

    def _resident(self, kind: TrafficKind):
        """One call's life in the neighbourhood."""
        cfg = self.config
        while True:
            dwell, call_ends = draw_roam_step(
                self._rng, cfg.mean_holding, cfg.mean_residence
            )
            yield dwell
            if call_ends:
                self.population[kind] -= 1
                return  # call ended inside the neighbourhood
            if self._rng.random() < 1.0 / cfg.directions:
                # crosses into the observed cell
                self.population[kind] -= 1
                self.handoffs_injected += 1
                self.sink.inject_handoff(kind)
                return
            # moved to another neighbour: population unchanged, new cell
