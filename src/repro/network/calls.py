"""Call-level dynamics: new-call and handoff arrivals, holding times.

The paper's microcell setting is abstracted (as its own simulation
does) into arrival processes at one BSS:

* **new calls** (voice / video) arrive Poisson, contend with a
  connection request at the lowest priority, and are *blocked* if
  admission control refuses them (or the request never gets through);
* **handoff calls** arrive Poisson from neighbouring cells carrying a
  handoff deadline ``t_h``; their requests ride the highest backoff
  priority, and the call is *dropped* if it is not admitted within the
  deadline;
* admitted calls hold for an exponential duration (the paper uses a
  3-minute mean; sweeps scale this down to keep runs laptop-sized) and
  then depart, releasing their bandwidth.
"""

from __future__ import annotations

import dataclasses
import typing

from ..mac.backoff import BackoffPolicy
from ..mac.dcf import DcfTransmitter
from ..mac.nav import Nav
from ..mac.station import RealTimeStation
from ..metrics.collectors import MetricsCollector
from ..phy.channel import Channel
from ..phy.timing import PhyTiming
from ..sim.engine import Simulator
from ..sim.rng import RandomStreams
from ..traffic.base import TrafficKind
from ..traffic.video import MaglarisVideoSource, VideoParams
from ..traffic.voice import OnOffVoiceSource, VoiceParams

__all__ = ["CallMixConfig", "CallGenerator", "ActiveCall"]


class AccessPointLike(typing.Protocol):
    """What the call generator needs from either AP implementation."""

    ap_id: str

    def register_station(self, station: RealTimeStation) -> None: ...

    def station_departed(self, station_id: str) -> None: ...


@dataclasses.dataclass(frozen=True)
class CallMixConfig:
    """Arrival intensities and per-call parameters."""

    voice: VoiceParams
    video: VideoParams
    new_voice_rate: float = 0.2  # calls/s
    new_video_rate: float = 0.2
    handoff_voice_rate: float = 0.1
    handoff_video_rate: float = 0.1
    mean_holding: float = 60.0  # seconds (paper: 180; scaled for sweeps)
    handoff_deadline: float = 0.5  # t_h
    #: handoff latency fed to the admission test (paper's t_h_i);
    #: must stay well inside the tightest jitter budget or every
    #: handoff is trivially infeasible
    handoff_time: float = 0.005

    def __post_init__(self) -> None:
        for name in (
            "new_voice_rate",
            "new_video_rate",
            "handoff_voice_rate",
            "handoff_video_rate",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.mean_holding <= 0:
            raise ValueError("mean_holding must be > 0")
        if self.handoff_deadline <= 0:
            raise ValueError("handoff_deadline must be > 0")
        if self.handoff_time < 0:
            raise ValueError("handoff_time must be >= 0")


@dataclasses.dataclass
class ActiveCall:
    """Bookkeeping for one live call."""

    station: RealTimeStation
    dcf: DcfTransmitter
    source: typing.Any
    kind: TrafficKind
    handoff: bool
    resolved: bool = False
    admitted: bool = False


class CallGenerator:
    """Drives the four Poisson call streams into one BSS."""

    def __init__(
        self,
        sim: Simulator,
        ap: AccessPointLike,
        channel: Channel,
        timing: PhyTiming,
        nav: Nav,
        policy_factory: typing.Callable[[], BackoffPolicy],
        streams: RandomStreams,
        config: CallMixConfig,
        collector: MetricsCollector,
    ) -> None:
        self.sim = sim
        self.ap = ap
        self.channel = channel
        self.timing = timing
        self.nav = nav
        self.policy_factory = policy_factory
        self.streams = streams
        self.config = config
        self.collector = collector

        self._counter = 0
        self.active: dict[str, ActiveCall] = {}
        self.attempts = {"new": 0, "handoff": 0}
        self.admitted = {"new": 0, "handoff": 0}
        self.blocked = 0
        self.dropped = 0
        self.completed = 0
        #: optional :class:`repro.obs.trace.TraceRecorder`, installed on
        #: every DCF transmitter this generator creates (``backoff``)
        self.trace = None

    # -- arrival processes -----------------------------------------------------
    def start(self) -> None:
        """Spawn the four arrival processes (zero-rate streams skipped)."""
        plan = [
            (TrafficKind.VOICE, False, self.config.new_voice_rate),
            (TrafficKind.VIDEO, False, self.config.new_video_rate),
            (TrafficKind.VOICE, True, self.config.handoff_voice_rate),
            (TrafficKind.VIDEO, True, self.config.handoff_video_rate),
        ]
        for kind, handoff, rate in plan:
            if rate > 0:
                self.sim.process(self._arrivals(kind, handoff, rate))

    def _arrivals(self, kind: TrafficKind, handoff: bool, rate: float):
        rng = self.streams.get(f"arrivals/{kind.value}/{int(handoff)}")
        while True:
            yield rng.exponential(1.0 / rate)
            self._new_call(kind, handoff)

    def inject_handoff(self, kind: TrafficKind) -> None:
        """External mobility models deliver handoff arrivals here."""
        self._new_call(kind, handoff=True)

    # -- one call's lifecycle -------------------------------------------------------
    def _new_call(self, kind: TrafficKind, handoff: bool) -> None:
        self._counter += 1
        sid = f"{'ho-' if handoff else ''}{kind.value}/{self._counter}"
        qos = self.config.voice if kind == TrafficKind.VOICE else self.config.video
        dcf = DcfTransmitter(
            self.sim,
            self.channel,
            self.timing,
            self.policy_factory(),
            self.streams.get(f"dcf/{sid}"),
            sid,
            self.nav,
        )
        dcf.trace = self.trace
        station = RealTimeStation(
            self.sim,
            sid,
            dcf,
            self.ap.ap_id,
            kind,
            qos,
            is_handoff=handoff,
            handoff_time=self.config.handoff_time if handoff else 0.0,
            on_packet_outcome=self.collector.packet_outcome,
            service_margin=self.timing.frame_airtime(qos.packet_bits),
        )
        call = ActiveCall(station, dcf, None, kind, handoff)
        self.active[sid] = call
        self.attempts["handoff" if handoff else "new"] += 1
        self.ap.register_station(station)

        if handoff:
            self.sim.call_in(
                self.config.handoff_deadline, self._handoff_deadline, call
            )
        station.start_admission_request(
            lambda success, call=call: self._request_done(call, success)
        )

    def _request_done(self, call: ActiveCall, success: bool) -> None:
        if call.resolved:
            return
        # the AP decided synchronously while receiving the request frame
        self._resolve(call, admitted=call.station.admitted)

    def _handoff_deadline(self, call: ActiveCall) -> None:
        if call.resolved:
            return
        self._resolve(call, admitted=False)

    def _resolve(self, call: ActiveCall, admitted: bool) -> None:
        call.resolved = True
        call.admitted = admitted
        now = self.sim.now
        sid = call.station.station_id
        if call.handoff:
            self.collector.handoff_outcome(dropped=not admitted, now=now)
        else:
            self.collector.newcall_outcome(blocked=not admitted, now=now)
        if not admitted:
            if call.handoff:
                self.dropped += 1
            else:
                self.blocked += 1
            self._teardown(sid)
            return
        self.admitted["handoff" if call.handoff else "new"] += 1
        call.source = self._make_source(call)
        call.source.start()
        rng = self.streams.get(f"holding/{sid}")
        self.sim.call_in(
            rng.exponential(self.config.mean_holding), self._end_call, sid
        )

    def _make_source(self, call: ActiveCall):
        sid = call.station.station_id
        rng = self.streams.get(f"traffic/{sid}")
        if call.kind == TrafficKind.VOICE:
            source = OnOffVoiceSource(
                self.sim,
                sid,
                call.station.packet_arrival,
                rng,
                self.config.voice,
                start_talking=True,
            )
            # During a talk spurt the station keeps the AP's token
            # pipeline alive with PGBK=1 even on a momentarily empty
            # buffer; reactivation requests then happen once per spurt
            # (video reactivates per burst — the paper's class-1 label).
            call.station.activity_probe = lambda src=source: src.talking
            return source
        return MaglarisVideoSource(
            self.sim, sid, call.station.packet_arrival, rng, self.config.video
        )

    def _end_call(self, sid: str) -> None:
        call = self.active.get(sid)
        if call is None:
            return
        if call.source is not None:
            call.source.stop()
        call.station.end_call()
        self.completed += 1
        self._teardown(sid)

    def _teardown(self, sid: str) -> None:
        call = self.active.pop(sid, None)
        if call is None:
            return
        self.ap.station_departed(sid)
        call.dcf.shutdown()

    # -- reporting -------------------------------------------------------------------
    @property
    def concurrent_calls(self) -> int:
        """Currently admitted, still-active calls."""
        return sum(1 for c in self.active.values() if c.admitted)
