"""Per-figure data generators for the paper's evaluation section.

Figure 5 runs its own static-population experiment (admitted sources
vs. their analytical bounds); Figures 6-11 are different projections of
one shared scheme x load sweep, so callers typically run
:func:`repro.experiments.runner.run_sweep` once and feed the rows to
each ``figN`` function.
"""

from __future__ import annotations

import typing

from ..core.qos_ap import QosAccessPoint, QosApConfig
from ..mac.backoff import StandardBEB
from ..mac.dcf import DcfTransmitter
from ..mac.nav import Nav
from ..mac.station import RealTimeStation
from ..metrics.collectors import MetricsCollector
from ..network.bss import DEFAULT_VIDEO, DEFAULT_VOICE, RT_PACKET_BITS
from ..phy.channel import Channel
from ..phy.error_model import BitErrorModel
from ..phy.timing import PhyTiming
from ..sim.engine import Simulator
from ..sim.rng import RandomStreams
from ..traffic.base import TrafficKind
from ..traffic.video import MaglarisVideoSource
from ..traffic.voice import OnOffVoiceSource
from .runner import average_over_seeds

__all__ = [
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "FIGURE_METRICS",
]


# --------------------------------------------------------------- figure 5 ----
def _static_bss(
    n_voice: int, n_video: int, seed: int, sim_time: float
) -> dict[str, typing.Any]:
    """A BSS with a fixed admitted population (no churn, no handoff)."""
    sim = Simulator()
    timing = PhyTiming()
    streams = RandomStreams(seed)
    channel = Channel(sim, BitErrorModel(1e-5, streams.get("phy/errors")))
    nav = Nav()
    collector = MetricsCollector(warmup=1.0)
    ap = QosAccessPoint(
        sim,
        channel,
        timing,
        nav,
        config=QosApConfig(rt_packet_bits=RT_PACKET_BITS, adaptation_interval=0.0),
    )

    admitted_voice = admitted_video = 0
    for i in range(n_voice):
        sid = f"voice/{i}"
        session = ap.admission.try_admit_voice(sid, DEFAULT_VOICE)
        if session is None:
            continue
        admitted_voice += 1
        dcf = DcfTransmitter(
            sim, channel, timing, StandardBEB(8), streams.get(f"dcf/{sid}"),
            sid, nav,
        )
        sta = RealTimeStation(
            sim, sid, dcf, "ap", TrafficKind.VOICE, DEFAULT_VOICE,
            on_packet_outcome=collector.packet_outcome,
        )
        ap.register_station(sta)
        ap.policy.add_session(session)
        sta.grant()
        source = OnOffVoiceSource(
            sim, sid, sta.packet_arrival, streams.get(f"traffic/{sid}"),
            DEFAULT_VOICE, start_talking=True,
        )
        sta.activity_probe = lambda src=source: src.talking
        source.start()
    for j in range(n_video):
        sid = f"video/{j}"
        session = ap.admission.try_admit_video(sid, DEFAULT_VIDEO)
        if session is None:
            continue
        admitted_video += 1
        dcf = DcfTransmitter(
            sim, channel, timing, StandardBEB(8), streams.get(f"dcf/{sid}"),
            sid, nav,
        )
        sta = RealTimeStation(
            sim, sid, dcf, "ap", TrafficKind.VIDEO, DEFAULT_VIDEO,
            on_packet_outcome=collector.packet_outcome,
        )
        ap.register_station(sta)
        ap.policy.add_session(session)
        sta.grant()
        MaglarisVideoSource(
            sim, sid, sta.packet_arrival, streams.get(f"traffic/{sid}"),
            DEFAULT_VIDEO,
        ).start()

    sim.run(until=sim_time)
    voice_bounds = ap.admission.voice_bounds()
    video_bounds = ap.admission.video_bounds()
    return {
        "n_voice": admitted_voice,
        "n_video": admitted_video,
        "analytic_max_jitter": max(voice_bounds) if voice_bounds else 0.0,
        "simulated_max_jitter": collector.worst_jitter(),
        "analytic_max_delay": max(video_bounds) if video_bounds else 0.0,
        "simulated_max_delay": collector.worst_delay("video"),
    }


def fig5(
    populations: typing.Sequence[tuple[int, int]] = ((1, 1), (2, 1), (3, 2), (4, 2)),
    seed: int = 1,
    sim_time: float = 30.0,
) -> list[dict]:
    """Fig. 5: analytical bounds vs simulated maxima for admitted sources.

    The paper's point: the analytical jitter/delay bounds are
    worst-case and therefore conservative — the simulated maxima sit
    strictly below them, tracking the same growth with population.
    """
    return [
        _static_bss(nv, nd, seed=seed, sim_time=sim_time)
        for nv, nd in populations
    ]


# ---------------------------------------------------------- figures 6-11 ----
#: metric(s) each sweep figure projects out
FIGURE_METRICS: dict[str, list[str]] = {
    "fig6": ["dropping_probability"],
    "fig7": ["blocking_probability"],
    "fig8": ["voice_delay_mean", "voice_delay_var"],
    "fig9": ["video_delay_mean", "video_delay_var"],
    "fig10": ["data_delay_mean", "data_delay_var"],
    "fig11": ["channel_busy_fraction", "goodput_utilization"],
}


def _sweep_figure(rows: typing.Sequence[dict], name: str) -> list[dict]:
    return average_over_seeds(rows, FIGURE_METRICS[name])


def fig6(rows: typing.Sequence[dict]) -> list[dict]:
    """Fig. 6: handoff dropping probability vs offered load."""
    return _sweep_figure(rows, "fig6")


def fig7(rows: typing.Sequence[dict]) -> list[dict]:
    """Fig. 7: new-call blocking probability vs offered load."""
    return _sweep_figure(rows, "fig7")


def fig8(rows: typing.Sequence[dict]) -> list[dict]:
    """Fig. 8: average (and variance of) voice access delay."""
    return _sweep_figure(rows, "fig8")


def fig9(rows: typing.Sequence[dict]) -> list[dict]:
    """Fig. 9: average (and variance of) video access delay."""
    return _sweep_figure(rows, "fig9")


def fig10(rows: typing.Sequence[dict]) -> list[dict]:
    """Fig. 10: average data access delay (the scheme's low priority)."""
    return _sweep_figure(rows, "fig10")


def fig11(rows: typing.Sequence[dict]) -> list[dict]:
    """Fig. 11: average bandwidth utilization vs offered load."""
    return _sweep_figure(rows, "fig11")
