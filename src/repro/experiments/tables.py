"""Regeneration of the paper's Tables I and II."""

from __future__ import annotations

from ..core.priority_backoff import PriorityBackoff
from .config import TABLE2

__all__ = ["table1", "table2", "render_table1", "render_table2"]

_LEVEL_NAMES = {
    0: "real-time handoff requests",
    1: "admitted inactivated (reactivation) requests",
    2: "new requests and pure data",
}


def table1(
    alphas: tuple[int, ...] = (4, 4, 8), beta: int = 0, stages: int = 3
) -> list[dict]:
    """Table I: example backoff windows per priority level and stage."""
    backoff = PriorityBackoff(alphas=alphas, beta=beta)
    rows = []
    for entry in backoff.table(stages=stages):
        lo, hi = entry["range"]
        rows.append(
            {
                "priority": entry["level"],
                "traffic class": _LEVEL_NAMES.get(
                    entry["level"], f"level {entry['level']}"
                ),
                "retry stage": entry["stage"],
                "backoff slots": f"{lo}-{hi}",
            }
        )
    return rows


def table2() -> list[dict]:
    """Table II: default simulation attribute values."""
    return [
        {"parameter": name, "value": value, "note": note}
        for name, value, note in TABLE2
    ]


def render_table1(**kw) -> str:
    from .runner import format_table

    return format_table(
        table1(**kw),
        ["priority", "traffic class", "retry stage", "backoff slots"],
        title="Table I - backoff windows of the priority scheme",
    )


def render_table2() -> str:
    from .runner import format_table

    return format_table(
        table2(),
        ["parameter", "value", "note"],
        title="Table II - default simulation attribute values",
    )
