"""Sweep execution and tabular rendering for the evaluation figures.

Execution is delegated to :mod:`repro.exec`: :func:`run_sweep` builds
the ``schemes x loads x seeds`` grid of configs and hands it to a
:class:`~repro.exec.SweepExecutor`.  The defaults (``workers=1``, no
cache, no journal) reproduce the historical serial in-process
behaviour exactly; pass ``workers``/``cache_dir``/``journal``/
``resume`` — or a pre-built executor — to go parallel, cached and
resumable.
"""

from __future__ import annotations

import typing

from ..exec import ExecutorConfig, PointRecord, SweepExecutor, default_point_fn
from ..metrics.stats import OnlineStats
from ..network.bss import ScenarioConfig
from .config import EVALUATION_LOADS, EVALUATION_SEEDS, sweep_config

__all__ = [
    "run_point",
    "run_sweep",
    "sweep_grid",
    "average_over_seeds",
    "format_table",
]


def run_point(config: ScenarioConfig) -> dict[str, typing.Any]:
    """Build and run one scenario, returning its results dict."""
    return default_point_fn(config)


def sweep_grid(
    schemes: typing.Sequence[str],
    loads: typing.Sequence[float] = EVALUATION_LOADS,
    seeds: typing.Sequence[int] = EVALUATION_SEEDS,
    sim_time: float = 60.0,
    warmup: float = 5.0,
    engine: str = "exact",
) -> list[ScenarioConfig]:
    """The full evaluation grid as configs: schemes x loads x seeds."""
    return [
        sweep_config(scheme, load, seed, sim_time, warmup, engine)
        for scheme in schemes
        for load in loads
        for seed in seeds
    ]


def run_sweep(
    schemes: typing.Sequence[str],
    loads: typing.Sequence[float] = EVALUATION_LOADS,
    seeds: typing.Sequence[int] = EVALUATION_SEEDS,
    sim_time: float = 60.0,
    warmup: float = 5.0,
    progress: typing.Callable[[str], None] | None = None,
    *,
    workers: int = 1,
    cache_dir: str | None = None,
    journal: str | None = None,
    resume: bool = False,
    timeout: float | None = None,
    retries: int = 1,
    executor: SweepExecutor | None = None,
    engine: str = "exact",
) -> list[dict[str, typing.Any]]:
    """Run the evaluation grid through the execution subsystem.

    ``progress`` keeps its historical one-message-per-point string
    signature; pass an ``executor`` with its own
    :class:`~repro.exec.PointRecord` callback for structured progress
    and post-run telemetry (``executor.summary()``).
    """
    if executor is None:
        executor = SweepExecutor(
            ExecutorConfig(
                workers=workers,
                cache_dir=cache_dir,
                journal=journal,
                resume=resume,
                timeout=timeout,
                retries=retries,
            )
        )
    if progress is not None and executor.progress is None:

        def _relay(record: PointRecord) -> None:
            progress(
                f"{record.scheme} load={record.load} seed={record.seed} "
                f"{record.status}"
            )

        executor.progress = _relay
    return executor.run(
        sweep_grid(schemes, loads, seeds, sim_time, warmup, engine)
    )


def average_over_seeds(
    rows: typing.Sequence[dict],
    metrics: typing.Sequence[str],
) -> list[dict[str, typing.Any]]:
    """Collapse replications: group by (scheme, load), average metrics."""
    groups: dict[tuple, dict[str, OnlineStats]] = {}
    for row in rows:
        key = (row["scheme"], row["load"])
        stats = groups.setdefault(key, {m: OnlineStats() for m in metrics})
        for m in metrics:
            value = row.get(m)
            if isinstance(value, (int, float)):
                stats[m].add(float(value))
    out = []
    for (scheme, load), stats in sorted(groups.items()):
        entry: dict[str, typing.Any] = {"scheme": scheme, "load": load}
        for m in metrics:
            entry[m] = stats[m].mean
            entry[f"{m}_std"] = stats[m].std
        out.append(entry)
    return out


def format_table(
    rows: typing.Sequence[dict],
    columns: typing.Sequence[str],
    title: str = "",
    floatfmt: str = ".4g",
) -> str:
    """Plain-text table renderer (no external dependencies)."""
    def cell(v: typing.Any) -> str:
        if isinstance(v, float):
            return format(v, floatfmt)
        return str(v)

    body = [[cell(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(c), *(len(b[i]) for b in body)) if body else len(c)
        for i, c in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for b in body:
        lines.append("  ".join(v.ljust(w) for v, w in zip(b, widths)))
    return "\n".join(lines)
