"""Result persistence: JSON-lines archives of sweep outputs.

Sweeps are minutes-long; archiving their rows lets figure projections,
notebooks and regression comparisons re-run instantly.  The format is
one JSON object per line plus a manifest header line (format version,
package version), so archives stay diff-able and appendable.
"""

from __future__ import annotations

import json
import pathlib
import typing

from ..exec.hashing import jsonable, normalize_row

__all__ = [
    "save_results",
    "load_results",
    "merge_results",
    "jsonable",
    "normalize_row",
]

_FORMAT = 1

# canonical JSON coercion now lives in repro.exec.hashing (the cache
# and journal share it); kept under its old private name for callers
_jsonable = jsonable


def save_results(
    rows: typing.Sequence[dict],
    path: str | pathlib.Path,
    append: bool = False,
) -> pathlib.Path:
    """Write sweep rows to a JSON-lines archive; returns the path."""
    from .. import __version__

    p = pathlib.Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    mode = "a" if append and p.exists() else "w"
    with p.open(mode) as fh:
        if mode == "w":
            fh.write(
                json.dumps(
                    {"_manifest": True, "format": _FORMAT, "repro": __version__}
                )
                + "\n"
            )
        for row in rows:
            fh.write(json.dumps(_jsonable(row)) + "\n")
    return p


def load_results(path: str | pathlib.Path) -> list[dict]:
    """Read a JSON-lines archive back into sweep rows."""
    p = pathlib.Path(path)
    rows: list[dict] = []
    with p.open() as fh:
        first = fh.readline()
        if not first:
            return rows
        header = json.loads(first)
        if not header.get("_manifest"):
            rows.append(header)  # headerless legacy file: keep the row
        elif header.get("format") != _FORMAT:
            raise ValueError(
                f"unsupported archive format {header.get('format')!r}"
            )
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def merge_results(paths: typing.Iterable[str | pathlib.Path]) -> list[dict]:
    """Concatenate several archives (e.g. per-scheme shards)."""
    merged: list[dict] = []
    for p in paths:
        merged.extend(load_results(p))
    return merged
