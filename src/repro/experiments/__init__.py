"""Evaluation reproduction: Table II config, sweeps, tables, figures."""

from .config import (
    BENCH_LOADS,
    EVALUATION_LOADS,
    EVALUATION_SEEDS,
    TABLE2,
    sweep_config,
)
from .io import load_results, merge_results, normalize_row, save_results
from .figures import FIGURE_METRICS, fig5, fig6, fig7, fig8, fig9, fig10, fig11
from .runner import (
    average_over_seeds,
    format_table,
    run_point,
    run_sweep,
    sweep_grid,
)
from .tables import render_table1, render_table2, table1, table2

__all__ = [
    "TABLE2",
    "EVALUATION_LOADS",
    "EVALUATION_SEEDS",
    "BENCH_LOADS",
    "sweep_config",
    "run_point",
    "run_sweep",
    "sweep_grid",
    "normalize_row",
    "average_over_seeds",
    "format_table",
    "table1",
    "table2",
    "render_table1",
    "render_table2",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "FIGURE_METRICS",
    "save_results",
    "load_results",
    "merge_results",
]
