"""Evaluation defaults — the reproduction's Table II.

The scraped paper lost the body of its Table II ("default attribute
values used in the simulation"); the values here combine what the text
states explicitly (voice on/off means 1.35 s / 1.5 s, 3-minute calls,
video delay bound 50 ms, data MSDUs exponential with mean 1024 octets,
CFP/superframe 50/75 ms, Maglaris AR coefficients) with standard
802.11b DSSS PHY constants for the rest.  Sweep-level knobs (shorter
holding times, scaled arrival rates) keep a full figure reproduction
inside a laptop budget; they rescale both schemes identically, so the
comparisons the figures make are preserved.
"""

from __future__ import annotations

from ..network.bss import DEFAULT_VIDEO, DEFAULT_VOICE, RT_PACKET_BITS, ScenarioConfig
from ..phy.timing import PhyTiming

__all__ = [
    "TABLE2",
    "EVALUATION_LOADS",
    "EVALUATION_SEEDS",
    "BENCH_LOADS",
    "sweep_config",
]

#: the parameter table the paper's Table II corresponds to
TABLE2: list[tuple[str, str, str]] = [
    ("channel rate", "11 Mb/s", "802.11b DSSS"),
    ("PLCP preamble+header", "192 us @ 1 Mb/s", "long preamble"),
    ("slot time", "20 us", "802.11b"),
    ("SIFS / PIFS / DIFS", "10 / 30 / 50 us", "802.11b"),
    ("bit error rate", "1e-5", "paper's P_succ = (1-BER)^L model"),
    ("MAC header + FCS", "34 octets", ""),
    ("ACK frame", "14 octets", ""),
    ("real-time MPDU payload", "512 octets", "all RT packets equal-sized"),
    ("data MSDU length", "exp(mean 1024 octets)", "paper Section III-A"),
    ("MTU", "1500 octets", "fragmentation threshold"),
    ("voice codec rate r", "25 packets/s", ""),
    ("voice jitter bound delta", "30 ms", ""),
    ("voice talk spurt (on)", "exp(mean 1.35 s)", "paper Section III-A"),
    ("voice silence (off)", "exp(mean 1.5 s)", "paper Section III-A"),
    ("video declared rate rho", "60 packets/s", ""),
    ("video burstiness sigma", "6 packets", ""),
    ("video delay bound D", "50 ms", "paper Section III-B"),
    ("video frame rate", "25 frames/s", "Maglaris AR(1) source"),
    ("AR(1) coefficients", "a=0.8781 b=0.1108 E[w]=0.572", "Maglaris et al."),
    ("call holding time", "exp(mean 40 s)", "paper: 3 min; scaled for sweeps"),
    ("handoff deadline", "500 ms", ""),
    ("superframe (conventional)", "75 ms", "paper Section III-B"),
    ("CFP maximum (conventional)", "50 ms", "paper Section III-B"),
    ("priority window partition", "alpha=(4,4,8), beta=0", "paper Table I"),
    ("traffic mix", "voice : video : data = 1 : 1 : 1", "paper Section III-B"),
]

#: the load multipliers every figure-6..11 sweep runs over
EVALUATION_LOADS: tuple[float, ...] = (0.25, 0.5, 1.0, 1.5, 2.0, 3.0)

#: replication seeds (figures average across them)
EVALUATION_SEEDS: tuple[int, ...] = (1, 2, 3)

#: the scaled-down benchmark grid: every other evaluation load — the
#: single source the bench drivers and smoke sweeps import from
BENCH_LOADS: tuple[float, ...] = EVALUATION_LOADS[1::2]


def sweep_config(
    scheme: str,
    load: float,
    seed: int,
    sim_time: float = 60.0,
    warmup: float = 5.0,
    engine: str = "exact",
) -> ScenarioConfig:
    """The canonical evaluation point for Figs. 6-11."""
    return ScenarioConfig(
        scheme=scheme,
        seed=seed,
        sim_time=sim_time,
        warmup=warmup,
        load=load,
        new_voice_rate=0.3,
        new_video_rate=0.2,
        handoff_voice_rate=0.15,
        handoff_video_rate=0.1,
        mean_holding=20.0,
        n_data_stations=4,
        data_msdus_per_station=12.0,
        voice=DEFAULT_VOICE,
        video=DEFAULT_VIDEO,
        engine=engine,
    )


def phy_overheads(timing: PhyTiming | None = None) -> dict[str, float]:
    """Derived per-frame costs, for documentation and sanity checks."""
    t = timing or PhyTiming()
    return {
        "rt_exchange_time": (
            t.poll_time() + t.sifs + t.frame_airtime(RT_PACKET_BITS) + t.sifs
        ),
        "data_exchange_time": t.data_exchange_time(1024 * 8),
        "beacon_time": t.beacon_time(),
        "poll_time": t.poll_time(),
    }
