"""Engine profiling: per-event-type handler timing and events/sec.

:class:`EngineProfiler` plugs into :attr:`repro.sim.engine.Simulator.
profiler`.  When attached, the engine hands it every agenda item to
fire; the profiler times the handler with ``perf_counter`` and
aggregates by handler key — the callback's ``__qualname__`` for timer
callbacks, the item's class name for events and processes.  Detached
(the default), the engine's hot path pays one ``is None`` check.

Profiling output is wall-clock derived and therefore *never* part of
result rows, traces or anything else that must be deterministic; it is
surfaced through the ``python -m repro trace`` CLI report and sweep
telemetry only.
"""

from __future__ import annotations

import time
import tracemalloc
import typing

__all__ = ["EngineProfiler", "measure_allocations"]


def measure_allocations(fn: typing.Callable[[], typing.Any]) -> tuple:
    """Run ``fn()`` under ``tracemalloc``; return ``(result, peak_kib)``.

    Peak traced allocation is measured relative to the moment the call
    starts, so a warm interpreter does not inflate the number.  Tracing
    slows execution several-fold — callers must keep the allocation
    pass separate from any wall-clock timing pass (the perf gate does).
    """
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    base, _ = tracemalloc.get_traced_memory()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not was_tracing:
            tracemalloc.stop()
    return result, max(0.0, (peak - base) / 1024.0)


class EngineProfiler:
    """Times agenda-item handlers by type (see module docstring)."""

    def __init__(self) -> None:
        #: handler key -> [calls, total seconds]
        self._handlers: dict[str, list] = {}
        self.events = 0
        self._t0: float | None = None
        self._t1: float = 0.0

    # -- the engine-facing hook --------------------------------------------
    def fire(self, item: typing.Any) -> None:
        """Fire one agenda item, timing its handler.

        ``item`` is whatever the simulator popped: a ``TimerHandle``
        (fired via ``_fire``) or an event/process (``_process``).
        """
        fn = getattr(item, "_fn", None)
        if fn is not None:  # a TimerHandle
            key = getattr(fn, "__qualname__", None) or repr(fn)
            handler = item._fire
        else:
            key = type(item).__name__
            handler = item._process
        start = time.perf_counter()
        if self._t0 is None:
            self._t0 = start
        try:
            handler()
        finally:
            end = time.perf_counter()
            self._t1 = end
            self.events += 1
            entry = self._handlers.get(key)
            if entry is None:
                self._handlers[key] = [1, end - start]
            else:
                entry[0] += 1
                entry[1] += end - start

    # -- reporting ----------------------------------------------------------
    @property
    def wall_time(self) -> float:
        """Wall-clock span from the first to the last profiled event."""
        if self._t0 is None:
            return 0.0
        return self._t1 - self._t0

    @property
    def events_per_sec(self) -> float:
        wall = self.wall_time
        return self.events / wall if wall > 0 else 0.0

    def summary(self) -> dict[str, typing.Any]:
        """Aggregate view: per-handler timing plus overall throughput."""
        handlers = {
            key: {
                "calls": calls,
                "total_s": total,
                "mean_us": (total / calls) * 1e6 if calls else 0.0,
            }
            for key, (calls, total) in sorted(
                self._handlers.items(), key=lambda kv: -kv[1][1]
            )
        }
        return {
            "events": self.events,
            "wall_time_s": self.wall_time,
            "events_per_sec": self.events_per_sec,
            "handlers": handlers,
        }
