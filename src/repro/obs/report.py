"""Human-readable reports over a recorded trace and profile.

The ``python -m repro trace`` CLI prints three sections built here:

* :func:`render_timeline` — the CFP/CP alternation reconstructed from
  the ``cfp`` trace category: one line per contention-free period
  (start, duration, polls/re-polls/responses/nulls) and the contention
  gap that followed it — the per-frame timeline view the 802.11e
  evaluation literature explains MAC behaviour with;
* :func:`render_category_counts` — buffered event counts per category;
* :func:`render_profile` — the engine profiler's per-handler timing
  table and overall events/sec.
"""

from __future__ import annotations

import typing

from .profiler import EngineProfiler
from .trace import TraceRecorder

__all__ = [
    "cfp_timeline",
    "render_timeline",
    "render_category_counts",
    "render_profile",
]


def cfp_timeline(recorder: TraceRecorder) -> list[dict[str, typing.Any]]:
    """Reconstruct per-CFP summaries from the ``cfp`` event stream.

    Returns one dict per completed CFP observed in the buffer:
    ``{"start", "end", "duration", "polls", "repolls", "polls_lost",
    "responses", "nulls", "cp_after"}`` — ``cp_after`` is the
    contention-period gap to the next CFP (None for the last one).
    """
    cfps: list[dict[str, typing.Any]] = []
    current: dict[str, typing.Any] | None = None
    for t, _seq, _cat, ev, fields in recorder.events("cfp"):
        if ev == "start":
            current = {
                "start": t,
                "end": None,
                "duration": None,
                "polls": 0,
                "repolls": 0,
                "polls_lost": 0,
                "responses": 0,
                "nulls": 0,
                "cp_after": None,
            }
        elif current is not None:
            if ev == "poll":
                current["polls"] += 1
            elif ev == "repoll":
                current["repolls"] += 1
            elif ev == "poll_lost":
                current["polls_lost"] += 1
            elif ev == "response":
                current["responses"] += 1
            elif ev == "null":
                current["nulls"] += 1
            elif ev == "end":
                current["end"] = t
                current["duration"] = fields.get("duration", t - current["start"])
                cfps.append(current)
                current = None
    for prev, nxt in zip(cfps, cfps[1:]):
        prev["cp_after"] = nxt["start"] - prev["end"]
    return cfps


def render_timeline(recorder: TraceRecorder, limit: int = 40) -> str:
    """Text CFP/CP timeline (at most ``limit`` CFP lines, tail elided)."""
    cfps = cfp_timeline(recorder)
    if not cfps:
        return "timeline: no completed CFPs in the trace buffer"
    lines = [f"CFP/CP timeline ({len(cfps)} contention-free periods):"]
    shown = cfps if len(cfps) <= limit else cfps[:limit]
    for i, c in enumerate(shown, start=1):
        line = (
            f"  CFP #{i:<4d} [{c['start']:.6f} .. {c['end']:.6f}] "
            f"dur={c['duration'] * 1000:7.3f} ms  "
            f"polls={c['polls']:<3d} responses={c['responses']:<3d} "
            f"nulls={c['nulls']:<3d}"
        )
        if c["repolls"] or c["polls_lost"]:
            line += f" repolls={c['repolls']} lost={c['polls_lost']}"
        lines.append(line)
        if c["cp_after"] is not None:
            lines.append(
                f"       CP    gap {c['cp_after'] * 1000:9.3f} ms (contention)"
            )
    if len(cfps) > limit:
        lines.append(f"  ... {len(cfps) - limit} more CFPs elided")
    total_cfp = sum(c["duration"] for c in cfps)
    span = cfps[-1]["end"] - cfps[0]["start"]
    if span > 0:
        lines.append(
            f"  totals: {total_cfp * 1000:.1f} ms contention-free over a "
            f"{span * 1000:.1f} ms span ({total_cfp / span:.0%} CFP share)"
        )
    return "\n".join(lines)


def render_category_counts(recorder: TraceRecorder) -> str:
    """Buffered/emitted/dropped event counts, per category."""
    counts = recorder.counts_by_category()
    lines = [
        f"trace: {recorder.emitted} events emitted, "
        f"{len(recorder)} buffered, {recorder.dropped} evicted"
    ]
    for cat in sorted(counts):
        lines.append(f"  {cat:<10s} {counts[cat]}")
    return "\n".join(lines)


def render_profile(profiler: EngineProfiler, limit: int = 15) -> str:
    """Per-handler timing table plus overall events/sec."""
    summary = profiler.summary()
    lines = [
        f"engine: {summary['events']} events in "
        f"{summary['wall_time_s']:.3f} s wall "
        f"({summary['events_per_sec']:,.0f} events/s)"
    ]
    handlers = list(summary["handlers"].items())
    if handlers:
        lines.append(
            f"  {'handler':<48s} {'calls':>8s} {'total ms':>10s} {'mean us':>9s}"
        )
        for key, h in handlers[:limit]:
            lines.append(
                f"  {key[:48]:<48s} {h['calls']:>8d} "
                f"{h['total_s'] * 1000:>10.2f} {h['mean_us']:>9.2f}"
            )
        if len(handlers) > limit:
            lines.append(f"  ... {len(handlers) - limit} more handler types elided")
    return "\n".join(lines)
