"""Structured event tracing: :class:`TraceConfig` and :class:`TraceRecorder`.

A trace is a bounded ring of ``(time, seq, category, event, fields)``
tuples.  Components that can emit hold a ``trace`` attribute that is
``None`` unless the scenario was configured with tracing on *and* the
component's category is wanted — the hot path therefore pays exactly
one attribute load and one ``is None`` branch per potential event.

The JSONL export is deterministic: events are emitted at simulation
times, fields are plain JSON types, and lines are dumped with sorted
keys, so a fixed seed produces a byte-identical trace file across
runs, machines and (de)serialization round-trips.

Schema (one JSON object per line)::

    {"t": <sim time, number >= 0>,
     "seq": <int, strictly increasing>,
     "cat": <one of CATEGORIES>,
     "ev": <non-empty event name>,
     ...event-specific fields...}
"""

from __future__ import annotations

import collections
import json
import typing

# shared with repro.exec.hashing; obs sits below the exec layer, so
# the one definition lives here in obs (see repro.obs.jsonutil)
from .jsonutil import jsonable as _jsonable

__all__ = [
    "CATEGORIES",
    "RESERVED_KEYS",
    "TraceConfig",
    "TraceRecorder",
    "TraceSchemaError",
    "validate_trace_line",
    "validate_trace_file",
]

#: every event category an instrumented component can emit
#: (canonical order; TraceConfig normalizes to it)
CATEGORIES: tuple[str, ...] = (
    "frame",      # channel: every frame that finished on the air
    "backoff",    # DCF: backoff draws with their priority window
    "cfp",        # PCF: CFP start/end, polls, re-polls, responses
    "token",      # token policy: grants, consumes, misses, escalation
    "admission",  # QoS AP: accept/reject/evict/readmit decisions
    "fault",      # fault injection: frame loss, station crash/recover
)

#: keys the recorder owns; event fields must not collide with them
RESERVED_KEYS = frozenset({"t", "seq", "cat", "ev"})




class TraceConfig:
    """Serializable tracing knobs, riding in ``ScenarioConfig.trace``.

    Parameters
    ----------
    categories:
        Which event categories to record (default: all).  Unknown
        names raise; order is normalized so two equivalent configs
        hash to the same :func:`~repro.exec.hashing.config_key`.
    capacity:
        Ring-buffer size in events; the oldest events are evicted once
        it fills.  ``0`` means unbounded.
    snapshot_interval:
        Period (simulated seconds) of the metrics-registry snapshots a
        traced scenario records; ``0`` disables periodic snapshots.
    """

    __slots__ = ("categories", "capacity", "snapshot_interval")

    def __init__(
        self,
        categories: typing.Sequence[str] = CATEGORIES,
        capacity: int = 65536,
        snapshot_interval: float = 1.0,
    ) -> None:
        wanted = set(categories)
        unknown = wanted - set(CATEGORIES)
        if unknown:
            raise ValueError(
                f"unknown trace categories {sorted(unknown)}; "
                f"valid: {list(CATEGORIES)}"
            )
        if not wanted:
            raise ValueError("need at least one trace category")
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if snapshot_interval < 0:
            raise ValueError(
                f"snapshot_interval must be >= 0, got {snapshot_interval}"
            )
        self.categories = tuple(c for c in CATEGORIES if c in wanted)
        self.capacity = int(capacity)
        self.snapshot_interval = float(snapshot_interval)

    # TraceConfig is part of a simulation point's identity, so it needs
    # value semantics like the frozen dataclasses it rides along with.
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceConfig):
            return NotImplemented
        return (
            self.categories == other.categories
            and self.capacity == other.capacity
            and self.snapshot_interval == other.snapshot_interval
        )

    def __hash__(self) -> int:
        return hash((self.categories, self.capacity, self.snapshot_interval))

    def __repr__(self) -> str:
        return (
            f"TraceConfig(categories={self.categories!r}, "
            f"capacity={self.capacity}, "
            f"snapshot_interval={self.snapshot_interval})"
        )

    def to_dict(self) -> dict[str, typing.Any]:
        """JSON-stable form (the config-key canonical input)."""
        return {
            "categories": list(self.categories),
            "capacity": self.capacity,
            "snapshot_interval": self.snapshot_interval,
        }

    @classmethod
    def from_dict(cls, data: typing.Mapping[str, typing.Any]) -> "TraceConfig":
        return cls(
            categories=tuple(data.get("categories", CATEGORIES)),
            capacity=int(data.get("capacity", 65536)),
            snapshot_interval=float(data.get("snapshot_interval", 1.0)),
        )


class TraceRecorder:
    """Ring-buffered structured event recorder (see module docstring)."""

    def __init__(self, config: TraceConfig | None = None) -> None:
        self.config = config or TraceConfig()
        self._wanted = frozenset(self.config.categories)
        maxlen = self.config.capacity or None
        self._buffer: collections.deque[
            tuple[float, int, str, str, dict]
        ] = collections.deque(maxlen=maxlen)
        #: total events emitted (including ones the ring evicted)
        self.emitted = 0

    # -- recording ---------------------------------------------------------
    def wants(self, category: str) -> bool:
        """Is ``category`` recorded?  Components use this at wiring
        time to decide whether to hold the recorder at all."""
        return category in self._wanted

    def emit(self, time: float, category: str, event: str, **fields) -> None:
        """Record one event (dropped silently if its category is off)."""
        if category not in self._wanted:
            return
        self.emitted += 1
        self._buffer.append((time, self.emitted, category, event, fields))

    # -- inspection ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def dropped(self) -> int:
        """Events the ring buffer evicted."""
        return self.emitted - len(self._buffer)

    def events(
        self, category: str | None = None
    ) -> typing.Iterator[tuple[float, int, str, str, dict]]:
        """Iterate buffered events, oldest first, optionally filtered."""
        for record in self._buffer:
            if category is None or record[2] == category:
                yield record

    def counts_by_category(self) -> dict[str, int]:
        """Buffered event counts per category (only non-zero entries)."""
        counts: dict[str, int] = {}
        for _t, _seq, cat, _ev, _fields in self._buffer:
            counts[cat] = counts.get(cat, 0) + 1
        return counts

    # -- export -------------------------------------------------------------
    def jsonl_lines(self) -> typing.Iterator[str]:
        """Deterministic JSONL encoding of the buffered events."""
        for time, seq, cat, ev, fields in self._buffer:
            record = {"t": time, "seq": seq, "cat": cat, "ev": ev}
            for key, value in fields.items():
                if key in RESERVED_KEYS:
                    raise ValueError(
                        f"event field {key!r} collides with a reserved key"
                    )
                record[key] = value
            yield json.dumps(
                _jsonable(record), sort_keys=True, separators=(",", ":")
            )

    def export_jsonl(self, path: str) -> int:
        """Write the trace to ``path``; returns the line count."""
        count = 0
        with open(path, "w", encoding="utf-8") as fh:
            for line in self.jsonl_lines():
                fh.write(line)
                fh.write("\n")
                count += 1
        return count


class TraceSchemaError(ValueError):
    """A trace line violated the JSONL schema."""


def validate_trace_line(line: str) -> dict[str, typing.Any]:
    """Parse and schema-check one JSONL trace line; returns the record."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceSchemaError(f"not valid JSON: {exc}") from exc
    if not isinstance(record, dict):
        raise TraceSchemaError(f"expected a JSON object, got {type(record).__name__}")
    for key in ("t", "seq", "cat", "ev"):
        if key not in record:
            raise TraceSchemaError(f"missing required key {key!r}")
    if not isinstance(record["t"], (int, float)) or record["t"] < 0:
        raise TraceSchemaError(f"'t' must be a non-negative number, got {record['t']!r}")
    if not isinstance(record["seq"], int) or record["seq"] < 1:
        raise TraceSchemaError(f"'seq' must be a positive int, got {record['seq']!r}")
    if record["cat"] not in CATEGORIES:
        raise TraceSchemaError(f"unknown category {record['cat']!r}")
    if not isinstance(record["ev"], str) or not record["ev"]:
        raise TraceSchemaError(f"'ev' must be a non-empty string, got {record['ev']!r}")
    return record


def validate_trace_file(path: str) -> int:
    """Schema-check a whole JSONL trace; returns the event count.

    Beyond per-line checks this enforces the file-level contract:
    ``seq`` strictly increasing and ``t`` non-decreasing.
    """
    count = 0
    last_seq = 0
    last_t = -1.0
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = validate_trace_line(line)
            except TraceSchemaError as exc:
                raise TraceSchemaError(f"line {lineno}: {exc}") from None
            if record["seq"] <= last_seq:
                raise TraceSchemaError(
                    f"line {lineno}: seq {record['seq']} not increasing "
                    f"(previous {last_seq})"
                )
            if record["t"] < last_t:
                raise TraceSchemaError(
                    f"line {lineno}: t {record['t']} went backwards "
                    f"(previous {last_t})"
                )
            last_seq = record["seq"]
            last_t = record["t"]
            count += 1
    return count
