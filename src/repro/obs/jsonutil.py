"""Shared JSON-type coercion for result rows and trace records.

Both the execution subsystem's canonical hashing
(:mod:`repro.exec.hashing`) and the trace exporter
(:mod:`repro.obs.trace`) must turn numpy scalars and tuples into plain
JSON types before serializing.  The helper lives here, in ``obs`` —
the lowest observability layer — so ``exec`` can import it without
``obs`` ever importing upward.
"""

from __future__ import annotations

import typing

__all__ = ["jsonable"]


def jsonable(value: typing.Any) -> typing.Any:
    """Coerce numpy scalars and tuples into plain JSON types.

    Dicts and lists are rebuilt recursively, tuples become lists, and
    anything exposing ``.item()`` (numpy scalars) is unwrapped.  Plain
    JSON values pass through unchanged.
    """
    if isinstance(value, dict):
        return {k: jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return value
