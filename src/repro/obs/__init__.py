"""Observability: structured tracing, metrics registry, profiling.

This package is the run-time visibility layer of the reproduction —
the substrate the exec, validate and faults subsystems report through,
and the thing a perf PR measures against:

* :class:`TraceRecorder` / :class:`TraceConfig` — a ring-buffered,
  category-filtered structured event trace (frame TX, backoff draws,
  CFP poll cycles, token grants/misses, admission decisions, fault
  injections).  Off by default; every instrumentation point in the
  simulation stack is guarded by a single ``is None`` check, so a
  trace-free run pays one attribute load per site.  Deterministic
  JSONL export: a fixed seed produces byte-identical traces.
* :class:`MetricsRegistry` — pure-Python counters, gauges and
  fixed-bucket histograms with optional labels (per-station,
  per-priority, per-BSS) and periodic sim-clock snapshotting.  The
  ad-hoc counter dicts that used to live in ``qos_ap``/``bss``/
  ``token_policy`` are now registry-backed behind compatible facades
  (:func:`counter_property`, :class:`CounterMap`).
* :class:`EngineProfiler` — per-event-type handler timing and
  events/sec for :class:`~repro.sim.engine.Simulator`, surfaced
  through sweep telemetry and the ``python -m repro trace`` CLI.

Layering: ``repro.obs`` sits *below* the domain packages (sim, mac,
core, network import it), so it must not import any of them at module
level.
"""

from .profiler import EngineProfiler, measure_allocations
from .registry import (
    Counter,
    CounterMap,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_property,
)
from .report import render_category_counts, render_profile, render_timeline
from .trace import (
    CATEGORIES,
    TraceConfig,
    TraceRecorder,
    TraceSchemaError,
    validate_trace_file,
    validate_trace_line,
)

__all__ = [
    "CATEGORIES",
    "TraceConfig",
    "TraceRecorder",
    "TraceSchemaError",
    "validate_trace_file",
    "validate_trace_line",
    "Counter",
    "CounterMap",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter_property",
    "EngineProfiler",
    "measure_allocations",
    "render_category_counts",
    "render_profile",
    "render_timeline",
]
