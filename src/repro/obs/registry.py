"""The metrics registry: counters, gauges, fixed-bucket histograms.

Pure Python, no dependencies: an instrument is a tiny ``__slots__``
object the owning component holds directly, so the hot-path cost of
``counter.inc()`` is one attribute store.  The registry is only
consulted at creation and snapshot time.

Identity is ``name`` plus a sorted label set (per-station,
per-priority, per-BSS, ...), rendered Prometheus-style in snapshots::

    ap_admitted{kind=new}  ->  17

Facades for pre-existing call sites:

* :func:`counter_property` — a class-level property that proxies an
  ``obj.some_counter += 1`` attribute to a registry counter held in
  ``obj._counters``;
* :class:`CounterMap` — a dict-like view (``m[key] += 1``) over one
  counter per key, for the per-kind counter dicts the metrics
  collector keeps.
"""

from __future__ import annotations

import bisect
import typing

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "CounterMap",
    "counter_property",
    "DELAY_BUCKETS",
]

#: default access-delay histogram bounds (seconds) — chosen around the
#: paper's QoS budgets (30 ms voice jitter, 50 ms video delay)
DELAY_BUCKETS: tuple[float, ...] = (
    0.001, 0.002, 0.005, 0.010, 0.020, 0.030, 0.050, 0.075, 0.100, 0.250,
)


class Counter:
    """Monotonically increasing value (int or float)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``bounds`` are the inclusive upper edges of the finite buckets; an
    implicit overflow bucket catches everything above the last edge.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: typing.Sequence[float]) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = tuple(float(b) for b in bounds)
        if any(b2 <= b1 for b1, b2 in zip(ordered, ordered[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.bounds = ordered
        self.bucket_counts = [0] * (len(ordered) + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper edge of the
        bucket holding the q-th observation; inf for overflow)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.bucket_counts):
            seen += c
            if seen >= rank and c:
                return self.bounds[i] if i < len(self.bounds) else float("inf")
        return float("inf")

    def snapshot(self) -> dict[str, typing.Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": {
                ("+inf" if i == len(self.bounds) else repr(self.bounds[i])): c
                for i, c in enumerate(self.bucket_counts)
                if c
            },
        }


def _key(name: str, labels: dict[str, typing.Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Creates, owns and snapshots instruments (see module docstring).

    Parameters
    ----------
    labels:
        Constant labels stamped on the registry itself (e.g. the BSS
        id); reported once per snapshot, not per instrument.
    """

    def __init__(self, **labels: typing.Any) -> None:
        self.labels = dict(labels)
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        #: periodic snapshots appended by :meth:`start_snapshots`
        self.snapshots: list[dict[str, typing.Any]] = []

    # -- instrument factories (get-or-create) ------------------------------
    def counter(self, name: str, **labels: typing.Any) -> Counter:
        key = _key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: typing.Any) -> Gauge:
        key = _key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        bounds: typing.Sequence[float] = DELAY_BUCKETS,
        **labels: typing.Any,
    ) -> Histogram:
        key = _key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(bounds)
        return instrument

    def expose(
        self,
    ) -> tuple[
        dict[str, Counter], dict[str, Gauge], dict[str, Histogram]
    ]:
        """Live instrument maps ``(counters, gauges, histograms)``.

        Keys are the flattened ``name{label=value,...}`` identities.
        This is the read surface the Prometheus text renderer
        (:mod:`repro.serve.metrics`) walks: unlike :meth:`snapshot` it
        keeps the full bucket layout of every histogram, which the
        cumulative ``_bucket`` series needs.
        """
        return dict(self._counters), dict(self._gauges), dict(self._histograms)

    # -- snapshotting -------------------------------------------------------
    def snapshot(self, now: float | None = None) -> dict[str, typing.Any]:
        """One deterministic point-in-time view of every instrument."""
        out: dict[str, typing.Any] = {
            "labels": dict(sorted(self.labels.items())),
            "counters": {
                k: self._counters[k].value for k in sorted(self._counters)
            },
            "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].snapshot()
                for k in sorted(self._histograms)
            },
        }
        if now is not None:
            out["t"] = now
        return out

    def start_snapshots(self, sim, interval: float) -> None:
        """Record a snapshot every ``interval`` simulated seconds."""
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")

        def tick() -> None:
            self.snapshots.append(self.snapshot(now=sim.now))
            sim.call_in(interval, tick)

        sim.call_in(interval, tick)


class CounterMap:
    """Dict-like facade over one registry counter per fixed key.

    Built for the per-:class:`~repro.traffic.base.TrafficKind` counter
    dicts in the metrics collector: reads return plain numbers, and
    ``m[key] += 1`` updates the underlying counter, so pre-registry
    call sites keep working unchanged.
    """

    __slots__ = ("_counters",)

    def __init__(
        self,
        registry: MetricsRegistry,
        name: str,
        keys: typing.Iterable[typing.Any],
        label: str = "key",
    ) -> None:
        self._counters = {
            key: registry.counter(
                name, **{label: getattr(key, "value", str(key))}
            )
            for key in keys
        }

    def __getitem__(self, key: typing.Any) -> int | float:
        return self._counters[key].value

    def __setitem__(self, key: typing.Any, value: int | float) -> None:
        self._counters[key].value = value

    def __contains__(self, key: typing.Any) -> bool:
        return key in self._counters

    def __iter__(self) -> typing.Iterator[typing.Any]:
        return iter(self._counters)

    def __len__(self) -> int:
        return len(self._counters)

    def keys(self):
        return self._counters.keys()

    def values(self) -> list[int | float]:
        return [c.value for c in self._counters.values()]

    def items(self) -> list[tuple[typing.Any, int | float]]:
        return [(k, c.value) for k, c in self._counters.items()]


def counter_property(name: str, doc: str | None = None) -> property:
    """Class-level facade: attribute access backed by a registry counter.

    The owning class keeps a ``self._counters`` dict mapping ``name``
    to a :class:`Counter`; ``obj.name`` then reads the counter's value
    and ``obj.name += 1`` (property get + set) writes through, so
    pre-registry call sites and tests keep working unchanged.
    """

    def fget(self) -> int | float:
        return self._counters[name].value

    def fset(self, value: int | float) -> None:
        self._counters[name].value = value

    return property(fget, fset, doc=doc or f"registry-backed counter {name!r}")
