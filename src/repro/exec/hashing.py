"""Canonical serialization and content-addressed point keys.

The execution subsystem identifies a simulation point by a stable hash
of its :class:`~repro.network.bss.ScenarioConfig`: the config is taken
through :meth:`to_dict`, coerced to plain JSON types, dumped with
sorted keys and hashed.  Two configs produce the same key iff they
describe the same simulated point, so the key doubles as the result
cache's address and the checkpoint journal's resume key.

``KEY_FORMAT`` is folded into the hash; bump it whenever the meaning
of a config field (or of a result row) changes so stale cache entries
and journals are invalidated wholesale instead of silently reused.
"""

from __future__ import annotations

import hashlib
import json
import typing

from ..obs.jsonutil import jsonable

if typing.TYPE_CHECKING:  # pragma: no cover
    from ..network.bss import ScenarioConfig

__all__ = [
    "KEY_FORMAT",
    "ACCEL_KEY_FORMAT",
    "jsonable",
    "canonical_json",
    "normalize_row",
    "config_key",
]

#: bump to invalidate every existing cache entry and journal row
#: (2: ScenarioConfig grew monitor_invariants, changing to_dict();
#:  3: ScenarioConfig grew the faults FaultPlan field and faulted rows
#:  carry a degradation sub-dict;
#:  4: ScenarioConfig grew the trace TraceConfig field and traced rows
#:  carry an obs sub-dict;
#:  5: ScenarioConfig grew the ess EssCellContext field and ESS cell
#:  shards carry an ess sub-dict)
KEY_FORMAT = 5

#: key format for accelerated-tier points only.  ``ScenarioConfig``
#: omits ``engine`` from :meth:`to_dict` when it is ``"exact"``, so
#: exact points keep their ``KEY_FORMAT`` 5 keys (and cached results)
#: untouched; ``engine="batched"``/``"hybrid"`` rows carry engine-tier
#: fields and hash under this format instead.
ACCEL_KEY_FORMAT = 6


def canonical_json(value: typing.Any) -> str:
    """Deterministic JSON encoding: coerced types, sorted keys, no spaces."""
    return json.dumps(jsonable(value), sort_keys=True, separators=(",", ":"))


def normalize_row(row: dict[str, typing.Any]) -> dict[str, typing.Any]:
    """Round-trip a result row through JSON.

    Every row the executor returns passes through here, so rows are
    byte-identical regardless of provenance — freshly simulated, read
    back from the cache, or replayed from a resume journal (JSON turns
    tuples into lists; normalizing up front makes that uniform).
    """
    return json.loads(canonical_json(row))


def config_key(config: "ScenarioConfig") -> str:
    """Content-addressed identity of one simulation point."""
    d = config.to_dict()
    fmt = ACCEL_KEY_FORMAT if "engine" in d else KEY_FORMAT
    payload = {"format": fmt, "config": d}
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
