"""Parallel experiment execution: process-pool sweeps, caching, resume.

This package owns *how* simulation points get executed, sitting
between the scenario layer (`repro.network`) and the evaluation
harness (`repro.experiments`):

* :class:`SweepExecutor` / :class:`ExecutorConfig` — serial or
  process-pool execution with chunked dispatch, per-point timeout and
  bounded retry;
* :class:`ResultCache` — content-addressed result rows under
  ``.repro-cache/`` keyed by :func:`config_key`;
* :class:`SweepJournal` — JSON-lines checkpoint of completed points,
  enabling kill-and-resume;
* :class:`RunTelemetry` / :class:`PointRecord` — per-point progress
  stream and the final summary dict.
"""

from .cache import DEFAULT_CACHE_DIR, ResultCache
from .executor import (
    ExecutorConfig,
    PointFailure,
    SweepExecutionError,
    SweepExecutor,
    default_point_fn,
)
from .hashing import KEY_FORMAT, canonical_json, config_key, jsonable, normalize_row
from .journal import SweepJournal
from .telemetry import PointRecord, RunTelemetry

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "ExecutorConfig",
    "PointFailure",
    "SweepExecutionError",
    "SweepExecutor",
    "default_point_fn",
    "KEY_FORMAT",
    "canonical_json",
    "config_key",
    "jsonable",
    "normalize_row",
    "SweepJournal",
    "PointRecord",
    "RunTelemetry",
]
