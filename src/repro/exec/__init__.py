"""Parallel experiment execution: warm-worker sweeps, caching, resume.

This package owns *how* simulation points get executed, sitting
between the scenario layer (`repro.network`) and the evaluation
harness (`repro.experiments`):

* :class:`SweepExecutor` / :class:`ExecutorConfig` — serial or
  persistent warm-worker execution with cost-aware
  longest-expected-first dispatch, per-point timeout, bounded retry
  and targeted single-worker restart;
* :class:`WorkerPool` — the spawn-once worker processes and their
  dedicated task/result pipes (:mod:`repro.exec.pool`);
* :class:`PointScheduler` / :class:`CostModel` — the pure-python
  dispatch-order model (:mod:`repro.exec.scheduler`);
* :class:`ResultCache` — content-addressed result rows under
  ``.repro-cache/`` keyed by :func:`config_key`;
* :class:`SweepJournal` — JSON-lines checkpoint of completed points,
  enabling kill-and-resume;
* :class:`RunTelemetry` / :class:`PointRecord` — per-point progress
  stream and the final summary dict.
"""

from .cache import DEFAULT_CACHE_DIR, ResultCache
from .executor import (
    ExecutorConfig,
    PointFailure,
    SweepExecutionError,
    SweepExecutor,
    default_point_fn,
)
from .hashing import KEY_FORMAT, canonical_json, config_key, jsonable, normalize_row
from .journal import SweepJournal
from .pool import WorkerPool, config_delta
from .scheduler import (
    SCHEDULE_POLICIES,
    CostModel,
    PointScheduler,
    simulate_schedule,
)
from .telemetry import PointRecord, RunTelemetry, phase_utilization

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "ExecutorConfig",
    "PointFailure",
    "SweepExecutionError",
    "SweepExecutor",
    "default_point_fn",
    "KEY_FORMAT",
    "canonical_json",
    "config_key",
    "jsonable",
    "normalize_row",
    "SweepJournal",
    "WorkerPool",
    "config_delta",
    "SCHEDULE_POLICIES",
    "CostModel",
    "PointScheduler",
    "simulate_schedule",
    "PointRecord",
    "RunTelemetry",
    "phase_utilization",
]
