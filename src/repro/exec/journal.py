"""Checkpoint/resume journal: completed sweep rows as JSON-lines.

A sweep appends one ``{"key": <config hash>, "row": {...}}`` line per
completed point (after a manifest header line).  Killing the sweep at
any instant loses at most the in-flight points: a re-run with
``resume=True`` loads the journal, skips every journaled key and only
simulates the remainder.  A truncated final line — the signature of a
mid-write kill — is detected and ignored on load.
"""

from __future__ import annotations

import json
import pathlib
import typing

from .hashing import KEY_FORMAT, canonical_json

__all__ = ["SweepJournal"]


class SweepJournal:
    """Append-only JSON-lines record of completed sweep points."""

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)

    def exists(self) -> bool:
        return self.path.is_file()

    def load(self) -> dict[str, dict[str, typing.Any]]:
        """Read back ``{key: row}`` for every intact journaled point.

        Tolerates a missing file, a foreign/old manifest (returns
        nothing, so every point re-runs) and corrupt or truncated
        lines (skipped).
        """
        if not self.exists():
            return {}
        done: dict[str, dict[str, typing.Any]] = {}
        with self.path.open() as fh:
            first = fh.readline()
            if not first:
                return done
            try:
                header = json.loads(first)
            except ValueError:
                return done
            if not header.get("_manifest") or header.get("format") != KEY_FORMAT:
                return done
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # truncated tail from a killed run
                key, row = entry.get("key"), entry.get("row")
                if isinstance(key, str) and isinstance(row, dict):
                    done[key] = row
        return done

    def start(self, resume: bool = False) -> None:
        """Begin a run: keep the journal when resuming, else rewrite it."""
        if resume and self.exists():
            return
        from .. import __version__

        self.path.parent.mkdir(parents=True, exist_ok=True)
        manifest = {"_manifest": True, "format": KEY_FORMAT, "repro": __version__}
        self.path.write_text(json.dumps(manifest) + "\n")

    def append(self, key: str, row: dict[str, typing.Any]) -> None:
        """Record one completed point (flushed immediately)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(canonical_json({"key": key, "row": row}) + "\n")
            fh.flush()
