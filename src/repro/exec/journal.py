"""Checkpoint/resume journal: completed sweep rows as JSON-lines.

A sweep appends one ``{"key": <config hash>, "row": {...}}`` line per
completed point (after a manifest header line).  Killing the sweep at
any instant loses at most the in-flight points: a re-run with
``resume=True`` loads the journal, skips every journaled key and only
simulates the remainder.  A truncated final line — the signature of a
mid-write kill — is detected and ignored on load.

Only the coordinator process ever writes the journal (warm workers
ship rows back over their result pipes; they never touch the file), so
rows land in *completion* order — which under cost-aware scheduling is
not grid order.  ``load()`` returns a key-addressed dict precisely so
resume is order-independent.  The file handle is held open across
appends (one ``open`` per sweep instead of one per point) with an
explicit flush per row, so a ``SIGKILL`` still loses at most the line
being written.

Corruption *anywhere* in the file — not just the truncated tail — is
survivable: a mid-file line that fails to parse (disk corruption, a
concurrent writer, a hand edit) is skipped with a warning, counted in
:attr:`SweepJournal.skipped_lines` (surfaced as
``journal_skipped_lines`` in run telemetry), and the affected keys
simply re-run on resume because they never enter the loaded dict.
"""

from __future__ import annotations

import json
import pathlib
import typing
import warnings

from .hashing import KEY_FORMAT, canonical_json

__all__ = ["SweepJournal"]


class SweepJournal:
    """Append-only JSON-lines record of completed sweep points."""

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self._fh: typing.IO[str] | None = None
        #: corrupt/unparseable lines the most recent :meth:`load` skipped
        self.skipped_lines = 0

    def exists(self) -> bool:
        return self.path.is_file()

    def load(self) -> dict[str, dict[str, typing.Any]]:
        """Read back ``{key: row}`` for every intact journaled point.

        Tolerates a missing file, a foreign/old manifest (returns
        nothing, so every point re-runs) and corrupt or truncated
        lines *anywhere* in the file — each skipped line is counted in
        :attr:`skipped_lines` and a single warning summarizes them, so
        silent data loss is impossible and the affected keys re-run.
        """
        self.skipped_lines = 0
        if not self.exists():
            return {}
        done: dict[str, dict[str, typing.Any]] = {}
        with self.path.open() as fh:
            first = fh.readline()
            if not first:
                return done
            try:
                header = json.loads(first)
            except ValueError:
                return done
            if not header.get("_manifest") or header.get("format") != KEY_FORMAT:
                return done
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    # mid-file corruption or a truncated tail from a
                    # killed run: skip the line, re-run its point
                    self.skipped_lines += 1
                    continue
                if not isinstance(entry, dict):
                    self.skipped_lines += 1
                    continue
                key, row = entry.get("key"), entry.get("row")
                if isinstance(key, str) and isinstance(row, dict):
                    done[key] = row
                else:
                    self.skipped_lines += 1
        if self.skipped_lines:
            warnings.warn(
                f"journal {self.path}: skipped {self.skipped_lines} "
                "corrupt line(s); the affected points will re-run",
                RuntimeWarning,
                stacklevel=2,
            )
        return done

    def start(self, resume: bool = False) -> None:
        """Begin a run: keep the journal when resuming, else rewrite it."""
        self.close()
        if resume and self.exists():
            return
        from .. import __version__

        self.path.parent.mkdir(parents=True, exist_ok=True)
        manifest = {"_manifest": True, "format": KEY_FORMAT, "repro": __version__}
        self.path.write_text(json.dumps(manifest) + "\n")

    def append(self, key: str, row: dict[str, typing.Any]) -> None:
        """Record one completed point (flushed immediately)."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a")
        self._fh.write(canonical_json({"key": key, "row": row}) + "\n")
        self._fh.flush()

    def close(self) -> None:
        """Release the held handle (the executor calls this after a run)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
