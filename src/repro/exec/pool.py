"""Persistent warm workers: spawn once, stream compact tasks, restart one.

The retired pool path rebuilt a ``ProcessPoolExecutor`` whenever any
worker crashed or wedged — every in-flight point was thrown away and
every worker re-imported the simulator stack.  This module replaces it
with a pool of long-lived worker processes:

* **warm-up once** — each worker imports the scenario stack and
  receives the sweep's *base* config dict a single time, at spawn;
  per-task messages carry only the compact delta of the point's
  ``ScenarioConfig.to_dict()`` against that base
  (:func:`config_delta`), and result rows stream back over the
  worker's own result pipe instead of per-future pickling;
* **no shared locks** — every worker owns two dedicated
  one-writer/one-reader pipes (tasks in, results out).  Nothing is
  shared between siblings, so SIGKILLing a wedged worker can never
  corrupt another worker's channel (the classic hazard that forces
  ``concurrent.futures`` to rebuild the whole pool);
* **heartbeat/wedge detection** — worker death is detected immediately
  (:func:`multiprocessing.connection.wait` on process sentinels) and a
  per-task ``start`` heartbeat confirms pickup; a point that outlives
  its deadline marks the worker wedged.  Either way the coordinator
  restarts *that worker alone* (:meth:`WorkerPool.restart`), steals
  back its in-flight task, and the siblings keep draining theirs.

Start method: ``fork`` where available (worker arguments — including
test-injected point functions — are inherited, not pickled); the
platform default elsewhere, with the usual pickling constraints.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
import typing

__all__ = ["READY_TIMEOUT", "WorkerHandle", "WorkerPool", "config_delta"]

#: seconds a freshly spawned worker gets to complete its ready handshake
READY_TIMEOUT = 60.0


def config_delta(
    base: dict[str, typing.Any], full: dict[str, typing.Any]
) -> dict[str, typing.Any]:
    """The compact task payload: fields of ``full`` differing from ``base``.

    ``ScenarioConfig.to_dict()`` is total (every field always present),
    so a merge of ``base`` and the delta reconstructs ``full`` exactly;
    keys never need to be deleted.
    """
    return {k: v for k, v in full.items() if k not in base or base[k] != v}


def _worker_main(worker_id, tasks, results, base, point_fn) -> None:
    """Long-lived worker loop: warm up once, then drain tasks until EOF."""
    # one-time environment warm-up: the scenario stack is imported and
    # the base config validated before the ready handshake, so the
    # coordinator's warm-up phase covers all per-process initialization
    from ..network.bss import ScenarioConfig

    if point_fn is None:
        from .executor import default_point_fn as point_fn  # noqa: PLW0127

    ScenarioConfig.from_dict(base)
    results.send(("ready", worker_id, None, None, 0.0))
    while True:
        try:
            task = tasks.recv()
        except (EOFError, OSError):
            break
        if task is None:
            break
        task_id, delta = task
        # pickup heartbeat: distinguishes "still queued" from "running"
        results.send(("start", worker_id, task_id, None, 0.0))
        start = time.perf_counter()
        try:
            config = ScenarioConfig.from_dict({**base, **delta})
            row = point_fn(config)
        except BaseException as exc:  # noqa: BLE001 — shipped back, retried
            results.send(
                ("error", worker_id, task_id, repr(exc),
                 time.perf_counter() - start)
            )
        else:
            results.send(
                ("done", worker_id, task_id, row,
                 time.perf_counter() - start)
            )
    results.close()


class WorkerHandle:
    """One warm worker slot: the process plus its two dedicated pipes."""

    def __init__(self, worker_id: int, ctx, base, point_fn) -> None:
        self.worker_id = worker_id
        task_recv, self.task_send = multiprocessing.Pipe(duplex=False)
        self.result_recv, result_send = multiprocessing.Pipe(duplex=False)
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, task_recv, result_send, base, point_fn),
            daemon=True,
        )
        self.process.start()
        # the worker owns these ends now; closing the parent's copies
        # restores EOF semantics on both pipes
        task_recv.close()
        result_send.close()
        #: ready handshake received (environment warm-up finished)
        self.ready = False
        #: task_id this worker is executing, or ``None`` when idle
        self.current: int | None = None
        #: coordinator clock when the current task was dispatched /
        #: confirmed started — the wedge deadline runs from here
        self.started: float | None = None
        self.tasks_done = 0

    def alive(self) -> bool:
        return self.process.is_alive()

    def terminate(self) -> None:
        """Hard-stop this worker and release its pipes (idempotent)."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)
        self.task_send.close()
        self.result_recv.close()


class WorkerPool:
    """A fixed set of :class:`WorkerHandle` slots with targeted restart."""

    def __init__(
        self,
        workers: int,
        base: dict[str, typing.Any],
        point_fn: typing.Callable | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        methods = multiprocessing.get_all_start_methods()
        self.ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self.base = base
        self.point_fn = point_fn
        #: single-worker restarts performed (crash, wedge, failed spawn)
        self.restarts = 0
        self.workers = [
            WorkerHandle(i, self.ctx, base, point_fn) for i in range(workers)
        ]

    # -- liveness ----------------------------------------------------------
    def wait_ready(self, timeout: float = READY_TIMEOUT) -> float:
        """Block until every worker handshakes; returns the warm-up seconds.

        A worker that dies during warm-up is restarted (bounded by the
        deadline, after which the pool raises).
        """
        started = time.perf_counter()
        deadline = started + timeout
        while not all(w.ready for w in self.workers):
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                raise RuntimeError(
                    f"worker pool failed to warm up within {timeout}s"
                )
            _msgs, dead = self.poll(timeout=min(0.25, remaining))
            for worker in dead:
                self.restart(worker)
        return time.perf_counter() - started

    def idle(self) -> list[WorkerHandle]:
        return [w for w in self.workers if w.ready and w.current is None]

    def ready_count(self) -> int:
        return sum(1 for w in self.workers if w.ready)

    def active_count(self) -> int:
        return sum(1 for w in self.workers if w.current is not None)

    # -- dispatch / collect ------------------------------------------------
    def dispatch(self, worker: WorkerHandle, task_id: int, delta) -> None:
        worker.task_send.send((task_id, delta))
        worker.current = task_id
        worker.started = time.perf_counter()

    def poll(
        self, timeout: float | None
    ) -> tuple[list[tuple], list[WorkerHandle]]:
        """Wait for worker traffic; returns ``(task messages, dead workers)``.

        Every readable result pipe is fully drained before liveness is
        judged, so a worker that crashed right after shipping its row
        still gets the row counted (its death then restarts the slot
        without losing or re-running the point).  ``ready``/``start``
        handshakes are absorbed here; only ``done``/``error`` messages
        are returned.
        """
        waitables: list = [w.result_recv for w in self.workers]
        waitables += [w.process.sentinel for w in self.workers]
        try:
            multiprocessing.connection.wait(waitables, timeout)
        except OSError:  # a sentinel raced a concurrent exit
            pass
        messages: list[tuple] = []
        for worker in self.workers:
            try:
                while worker.result_recv.poll():
                    msg = worker.result_recv.recv()
                    kind = msg[0]
                    if kind == "ready":
                        worker.ready = True
                    elif kind == "start":
                        # restart the wedge clock at confirmed pickup
                        worker.started = time.perf_counter()
                    else:  # "done" | "error"
                        if msg[2] == worker.current:
                            worker.current = None
                            worker.started = None
                            worker.tasks_done += 1
                        messages.append(msg)
            except (EOFError, OSError):
                pass  # the pipe died with its worker; sentinel handles it
        dead = [w for w in self.workers if not w.process.is_alive()]
        return messages, dead

    # -- recovery / teardown -----------------------------------------------
    def restart(self, worker: WorkerHandle) -> WorkerHandle:
        """Replace one worker slot; siblings are untouched."""
        worker.terminate()
        replacement = WorkerHandle(
            worker.worker_id, self.ctx, self.base, self.point_fn
        )
        self.workers[self.workers.index(worker)] = replacement
        self.restarts += 1
        return replacement

    def retire(self, worker: WorkerHandle) -> None:
        """Permanently remove one worker slot (restart budget exhausted).

        The slot is terminated and dropped from the pool; the sweep
        carries on with reduced capacity instead of looping through a
        restart storm.  An empty pool is the caller's signal to fail
        the remaining points permanently.
        """
        worker.terminate()
        self.workers.remove(worker)

    def shutdown(self) -> None:
        """Graceful EOF to every worker, then hard-stop stragglers."""
        for worker in self.workers:
            try:
                worker.task_send.send(None)
            except (OSError, ValueError):
                pass
        for worker in self.workers:
            worker.process.join(timeout=2.0)
            worker.terminate()
