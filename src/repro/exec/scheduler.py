"""Cost-aware point scheduling: longest-expected-first, refined online.

The warm-worker pool (:mod:`repro.exec.pool`) dispatches one point per
idle worker, so the only scheduling decision is *which pending point
starts next*.  Dispatching longest-expected-first (LPT order) keeps a
long point from being picked up last and straggling the whole sweep's
tail; FIFO order is retained for debugging (``--schedule fifo``).

Everything here is a pure-python model — no processes — so the same
:class:`PointScheduler` object both drives the live pool and is
property-tested in isolation (``tests/exec/test_scheduler.py``) via
:func:`simulate_schedule`, a deterministic list-scheduling simulator.

Cost estimates start from a prior (load x duration: a point's wall
time scales with its simulated horizon and its offered load, plus a
per-scheduled-handoff term for ESS cell shards) and are refined online
from completed-point wall times: a per-scheme EWMA of observed-wall /
prior ratios, so cross-scheme cost differences are learned mid-sweep
and reorder the still-pending tail.

Scheduler invariants (the property tests pin both):

* **greedy dispatch** — no worker sits idle while the queue is
  non-empty (list scheduling: whichever worker frees first takes the
  scheduler's next point immediately);
* **LPT tail bound** — for longest-first order the simulated makespan
  never exceeds Graham's ``(4/3 - 1/(3m)) x OPT`` guarantee, and any
  greedy order satisfies ``makespan <= total/m + max_cost``.
"""

from __future__ import annotations

import collections
import heapq
import typing

__all__ = [
    "SCHEDULE_POLICIES",
    "CostModel",
    "PointScheduler",
    "simulate_schedule",
]

#: accepted ``ExecutorConfig.schedule`` values
SCHEDULE_POLICIES = ("fifo", "cost")


class CostModel:
    """Per-point wall-cost estimates: a prior plus online refinement."""

    #: EWMA smoothing factor for observed/prior ratios
    alpha = 0.4

    def __init__(self) -> None:
        #: per-scheme EWMA of observed-wall / prior ratios
        self._ratio: dict[str, float] = {}
        self.observations = 0

    def prior(self, config: typing.Any) -> float:
        """Static load x duration heuristic (arbitrary units)."""
        sim_time = float(getattr(config, "sim_time", 1.0) or 1.0)
        load = float(getattr(config, "load", 1.0) or 1.0)
        cost = sim_time * (0.25 + load)
        ess = getattr(config, "ess", None)
        if ess is not None:
            # every scheduled inbound handoff adds an admitted call's
            # worth of frame traffic to the cell shard
            cost += 0.05 * sim_time * len(ess.handoff_arrivals)
        return cost

    def estimate(self, config: typing.Any) -> float:
        """The prior, scaled by the scheme's observed cost ratio so far."""
        scheme = str(getattr(config, "scheme", ""))
        return self.prior(config) * self._ratio.get(scheme, 1.0)

    def observe(self, config: typing.Any, wall: float) -> None:
        """Fold one completed point's measured wall time into the model."""
        if wall <= 0.0:
            return
        prior = self.prior(config)
        if prior <= 0.0:
            return
        scheme = str(getattr(config, "scheme", ""))
        ratio = wall / prior
        old = self._ratio.get(scheme)
        self._ratio[scheme] = (
            ratio if old is None else old + self.alpha * (ratio - old)
        )
        self.observations += 1


class PointScheduler:
    """The pending-point queue: FIFO or refined longest-expected-first.

    ``pop()`` re-evaluates estimates at dispatch time, so cost
    refinements observed *after* a point was added still reorder it.
    Ties (and the whole queue under ``fifo``) resolve in arrival
    order, keeping dispatch deterministic for a fixed completion
    history.
    """

    def __init__(
        self, policy: str = "cost", model: CostModel | None = None
    ) -> None:
        if policy not in SCHEDULE_POLICIES:
            raise ValueError(
                f"schedule must be one of {SCHEDULE_POLICIES}, got {policy!r}"
            )
        self.policy = policy
        self.model = model or CostModel()
        self._pending: "collections.OrderedDict[int, typing.Any]" = (
            collections.OrderedDict()
        )
        self._arrival: dict[int, int] = {}
        self._seq = 0

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    def add(self, index: int, config: typing.Any) -> None:
        """Queue one point (also how a retry re-enters the queue)."""
        if index in self._pending:
            raise ValueError(f"point #{index} is already pending")
        self._pending[index] = config
        self._arrival[index] = self._seq
        self._seq += 1

    def pop(self) -> tuple[int, typing.Any]:
        """Next point to dispatch: ``(index, config)``."""
        if not self._pending:
            raise IndexError("pop from an empty scheduler")
        if self.policy == "fifo":
            index, config = next(iter(self._pending.items()))
        else:
            index = max(
                self._pending,
                key=lambda i: (
                    self.model.estimate(self._pending[i]),
                    -self._arrival[i],
                ),
            )
            config = self._pending[index]
        del self._pending[index]
        del self._arrival[index]
        return index, config

    def observe(self, config: typing.Any, wall: float) -> None:
        """Refine the cost model from one completed point."""
        self.model.observe(config, wall)


def simulate_schedule(
    costs: typing.Sequence[float],
    workers: int,
    policy: str = "cost",
) -> dict[str, typing.Any]:
    """List-schedule ``costs`` onto ``workers`` identical machines.

    A deterministic pure model of the warm pool's dispatch loop:
    whenever a worker is free and points are pending, the scheduler's
    next point starts on it immediately.  ``policy="cost"`` dispatches
    longest-first (LPT), ``"fifo"`` in the given order.

    Returns ``makespan``, per-point ``assignments`` (``(worker, start,
    end)`` in dispatch order), per-worker ``finish`` times, and
    ``idle_before_empty`` — total worker-seconds spent idle while the
    queue was still non-empty, which greedy dispatch keeps at exactly
    zero (the property tests assert this).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    order = list(range(len(costs)))
    if policy == "cost":
        order.sort(key=lambda i: (-costs[i], i))
    elif policy != "fifo":
        raise ValueError(
            f"policy must be one of {SCHEDULE_POLICIES}, got {policy!r}"
        )
    free: list[tuple[float, int]] = [(0.0, w) for w in range(workers)]
    heapq.heapify(free)
    assignments: list[tuple[int, int, float, float]] = []
    for i in order:
        at, worker = heapq.heappop(free)
        assignments.append((i, worker, at, at + costs[i]))
        heapq.heappush(free, (at + costs[i], worker))
    finish = [0.0] * workers
    for _i, worker, _start, end in assignments:
        finish[worker] = max(finish[worker], end)
    # idle-while-pending, measured from the resulting timelines (not
    # from the dispatch loop, which would make the invariant vacuous):
    # the queue is non-empty until the last point is dispatched, so any
    # worker-second before `t_empty` not covered by an assignment is a
    # greedy-dispatch violation
    t_empty = max((start for _i, _w, start, _end in assignments), default=0.0)
    idle_before_empty = 0.0
    for worker in range(workers):
        spans = sorted(
            (start, end)
            for _i, w, start, end in assignments
            if w == worker
        )
        cursor = 0.0
        for start, end in spans:
            idle_before_empty += max(0.0, min(start, t_empty) - cursor)
            cursor = max(cursor, end)
        idle_before_empty += max(0.0, t_empty - cursor)
    return {
        "makespan": max(finish, default=0.0),
        "assignments": assignments,
        "finish": finish,
        "idle_before_empty": idle_before_empty,
    }
