"""Content-addressed result cache: config hash -> JSON row on disk.

Re-running a figure only simulates points whose config changed; every
other point is served from ``.repro-cache/results/<key>.json``.  Each
entry stores the originating config dict alongside the row, so a cache
directory is self-describing and auditable with nothing but ``jq`` —
and scannable into query surfaces by :mod:`repro.serve`.

Writes go through a temp file + ``os.replace`` so a crash mid-write
can never leave a truncated entry behind; corrupt or unreadable
entries are treated as misses and overwritten on the next run.  A
crash *between* the temp-file write and the rename leaves a
``<key>.json.tmp`` orphan: scans skip those and :meth:`clear` sweeps
them up alongside the real entries.

Hit/miss accounting goes through a :class:`~repro.obs.registry.
MetricsRegistry` (``result_cache_hits`` / ``result_cache_misses``
counters), so sweep telemetry and the serve layer share one metrics
path; the ``hits``/``misses`` int attributes the executor and tests
read are :func:`~repro.obs.registry.counter_property` facades over the
same counters.
"""

from __future__ import annotations

import json
import os
import pathlib
import typing

from ..obs.registry import MetricsRegistry, counter_property
from .hashing import KEY_FORMAT, canonical_json, jsonable

if typing.TYPE_CHECKING:  # pragma: no cover
    from ..network.bss import ScenarioConfig

__all__ = ["DEFAULT_CACHE_DIR", "CacheEntry", "ResultCache"]

#: conventional cache location, relative to the invoking directory
DEFAULT_CACHE_DIR = ".repro-cache"

#: suffix of the atomic-write staging files (never valid entries)
_TMP_SUFFIX = ".json.tmp"


class CacheEntry(typing.NamedTuple):
    """One scanned cache entry: key, originating config, result row."""

    key: str
    config: dict[str, typing.Any] | None
    row: dict[str, typing.Any]


class ResultCache:
    """Directory of ``<key>.json`` result rows keyed by config hash."""

    hits = counter_property("hits", "rows served from disk")
    misses = counter_property("misses", "keys with no usable entry")

    def __init__(
        self,
        root: str | pathlib.Path = DEFAULT_CACHE_DIR,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.root = pathlib.Path(root)
        self.results_dir = self.root / "results"
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            "hits": self.registry.counter("result_cache_hits"),
            "misses": self.registry.counter("result_cache_misses"),
        }

    def _path(self, key: str) -> pathlib.Path:
        return self.results_dir / f"{key}.json"

    def _entry_paths(self) -> typing.Iterator[pathlib.Path]:
        """Candidate entry files, skipping atomic-write orphans."""
        if not self.results_dir.is_dir():
            return iter(())
        return (
            path
            for path in sorted(self.results_dir.glob("*.json"))
            if not path.name.endswith(_TMP_SUFFIX)
        )

    def get(self, key: str) -> dict[str, typing.Any] | None:
        """Return the cached row for ``key``, or ``None`` on a miss."""
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("format") != KEY_FORMAT
            or "row" not in entry
        ):
            self.misses += 1
            return None
        self.hits += 1
        return entry["row"]

    def put(
        self,
        key: str,
        row: dict[str, typing.Any],
        config: "ScenarioConfig | None" = None,
    ) -> pathlib.Path:
        """Store ``row`` under ``key`` atomically; returns the entry path."""
        self.results_dir.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": KEY_FORMAT,
            "key": key,
            "config": jsonable(config.to_dict()) if config is not None else None,
            "row": jsonable(row),
        }
        path = self._path(key)
        tmp = path.with_suffix(_TMP_SUFFIX)
        tmp.write_text(canonical_json(entry))
        os.replace(tmp, path)
        return path

    def entries(self) -> typing.Iterator[CacheEntry]:
        """Scan every readable entry (sorted by key, for determinism).

        Corrupt, foreign-format and orphaned ``.json.tmp`` files are
        skipped silently — the same tolerance :meth:`get` applies,
        without charging misses.  This is the read path the serve
        layer's surface index is built from.
        """
        for path in self._entry_paths():
            try:
                entry = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if (
                not isinstance(entry, dict)
                or entry.get("format") != KEY_FORMAT
                or not isinstance(entry.get("row"), dict)
                or not isinstance(entry.get("key"), str)
            ):
                continue
            config = entry.get("config")
            yield CacheEntry(
                key=entry["key"],
                config=config if isinstance(config, dict) else None,
                row=entry["row"],
            )

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed.

        Also sweeps up ``.json.tmp`` orphans a crash between the
        temp-file write and ``os.replace`` left behind (they are not
        counted — they were never entries).
        """
        removed = 0
        if self.results_dir.is_dir():
            for path in self.results_dir.glob(f"*{_TMP_SUFFIX}"):
                path.unlink(missing_ok=True)
            for path in self.results_dir.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed
