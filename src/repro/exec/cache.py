"""Content-addressed result cache: config hash -> JSON row on disk.

Re-running a figure only simulates points whose config changed; every
other point is served from ``.repro-cache/results/<key>.json``.  Each
entry stores the originating config dict alongside the row, so a cache
directory is self-describing and auditable with nothing but ``jq``.

Writes go through a temp file + ``os.replace`` so a crash mid-write
can never leave a truncated entry behind; corrupt or unreadable
entries are treated as misses and overwritten on the next run.
"""

from __future__ import annotations

import json
import os
import pathlib
import typing

from .hashing import KEY_FORMAT, canonical_json, jsonable

if typing.TYPE_CHECKING:  # pragma: no cover
    from ..network.bss import ScenarioConfig

__all__ = ["DEFAULT_CACHE_DIR", "ResultCache"]

#: conventional cache location, relative to the invoking directory
DEFAULT_CACHE_DIR = ".repro-cache"


class ResultCache:
    """Directory of ``<key>.json`` result rows keyed by config hash."""

    def __init__(self, root: str | pathlib.Path = DEFAULT_CACHE_DIR) -> None:
        self.root = pathlib.Path(root)
        self.results_dir = self.root / "results"
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.results_dir / f"{key}.json"

    def get(self, key: str) -> dict[str, typing.Any] | None:
        """Return the cached row for ``key``, or ``None`` on a miss."""
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("format") != KEY_FORMAT
            or "row" not in entry
        ):
            self.misses += 1
            return None
        self.hits += 1
        return entry["row"]

    def put(
        self,
        key: str,
        row: dict[str, typing.Any],
        config: "ScenarioConfig | None" = None,
    ) -> pathlib.Path:
        """Store ``row`` under ``key`` atomically; returns the entry path."""
        self.results_dir.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": KEY_FORMAT,
            "key": key,
            "config": jsonable(config.to_dict()) if config is not None else None,
            "row": jsonable(row),
        }
        path = self._path(key)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(canonical_json(entry))
        os.replace(tmp, path)
        return path

    def __len__(self) -> int:
        if not self.results_dir.is_dir():
            return 0
        return sum(1 for _ in self.results_dir.glob("*.json"))

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed."""
        removed = 0
        if self.results_dir.is_dir():
            for path in self.results_dir.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed
