"""Run telemetry: per-point records and the end-of-sweep summary.

Every point the executor resolves — simulated, served from cache,
replayed from a resume journal, or failed — produces one
:class:`PointRecord`, streamed to the progress callback as it happens
and aggregated into the final summary dict (wall time, simulator
events processed, cache hit/miss counts, retry/timeout counts, worker
restarts, and worker utilization).

Utilization is **phase-aware**: a warm-worker run reports separate
pool *warm-up* (spawn + environment-init handshake), *steady-state*
(points still pending) and *queue-drain* (tail in flight, nothing
pending) phases, and ``worker_utilization`` divides busy
worker-seconds by the **usable capacity** only — ``workers x
steady_s`` plus the drain window weighted by the workers still busy.
Counting the whole run as capacity (the retired arithmetic, kept as
``worker_utilization_raw``) blends pool-spawn and tail dead time into
steady state and under-reports how busy the workers actually were.
"""

from __future__ import annotations

import dataclasses
import time
import typing

__all__ = ["PointRecord", "RunTelemetry", "phase_utilization"]

#: terminal states a point can reach
STATUSES = ("executed", "cached", "resumed", "failed")


def phase_utilization(
    busy_s: float, workers: int, steady_s: float, drain_capacity_s: float
) -> float:
    """Busy worker-seconds over usable capacity (the summary arithmetic).

    ``drain_capacity_s`` is the integral of still-busy workers over the
    drain window; warm-up contributes no capacity at all (no task can
    run before the environment handshake).  Pinned by
    ``tests/exec/test_telemetry_phases.py``.
    """
    capacity = max(1, workers) * steady_s + drain_capacity_s
    return busy_s / capacity if capacity > 0 else 0.0


@dataclasses.dataclass(frozen=True)
class PointRecord:
    """One resolved sweep point, as streamed to the progress callback."""

    index: int
    scheme: str
    load: float
    seed: int
    status: str  # one of STATUSES
    wall_time: float = 0.0
    attempts: int = 0
    sim_events: int = 0
    error: str | None = None


class RunTelemetry:
    """Aggregates :class:`PointRecord` streams into a summary dict."""

    def __init__(self, workers: int = 1) -> None:
        self.workers = max(1, workers)
        self.records: list[PointRecord] = []
        self.cache_hits = 0
        self.cache_misses = 0
        self.retries = 0
        self.timeouts = 0
        #: targeted single-worker respawns (crash or wedge); the warm
        #: pool never rebuilds wholesale, so ``pool_rebuilds`` stays 0
        #: and is kept only for summary-shape compatibility
        self.worker_restarts = 0
        self.pool_rebuilds = 0
        #: worker slots retired after exhausting their restart budget
        #: (a poison point can cost restarts, never a restart storm)
        self.restart_budget_exhausted = 0
        #: corrupt journal lines skipped while loading the resume state
        self.journal_skipped_lines = 0
        #: worker-seconds actually spent executing attempts (successful
        #: or not); the executor accumulates this at completion sites
        self.busy_worker_s = 0.0
        self._phases: dict[str, float] | None = None
        self._started = time.perf_counter()
        self._finished: float | None = None

    def record(self, record: PointRecord) -> None:
        self.records.append(record)

    def set_phases(
        self,
        warmup_s: float,
        steady_s: float,
        drain_s: float,
        capacity_s: float,
    ) -> None:
        """Attach the pool run's phase split (see the module docstring).

        ``capacity_s`` is the usable-capacity integral: ``workers x
        steady_s`` plus busy-workers x drain time, excluding warm-up
        and restart dead time.
        """
        self._phases = {
            "warmup_s": warmup_s,
            "steady_s": steady_s,
            "drain_s": drain_s,
            "capacity_s": capacity_s,
        }

    def finish(self) -> None:
        self._finished = time.perf_counter()

    @property
    def elapsed(self) -> float:
        end = self._finished if self._finished is not None else time.perf_counter()
        return end - self._started

    def _count(self, status: str) -> int:
        return sum(1 for r in self.records if r.status == status)

    def summary(self) -> dict[str, typing.Any]:
        """The final run summary the CLI and benchmarks report."""
        executed = [r for r in self.records if r.status == "executed"]
        point_busy = sum(r.wall_time for r in executed)
        # busy_worker_s additionally counts failed/timed-out attempts;
        # fall back to the executed-point sum for hand-built telemetry
        busy = self.busy_worker_s if self.busy_worker_s > 0 else point_busy
        elapsed = self.elapsed
        raw_util = busy / (self.workers * elapsed) if elapsed > 0 else 0.0
        if self._phases is not None:
            capacity = self._phases["capacity_s"]
            utilization = busy / capacity if capacity > 0 else 0.0
        else:
            # serial runs and hand-built telemetry: no phase split
            utilization = raw_util
        return {
            "total_points": len(self.records),
            "executed": len(executed),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "resumed": self._count("resumed"),
            "failed": self._count("failed"),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_restarts": self.worker_restarts,
            "restart_budget_exhausted": self.restart_budget_exhausted,
            "journal_skipped_lines": self.journal_skipped_lines,
            "pool_rebuilds": self.pool_rebuilds,
            "workers": self.workers,
            "wall_time": elapsed,
            "point_wall_total": point_busy,
            "point_wall_mean": point_busy / len(executed) if executed else 0.0,
            "point_wall_max": max((r.wall_time for r in executed), default=0.0),
            "sim_events": sum(r.sim_events for r in executed),
            # aggregate simulation throughput over busy worker time
            "events_per_sec": (
                sum(r.sim_events for r in executed) / point_busy
                if point_busy > 0 else 0.0
            ),
            "worker_utilization": utilization,
            "worker_utilization_raw": raw_util,
            "phases": dict(self._phases) if self._phases is not None else None,
        }

    def bench_entry(self, wall_s: float | None = None) -> dict[str, typing.Any]:
        """Compact record for a bench report's ``parallel_sweep`` section.

        ``wall_s`` overrides the telemetry's own elapsed clock when the
        caller timed the run externally (the perf gate does, so both
        modes are measured with the same stopwatch).
        """
        summary = self.summary()
        wall = summary["wall_time"] if wall_s is None else wall_s
        events = summary["sim_events"]
        entry = {
            "workers": self.workers,
            "wall_s": round(wall, 4),
            "sim_events": events,
            "events_per_sec": round(events / wall) if wall > 0 else 0,
            "worker_utilization": round(summary["worker_utilization"], 4),
            "worker_utilization_raw": round(
                summary["worker_utilization_raw"], 4
            ),
            "worker_restarts": summary["worker_restarts"],
        }
        if summary["phases"] is not None:
            entry["phases"] = {
                k: round(v, 4) for k, v in summary["phases"].items()
            }
        return entry
