"""Run telemetry: per-point records and the end-of-sweep summary.

Every point the executor resolves — simulated, served from cache,
replayed from a resume journal, or failed — produces one
:class:`PointRecord`, streamed to the progress callback as it happens
and aggregated into the final summary dict (wall time, simulator
events processed, cache hit/miss counts, retry/timeout counts, and
worker utilization = busy worker-seconds / (workers x elapsed)).
"""

from __future__ import annotations

import dataclasses
import time
import typing

__all__ = ["PointRecord", "RunTelemetry"]

#: terminal states a point can reach
STATUSES = ("executed", "cached", "resumed", "failed")


@dataclasses.dataclass(frozen=True)
class PointRecord:
    """One resolved sweep point, as streamed to the progress callback."""

    index: int
    scheme: str
    load: float
    seed: int
    status: str  # one of STATUSES
    wall_time: float = 0.0
    attempts: int = 0
    sim_events: int = 0
    error: str | None = None


class RunTelemetry:
    """Aggregates :class:`PointRecord` streams into a summary dict."""

    def __init__(self, workers: int = 1) -> None:
        self.workers = max(1, workers)
        self.records: list[PointRecord] = []
        self.cache_hits = 0
        self.cache_misses = 0
        self.retries = 0
        self.timeouts = 0
        self.pool_rebuilds = 0
        self._started = time.perf_counter()
        self._finished: float | None = None

    def record(self, record: PointRecord) -> None:
        self.records.append(record)

    def finish(self) -> None:
        self._finished = time.perf_counter()

    @property
    def elapsed(self) -> float:
        end = self._finished if self._finished is not None else time.perf_counter()
        return end - self._started

    def _count(self, status: str) -> int:
        return sum(1 for r in self.records if r.status == status)

    def summary(self) -> dict[str, typing.Any]:
        """The final run summary the CLI and benchmarks report."""
        executed = [r for r in self.records if r.status == "executed"]
        busy = sum(r.wall_time for r in executed)
        elapsed = self.elapsed
        return {
            "total_points": len(self.records),
            "executed": len(executed),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "resumed": self._count("resumed"),
            "failed": self._count("failed"),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "workers": self.workers,
            "wall_time": elapsed,
            "point_wall_total": busy,
            "point_wall_mean": busy / len(executed) if executed else 0.0,
            "point_wall_max": max((r.wall_time for r in executed), default=0.0),
            "sim_events": sum(r.sim_events for r in executed),
            # aggregate simulation throughput over busy worker time
            "events_per_sec": (
                sum(r.sim_events for r in executed) / busy if busy > 0 else 0.0
            ),
            "worker_utilization": (
                busy / (self.workers * elapsed) if elapsed > 0 else 0.0
            ),
        }

    def bench_entry(self, wall_s: float | None = None) -> dict[str, typing.Any]:
        """Compact record for a bench report's ``parallel_sweep`` section.

        ``wall_s`` overrides the telemetry's own elapsed clock when the
        caller timed the run externally (the perf gate does, so both
        modes are measured with the same stopwatch).
        """
        summary = self.summary()
        wall = summary["wall_time"] if wall_s is None else wall_s
        events = summary["sim_events"]
        return {
            "workers": self.workers,
            "wall_s": round(wall, 4),
            "sim_events": events,
            "events_per_sec": round(events / wall) if wall > 0 else 0,
            "worker_utilization": round(summary["worker_utilization"], 4),
        }
