"""The sweep executor: fan simulation points out over a process pool.

:class:`SweepExecutor` owns how a grid of
:class:`~repro.network.bss.ScenarioConfig` points gets executed:

* ``workers=1`` runs every point serially in-process — fully
  deterministic, no subprocess machinery, the mode tests default to;
* ``workers>1`` dispatches points to a
  :class:`concurrent.futures.ProcessPoolExecutor` in bounded chunks
  (at most ``workers x chunk_size`` outstanding), with per-point
  timeout and bounded retry — a wedged or crashed worker costs one
  pool rebuild, not the grid;
* an optional content-addressed :class:`~repro.exec.cache.ResultCache`
  short-circuits points whose config hash already has a row on disk;
* an optional :class:`~repro.exec.journal.SweepJournal` checkpoints
  every completed row, so an interrupted sweep resumes where it died.

Result rows come back in input order and are JSON-normalized
(:func:`~repro.exec.hashing.normalize_row`), so a serial run, a
parallel run, a cached replay and a resumed run of the same grid all
return byte-identical rows.

Per-point timeouts are only enforceable in pool mode (a serial run
cannot preempt itself); serial mode still honours ``retries``.
"""

from __future__ import annotations

import collections
import concurrent.futures
import dataclasses
import multiprocessing
import time
import typing

from ..network.bss import BssScenario, ScenarioConfig
from .cache import DEFAULT_CACHE_DIR, ResultCache
from .hashing import config_key, normalize_row
from .journal import SweepJournal
from .telemetry import PointRecord, RunTelemetry

__all__ = [
    "ExecutorConfig",
    "SweepExecutor",
    "SweepExecutionError",
    "PointFailure",
    "default_point_fn",
]

#: how often the pool loop polls for completions when a timeout is set
_TIMEOUT_TICK = 0.05


def default_point_fn(config: ScenarioConfig) -> dict[str, typing.Any]:
    """Build and run one scenario — the executor's unit of work."""
    return BssScenario(config).run()


def _execute_point(
    point_fn: typing.Callable[[ScenarioConfig], dict] | None,
    config: ScenarioConfig,
) -> tuple[dict[str, typing.Any], float]:
    """Worker-side wrapper: run one point, timing it."""
    start = time.perf_counter()
    row = (point_fn or default_point_fn)(config)
    return row, time.perf_counter() - start


@dataclasses.dataclass(frozen=True)
class PointFailure:
    """One point that exhausted its attempts."""

    index: int
    config: ScenarioConfig
    error: str


class SweepExecutionError(RuntimeError):
    """Raised when points fail after retries and ``on_failure='raise'``."""

    def __init__(self, failures: typing.Sequence[PointFailure]) -> None:
        self.failures = list(failures)
        detail = "; ".join(
            f"#{f.index} {f.config.scheme} load={f.config.load} "
            f"seed={f.config.seed}: {f.error}"
            for f in self.failures[:3]
        )
        more = "" if len(self.failures) <= 3 else f" (+{len(self.failures) - 3} more)"
        super().__init__(
            f"{len(self.failures)} sweep point(s) failed after retries: "
            f"{detail}{more}"
        )


@dataclasses.dataclass(frozen=True)
class ExecutorConfig:
    """Knobs for one :class:`SweepExecutor`."""

    #: process-pool size; ``1`` means serial in-process execution
    workers: int = 1
    #: outstanding futures per worker (bounds dispatch memory)
    chunk_size: int = 4
    #: per-point wall-clock budget in seconds (pool mode only)
    timeout: float | None = None
    #: additional attempts after a failed/timed-out/crashed first try
    retries: int = 1
    #: cache directory, or ``None`` to disable the result cache
    cache_dir: str | None = None
    #: journal path, or ``None`` to disable checkpointing
    journal: str | None = None
    #: skip points already present in the journal
    resume: bool = False
    #: ``"raise"`` a :class:`SweepExecutionError` or ``"skip"`` failed points
    on_failure: str = "raise"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.on_failure not in ("raise", "skip"):
            raise ValueError(
                f"on_failure must be 'raise' or 'skip', got {self.on_failure!r}"
            )


class SweepExecutor:
    """Executes a grid of scenario configs; see the module docstring."""

    def __init__(
        self,
        config: ExecutorConfig | None = None,
        point_fn: typing.Callable[[ScenarioConfig], dict] | None = None,
        progress: typing.Callable[[PointRecord], None] | None = None,
    ) -> None:
        self.config = config or ExecutorConfig()
        self.point_fn = point_fn
        self.progress = progress
        self.telemetry: RunTelemetry | None = None
        #: points the most recent :meth:`run` gave up on — the only
        #: failure record in ``on_failure="skip"`` mode
        self.failures: list[PointFailure] = []

    # -- public API -------------------------------------------------------
    def run(
        self, configs: typing.Sequence[ScenarioConfig]
    ) -> list[dict[str, typing.Any]]:
        """Resolve every point; returns rows in input order."""
        cfg = self.config
        keys = [config_key(c) for c in configs]
        rows: list[dict | None] = [None] * len(configs)
        tel = RunTelemetry(workers=cfg.workers)
        self.telemetry = tel

        cache = ResultCache(cfg.cache_dir) if cfg.cache_dir else None
        journal = SweepJournal(cfg.journal) if cfg.journal else None
        journaled: dict[str, dict] = {}
        if journal is not None:
            if cfg.resume:
                journaled = journal.load()
            journal.start(resume=cfg.resume)

        pending: list[int] = []
        for i, key in enumerate(keys):
            if key in journaled:
                rows[i] = normalize_row(journaled[key])
                self._emit(tel, i, configs[i], "resumed")
                continue
            if cache is not None:
                row = cache.get(key)
                if row is not None:
                    tel.cache_hits += 1
                    rows[i] = normalize_row(row)
                    if journal is not None:
                        journal.append(key, rows[i])
                    self._emit(tel, i, configs[i], "cached")
                    continue
                tel.cache_misses += 1
            pending.append(i)

        failures: list[PointFailure] = []
        self.failures = failures
        if pending:
            runner = self._run_serial if cfg.workers == 1 else self._run_pool
            runner(configs, keys, rows, pending, cache, journal, tel, failures)

        tel.finish()
        if failures and cfg.on_failure == "raise":
            raise SweepExecutionError(failures)
        return [r for r in rows if r is not None]

    def summary(self) -> dict[str, typing.Any]:
        """Telemetry summary of the most recent :meth:`run`."""
        if self.telemetry is None:
            raise RuntimeError("no sweep has been run yet")
        return self.telemetry.summary()

    # -- shared plumbing --------------------------------------------------
    def _emit(
        self,
        tel: RunTelemetry,
        index: int,
        config: ScenarioConfig,
        status: str,
        wall_time: float = 0.0,
        attempts: int = 0,
        sim_events: int = 0,
        error: str | None = None,
    ) -> None:
        record = PointRecord(
            index=index,
            scheme=config.scheme,
            load=config.load,
            seed=config.seed,
            status=status,
            wall_time=wall_time,
            attempts=attempts,
            sim_events=sim_events,
            error=error,
        )
        tel.record(record)
        if self.progress is not None:
            self.progress(record)

    def _complete(
        self,
        index: int,
        row: dict,
        wall: float,
        attempts: int,
        configs: typing.Sequence[ScenarioConfig],
        keys: list[str],
        rows: list,
        cache: ResultCache | None,
        journal: SweepJournal | None,
        tel: RunTelemetry,
    ) -> None:
        row = normalize_row(row)
        rows[index] = row
        if cache is not None:
            cache.put(keys[index], row, configs[index])
        if journal is not None:
            journal.append(keys[index], row)
        self._emit(
            tel,
            index,
            configs[index],
            "executed",
            wall_time=wall,
            attempts=attempts,
            sim_events=int(row.get("events_processed") or 0),
        )

    # -- serial mode ------------------------------------------------------
    def _run_serial(
        self, configs, keys, rows, pending, cache, journal, tel, failures
    ) -> None:
        cfg = self.config
        for i in pending:
            attempts = 0
            while True:
                attempts += 1
                try:
                    row, wall = _execute_point(self.point_fn, configs[i])
                except Exception as exc:  # noqa: BLE001 — retried, then surfaced
                    if attempts <= cfg.retries:
                        tel.retries += 1
                        continue
                    failures.append(PointFailure(i, configs[i], repr(exc)))
                    self._emit(
                        tel, i, configs[i], "failed",
                        attempts=attempts, error=repr(exc),
                    )
                    break
                self._complete(
                    i, row, wall, attempts,
                    configs, keys, rows, cache, journal, tel,
                )
                break

    # -- pool mode --------------------------------------------------------
    def _make_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        # fork keeps test-injected point functions picklable and is the
        # cheapest start method; fall back to the platform default
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.config.workers, mp_context=ctx
        )

    def _run_pool(
        self, configs, keys, rows, pending, cache, journal, tel, failures
    ) -> None:
        cfg = self.config
        max_outstanding = cfg.workers * cfg.chunk_size
        # (index, attempts_used) — a point re-enters the queue on retry
        queue: collections.deque[tuple[int, int]] = collections.deque(
            (i, 0) for i in pending
        )
        # future -> [index, attempts_used, started_at | None]
        inflight: dict[concurrent.futures.Future, list] = {}
        pool = self._make_pool()

        def fail_or_requeue(index: int, attempts: int, error: str) -> None:
            if attempts <= cfg.retries:
                tel.retries += 1
                queue.append((index, attempts))
            else:
                failures.append(PointFailure(index, configs[index], error))
                self._emit(
                    tel, index, configs[index], "failed",
                    attempts=attempts, error=error,
                )

        try:
            while queue or inflight:
                while queue and len(inflight) < max_outstanding:
                    index, attempts = queue.popleft()
                    future = pool.submit(_execute_point, self.point_fn, configs[index])
                    inflight[future] = [index, attempts, None]

                tick = _TIMEOUT_TICK if cfg.timeout is not None else None
                done, _ = concurrent.futures.wait(
                    tuple(inflight),
                    timeout=tick,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )

                broken = False
                for future in done:
                    index, attempts, _started = inflight.pop(future)
                    attempts += 1
                    try:
                        row, wall = future.result()
                    except concurrent.futures.BrokenExecutor as exc:
                        broken = True
                        fail_or_requeue(index, attempts, repr(exc))
                    except Exception as exc:  # noqa: BLE001 — worker raised
                        fail_or_requeue(index, attempts, repr(exc))
                    else:
                        self._complete(
                            index, row, wall, attempts,
                            configs, keys, rows, cache, journal, tel,
                        )

                if cfg.timeout is not None and not broken:
                    now = time.monotonic()
                    for future, state in inflight.items():
                        if state[2] is None and future.running():
                            state[2] = now
                    expired = [
                        future
                        for future, state in inflight.items()
                        if state[2] is not None and now - state[2] > cfg.timeout
                    ]
                    for future in expired:
                        index, attempts, _started = inflight.pop(future)
                        tel.timeouts += 1
                        broken = True  # the wedged worker holds a pool slot
                        fail_or_requeue(
                            index,
                            attempts + 1,
                            f"timed out after {cfg.timeout}s",
                        )

                if broken:
                    # a crashed or wedged worker poisons the pool: requeue
                    # everything in flight (attempts unchanged — their try
                    # never finished) and start a fresh pool
                    pool.shutdown(wait=False, cancel_futures=True)
                    for index, attempts, _started in inflight.values():
                        queue.append((index, attempts))
                    inflight.clear()
                    tel.pool_rebuilds += 1
                    pool = self._make_pool()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
