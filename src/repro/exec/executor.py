"""The sweep executor: fan simulation points out over warm workers.

:class:`SweepExecutor` owns how a grid of
:class:`~repro.network.bss.ScenarioConfig` points gets executed:

* ``workers=1`` runs every point serially in-process — fully
  deterministic, no subprocess machinery, the mode tests default to;
* ``workers>1`` dispatches points to a persistent
  :class:`~repro.exec.pool.WorkerPool`: spawn-once warm workers that
  initialize the simulator environment a single time and then drain a
  task stream of compact config deltas, with cost-aware
  longest-expected-first ordering
  (:class:`~repro.exec.scheduler.PointScheduler`), per-point timeout,
  bounded retry, and **targeted single-worker restart** — a wedged or
  crashed worker costs one process respawn, never the grid and never
  its siblings' in-flight points;
* an optional content-addressed :class:`~repro.exec.cache.ResultCache`
  short-circuits points whose config hash already has a row on disk;
* an optional :class:`~repro.exec.journal.SweepJournal` checkpoints
  every completed row, so an interrupted sweep resumes where it died —
  with warm workers exactly as with serial runs, because resume
  filtering happens coordinator-side before any task is dispatched.

Result rows come back in input order and are JSON-normalized
(:func:`~repro.exec.hashing.normalize_row`), so a serial run, a
parallel run, a cached replay and a resumed run of the same grid all
return byte-identical rows — dispatch *order* is a performance
decision and never leaks into results.

Per-point timeouts are only enforceable in pool mode (a serial run
cannot preempt itself); serial mode still honours ``retries``.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
import typing
import warnings

from ..network.bss import BssScenario, ScenarioConfig
from .cache import DEFAULT_CACHE_DIR, ResultCache
from .hashing import config_key, normalize_row
from .journal import SweepJournal
from .pool import WorkerPool, config_delta
from .scheduler import SCHEDULE_POLICIES, PointScheduler
from .telemetry import PointRecord, RunTelemetry

__all__ = [
    "ExecutorConfig",
    "SweepExecutor",
    "SweepExecutionError",
    "PointFailure",
    "default_point_fn",
]

#: how often the pool loop polls for completions when a timeout is set
_TIMEOUT_TICK = 0.05
#: idle poll period without a timeout (worker death still wakes the
#: poll immediately via the process sentinels)
_POLL_TICK = 0.25


def default_point_fn(config: ScenarioConfig) -> dict[str, typing.Any]:
    """Build and run one scenario — the executor's unit of work.

    Non-exact engine tiers route through :mod:`repro.accel` (imported
    lazily so exact-only deployments never pay for numpy batch setup);
    the default exact tier runs the per-frame simulator untouched.
    """
    if config.engine != "exact":
        from ..accel import run_scenario

        return run_scenario(config)
    return BssScenario(config).run()


def _execute_point(
    point_fn: typing.Callable[[ScenarioConfig], dict] | None,
    config: ScenarioConfig,
) -> tuple[dict[str, typing.Any], float]:
    """Serial-mode wrapper: run one point, timing it."""
    start = time.perf_counter()
    row = (point_fn or default_point_fn)(config)
    return row, time.perf_counter() - start


@dataclasses.dataclass(frozen=True)
class PointFailure:
    """One point that exhausted its attempts."""

    index: int
    config: ScenarioConfig
    error: str


class SweepExecutionError(RuntimeError):
    """Raised when points fail after retries and ``on_failure='raise'``."""

    def __init__(self, failures: typing.Sequence[PointFailure]) -> None:
        self.failures = list(failures)
        detail = "; ".join(
            f"#{f.index} {f.config.scheme} load={f.config.load} "
            f"seed={f.config.seed}: {f.error}"
            for f in self.failures[:3]
        )
        more = "" if len(self.failures) <= 3 else f" (+{len(self.failures) - 3} more)"
        super().__init__(
            f"{len(self.failures)} sweep point(s) failed after retries: "
            f"{detail}{more}"
        )


@dataclasses.dataclass(frozen=True)
class ExecutorConfig:
    """Knobs for one :class:`SweepExecutor`."""

    #: warm-worker count; ``1`` means serial in-process execution
    workers: int = 1
    #: deprecated knob of the retired chunked-pool path; accepted and
    #: validated for API compatibility, ignored by the warm pool
    #: (dispatch is one in-flight point per worker).  Passing a
    #: non-default value emits a :class:`DeprecationWarning`
    chunk_size: int = 4
    #: per-point wall-clock budget in seconds (pool mode only) — a
    #: point outliving it marks its worker wedged and restarts it
    timeout: float | None = None
    #: additional attempts after a failed/timed-out/crashed first try
    retries: int = 1
    #: cache directory, or ``None`` to disable the result cache
    cache_dir: str | None = None
    #: journal path, or ``None`` to disable checkpointing
    journal: str | None = None
    #: skip points already present in the journal
    resume: bool = False
    #: ``"raise"`` a :class:`SweepExecutionError` or ``"skip"`` failed points
    on_failure: str = "raise"
    #: dispatch order in pool mode: ``"cost"`` = longest-expected-first
    #: with online refinement (default), ``"fifo"`` = grid order
    schedule: str = "cost"
    #: per-worker-slot restart budget: how many times one slot may be
    #: respawned (crash or wedge) before it is retired for the run.
    #: A retired slot's in-flight point fails permanently — a poison
    #: point costs at most ``workers x (budget + 1)`` process spawns,
    #: never an unbounded restart storm
    max_worker_restarts: int = 3
    #: base of the exponential restart backoff: the ``n``-th respawn of
    #: one slot waits ``restart_backoff * 2**(n-1)`` seconds (capped at
    #: 30 s); ``0`` disables the wait (tests)
    restart_backoff: float = 0.1

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.chunk_size != 4:
            warnings.warn(
                "ExecutorConfig.chunk_size is deprecated and ignored: the "
                "warm pool dispatches one in-flight point per worker",
                DeprecationWarning,
                stacklevel=3,
            )
        if self.max_worker_restarts < 0:
            raise ValueError(
                f"max_worker_restarts must be >= 0, "
                f"got {self.max_worker_restarts}"
            )
        if self.restart_backoff < 0:
            raise ValueError(
                f"restart_backoff must be >= 0, got {self.restart_backoff}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.on_failure not in ("raise", "skip"):
            raise ValueError(
                f"on_failure must be 'raise' or 'skip', got {self.on_failure!r}"
            )
        if self.schedule not in SCHEDULE_POLICIES:
            raise ValueError(
                f"schedule must be one of {SCHEDULE_POLICIES}, "
                f"got {self.schedule!r}"
            )


class SweepExecutor:
    """Executes a grid of scenario configs; see the module docstring."""

    def __init__(
        self,
        config: ExecutorConfig | None = None,
        point_fn: typing.Callable[[ScenarioConfig], dict] | None = None,
        progress: typing.Callable[[PointRecord], None] | None = None,
    ) -> None:
        self.config = config or ExecutorConfig()
        self.point_fn = point_fn
        self.progress = progress
        self.telemetry: RunTelemetry | None = None
        #: points the most recent :meth:`run` gave up on — the only
        #: failure record in ``on_failure="skip"`` mode
        self.failures: list[PointFailure] = []

    # -- public API -------------------------------------------------------
    def run(
        self, configs: typing.Sequence[ScenarioConfig]
    ) -> list[dict[str, typing.Any]]:
        """Resolve every point; returns rows in input order."""
        cfg = self.config
        keys = [config_key(c) for c in configs]
        rows: list[dict | None] = [None] * len(configs)
        tel = RunTelemetry(workers=cfg.workers)
        self.telemetry = tel

        cache = ResultCache(cfg.cache_dir) if cfg.cache_dir else None
        journal = SweepJournal(cfg.journal) if cfg.journal else None
        journaled: dict[str, dict] = {}
        if journal is not None:
            if cfg.resume:
                journaled = journal.load()
                tel.journal_skipped_lines = journal.skipped_lines
            journal.start(resume=cfg.resume)

        pending: list[int] = []
        for i, key in enumerate(keys):
            if key in journaled:
                rows[i] = normalize_row(journaled[key])
                self._emit(tel, i, configs[i], "resumed")
                continue
            if cache is not None:
                row = cache.get(key)
                if row is not None:
                    tel.cache_hits += 1
                    rows[i] = normalize_row(row)
                    if journal is not None:
                        journal.append(key, rows[i])
                    self._emit(tel, i, configs[i], "cached")
                    continue
                tel.cache_misses += 1
            pending.append(i)

        failures: list[PointFailure] = []
        self.failures = failures
        try:
            if pending:
                runner = self._run_serial if cfg.workers == 1 else self._run_pool
                runner(configs, keys, rows, pending, cache, journal, tel, failures)
        finally:
            if journal is not None:
                journal.close()

        tel.finish()
        if failures and cfg.on_failure == "raise":
            raise SweepExecutionError(failures)
        return [r for r in rows if r is not None]

    def summary(self) -> dict[str, typing.Any]:
        """Telemetry summary of the most recent :meth:`run`."""
        if self.telemetry is None:
            raise RuntimeError("no sweep has been run yet")
        return self.telemetry.summary()

    # -- shared plumbing --------------------------------------------------
    def _emit(
        self,
        tel: RunTelemetry,
        index: int,
        config: ScenarioConfig,
        status: str,
        wall_time: float = 0.0,
        attempts: int = 0,
        sim_events: int = 0,
        error: str | None = None,
    ) -> None:
        record = PointRecord(
            index=index,
            scheme=config.scheme,
            load=config.load,
            seed=config.seed,
            status=status,
            wall_time=wall_time,
            attempts=attempts,
            sim_events=sim_events,
            error=error,
        )
        tel.record(record)
        if self.progress is not None:
            self.progress(record)

    def _complete(
        self,
        index: int,
        row: dict,
        wall: float,
        attempts: int,
        configs: typing.Sequence[ScenarioConfig],
        keys: list[str],
        rows: list,
        cache: ResultCache | None,
        journal: SweepJournal | None,
        tel: RunTelemetry,
    ) -> None:
        row = normalize_row(row)
        rows[index] = row
        tel.busy_worker_s += wall
        if cache is not None:
            cache.put(keys[index], row, configs[index])
        if journal is not None:
            journal.append(keys[index], row)
        self._emit(
            tel,
            index,
            configs[index],
            "executed",
            wall_time=wall,
            attempts=attempts,
            sim_events=int(row.get("events_processed") or 0),
        )

    # -- serial mode ------------------------------------------------------
    def _run_serial(
        self, configs, keys, rows, pending, cache, journal, tel, failures
    ) -> None:
        cfg = self.config
        for i in pending:
            attempts = 0
            while True:
                attempts += 1
                started = time.perf_counter()
                try:
                    row, wall = _execute_point(self.point_fn, configs[i])
                except Exception as exc:  # noqa: BLE001 — retried, then surfaced
                    tel.busy_worker_s += time.perf_counter() - started
                    if attempts <= cfg.retries:
                        tel.retries += 1
                        continue
                    failures.append(PointFailure(i, configs[i], repr(exc)))
                    self._emit(
                        tel, i, configs[i], "failed",
                        attempts=attempts, error=repr(exc),
                    )
                    break
                self._complete(
                    i, row, wall, attempts,
                    configs, keys, rows, cache, journal, tel,
                )
                break

    # -- pool mode (persistent warm workers) ------------------------------
    def _run_pool(
        self, configs, keys, rows, pending, cache, journal, tel, failures
    ) -> None:
        cfg = self.config
        scheduler = PointScheduler(cfg.schedule)
        attempts: dict[int, int] = {}
        for i in pending:
            attempts[i] = 0
            scheduler.add(i, configs[i])
        # the base config is broadcast once at spawn; every task ships
        # only its delta against it
        base = configs[pending[0]].to_dict()

        def fail_point(index: int, used: int, error: str) -> None:
            failures.append(PointFailure(index, configs[index], error))
            self._emit(
                tel, index, configs[index], "failed",
                attempts=used, error=error,
            )

        def fail_or_requeue(index: int, used: int, error: str) -> None:
            if used <= cfg.retries:
                tel.retries += 1
                scheduler.add(index, configs[index])
            else:
                fail_point(index, used, error)

        pool = WorkerPool(cfg.workers, base, self.point_fn)
        #: per-slot respawn counts for this run; one slot exceeding
        #: ``max_worker_restarts`` is retired, not restarted — the
        #: restart-storm guard a poison point would otherwise trigger
        slot_restarts: dict[int, int] = {}

        def respawn(worker) -> bool:
            """Restart one slot within budget; retire it past budget.

            Returns ``False`` when the slot was retired, in which case
            the caller must fail the in-flight point permanently
            instead of requeueing it.
            """
            n = slot_restarts.get(worker.worker_id, 0) + 1
            slot_restarts[worker.worker_id] = n
            if n > cfg.max_worker_restarts:
                tel.restart_budget_exhausted += 1
                pool.retire(worker)
                return False
            if cfg.restart_backoff > 0:
                # exponential backoff: a crash-looping environment gets
                # geometrically rarer respawns instead of a hot loop
                time.sleep(min(cfg.restart_backoff * 2 ** (n - 1), 30.0))
            pool.restart(worker)
            return True
        #: task_id -> grid index for every dispatched, unresolved task;
        #: task ids are fresh per attempt, so a stale message from a
        #: killed worker can never resolve a retried point
        tasks: dict[int, int] = {}
        task_ids = itertools.count(1)
        try:
            warmup_s = pool.wait_ready()
            steady_s = drain_s = capacity_s = 0.0
            last = time.perf_counter()

            while tasks or scheduler:
                # greedy dispatch: no ready worker stays idle while
                # points are pending (the scheduler invariant the
                # property tests pin on the pure model)
                for worker in pool.idle():
                    if not scheduler:
                        break
                    index, config = scheduler.pop()
                    task_id = next(task_ids)
                    tasks[task_id] = index
                    pool.dispatch(
                        worker, task_id, config_delta(base, config.to_dict())
                    )

                # capacity integrates over the *wait* with the state
                # that holds during it (post-dispatch, pre-completion);
                # attributing the interval to the post-completion state
                # would systematically under-count busy workers
                pending_during_wait = bool(scheduler)
                avail = pool.ready_count()
                active = pool.active_count()

                tick = _TIMEOUT_TICK if cfg.timeout is not None else _POLL_TICK
                messages, dead = pool.poll(tick)

                now = time.perf_counter()
                dt, last = now - last, now
                if pending_during_wait:
                    # steady state: every ready worker is usable capacity
                    steady_s += dt
                    capacity_s += dt * avail
                else:
                    # queue drained: only still-busy workers count —
                    # tail idling is expected, not lost capacity
                    drain_s += dt
                    capacity_s += dt * min(avail, active)

                for kind, _wid, task_id, payload, wall in messages:
                    index = tasks.pop(task_id, None)
                    if index is None:
                        continue  # stale: the task was already resolved
                    attempts[index] += 1
                    if kind == "done":
                        scheduler.observe(configs[index], wall)
                        self._complete(
                            index, payload, wall, attempts[index],
                            configs, keys, rows, cache, journal, tel,
                        )
                    else:  # "error"
                        tel.busy_worker_s += wall
                        fail_or_requeue(index, attempts[index], str(payload))

                for worker in dead:
                    task_id = worker.current
                    index = None
                    if task_id is not None and task_id in tasks:
                        index = tasks.pop(task_id)
                        attempts[index] += 1
                        if worker.started is not None:
                            tel.busy_worker_s += (
                                time.perf_counter() - worker.started
                            )
                    error = (
                        f"worker {worker.worker_id} died "
                        f"(exitcode {worker.process.exitcode})"
                    )
                    if respawn(worker):
                        if index is not None:
                            fail_or_requeue(index, attempts[index], error)
                    elif index is not None:
                        fail_point(
                            index,
                            attempts[index],
                            f"{error}; slot retired after exhausting its "
                            f"restart budget ({cfg.max_worker_restarts})",
                        )

                if cfg.timeout is not None:
                    now = time.perf_counter()
                    for worker in list(pool.workers):
                        task_id = worker.current
                        if task_id is None or worker.started is None:
                            continue
                        if now - worker.started <= cfg.timeout:
                            continue
                        tel.timeouts += 1
                        tel.busy_worker_s += now - worker.started
                        index = tasks.pop(task_id, None)
                        if index is not None:
                            attempts[index] += 1
                        error = f"timed out after {cfg.timeout}s"
                        # the wedged process burns a core until killed;
                        # only this slot restarts (budget permitting),
                        # siblings keep going
                        if respawn(worker):
                            if index is not None:
                                fail_or_requeue(index, attempts[index], error)
                        elif index is not None:
                            fail_point(
                                index,
                                attempts[index],
                                f"{error}; slot retired after exhausting "
                                f"its restart budget "
                                f"({cfg.max_worker_restarts})",
                            )

                if not pool.workers:
                    # every slot retired: nothing can execute the rest
                    while scheduler:
                        index, _config = scheduler.pop()
                        fail_point(
                            index,
                            attempts[index],
                            "no workers left: every slot exhausted its "
                            "restart budget",
                        )
                    break

            tel.set_phases(warmup_s, steady_s, drain_s, capacity_s)
        finally:
            tel.worker_restarts = pool.restarts
            pool.shutdown()
