"""The batched engine tier: dispatch + the contention fast path.

``run_scenario`` is the single entry point the executor routes
non-exact points through.  For ``engine="batched"`` it picks one of
two implementations:

* **fast path** (:class:`BatchedContentionModel`) — when the scenario
  is pure DCF contention (conventional scheme, zero real-time rates,
  no faults/trace/ESS/monitors), the per-frame object simulation is
  replaced by a round-synchronous model: one *round* is "idle slots
  until the smallest backoff counter expires, then the transmission it
  triggers".  Backoff redraws for a round are made in **one vectorized
  adapter call** (:meth:`~repro.accel.rng.BatchedRngAdapter.uniforms`),
  round completions are scheduled through the typed
  :class:`~repro.sim.engine.SlabAgenda`, and ``events_processed``
  counts the **exact-engine-equivalent agenda fires** each round
  implies (see ``_EVENT_ACCOUNTING`` below), so its ev/s are directly
  comparable with the exact benchmarks.

* **general path** — any other scenario builds the ordinary
  :class:`~repro.network.bss.BssScenario`, then rewires it: the data
  stations' DCF engines draw from counter-keyed adapter columns
  (:class:`~repro.accel.rng.ColumnStream`) and the BER model serves
  per-batch vectorized draws (``BitErrorModel.enable_batch``).  Rows
  keep the full exact schema and gain ``engine="batched"``.

Both paths are seed-deterministic and pinned by their own golden
fixture (``tests/accel``); exact-tier rows are untouched.

``_EVENT_ACCOUNTING`` — the fast path counts, per modeled occurrence,
the agenda fires the exact engine would have dispatched:

=====================  ====================================  =====
occurrence             exact-engine fires                    count
=====================  ====================================  =====
MSDU arrival           source process timeout                1
backoff expiry         ``_backoff_complete`` timer           1
(skipped on 802.11 immediate access — fresh arrival on a
medium already idle >= DIFS transmits without arming a timer)
data transmission      channel ``_finish`` + done event      2
data survived          ACK send timer + ACK ``_finish``
                       + ACK done event                      3
data corrupted /       ACK-timeout timer                     1
collided
superframe tick        conventional AP timer                 1
=====================  ====================================  =====

Fires whose exact-engine timestamp would land past ``sim_time`` are
not counted (the exact run would never dispatch them).  The grounding
test asserts this model stays within ~40% of a real exact run's
``events_processed`` on the same config.
"""

from __future__ import annotations

import math
import typing

import numpy as np

from ..baseline.conventional import ConventionalApConfig
from ..metrics.stats import OnlineStats
from ..network.bss import BssScenario, ScenarioConfig
from ..phy.error_model import BitErrorModel
from ..phy.timing import PhyTiming
from ..sim.engine import SlabAgenda
from .rng import BatchedRngAdapter

__all__ = ["run_scenario", "fast_path_eligible", "BatchedContentionModel"]

#: DATA header+FCS bits and ACK bits exposed to the BER model
#: (mac/frames._HEADER_BITS — mirrored to keep the hot loop flat)
_DATA_HEADER_BITS = 272
_ACK_BITS = 112

#: SlabAgenda entry kinds used by the fast path
_KIND_ARRIVAL = 0
_KIND_ROUND = 1
_KIND_TICK = 2

#: tie window for simultaneous backoff expiry (collision detection)
_TIE_EPS = 1e-12


def fast_path_eligible(config: ScenarioConfig) -> bool:
    """True when the round-synchronous contention model applies.

    The fast path models DCF contention only: conventional scheme with
    zero real-time call rates (the conventional AP then never opens a
    CFP, see ``baseline/conventional._superframe_tick``), stationary
    Poisson data arrivals, and none of the exact-only attachments
    (faults, trace, ESS shard, invariant monitors).
    """
    return (
        config.scheme == "conventional"
        and config.new_voice_rate == 0.0
        and config.new_video_rate == 0.0
        and config.handoff_voice_rate == 0.0
        and config.handoff_video_rate == 0.0
        and config.mobility == "poisson"
        and config.faults is None
        and config.trace is None
        and config.ess is None
        and not config.monitor_invariants
        and config.n_data_stations > 0
    )


def run_scenario(config: ScenarioConfig) -> dict[str, typing.Any]:
    """Run one point under its configured engine tier."""
    if config.engine == "exact":
        return BssScenario(config).run()
    if config.engine == "hybrid":
        from .hybrid import run_hybrid

        return run_hybrid(config)
    if config.engine != "batched":  # pragma: no cover - config validates
        raise ValueError(f"unknown engine {config.engine!r}")
    if fast_path_eligible(config):
        return BatchedContentionModel(config).run()
    return _run_general_batched(config)


def _run_general_batched(config: ScenarioConfig) -> dict[str, typing.Any]:
    """Batched tier for scenarios the fast path cannot model.

    The exact scenario graph is built unchanged, then rewired for
    batching: data-station DCF draws come from counter-keyed adapter
    columns and BER draws are served from vectorized blocks.  Rows are
    statistically equivalent to exact rows (same generators of
    randomness, different draw values) and pinned by their own
    fixture.
    """
    scenario = BssScenario(config)
    model = scenario.channel.error_model
    if type(model) is BitErrorModel:
        model.enable_batch()
    if scenario.data_stations:
        adapter = BatchedRngAdapter(config.seed, len(scenario.data_stations))
        for i, station in enumerate(scenario.data_stations):
            station.dcf.rng = adapter.stream(i)
    row = scenario.run()
    row["engine"] = "batched"
    return row


class BatchedContentionModel:
    """Round-synchronous DCF model for pure-contention scenarios.

    See the module docstring for the modeling contract and the event
    accounting.  One instance runs one config; :meth:`run` returns a
    result row with the standard schema plus ``engine="batched"``.
    """

    def __init__(self, config: ScenarioConfig) -> None:
        if config.scheme != "conventional" or not fast_path_eligible(config):
            raise ValueError("config is not fast-path eligible")
        self.config = config
        self.timing = PhyTiming()
        n = config.n_data_stations
        # column map: [0, n) backoff, [n, 2n) traffic, 2n channel BER
        self.adapter = BatchedRngAdapter(config.seed, 2 * n + 1)
        self._backoff_col = np.arange(n, dtype=np.intp)
        # scalar views of the backoff columns for singleton (fresh-
        # arrival) draws; the counter-keyed recurrence guarantees they
        # produce the same values a one-element vectorized round would
        self._backoff_streams = [self.adapter.stream(i) for i in range(n)]
        self._traffic = [self.adapter.stream(n + i) for i in range(n)]
        self._channel = self.adapter.stream(2 * n)
        # the fast path is these streams' only consumer, so every
        # column can serve from vectorized prefetch blocks (identical
        # values, amortized mixing); the channel column sees the most
        # draws and gets the biggest block
        for stream in self._backoff_streams:
            stream.enable_prefetch(64)
        for stream in self._traffic:
            stream.enable_prefetch(128)
        self._channel.enable_prefetch(512)
        self.agenda = SlabAgenda(capacity=max(16, 4 * n))
        self.events_processed = 0

    # -- BER helpers ------------------------------------------------------
    def _survives(self, total_bits: int) -> bool:
        ber = self.config.ber
        if ber == 0.0:
            return True
        return self._channel.random() < (1.0 - ber) ** total_bits

    # -- the round loop ---------------------------------------------------
    def run(self) -> dict[str, typing.Any]:
        cfg = self.config
        timing = self.timing
        n = cfg.n_data_stations
        slot = timing.slot
        difs = timing.difs
        sifs = timing.sifs
        ack_air = timing.ack_time()
        ack_timeout = sifs + ack_air + slot
        plcp = timing.plcp_time()
        rate = timing.data_rate
        sim_time = cfg.sim_time
        retry_limit = 7
        cw_min, cw_max = 32, 1024  # StandardBEB(32, 1024), as _build_policy
        max_stage = 5
        arrival_rate = cfg.data_msdus_per_station * cfg.load
        mean_msdu = 1024 * 8
        mtu = 1500 * 8

        # per-station state
        queues: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        heads: list[int] = [0] * n  # pop index into queues[i]
        counter = [0] * n
        stage = [0] * n
        ready = [0.0] * n  # earliest count-start (post ACK-timeout)
        immediate = [False] * n
        contending = [False] * n
        next_arrival = [0.0] * n

        events = 0
        busy_time = 0.0
        useful_bits = 0
        delivered = 0
        losses = 0
        delay = OnlineStats()
        warmup = cfg.warmup
        t_idle_start = 0.0

        # superframe ticks: the conventional AP re-arms its timer every
        # superframe; with an empty request table that is all it does
        events += int(sim_time / ConventionalApConfig().superframe)

        # seed the arrival agenda (typed slab entries, one per station)
        agenda = self.agenda
        for i in range(n):
            dt = -math.log1p(-self._traffic[i].random()) / arrival_rate
            next_arrival[i] = dt
            if dt <= sim_time:
                agenda.push(dt, _KIND_ARRIVAL, i)

        backoff_randoms = [s.random for s in self._backoff_streams]

        def draw_batch(cols: list[int], stages: list[int]) -> None:
            """One redraw per station in ``cols``, from prefetch blocks.

            Each station's draws route through its own column stream
            (batch and singleton draws share one counter order), and
            the window map is StandardBEB's ``min(cw_min * 2**stage,
            cw_max)`` inlined.
            """
            for j, i in enumerate(cols):
                s = stages[j]
                w = cw_min << s if s < max_stage else cw_max
                counter[i] = int(backoff_randoms[i]() * w)

        def start_of(i: int) -> float:
            base = t_idle_start + difs
            r = ready[i]
            return r if r > base else base

        # hot-loop locals: BER survival probabilities are memoized per
        # frame size (the exact model's memo, lifted out of the call),
        # and the channel draw is bound once
        ber = cfg.ber
        chan_random = self._channel.random
        ack_p = (1.0 - ber) ** _ACK_BITS if ber else 1.0
        p_cache: dict[int, float] = {}
        agenda_peek = agenda.peek_time
        delay_add = delay.add
        # rounds never touch the agenda, so its head time is cached
        # across round iterations and refreshed only after a pop/push
        ta = agenda_peek()

        while True:
            # next transmission candidate across contending stations
            # (start_of inlined: this scan runs once per loop iteration)
            base = t_idle_start + difs
            tmin = math.inf
            for i in range(n):
                if contending[i]:
                    r = ready[i]
                    tx = (r if r > base else base) + counter[i] * slot
                    if tx < tmin:
                        tmin = tx
            if ta <= tmin + _TIE_EPS:
                if ta > sim_time:  # also covers "both agendas empty"
                    break
                _, kind, i = agenda.pop()
                # -- one MSDU arrives at station i --------------------
                events += 1
                created = ta
                src = self._traffic[i]
                msdu = max(1, int(round(-math.log1p(-src.random()) * mean_msdu)))
                full, rest = divmod(msdu, mtu)
                q = queues[i]
                for _ in range(full):
                    q.append((mtu, created))
                if rest:
                    q.append((rest, created))
                dt = -math.log1p(-src.random()) / arrival_rate
                next_arrival[i] = created + dt
                if next_arrival[i] <= sim_time:
                    agenda.push(next_arrival[i], _KIND_ARRIVAL, i)
                ta = agenda_peek()
                if not contending[i] and len(q) > heads[i]:
                    stage[i] = 0
                    contending[i] = True
                    if created - t_idle_start >= difs - 1e-12:
                        # 802.11 immediate access: no timer fire
                        counter[i] = 0
                        ready[i] = created
                        immediate[i] = True
                    else:
                        counter[i] = int(
                            self._backoff_streams[i].random() * cw_min
                        )
                        ready[i] = created
                        immediate[i] = False
                continue
            if tmin > sim_time:
                break

            # -- one round fires at tmin ------------------------------
            # single pass: collect winners within the tie window and
            # freeze the rest — non-winners consume the whole slots
            # they observed (ready stays as-is: start_of already takes
            # the max of ready and the post-round idle start, matching
            # re-arming)
            tie = tmin + _TIE_EPS
            winners = []
            for i in range(n):
                if contending[i]:
                    r = ready[i]
                    begin = r if r > base else base
                    if begin + counter[i] * slot <= tie:
                        winners.append(i)
                    elif tmin > begin:
                        consumed = int((tmin - begin) / slot + 1e-9)
                        if consumed > counter[i]:
                            consumed = counter[i]
                        counter[i] -= consumed

            redraw_cols: list[int] = []
            redraw_stages: list[int] = []

            if len(winners) == 1:
                w = winners[0]
                bits, created = queues[w][heads[w]]
                data_end = tmin + plcp + (bits + _DATA_HEADER_BITS) / rate
                if ber:
                    tb = bits + _DATA_HEADER_BITS
                    p = p_cache.get(tb)
                    if p is None:
                        p = p_cache[tb] = (1.0 - ber) ** tb
                    data_ok = chan_random() < p
                else:
                    data_ok = True
                if data_ok:
                    ack_ok = chan_random() < ack_p if ber else True
                    busy_end = data_end + sifs + ack_air
                    resolve_t = busy_end
                    success = ack_ok
                else:
                    busy_end = data_end
                    resolve_t = data_end + ack_timeout
                    success = False
                busy_time += busy_end - tmin
                # exact-equivalent fires (timestamp-guarded)
                if not immediate[w]:
                    events += 1  # _backoff_complete at tmin
                if data_end <= sim_time:
                    events += 2  # data _finish + done event
                    if data_ok:
                        if data_end + sifs <= sim_time:
                            events += 1  # ACK send timer
                        if busy_end <= sim_time:
                            events += 2  # ACK _finish + done event
                    elif resolve_t <= sim_time:
                        events += 1  # ACK-timeout timer
                immediate[w] = False
                resolved = resolve_t <= sim_time
                if success and resolved:
                    heads[w] += 1
                    if heads[w] > 64:  # amortized pop of consumed head
                        del queues[w][: heads[w]]
                        heads[w] = 0
                    if created >= warmup:
                        delivered += 1
                        useful_bits += bits
                        delay_add(resolve_t - created)
                    stage[w] = 0
                    if len(queues[w]) > heads[w]:
                        ready[w] = resolve_t
                        redraw_cols.append(w)
                        redraw_stages.append(0)
                    else:
                        contending[w] = False
                elif resolved:
                    stage[w] += 1
                    if stage[w] >= retry_limit:
                        heads[w] += 1
                        if created >= warmup:
                            losses += 1
                        stage[w] = 0
                        if len(queues[w]) > heads[w]:
                            ready[w] = resolve_t
                            redraw_cols.append(w)
                            redraw_stages.append(0)
                        else:
                            contending[w] = False
                    else:
                        ready[w] = resolve_t
                        redraw_cols.append(w)
                        redraw_stages.append(stage[w])
                else:
                    # the exchange straddles sim_time: exact would
                    # leave it unresolved; stop contending
                    contending[w] = False
            else:
                # collision: every winner transmits, all fail
                airs = [
                    plcp + (queues[w][heads[w]][0] + _DATA_HEADER_BITS) / rate
                    for w in winners
                ]
                busy_end = tmin + max(airs)
                busy_time += busy_end - tmin
                for w, air in zip(winners, airs):
                    if not immediate[w]:
                        events += 1  # _backoff_complete
                    immediate[w] = False
                    data_end = tmin + air
                    resolve_t = data_end + ack_timeout
                    if data_end <= sim_time:
                        events += 2  # data _finish + done event
                        if resolve_t <= sim_time:
                            events += 1  # ACK-timeout timer
                    if resolve_t > sim_time:
                        contending[w] = False
                        continue
                    _, created = queues[w][heads[w]]
                    stage[w] += 1
                    if stage[w] >= retry_limit:
                        heads[w] += 1
                        if created >= warmup:
                            losses += 1
                        stage[w] = 0
                        if len(queues[w]) > heads[w]:
                            ready[w] = resolve_t
                            redraw_cols.append(w)
                            redraw_stages.append(0)
                        else:
                            contending[w] = False
                    else:
                        ready[w] = resolve_t
                        redraw_cols.append(w)
                        redraw_stages.append(stage[w])

            if redraw_cols:
                # the per-round vectorized redraw: one adapter call
                draw_batch(redraw_cols, redraw_stages)
            t_idle_start = busy_end

        self.events_processed = events
        return self._assemble_row(
            events, busy_time, useful_bits, delivered, losses, delay
        )

    # -- row assembly -----------------------------------------------------
    def _assemble_row(
        self,
        events: int,
        busy_time: float,
        useful_bits: int,
        delivered: int,
        losses: int,
        delay: OnlineStats,
    ) -> dict[str, typing.Any]:
        cfg = self.config
        measured = cfg.sim_time - cfg.warmup
        row: dict[str, typing.Any] = {
            "dropping_probability": 0.0,
            "blocking_probability": 0.0,
            "worst_voice_jitter": 0.0,
        }
        for kind in ("data", "voice", "video"):
            row[f"{kind}_delay_mean"] = 0.0
            row[f"{kind}_delay_var"] = 0.0
            row[f"{kind}_delivered"] = 0
            row[f"{kind}_losses"] = 0
        row.update(
            data_delay_mean=delay.mean,
            data_delay_var=delay.variance,
            data_delivered=delivered,
            data_losses=losses,
            scheme=cfg.scheme,
            load=cfg.load,
            normalized_load=cfg.normalized_load(self.timing),
            seed=cfg.seed,
            sim_time=cfg.sim_time,
            warmup=cfg.warmup,
            events_processed=events,
            call_attempts_new=0,
            call_attempts_handoff=0,
            calls_admitted_new=0,
            calls_admitted_handoff=0,
            calls_blocked=0,
            calls_dropped=0,
            channel_busy_fraction=min(1.0, busy_time / cfg.sim_time),
            goodput_utilization=useful_bits / (measured * self.timing.data_rate),
            worst_video_delay=0.0,
            engine="batched",
        )
        return row
