"""Counter-keyed batched RNG with per-column stream identity.

The exact engine gives every station its own ``numpy.Generator``
(:class:`repro.sim.rng.RandomStreams`), drawn from one at a time.  The
batched tier instead draws **one vectorized batch per round** — but a
round touches a different subset of stations every time, so a naive
"one generator, n draws" scheme would make station *i*'s sequence
depend on who else happened to be in the round.  That breaks both
reproducibility (adding a station perturbs everyone) and the
common-random-number pairing the sweeps rely on.

The fix is a counter-based construction: every column (station) owns a
key and a draw counter, and draw ``k`` of column ``i`` is a pure
function of ``(seed, i, k)``:

    ``PHI        = 0x9E3779B97F4A7C15``  (the 64-bit golden ratio)
    ``key(i)     = mix64(seed + (i + 1) * PHI)``
    ``raw(i, k)  = mix64(key(i) + (k + 1) * PHI)``
    ``u(i, k)    = (raw(i, k) >> 11) * 2**-53``

with ``mix64`` the splitmix64 finalizer (Steele et al.), all in
``uint64`` arithmetic modulo ``2**64``.  Because column *i*'s sequence
``u(i, 0), u(i, 1), ...`` depends only on its **own** counter, batching
any subset of columns per call — in any round-size interleaving —
yields exactly the per-column sequences the scalar recurrence defines.
That invariant is the adapter's contract, pinned by the property test
in ``tests/accel/test_rng.py``, and it is what makes batched runs
seed-deterministic while remaining statistically equivalent to
independent per-station streams.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PHI", "mix64", "BatchedRngAdapter", "ColumnStream"]

#: 2**64 / golden ratio, the splitmix64 stream increment
PHI = np.uint64(0x9E3779B97F4A7C15)

_M1 = np.uint64(0xBF58476D1CE4E5B9)
_M2 = np.uint64(0x94D049BB133111EB)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)
_ONE = np.uint64(1)
#: 53-bit mantissa scaling, the standard uint64 -> [0, 1) double map
_U53 = np.uint64(11)
_INV53 = float(2.0**-53)


_MASK64 = (1 << 64) - 1
_PHI_PY = 0x9E3779B97F4A7C15


def _mix64_py(x: int) -> int:
    """The splitmix64 finalizer on plain Python ints (mod 2**64)."""
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def mix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer, vectorized over uint64 arrays.

    All arithmetic wraps modulo ``2**64`` (numpy unsigned semantics),
    which is exactly the reference recurrence.
    """
    x = (x ^ (x >> _S30)) * _M1
    x = (x ^ (x >> _S27)) * _M2
    return x ^ (x >> _S31)


class BatchedRngAdapter:
    """Vectorized per-round draws with per-station stream identity.

    Parameters
    ----------
    seed:
        Master seed; folded into every column key.
    columns:
        Number of independent streams (stations, plus any auxiliary
        channels the engine allocates — BER, traffic, ...).
    """

    #: round sizes at or below this are drawn with the pure-Python
    #: recurrence — numpy call overhead dwarfs the math for tiny batches
    SMALL_BATCH = 32

    def __init__(self, seed: int, columns: int) -> None:
        if columns < 1:
            raise ValueError(f"columns must be >= 1, got {columns}")
        self.seed = int(seed)
        self.columns = int(columns)
        #: per-column keys, as Python ints (scalar path) and uint64
        #: array (vectorized path) — same values by construction
        self._keys_py = [
            _mix64_py((self.seed + (i + 1) * _PHI_PY) & _MASK64)
            for i in range(columns)
        ]
        self._keys = np.array(self._keys_py, dtype=np.uint64)
        #: next draw index per column (draw k consumes counter value k).
        #: Python ints: the scalar paths dominate the engine's profile
        #: and a list indexes ~5x faster than a numpy scalar lookup.
        self._counters = [0] * columns

    # -- scalar reference recurrence (documentation + property test) -------
    def reference_uniform(self, column: int, k: int) -> float:
        """Draw ``k`` of ``column`` per the documented scalar recurrence.

        This is the adapter's ground truth: ``uniforms(...)`` must
        reproduce these values for every column under every round-size
        interleaving.  Implemented in pure Python integers (masked to
        64 bits) so it is an oracle independent of the vectorized path.
        """
        key = _mix64_py((self.seed + (column + 1) * _PHI_PY) & _MASK64)
        raw = _mix64_py((key + (k + 1) * _PHI_PY) & _MASK64)
        return (raw >> 11) * _INV53

    # -- batched draws ------------------------------------------------------
    def uniforms(self, columns: np.ndarray) -> np.ndarray:
        """One round: the next uniform of each listed column.

        ``columns`` is an integer sequence (any subset, any order,
        repeats allowed — repeats consume consecutive counter values
        left to right).  Returns ``float64`` uniforms in ``[0, 1)``.
        """
        if len(columns) <= self.SMALL_BATCH:
            return np.array(self.uniforms_list(columns))
        cols = np.asarray(columns, dtype=np.intp)
        counters = self._counters
        k = np.empty(cols.size, dtype=np.uint64)
        for j, c in enumerate(cols.tolist()):
            k[j] = counters[c]
            counters[c] += 1
        raw = mix64(self._keys[cols] + (k + _ONE) * PHI)
        return (raw >> _U53).astype(np.float64) * _INV53

    def uniforms_list(self, columns) -> list[float]:
        """:meth:`uniforms` as a plain float list (scalar recurrence).

        The engine's round loop is pure Python; for its typical round
        sizes (a handful of stations) the list path avoids every numpy
        round-trip and is the one it actually calls.
        """
        counters = self._counters
        keys = self._keys_py
        out = []
        for c in columns:
            k = counters[c]
            counters[c] = k + 1
            x = (keys[c] + (k + 1) * _PHI_PY) & _MASK64
            x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
            x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
            out.append(((x ^ (x >> 31)) >> 11) * _INV53)
        return out

    def integers(self, columns: np.ndarray, highs: np.ndarray | int) -> np.ndarray:
        """Next draw of each column, mapped to ``[0, high)`` ints.

        The inversion ``floor(u * high)`` keeps one uniform per draw so
        the column counters advance exactly once per value.
        """
        u = self.uniforms(columns)
        return (u * np.asarray(highs, dtype=np.float64)).astype(np.int64)

    def stream(self, column: int) -> "ColumnStream":
        """A scalar, Generator-duck-typed view of one column."""
        return ColumnStream(self, column)


class ColumnStream:
    """Scalar facade over one adapter column.

    Implements the two ``numpy.Generator`` methods the MAC layer's
    backoff path actually calls (``random`` and ``integers``), serving
    each from the column's counter-keyed sequence — so an exact-shaped
    component (e.g. a :class:`~repro.mac.dcf.DcfTransmitter`) can be
    fed batched-identity draws without code changes.
    """

    __slots__ = ("_adapter", "_column", "_key", "_counters", "_buf", "_buf_i",
                 "_block")

    def __init__(self, adapter: BatchedRngAdapter, column: int) -> None:
        if not 0 <= column < adapter.columns:
            raise ValueError(f"column {column} out of range")
        self._adapter = adapter
        self._column = column
        self._key = adapter._keys_py[column]
        self._counters = adapter._counters  # shared with batched draws
        self._buf: list[float] | None = None
        self._buf_i = 0
        self._block = 0

    def enable_prefetch(self, block: int = 256) -> None:
        """Serve draws from vectorized blocks of ``block`` values.

        One ``mix64`` array call refills the buffer; the served values
        are **identical** to the scalar recurrence (same counter-keyed
        math, batched), this only changes when the mixing happens.
        The column's shared counter advances a whole block at a time,
        so after enabling, this stream must be the column's only
        consumer (the engine's fast path owns all its columns).
        """
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        self._block = int(block)
        self._buf = []
        self._buf_i = 0

    def _refill(self) -> list[float]:
        c = self._column
        k0 = self._counters[c]
        self._counters[c] = k0 + self._block
        ks = np.arange(k0 + 1, k0 + 1 + self._block, dtype=np.uint64)
        raw = mix64(np.uint64(self._key) + ks * PHI)
        self._buf = buf = ((raw >> _U53).astype(np.float64) * _INV53).tolist()
        self._buf_i = 0
        return buf

    def random(self) -> float:
        # the documented recurrence, inlined (this is the hottest
        # scalar call in the batched engine's profile)
        buf = self._buf
        if buf is not None:
            i = self._buf_i
            if i >= len(buf):
                buf = self._refill()
                i = 0
            self._buf_i = i + 1
            return buf[i]
        c = self._column
        counters = self._counters
        k = counters[c]
        counters[c] = k + 1
        x = (self._key + (k + 1) * _PHI_PY) & _MASK64
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
        return ((x ^ (x >> 31)) >> 11) * _INV53

    def integers(self, low: int, high: int | None = None) -> int:
        if high is None:
            low, high = 0, low
        return low + int(self.random() * (high - low))
