"""The hybrid-fidelity tier: exact prefix + analytic closure.

A hybrid run drives the ordinary per-frame scenario in fixed-width
segments and samples a :class:`SaturationDetector` between them.  Once
every data station in the BSS has been saturated — non-empty DCF
queue at every sample *and* channel occupancy above threshold — for
``consecutive`` windows, and the scenario is *homogeneous* (pure
equal-rate data contention, stationary Poisson arrivals), per-frame
simulation stops: the remainder of the horizon is answered by the
Bianchi saturation model (:mod:`repro.core.capacity`) — the same
fixed point the adaptive-CW controller inverts — and the row is
flagged ``fidelity="analytic"`` with the switch time recorded.

Exactness contract (see DESIGN.md "Engine tiers"):

* a ``FaultPlan`` or trace attachment is **refused** outright
  (``ScenarioConfig`` raises at construction): the analytic closure
  cannot represent injected faults or emit per-frame events;
* scenarios whose offered load can drift mid-run (neighbourhood
  mobility, any real-time call traffic, ESS shards) never switch —
  the detector's homogeneity precondition fails and the run completes
  exact, flagged ``fidelity="exact"``.  This is the "re-enter exact on
  load change" rule collapsed to its stationary-config form: within
  one config the offered load is constant, so the only sound analytic
  region is one that provably extends to the horizon.
"""

from __future__ import annotations

import dataclasses
import typing

from ..core.capacity import (
    bianchi_tau,
    failure_probability,
    saturation_throughput,
)
from ..network.bss import BssScenario, ScenarioConfig
from ..phy.timing import PhyTiming
from .engine import _ACK_BITS, _DATA_HEADER_BITS, fast_path_eligible

__all__ = ["SaturationDetector", "run_hybrid"]

#: detector defaults: occupancy window width (s), windows required,
#: and the busy-fraction floor that counts as "saturated"
#: (saturated DCF plateaus near 0.88 with these PHY constants: backoff
#: slots keep the channel idle ~12% of the time even at full queues)
DEFAULT_WINDOW = 0.5
DEFAULT_CONSECUTIVE = 3
DEFAULT_OCCUPANCY = 0.85


class SaturationDetector:
    """Rolling contention-occupancy detector over a fixed window.

    Sampled at window boundaries by :func:`run_hybrid`; ``update``
    returns True once ``consecutive`` windows in a row were saturated.
    """

    def __init__(
        self,
        scenario: BssScenario,
        window: float = DEFAULT_WINDOW,
        consecutive: int = DEFAULT_CONSECUTIVE,
        occupancy: float = DEFAULT_OCCUPANCY,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        if consecutive < 1:
            raise ValueError(f"consecutive must be >= 1, got {consecutive}")
        if not 0.0 < occupancy <= 1.0:
            raise ValueError(f"occupancy must be in (0, 1], got {occupancy}")
        self.scenario = scenario
        self.window = window
        self.consecutive = consecutive
        self.occupancy = occupancy
        self.streak = 0
        self._last_busy = 0.0

    def window_occupancy(self, now: float) -> float:
        """Channel busy fraction over the window just ended."""
        channel = self.scenario.channel
        busy = channel.busy_time
        if channel._busy_started is not None:
            busy += now - channel._busy_started
        frac = (busy - self._last_busy) / self.window
        self._last_busy = busy
        return min(1.0, max(0.0, frac))

    def update(self, now: float) -> bool:
        """Fold in one window sample; True once the streak is enough."""
        stations = self.scenario.data_stations
        occupied = self.window_occupancy(now)
        saturated = (
            bool(stations)
            and all(st.dcf.busy for st in stations)
            and occupied >= self.occupancy
        )
        self.streak = self.streak + 1 if saturated else 0
        return self.streak >= self.consecutive


def _analytic_closure(
    config: ScenarioConfig, row: dict[str, typing.Any], switch_time: float
) -> dict[str, typing.Any]:
    """Extend the exact-prefix row to ``sim_time`` analytically."""
    timing = PhyTiming()
    n = config.n_data_stations
    remaining = config.sim_time - switch_time
    mean_msdu = 1024 * 8
    # conventional scheme => StandardBEB(32, 1024): 5 doubling stages
    pe_data = 1.0 - (1.0 - config.ber) ** (mean_msdu + _DATA_HEADER_BITS)
    pe_ack = 1.0 - (1.0 - config.ber) ** _ACK_BITS
    pe = 1.0 - (1.0 - pe_data) * (1.0 - pe_ack)
    tau = bianchi_tau(n, 32, 5, pe)
    p_fail = failure_probability(tau, n, pe)
    s = saturation_throughput(n, tau, timing, mean_msdu, pe)
    throughput_bps = s * timing.data_rate
    synth_delivered = int(throughput_bps * remaining / mean_msdu)
    # saturated stations drain in round-robin renewal: the mean MAC
    # service interval per station is the analytic access-delay proxy
    per_station_interval = (
        n * mean_msdu / throughput_bps if throughput_bps > 0 else 0.0
    )

    measured = config.sim_time - config.warmup
    prefix_measured = max(0.0, switch_time - config.warmup)
    prefix_goodput = row.get("goodput_utilization", 0.0)
    row["data_delivered"] = row.get("data_delivered", 0) + synth_delivered
    row["data_delay_mean"] = per_station_interval
    row["goodput_utilization"] = (
        prefix_goodput * prefix_measured + s * remaining
    ) / measured
    row["analytic"] = {
        "tau": tau,
        "failure_probability": p_fail,
        "saturation_throughput": s,
        "synthesized_delivered": synth_delivered,
        "span": remaining,
    }
    return row


def run_hybrid(
    config: ScenarioConfig,
    *,
    window: float = DEFAULT_WINDOW,
    consecutive: int = DEFAULT_CONSECUTIVE,
    occupancy: float = DEFAULT_OCCUPANCY,
) -> dict[str, typing.Any]:
    """Run one point under the hybrid tier.

    Returns the standard result row plus ``engine="hybrid"``,
    ``fidelity`` (``"analytic"`` when the closure fired, else
    ``"exact"``) and — when analytic — ``analytic_switch_time`` and an
    ``analytic`` sub-dict with the model's internals.
    """
    if config.faults is not None or config.trace is not None:
        # ScenarioConfig refuses this combination at construction; the
        # double check guards callers replacing fields post-hoc
        raise ValueError("hybrid engine refuses FaultPlan/trace attachments")
    # the analytic model covers homogeneous saturated DCF only — the
    # same shape the batched fast path requires (minus monitors, which
    # hybrid tolerates by just never switching)
    analytic_ok = fast_path_eligible(
        config if not config.monitor_invariants else
        dataclasses.replace(config, monitor_invariants=False)
    )
    scenario = BssScenario(config)
    scenario.begin()
    detector = SaturationDetector(
        scenario, window=window, consecutive=consecutive, occupancy=occupancy
    )
    switch_time: float | None = None
    t = 0.0
    while t < config.sim_time - 1e-12:
        t = min(t + window, config.sim_time)
        scenario.sim.run(until=t)
        # the streak may fill up during warmup, but the switch itself
        # waits for a window boundary strictly past it: the exact
        # prefix must cover the whole warmup so the measured span of
        # collect_results(horizon=...) stays positive
        if (
            analytic_ok
            and detector.update(t)
            and t > config.warmup
            and t < config.sim_time
        ):
            switch_time = t
            break
    if switch_time is None:
        row = scenario.collect_results()
        row["engine"] = "hybrid"
        row["fidelity"] = "exact"
        return row
    row = scenario.collect_results(horizon=switch_time)
    row = _analytic_closure(config, row, switch_time)
    row["engine"] = "hybrid"
    row["fidelity"] = "analytic"
    row["analytic_switch_time"] = switch_time
    row["sim_time"] = config.sim_time
    return row
