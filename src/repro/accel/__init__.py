"""Accelerated engine tiers (``ScenarioConfig.engine``).

``"exact"`` (the default) never routes through this package: the
per-frame simulator runs untouched and its rows, cache keys and golden
fixtures stay byte-identical.  ``"batched"`` swaps per-station scalar
RNG for counter-keyed vectorized draws (:mod:`repro.accel.rng`) and —
for pure-contention scenarios — a round-synchronous fast path over the
:class:`~repro.sim.engine.SlabAgenda`.  ``"hybrid"`` runs an exact
prefix, then closes the run with the Bianchi/Cali-Conti-Gregori
analytic model once a saturation detector fires
(:mod:`repro.accel.hybrid`), flagging rows ``fidelity="analytic"``.

See DESIGN.md "Engine tiers" for the selection rules and the
determinism contract of each tier.
"""

from .engine import fast_path_eligible, run_scenario
from .hybrid import SaturationDetector, run_hybrid
from .rng import BatchedRngAdapter, ColumnStream

__all__ = [
    "run_scenario",
    "fast_path_eligible",
    "run_hybrid",
    "SaturationDetector",
    "BatchedRngAdapter",
    "ColumnStream",
]
