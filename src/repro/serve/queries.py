"""Typed capacity-planning queries over sweep surfaces.

Three query kinds, all answered purely from cached rows (no
simulation on the query path) and all carrying full provenance —
contributing cache keys, exact-vs-interpolated mode, the cache
``KEY_FORMAT`` — so every number a client receives is auditable back
to the entries that produced it:

``operating_point``
    Expected QoS at a (scheme, load, ...) coordinate: access-delay
    means, worst voice jitter / video delay, dropping and blocking
    probabilities, goodput — the questions the delay/jitter model of
    the QoS-provisioning papers answers analytically, read off the
    simulated surface instead.

``admissible_calls``
    "How far can I load this mix before QoS degrades?"  Walks the
    surface's load axis upward until a constraint (default: blocking
    <= 2 %, dropping <= 1 %) breaks, then bisects the interpolated
    segment to a fixed precision.  Reports the max admissible load and
    the admitted-call picture there.

``handoff_drop_rate``
    Expected channel-II performance at an operating point:
    handoff-call drop ratio (dropped / attempted), plus the ESS
    backhaul handoff counters when the surface was built from ESS
    cell-shard rows.

Every function is deterministic: the same surface index and the same
parameters produce byte-identical result dicts.
"""

from __future__ import annotations

import dataclasses
import typing

from .surface import SurfaceError, SurfaceIndex, SurfaceLookup

__all__ = [
    "QUERY_KINDS",
    "DEFAULT_CONSTRAINTS",
    "OPERATING_POINT_METRICS",
    "QueryError",
    "QueryResult",
    "answer_query",
]

QUERY_KINDS = ("operating_point", "admissible_calls", "handoff_drop_rate")

#: default QoS ceilings for ``admissible_calls`` (fractions)
DEFAULT_CONSTRAINTS: dict[str, float] = {
    "blocking_probability": 0.02,
    "dropping_probability": 0.01,
}

#: the metric set an ``operating_point`` answer reports by default
OPERATING_POINT_METRICS: tuple[str, ...] = (
    "voice_delay_mean",
    "video_delay_mean",
    "data_delay_mean",
    "worst_voice_jitter",
    "worst_video_delay",
    "dropping_probability",
    "blocking_probability",
    "goodput_utilization",
    "channel_busy_fraction",
)

#: bisection refinement steps for ``admissible_calls`` (fixed, so the
#: answer is deterministic to ~2^-24 of the bracketing segment)
_BISECT_STEPS = 24


class QueryError(SurfaceError):
    """A query the index cannot answer (inherits code/detail)."""


def _rewrap(exc: SurfaceError) -> QueryError:
    err = QueryError(exc.code, str(exc), **exc.detail)
    return err


@dataclasses.dataclass
class QueryResult:
    """One answered query, JSON-ready and deterministic."""

    kind: str
    params: dict[str, typing.Any]
    values: dict[str, typing.Any]
    provenance: dict[str, typing.Any]

    def to_dict(self) -> dict[str, typing.Any]:
        return {
            "kind": self.kind,
            "params": self.params,
            "values": self.values,
            "provenance": self.provenance,
        }


def _axis_params(
    index: SurfaceIndex, params: typing.Mapping[str, typing.Any]
) -> dict[str, float]:
    at: dict[str, float] = {}
    for axis in index.axes:
        if axis in params and params[axis] is not None:
            try:
                at[axis] = float(params[axis])
            except (TypeError, ValueError):
                raise QueryError(
                    "bad_request",
                    f"axis {axis!r} must be numeric, "
                    f"got {params[axis]!r}",
                    axis=axis,
                )
    return at


def _select(
    index: SurfaceIndex, params: typing.Mapping[str, typing.Any]
):
    scheme = params.get("scheme")
    if not isinstance(scheme, str) or not scheme:
        raise QueryError(
            "bad_request", "every query needs a 'scheme' parameter"
        )
    try:
        return index.find(scheme, params.get("surface_id"))
    except SurfaceError as exc:
        raise _rewrap(exc)


def _lookup(
    surface,
    at: typing.Mapping[str, float],
    require_exact: bool = False,
) -> SurfaceLookup:
    try:
        return surface.lookup(at, require_exact=require_exact)
    except SurfaceError as exc:
        raise _rewrap(exc)


def _exact_flag(params: typing.Mapping[str, typing.Any]) -> bool:
    """Truthiness of the ``exact`` parameter (query-string friendly)."""
    value = params.get("exact", False)
    if isinstance(value, str):
        return value.lower() in ("1", "true", "yes", "on")
    return bool(value)


def _round(values: typing.Mapping[str, float]) -> dict[str, float]:
    """Stabilize the JSON floats (12 significant-ish decimals)."""
    return {name: round(value, 12) for name, value in values.items()}


# -- query kinds -------------------------------------------------------------

def operating_point(
    index: SurfaceIndex, params: typing.Mapping[str, typing.Any]
) -> QueryResult:
    surface = _select(index, params)
    at = _axis_params(index, params)
    lookup = _lookup(surface, at, require_exact=_exact_flag(params))

    requested = params.get("metrics")
    if requested is not None:
        if isinstance(requested, str):
            requested = [m for m in requested.split(",") if m]
        missing = sorted(set(requested) - set(lookup.metrics))
        if missing:
            raise QueryError(
                "missing_metric",
                f"metric(s) not on this surface: {', '.join(missing)}",
                missing=missing,
                available=sorted(lookup.metrics),
            )
        names = list(requested)
    else:
        names = [m for m in OPERATING_POINT_METRICS if m in lookup.metrics]

    values = _round({name: lookup.metrics[name] for name in names})
    return QueryResult(
        kind="operating_point",
        params=_echo(params),
        values=values,
        provenance=lookup.provenance(),
    )


def admissible_calls(
    index: SurfaceIndex, params: typing.Mapping[str, typing.Any]
) -> QueryResult:
    surface = _select(index, params)
    at = _axis_params(index, params)
    at.pop("load", None)  # the load axis is what we search over

    constraints = dict(DEFAULT_CONSTRAINTS)
    raw = params.get("constraints")
    if raw is not None:
        if not isinstance(raw, typing.Mapping):
            raise QueryError(
                "bad_request",
                "'constraints' must map metric name -> ceiling",
            )
        try:
            constraints = {str(k): float(v) for k, v in raw.items()}
        except (TypeError, ValueError):
            raise QueryError(
                "bad_request", "constraint ceilings must be numeric"
            )

    loads = surface.axis_values().get("load", [])
    if not loads:
        raise QueryError(
            "missing_points",
            "surface has no load axis to search",
            surface_id=surface.surface_id,
        )

    def ok(lookup: SurfaceLookup) -> bool:
        for metric, ceiling in sorted(constraints.items()):
            if metric not in lookup.metrics:
                raise QueryError(
                    "missing_metric",
                    f"constraint metric {metric!r} is not on this "
                    "surface",
                    missing=[metric],
                    available=sorted(lookup.metrics),
                )
            if lookup.metrics[metric] > ceiling:
                return False
        return True

    # coarse pass: walk the observed grid loads upward
    last_ok: float | None = None
    first_bad: float | None = None
    for load in loads:
        lookup = _lookup(surface, {**at, "load": load})
        if ok(lookup):
            last_ok = load
        else:
            first_bad = load
            break

    if last_ok is None:
        # even the lightest measured load violates the constraints
        lookup = _lookup(surface, {**at, "load": loads[0]})
        return QueryResult(
            kind="admissible_calls",
            params=_echo(params),
            values={
                "admissible": False,
                "constraints": _round(constraints),
                "max_load": None,
                "note": "constraints violated at the lightest "
                        "measured load",
            },
            provenance=lookup.provenance(),
        )

    max_load = last_ok
    if first_bad is not None:
        # refine inside the (last_ok, first_bad) interpolated segment
        lo, hi = last_ok, first_bad
        for _ in range(_BISECT_STEPS):
            mid = (lo + hi) / 2.0
            if ok(_lookup(surface, {**at, "load": mid})):
                lo = mid
            else:
                hi = mid
        max_load = lo
    frontier = _lookup(surface, {**at, "load": max_load})

    values: dict[str, typing.Any] = {
        "admissible": True,
        "constraints": _round(constraints),
        "max_load": round(max_load, 6),
        "saturated": first_bad is None,
        "at_max_load": _round(
            {
                name: frontier.metrics[name]
                for name in (
                    "calls_admitted_new",
                    "calls_admitted_handoff",
                    "calls_blocked",
                    "calls_dropped",
                    "blocking_probability",
                    "dropping_probability",
                    "analytic_voice_bounds_count",
                    "analytic_video_bounds_count",
                )
                if name in frontier.metrics
            }
        ),
    }
    return QueryResult(
        kind="admissible_calls",
        params=_echo(params),
        values=values,
        provenance=frontier.provenance(),
    )


def handoff_drop_rate(
    index: SurfaceIndex, params: typing.Mapping[str, typing.Any]
) -> QueryResult:
    surface = _select(index, params)
    at = _axis_params(index, params)
    lookup = _lookup(surface, at, require_exact=_exact_flag(params))

    attempts = lookup.metrics.get("call_attempts_handoff", 0.0)
    dropped = lookup.metrics.get("calls_dropped", 0.0)
    values: dict[str, typing.Any] = {
        "handoff_attempts_mean": round(attempts, 12),
        "handoff_dropped_mean": round(dropped, 12),
        "handoff_drop_rate": (
            round(dropped / attempts, 12) if attempts > 0 else 0.0
        ),
    }
    ess = {
        name: round(lookup.metrics[name], 12)
        for name in sorted(lookup.metrics)
        if name.startswith("ess.")
    }
    if ess:
        values["ess"] = ess
    return QueryResult(
        kind="handoff_drop_rate",
        params=_echo(params),
        values=values,
        provenance=lookup.provenance(),
    )


def _echo(params: typing.Mapping[str, typing.Any]) -> dict[str, typing.Any]:
    """The request parameters, sorted for byte-stable echoes."""
    return {k: params[k] for k in sorted(params)}


_HANDLERS: dict[str, typing.Callable[..., QueryResult]] = {
    "operating_point": operating_point,
    "admissible_calls": admissible_calls,
    "handoff_drop_rate": handoff_drop_rate,
}


def answer_query(
    index: SurfaceIndex,
    kind: str,
    params: typing.Mapping[str, typing.Any],
) -> QueryResult:
    """Dispatch one query; raises :class:`QueryError` when unanswerable."""
    handler = _HANDLERS.get(kind)
    if handler is None:
        raise QueryError(
            "bad_request",
            f"unknown query kind {kind!r}",
            known=list(QUERY_KINDS),
        )
    return handler(index, params)
