"""The serving front end: a stdlib-only JSON API over sweep surfaces.

``http.server.ThreadingHTTPServer`` + :class:`SurfaceIndex` +
:class:`~repro.exec.SweepExecutor` — no web framework, no
dependencies.  Endpoints:

``GET/POST /query``
    Answer one capacity-planning query (:mod:`repro.serve.queries`).
    GET passes parameters in the query string (``?kind=operating_point
    &scheme=proposed&load=1.25``); POST passes a JSON object.  Answers
    are 200 with a deterministic body; a coordinate whose enclosing
    grid cell is missing corners is a **miss**: the missing configs
    are enqueued to the back-fill executor and the reply is 202 with a
    ``Retry-After`` header, so the cache back-fills under live traffic
    and the same query succeeds once the rows land.

``GET /healthz``
    Liveness + index shape (surfaces, rows, back-fill queue depth).

``GET /surfaces``
    Every surface the index recovered from the cache directory.

``GET /metrics``
    Prometheus 0.0.4 text exposition of the server's registry:
    per-endpoint request counters, request-latency histogram, result
    cache hit/miss counters, back-fill counters.

Concurrency: request handlers share one lock around the index (reads
are sub-millisecond), and the back-fill queue is **bounded** with
**single-flight dedup by cache key** — a thundering herd on one cold
coordinate enqueues its points once, and overload sheds with 503
rather than queueing without bound.
"""

from __future__ import annotations

import json
import threading
import time
import typing
import urllib.parse
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..exec import ExecutorConfig, ResultCache, SweepExecutor, config_key
from ..network.bss import ScenarioConfig
from ..obs.registry import MetricsRegistry
from .metrics import render_prometheus
from .queries import QueryError, answer_query
from .surface import CANDIDATE_AXES, SurfaceError, SurfaceIndex

__all__ = ["BackfillQueue", "QueryServer", "build_server"]

#: request-latency histogram bounds (seconds) — sub-ms exact hits
#: through multi-second cold back-fill polls
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.010, 0.025, 0.050, 0.100, 0.250, 1.0,
)

#: seconds a 202 reply tells the client to wait before retrying
RETRY_AFTER_S = 2

_STATUS_BY_CODE = {
    "bad_request": 400,
    "missing_metric": 400,
    "axis_required": 400,
    "unknown_surface": 404,
    "extrapolation_refused": 422,
}


class BackfillQueue:
    """Bounded, deduplicated queue feeding the warm sweep executor.

    ``submit`` is called from request threads; one daemon worker
    drains the queue in batches through a
    :class:`~repro.exec.SweepExecutor` whose cache dir is the serving
    cache, then folds the fresh entries into the live index.  A key is
    *in flight* from submit until its row landed (or failed) —
    resubmissions of the same key are counted and dropped, so N
    concurrent clients asking for the same cold coordinate cost one
    simulation.
    """

    def __init__(
        self,
        cache: ResultCache,
        index: SurfaceIndex,
        lock: threading.Lock,
        registry: MetricsRegistry,
        workers: int = 1,
        max_queue: int = 64,
        batch: int = 4,
        point_fn: typing.Callable[[ScenarioConfig], dict] | None = None,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.cache = cache
        self.index = index
        self.lock = lock
        self.batch = max(1, batch)
        self.max_queue = max_queue
        self.executor = SweepExecutor(
            ExecutorConfig(
                workers=workers,
                cache_dir=str(cache.root),
                on_failure="skip",
            ),
            point_fn=point_fn,
        )
        self._queue: deque[tuple[str, dict]] = deque()
        self._inflight: set[str] = set()
        self._cond = threading.Condition()
        self._stop = False
        self._enqueued = registry.counter("serve_backfill_enqueued")
        self._deduped = registry.counter("serve_backfill_deduped")
        self._shed = registry.counter("serve_backfill_shed")
        self._completed = registry.counter("serve_backfill_completed")
        self._failed = registry.counter("serve_backfill_failed")
        self._depth = registry.gauge("serve_backfill_queue_depth")
        self._thread = threading.Thread(
            target=self._run, name="serve-backfill", daemon=True
        )
        self._thread.start()

    def submit(
        self, configs: typing.Sequence[typing.Mapping[str, typing.Any]]
    ) -> dict[str, typing.Any]:
        """Enqueue missing-point configs; returns the triage summary."""
        queued: list[str] = []
        inflight: list[str] = []
        shed: list[str] = []
        with self._cond:
            for config in configs:
                scenario = ScenarioConfig.from_dict(config)
                key = config_key(scenario)
                if key in self._inflight:
                    inflight.append(key)
                    self._deduped.inc()
                    continue
                if len(self._queue) >= self.max_queue:
                    shed.append(key)
                    self._shed.inc()
                    continue
                self._inflight.add(key)
                self._queue.append((key, dict(config)))
                self._enqueued.inc()
                queued.append(key)
            self._depth.set(float(len(self._queue)))
            if queued:
                self._cond.notify()
        return {
            "queued": sorted(queued),
            "in_flight": sorted(inflight),
            "shed": sorted(shed),
        }

    def pending(self) -> int:
        with self._cond:
            return len(self._inflight)

    def stop(self, timeout: float = 10.0) -> None:
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        self._thread.join(timeout=timeout)

    # -- worker ------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stop:
                    self._cond.wait(timeout=0.5)
                if self._stop and not self._queue:
                    return
                batch = [
                    self._queue.popleft()
                    for _ in range(min(self.batch, len(self._queue)))
                ]
                self._depth.set(float(len(self._queue)))
            try:
                self._execute(batch)
            finally:
                with self._cond:
                    for key, _config in batch:
                        self._inflight.discard(key)

    def _execute(self, batch: list[tuple[str, dict]]) -> None:
        configs = [ScenarioConfig.from_dict(c) for _k, c in batch]
        try:
            self.executor.run(configs)
        except Exception:  # pragma: no cover — on_failure="skip" holds
            pass
        for key, config in batch:
            row = self.cache.get(key)
            if row is None:
                self._failed.inc()
                continue
            with self.lock:
                self.index.add_entry(key, config, row)
            self._completed.inc()


class QueryServer(ThreadingHTTPServer):
    """The HTTP server plus everything a handler needs to answer."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        cache: ResultCache,
        index: SurfaceIndex,
        registry: MetricsRegistry,
        backfill: BackfillQueue | None,
        lock: threading.Lock | None = None,
    ) -> None:
        super().__init__(address, _Handler)
        self._serving = False
        self.cache = cache
        self.index = index
        self.registry = registry
        self.backfill = backfill
        # the same lock the back-fill worker folds fresh entries under
        self.lock = lock if lock is not None else threading.Lock()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._serving = True
        try:
            super().serve_forever(poll_interval=poll_interval)
        finally:
            self._serving = False

    def stop(self) -> None:
        """Clean shutdown: drain the listener, stop the back-fill.

        ``shutdown()`` blocks on an event only ``serve_forever`` sets,
        so it is skipped when the serve loop never ran (e.g. the CLI
        bailing out on an empty cache directory).
        """
        if self._serving:
            self.shutdown()
        self.server_close()
        if self.backfill is not None:
            self.backfill.stop()


def _coerce(value: str) -> typing.Any:
    """Query-string scalar -> number where it parses, string otherwise."""
    try:
        as_float = float(value)
    except ValueError:
        return value
    return int(as_float) if as_float == int(as_float) else as_float


def _parse_constraints(text: str) -> dict[str, float]:
    """``metric:ceiling,metric:ceiling`` -> constraints mapping."""
    out: dict[str, float] = {}
    for clause in text.split(","):
        if not clause:
            continue
        metric, sep, ceiling = clause.partition(":")
        if not sep:
            raise QueryError(
                "bad_request",
                f"constraint {clause!r} must look like metric:ceiling",
            )
        try:
            out[metric] = float(ceiling)
        except ValueError:
            raise QueryError(
                "bad_request",
                f"constraint ceiling {ceiling!r} must be numeric",
            )
    return out


class _Handler(BaseHTTPRequestHandler):
    server: QueryServer  # narrowed for type checkers
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    # headers and body go out as separate small writes; without
    # TCP_NODELAY the Nagle / delayed-ACK interaction adds ~40 ms to
    # every keep-alive round trip
    disable_nagle_algorithm = True

    # -- plumbing ----------------------------------------------------------
    def log_message(self, format: str, *args: typing.Any) -> None:
        pass  # requests are observable via /metrics, not stderr noise

    def _send(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        extra_headers: typing.Sequence[tuple[str, str]] = (),
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra_headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self,
        status: int,
        payload: dict[str, typing.Any],
        extra_headers: typing.Sequence[tuple[str, str]] = (),
    ) -> None:
        body = (
            json.dumps(payload, sort_keys=True, separators=(",", ":"))
            + "\n"
        ).encode("utf-8")
        self._send(status, body, extra_headers=extra_headers)

    def _observe(self, endpoint: str, status: int, started: float) -> None:
        registry = self.server.registry
        registry.counter(
            "serve_requests_total", endpoint=endpoint, status=status
        ).inc()
        registry.histogram(
            "serve_request_seconds", LATENCY_BUCKETS, endpoint=endpoint
        ).observe(time.perf_counter() - started)

    # -- endpoints ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — http.server contract
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802 — http.server contract
        self._route("POST")

    def _route(self, method: str) -> None:
        started = time.perf_counter()
        split = urllib.parse.urlsplit(self.path)
        endpoint = split.path.rstrip("/") or "/"
        status = 500
        try:
            if endpoint == "/healthz" and method == "GET":
                status = self._healthz()
            elif endpoint == "/surfaces" and method == "GET":
                status = self._surfaces()
            elif endpoint == "/metrics" and method == "GET":
                status = self._metrics()
            elif endpoint == "/query":
                status = self._query(method, split)
            else:
                status = 404
                self._send_json(
                    404,
                    {"error": {"code": "not_found",
                               "message": f"no route {endpoint}"}},
                )
        except BrokenPipeError:  # pragma: no cover — client went away
            return
        except Exception as exc:  # noqa: BLE001 — surface, don't hang
            status = 500
            self._send_json(
                500,
                {"error": {"code": "internal", "message": repr(exc)}},
            )
        finally:
            self._observe(endpoint, status, started)

    def _healthz(self) -> int:
        with self.server.lock:
            shape = {
                "status": "ok",
                "surfaces": len(self.server.index.surfaces),
                "rows": self.server.index.rows,
                "backfill": (
                    {"enabled": True,
                     "pending": self.server.backfill.pending()}
                    if self.server.backfill is not None
                    else {"enabled": False, "pending": 0}
                ),
            }
        self._send_json(200, shape)
        return 200

    def _surfaces(self) -> int:
        with self.server.lock:
            payload = self.server.index.describe()
        self._send_json(200, payload)
        return 200

    def _metrics(self) -> int:
        text = render_prometheus(self.server.registry).encode("utf-8")
        self._send(
            200, text, content_type="text/plain; version=0.0.4"
        )
        return 200

    def _query_params(
        self, method: str, split: urllib.parse.SplitResult
    ) -> dict[str, typing.Any]:
        if method == "POST":
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            try:
                params = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, ValueError):
                raise QueryError("bad_request", "body must be a JSON object")
            if not isinstance(params, dict):
                raise QueryError("bad_request", "body must be a JSON object")
            return params
        params: dict[str, typing.Any] = {}
        for name, values in urllib.parse.parse_qs(split.query).items():
            value = values[-1]
            if name == "constraints":
                params[name] = _parse_constraints(value)
            elif name in ("kind", "scheme", "surface_id", "metrics"):
                params[name] = value
            else:
                params[name] = _coerce(value)
        return params

    def _query(self, method: str, split: urllib.parse.SplitResult) -> int:
        try:
            params = self._query_params(method, split)
            kind = params.pop("kind", None)
            if not isinstance(kind, str):
                raise QueryError(
                    "bad_request", "every query needs a 'kind' parameter"
                )
            with self.server.lock:
                result = answer_query(self.server.index, kind, params)
        except (QueryError, SurfaceError) as exc:
            return self._query_error(exc)
        self._send_json(200, result.to_dict())
        return 200

    def _query_error(self, exc: SurfaceError) -> int:
        if exc.code == "missing_points":
            return self._miss(exc)
        status = _STATUS_BY_CODE.get(exc.code, 400)
        self._send_json(status, {"error": exc.to_dict()})
        return status

    def _miss(self, exc: SurfaceError) -> int:
        """A coordinate inside the grid with uncached corners."""
        server = self.server
        surface_id = exc.detail.get("surface_id")
        missing = exc.detail.get("missing", [])
        configs: list[dict[str, typing.Any]] = []
        if server.backfill is not None and surface_id is not None:
            with server.lock:
                surface = server.index.surfaces.get(surface_id)
                if surface is not None:
                    configs = surface.missing_configs(missing)
        if server.backfill is None or not configs:
            self._send_json(404, {"error": exc.to_dict()})
            return 404
        triage = server.backfill.submit(configs)
        if not triage["queued"] and not triage["in_flight"]:
            # nothing accepted: the bounded queue shed every point
            self._send_json(
                503,
                {"error": exc.to_dict(), "backfill": triage},
                extra_headers=[("Retry-After", str(RETRY_AFTER_S))],
            )
            return 503
        self._send_json(
            202,
            {
                "status": "backfilling",
                "error": exc.to_dict(),
                "backfill": triage,
                "retry_after": RETRY_AFTER_S,
            },
            extra_headers=[("Retry-After", str(RETRY_AFTER_S))],
        )
        return 202


def build_server(
    cache_dir: str,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 1,
    backfill: bool = True,
    max_queue: int = 64,
    axes: typing.Sequence[str] = CANDIDATE_AXES,
    registry: MetricsRegistry | None = None,
    point_fn: typing.Callable[[ScenarioConfig], dict] | None = None,
) -> QueryServer:
    """Scan ``cache_dir`` into surfaces and bind the query server.

    ``port=0`` binds an ephemeral port (``server.url`` tells you
    where).  ``point_fn`` overrides the back-fill unit of work (tests
    inject stubs; production leaves the default full simulation).
    """
    registry = registry if registry is not None else MetricsRegistry()
    cache = ResultCache(cache_dir, registry=registry)
    index = SurfaceIndex.from_cache(cache, axes=axes)
    registry.gauge("serve_surfaces").set(float(len(index.surfaces)))
    registry.gauge("serve_index_rows").set(float(index.rows))
    lock = threading.Lock()
    queue = (
        BackfillQueue(
            cache,
            index,
            lock,
            registry,
            workers=workers,
            max_queue=max_queue,
            point_fn=point_fn,
        )
        if backfill
        else None
    )
    return QueryServer((host, port), cache, index, registry, queue, lock)
