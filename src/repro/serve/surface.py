"""Sweep surfaces: the in-memory query index over cached result rows.

A :class:`SurfaceIndex` scans a :class:`~repro.exec.cache.ResultCache`
directory once (entries are self-describing: each carries the config
that produced its row) and groups rows into **surfaces**: one surface
per *residual config* — everything in the config except the sweep axes
(``load``, ``n_data_stations``), the replication ``seed`` and any ESS
cell context.  Rows landing on the same axis coordinates (different
seeds, or different ESS shards) aggregate into one grid point whose
metric values are means over the sorted contributing cache keys, so
the aggregate is byte-deterministic no matter what order entries were
scanned or back-filled in.

Lookups between grid points use multilinear interpolation over the
enclosing cell and **refuse to extrapolate**: a coordinate outside an
axis's observed range raises ``extrapolation_refused`` rather than
inventing capacity numbers the sweep never measured.  A coordinate
inside the range whose enclosing cell is missing corners raises
``missing_points`` and names the exact configs that would fill them —
the serve app turns that into a 202 + back-fill enqueue.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import typing

from ..exec.cache import ResultCache
from ..exec.hashing import KEY_FORMAT, canonical_json

__all__ = [
    "CANDIDATE_AXES",
    "SurfaceError",
    "GridPoint",
    "SweepSurface",
    "SurfaceLookup",
    "SurfaceIndex",
]

#: config fields treated as interpolation axes (in this order); every
#: other field (minus ``seed``/``ess``) is surface identity
CANDIDATE_AXES: tuple[str, ...] = ("load", "n_data_stations")

#: result-row fields that are run bookkeeping, not surface metrics
_NON_METRIC_FIELDS = frozenset(
    {"seed", "sim_time", "warmup", "events_processed"}
)


class SurfaceError(Exception):
    """A lookup the surface cannot answer; ``code`` says why.

    Codes: ``axis_required``, ``extrapolation_refused``,
    ``missing_points``, ``unknown_surface``, ``missing_metric``.
    ``detail`` is a JSON-ready dict the HTTP layer returns verbatim.
    """

    def __init__(self, code: str, message: str, **detail: typing.Any) -> None:
        super().__init__(message)
        self.code = code
        self.detail = dict(detail)

    def to_dict(self) -> dict[str, typing.Any]:
        return {"code": self.code, "message": str(self), **self.detail}


def flatten_metrics(
    row: typing.Mapping[str, typing.Any], prefix: str = ""
) -> dict[str, float]:
    """Numeric leaves of a result row, dotted for nesting.

    Numbers pass through; nested dicts recurse (``faults.polls_lost``,
    ``ess.handoffs_injected``); all-numeric lists contribute their
    length and max (``analytic_voice_bounds_count`` is the number of
    voice sessions admitted at sweep end, ``..._max`` the worst
    analytic bound); strings, bools and mixed lists are skipped.
    """
    out: dict[str, float] = {}
    for name, value in row.items():
        label = f"{prefix}{name}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[label] = float(value)
        elif isinstance(value, dict):
            out.update(flatten_metrics(value, prefix=f"{label}."))
        elif isinstance(value, list):
            if value and all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in value
            ):
                out[f"{label}_count"] = float(len(value))
                out[f"{label}_max"] = float(max(value))
    return out


@dataclasses.dataclass
class GridPoint:
    """All rows that landed on one axis coordinate tuple."""

    coords: tuple[float, ...]
    #: cache key -> flattened metrics of that row
    rows: dict[str, dict[str, float]] = dataclasses.field(default_factory=dict)

    @property
    def keys(self) -> list[str]:
        return sorted(self.rows)

    def metrics(self) -> dict[str, float]:
        """Per-metric mean over contributing rows, in sorted-key order.

        Iterating keys sorted makes the float accumulation order — and
        therefore the aggregate bytes — independent of scan order.
        """
        sums: dict[str, float] = {}
        counts: dict[str, int] = {}
        for key in self.keys:
            for name, value in self.rows[key].items():
                sums[name] = sums.get(name, 0.0) + value
                counts[name] = counts.get(name, 0) + 1
        return {name: sums[name] / counts[name] for name in sorted(sums)}


@dataclasses.dataclass
class SweepSurface:
    """One residual config's grid of aggregated result rows."""

    surface_id: str
    scheme: str
    #: the residual config: axes, seed and ess stripped
    residual: dict[str, typing.Any]
    axes: tuple[str, ...]
    points: dict[tuple[float, ...], GridPoint] = dataclasses.field(
        default_factory=dict
    )
    #: replication seeds observed anywhere on the surface
    seeds: set[int] = dataclasses.field(default_factory=set)
    #: rows that came from ESS cell shards (carry an ``ess`` context)
    ess_rows: int = 0
    #: per-axis map: float coordinate -> the original JSON value, so a
    #: back-fill config round-trips int axes (``n_data_stations``)
    axis_originals: dict[str, dict[float, typing.Any]] = dataclasses.field(
        default_factory=dict
    )

    @property
    def backfillable(self) -> bool:
        """ESS shard rows strip a context we cannot reconstruct, so
        only pure single-BSS surfaces may enqueue missing points."""
        return self.ess_rows == 0 and bool(self.seeds)

    def axis_values(self) -> dict[str, list[float]]:
        """Sorted unique observed coordinates per axis."""
        out: dict[str, list[float]] = {}
        for i, axis in enumerate(self.axes):
            out[axis] = sorted({coords[i] for coords in self.points})
        return out

    def describe(self) -> dict[str, typing.Any]:
        """JSON-ready summary for ``/surfaces``."""
        return {
            "surface_id": self.surface_id,
            "scheme": self.scheme,
            "axes": {
                axis: values for axis, values in self.axis_values().items()
            },
            "points": len(self.points),
            "rows": sum(len(p.rows) for p in self.points.values()),
            "seeds": sorted(self.seeds),
            "ess_rows": self.ess_rows,
            "backfillable": self.backfillable,
            "sim_time": self.residual.get("sim_time"),
            "key_format": KEY_FORMAT,
        }

    # -- lookup ------------------------------------------------------------
    def _bracket(self, axis_index: int, value: float) -> tuple[float, float]:
        """The grid values enclosing ``value`` on one axis (lo == hi
        for an exact hit); refuses values outside the observed range."""
        axis = self.axes[axis_index]
        uniques = sorted({c[axis_index] for c in self.points})
        if value in uniques:
            return value, value
        if value < uniques[0] or value > uniques[-1]:
            raise SurfaceError(
                "extrapolation_refused",
                f"{axis}={value:g} is outside the surface's observed "
                f"range [{uniques[0]:g}, {uniques[-1]:g}]",
                axis=axis,
                value=value,
                observed=[uniques[0], uniques[-1]],
            )
        lo = max(u for u in uniques if u < value)
        hi = min(u for u in uniques if u > value)
        return lo, hi

    def lookup(
        self,
        at: typing.Mapping[str, float],
        require_exact: bool = False,
    ) -> "SurfaceLookup":
        """Resolve one coordinate: exact hit or multilinear interpolation.

        ``at`` maps axis name to requested value; an axis with a single
        observed value may be omitted (it defaults); any other omitted
        axis raises ``axis_required``.  With ``require_exact`` an
        interpolated answer is refused as ``missing_points`` naming the
        requested coordinate itself — the progressive-refinement miss
        the serve app turns into a back-fill enqueue.
        """
        values = self.axis_values()
        target: list[float] = []
        for axis in self.axes:
            if axis in at:
                target.append(float(at[axis]))
            elif len(values[axis]) == 1:
                target.append(values[axis][0])
            else:
                raise SurfaceError(
                    "axis_required",
                    f"axis {axis!r} varies on this surface "
                    f"({values[axis]}); the query must pin it",
                    axis=axis,
                    observed=values[axis],
                )

        brackets = [
            self._bracket(i, value) for i, value in enumerate(target)
        ]
        if require_exact and any(lo != hi for lo, hi in brackets):
            raise SurfaceError(
                "missing_points",
                "no cached rows at exactly this coordinate "
                "(require_exact refused interpolation)",
                surface_id=self.surface_id,
                missing=[dict(zip(self.axes, target))],
            )
        corners = sorted(set(itertools.product(*brackets)))
        missing = [c for c in corners if c not in self.points]
        if missing:
            raise SurfaceError(
                "missing_points",
                f"{len(missing)} grid corner(s) of the enclosing cell "
                "have no cached rows",
                surface_id=self.surface_id,
                missing=[
                    dict(zip(self.axes, corner)) for corner in missing
                ],
            )

        weighted: list[tuple[float, GridPoint]] = []
        for corner in corners:
            weight = 1.0
            for (lo, hi), x, c in zip(brackets, target, corner):
                if hi == lo:
                    continue
                t = (x - lo) / (hi - lo)
                weight *= t if c == hi else 1.0 - t
            weighted.append((weight, self.points[corner]))

        metrics: dict[str, float] = {}
        corner_metrics = [(w, p.metrics()) for w, p in weighted]
        # only metrics present on every corner interpolate honestly
        shared = sorted(
            set.intersection(*(set(m) for _w, m in corner_metrics))
        )
        for name in shared:
            metrics[name] = sum(w * m[name] for w, m in corner_metrics)
        keys = sorted({k for _w, p in weighted for k in p.keys})
        exact = all(lo == hi for lo, hi in brackets)
        return SurfaceLookup(
            surface=self,
            at=dict(zip(self.axes, target)),
            mode="exact" if exact else "interpolated",
            metrics=metrics,
            keys=keys,
            corners=[dict(zip(self.axes, c)) for c in corners],
        )

    def missing_configs(
        self, missing: typing.Sequence[typing.Mapping[str, float]]
    ) -> list[dict[str, typing.Any]]:
        """Full config dicts that would fill the named grid corners —
        one per (corner, observed seed) — ready for the executor."""
        if not self.backfillable:
            return []
        configs: list[dict[str, typing.Any]] = []
        for corner in missing:
            base = dict(self.residual)
            for axis in self.axes:
                value = float(corner[axis])
                base[axis] = self.axis_originals.get(axis, {}).get(
                    value, value
                )
            for seed in sorted(self.seeds):
                config = dict(base)
                config["seed"] = seed
                config["ess"] = None
                configs.append(config)
        return configs


@dataclasses.dataclass
class SurfaceLookup:
    """One resolved coordinate, with provenance."""

    surface: SweepSurface
    at: dict[str, float]
    mode: str  # "exact" | "interpolated"
    metrics: dict[str, float]
    keys: list[str]
    corners: list[dict[str, float]]

    def provenance(self) -> dict[str, typing.Any]:
        return {
            "surface_id": self.surface.surface_id,
            "scheme": self.surface.scheme,
            "at": self.at,
            "mode": self.mode,
            "corners": self.corners,
            "cache_keys": self.keys,
            "key_format": KEY_FORMAT,
        }


def _surface_identity(residual: typing.Mapping[str, typing.Any]) -> str:
    return hashlib.sha256(
        canonical_json({"format": KEY_FORMAT, "residual": residual}).encode()
    ).hexdigest()[:12]


class SurfaceIndex:
    """Every surface recoverable from one result-cache directory."""

    def __init__(self, axes: typing.Sequence[str] = CANDIDATE_AXES) -> None:
        self.axes = tuple(axes)
        self.surfaces: dict[str, SweepSurface] = {}
        #: entries whose config was absent/foreign — counted, not fatal
        self.skipped = 0
        self.rows = 0

    @classmethod
    def from_cache(
        cls,
        cache: ResultCache,
        axes: typing.Sequence[str] = CANDIDATE_AXES,
    ) -> "SurfaceIndex":
        index = cls(axes)
        for entry in cache.entries():
            index.add_entry(entry.key, entry.config, entry.row)
        return index

    def add_entry(
        self,
        key: str,
        config: typing.Mapping[str, typing.Any] | None,
        row: typing.Mapping[str, typing.Any],
    ) -> SweepSurface | None:
        """Place one cache entry; returns the surface it landed on."""
        if config is None or any(axis not in config for axis in self.axes):
            self.skipped += 1
            return None
        residual = {
            k: v
            for k, v in config.items()
            if k not in self.axes and k not in ("seed", "ess")
        }
        surface_id = _surface_identity(residual)
        surface = self.surfaces.get(surface_id)
        if surface is None:
            surface = self.surfaces[surface_id] = SweepSurface(
                surface_id=surface_id,
                scheme=str(residual.get("scheme", "?")),
                residual=residual,
                axes=self.axes,
            )
        coords = tuple(float(config[axis]) for axis in self.axes)
        point = surface.points.get(coords)
        if point is None:
            point = surface.points[coords] = GridPoint(coords=coords)
        metrics = flatten_metrics(
            {k: v for k, v in row.items() if k not in _NON_METRIC_FIELDS}
        )
        if key not in point.rows:
            self.rows += 1
        point.rows[key] = metrics
        if isinstance(config.get("seed"), int):
            surface.seeds.add(config["seed"])
        if config.get("ess") is not None:
            surface.ess_rows += 1
        for axis in self.axes:
            surface.axis_originals.setdefault(axis, {})[
                float(config[axis])
            ] = config[axis]
        return surface

    # -- selection ---------------------------------------------------------
    def find(
        self, scheme: str, surface_id: str | None = None
    ) -> SweepSurface:
        """The surface for ``scheme`` (optionally pinned by id).

        With several surfaces per scheme (different sim_time, mixes,
        ...), the one with the most rows wins — ties broken by id so
        selection is deterministic; pass ``surface_id`` to pin.
        """
        if surface_id is not None:
            surface = self.surfaces.get(surface_id)
            if surface is None:
                raise SurfaceError(
                    "unknown_surface",
                    f"no surface with id {surface_id!r}",
                    surface_id=surface_id,
                    available=sorted(self.surfaces),
                )
            return surface
        candidates = [
            s for s in self.surfaces.values() if s.scheme == scheme
        ]
        if not candidates:
            raise SurfaceError(
                "unknown_surface",
                f"no cached surface for scheme {scheme!r}",
                scheme=scheme,
                available=sorted(
                    {s.scheme for s in self.surfaces.values()}
                ),
            )
        return max(
            candidates,
            key=lambda s: (sum(len(p.rows) for p in s.points.values()),
                           s.surface_id),
        )

    def describe(self) -> dict[str, typing.Any]:
        """JSON-ready summary for ``/surfaces`` and ``/healthz``."""
        return {
            "axes": list(self.axes),
            "rows": self.rows,
            "skipped_entries": self.skipped,
            "key_format": KEY_FORMAT,
            "surfaces": [
                self.surfaces[sid].describe()
                for sid in sorted(self.surfaces)
            ],
        }
