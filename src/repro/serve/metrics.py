"""Prometheus text-exposition (0.0.4) rendering of a MetricsRegistry.

:class:`~repro.obs.registry.MetricsRegistry` stores instruments under
flattened ``name{label=value,...}`` identities; this module renders
them in the Prometheus plain-text format a scraper expects::

    # TYPE serve_requests_total counter
    serve_requests_total{endpoint="/query",status="200"} 17
    # TYPE serve_request_seconds histogram
    serve_request_seconds_bucket{endpoint="/query",le="0.005"} 12
    serve_request_seconds_bucket{endpoint="/query",le="+Inf"} 17
    serve_request_seconds_sum{endpoint="/query"} 0.042
    serve_request_seconds_count{endpoint="/query"} 17

Histogram buckets are cumulative (each ``le`` bucket counts every
observation at or below its edge) with the mandatory ``+Inf`` bucket
equal to ``_count``, matching what ``prometheus_client`` emits.  Label
values are escaped per the spec (backslash, double quote, newline);
output lines are sorted so a scrape of an unchanged registry is
byte-identical.
"""

from __future__ import annotations

import typing

from ..obs.registry import Histogram, MetricsRegistry

__all__ = ["render_prometheus"]

#: characters that must be escaped inside a label value
_ESCAPES = (("\\", r"\\"), ('"', r"\""), ("\n", r"\n"))


def _escape(value: str) -> str:
    for raw, escaped in _ESCAPES:
        value = value.replace(raw, escaped)
    return value


def _parse_key(key: str) -> tuple[str, list[tuple[str, str]]]:
    """Split a registry identity into (name, [(label, value), ...])."""
    if not key.endswith("}") or "{" not in key:
        return key, []
    name, _, inner = key.partition("{")
    labels: list[tuple[str, str]] = []
    for pair in inner[:-1].split(","):
        if not pair:
            continue
        label, _, value = pair.partition("=")
        labels.append((label, value))
    return name, labels


def _labels_text(
    labels: typing.Sequence[tuple[str, str]],
    extra: typing.Sequence[tuple[str, str]] = (),
) -> str:
    merged = list(labels) + list(extra)
    if not merged:
        return ""
    inner = ",".join(f'{k}="{_escape(str(v))}"' for k, v in merged)
    return "{" + inner + "}"


def _number(value: float) -> str:
    """Prometheus-friendly number: integers bare, floats via repr."""
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _render_histogram(
    name: str, labels: list[tuple[str, str]], hist: Histogram
) -> list[str]:
    lines: list[str] = []
    cumulative = 0
    for bound, count in zip(hist.bounds, hist.bucket_counts):
        cumulative += count
        lines.append(
            f"{name}_bucket"
            f"{_labels_text(labels, [('le', _number(float(bound)))])} "
            f"{cumulative}"
        )
    lines.append(
        f"{name}_bucket{_labels_text(labels, [('le', '+Inf')])} "
        f"{hist.count}"
    )
    lines.append(f"{name}_sum{_labels_text(labels)} {_number(hist.total)}")
    lines.append(f"{name}_count{_labels_text(labels)} {hist.count}")
    return lines


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry's instruments as Prometheus 0.0.4 text.

    The registry's own constant labels are stamped on every sample;
    families are emitted in sorted-name order with one ``# TYPE``
    header each, so consecutive scrapes of an unchanged registry are
    byte-identical.
    """
    constant = sorted(
        (k, str(v)) for k, v in registry.labels.items()
    )
    counters, gauges, histograms = registry.expose()

    families: dict[str, tuple[str, list[str]]] = {}

    def family(name: str, kind: str) -> list[str]:
        entry = families.get(name)
        if entry is None:
            entry = families[name] = (kind, [])
        return entry[1]

    for key in sorted(counters):
        name, labels = _parse_key(key)
        family(name, "counter").append(
            f"{name}{_labels_text(constant + labels)} "
            f"{_number(counters[key].value)}"
        )
    for key in sorted(gauges):
        name, labels = _parse_key(key)
        family(name, "gauge").append(
            f"{name}{_labels_text(constant + labels)} "
            f"{_number(gauges[key].value)}"
        )
    for key in sorted(histograms):
        name, labels = _parse_key(key)
        family(name, "histogram").extend(
            _render_histogram(name, constant + labels, histograms[key])
        )

    lines: list[str] = []
    for name in sorted(families):
        kind, samples = families[name]
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(samples)
    return "\n".join(lines) + ("\n" if lines else "")
