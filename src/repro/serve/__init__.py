"""Simulation-as-a-service: a query surface over the result cache.

This package turns the content-addressed result cache
(:mod:`repro.exec.cache`) from a batch-sweep accelerator into a
serving system:

* :class:`SurfaceIndex` / :class:`SweepSurface` — an in-memory index
  built by scanning a cache directory (entries are self-describing, so
  nothing but the cache is needed), grouping result rows into
  per-scheme grids over the sweep axes with deterministic multilinear
  interpolation between grid points and explicit extrapolation
  refusal;
* :mod:`repro.serve.queries` — typed capacity-planning queries
  (admissible-calls, delay/jitter/drop at an operating point,
  handoff-drop rate) answered from surfaces, every response carrying
  provenance: contributing cache keys, interpolated-vs-exact mode and
  the cache ``KEY_FORMAT``;
* :mod:`repro.serve.app` — a stdlib-only ``http.server`` JSON API
  (``/query``, ``/healthz``, ``/metrics``, ``/surfaces``) whose
  on-miss behaviour enqueues the missing
  :class:`~repro.network.bss.ScenarioConfig` to a warm
  :class:`~repro.exec.SweepExecutor` (202 + ``Retry-After``, bounded
  queue, single-flight dedup by cache key) so the cache back-fills
  under live traffic;
* :mod:`repro.serve.metrics` — Prometheus text-exposition (0.0.4)
  rendering of :class:`~repro.obs.registry.MetricsRegistry`
  instruments.

Serving is strictly read-side: it never changes what a cache entry
means (no ``KEY_FORMAT`` bump) and a given cache directory plus a
given query produce a byte-identical JSON response body.
"""

from .app import BackfillQueue, QueryServer, build_server
from .metrics import render_prometheus
from .queries import QUERY_KINDS, QueryError, QueryResult, answer_query
from .surface import (
    CANDIDATE_AXES,
    GridPoint,
    SurfaceIndex,
    SurfaceLookup,
    SweepSurface,
)

__all__ = [
    "CANDIDATE_AXES",
    "GridPoint",
    "SurfaceIndex",
    "SurfaceLookup",
    "SweepSurface",
    "QUERY_KINDS",
    "QueryError",
    "QueryResult",
    "answer_query",
    "render_prometheus",
    "BackfillQueue",
    "QueryServer",
    "build_server",
]
