"""The perf gate: compare rules, report IO, CLI exit codes."""

import json

import pytest

from repro.bench import (
    BENCHMARKS,
    compare,
    load_report,
    main,
    merge_section,
    run_benchmark,
    run_benchmarks,
    write_report,
)


def entry(events=1000, ev_s=100_000, peak=50.0, wall=0.01):
    return {
        "events": events,
        "wall_s": wall,
        "events_per_sec": ev_s,
        "peak_kib": peak,
    }


def report(**benches):
    return {"schema": 1, "benchmarks": benches}


class TestCompare:
    def test_identical_reports_pass(self):
        r = report(a=entry(), b=entry(events=77))
        assert compare(r, r, tolerance=0.0) == []

    def test_throughput_regression_detected(self):
        base = report(a=entry(ev_s=100_000))
        fresh = report(a=entry(ev_s=80_000))
        problems = compare(fresh, base, tolerance=0.1)
        assert len(problems) == 1
        assert "throughput" in problems[0]

    def test_tolerance_absorbs_small_slowdowns(self):
        base = report(a=entry(ev_s=100_000))
        fresh = report(a=entry(ev_s=80_000))
        assert compare(fresh, base, tolerance=0.25) == []

    def test_event_count_drift_fails_regardless_of_tolerance(self):
        base = report(a=entry(events=1000))
        fresh = report(a=entry(events=1001))
        problems = compare(fresh, base, tolerance=10.0)
        assert len(problems) == 1
        assert "DETERMINISM" in problems[0]

    def test_missing_benchmark_fails(self):
        base = report(a=entry(), b=entry())
        fresh = report(a=entry())
        problems = compare(fresh, base, tolerance=0.5)
        assert problems == ["b: baselined benchmark missing from run"]

    def test_new_benchmark_in_fresh_run_is_fine(self):
        base = report(a=entry())
        fresh = report(a=entry(), brand_new=entry())
        assert compare(fresh, base, tolerance=0.1) == []

    def test_allocation_regression_detected(self):
        base = report(a=entry(peak=1000.0))
        fresh = report(a=entry(peak=1600.0))
        problems = compare(fresh, base, tolerance=0.1)
        assert len(problems) == 1
        assert "allocation" in problems[0]

    def test_allocation_has_absolute_slack_for_tiny_workloads(self):
        # 1 KiB -> 60 KiB is huge relatively but within the 64 KiB
        # absolute slack that absorbs interpreter noise
        base = report(a=entry(peak=1.0))
        fresh = report(a=entry(peak=60.0))
        assert compare(fresh, base, tolerance=0.1) == []

    def test_missing_peak_field_skips_the_allocation_check(self):
        base = report(a=entry())
        fresh_entry = entry(peak=None)
        del fresh_entry["peak_kib"]
        assert compare(report(a=fresh_entry), base, tolerance=0.0) == []


class TestReportIO:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "report.json"
        original = report(a=entry())
        write_report(path, original)
        assert load_report(path) == original

    def test_load_rejects_non_reports(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"whatever": 1}))
        with pytest.raises(ValueError):
            load_report(path)

    def test_merge_section_creates_and_updates(self, tmp_path):
        path = tmp_path / "report.json"
        merge_section(path, "parallel_sweep", {"speedup": 2.0})
        merged = merge_section(path, "parallel_sweep", {"speedup": 3.0})
        assert merged["parallel_sweep"] == {"speedup": 3.0}
        assert load_report(path)["benchmarks"] == {}


class TestMicro:
    def test_timer_chain_is_deterministic_and_exact(self):
        result = run_benchmark("timer_chain", repeats=1, measure_alloc=False)
        assert result["events"] == 30_000
        assert result["events_per_sec"] > 0

    def test_alloc_pass_verifies_determinism(self):
        result = run_benchmark("cancel_storm", repeats=1, measure_alloc=True)
        assert result["peak_kib"] > 0
        assert result["events"] == 6_000

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            run_benchmarks(names=["nope"], repeats=1)

    def test_registry_has_the_documented_suites(self):
        assert set(BENCHMARKS) == {
            "timer_chain", "cancel_storm", "process_ping",
            "dcf_contention", "pcf_polling", "end_to_end",
            "batched_end_to_end", "hybrid_saturated",
        }

    def test_every_benchmark_runs_and_reports_events(self):
        results = run_benchmarks(repeats=1, measure_alloc=False)
        assert set(results) == set(BENCHMARKS)
        for name, got in results.items():
            assert got["events"] > 0, name
            assert got["events_per_sec"] > 0, name
            assert "peak_kib" not in got, name

    def test_full_stack_benchmarks_are_deterministic(self):
        first = run_benchmark("end_to_end", repeats=1, measure_alloc=False)
        second = run_benchmark("end_to_end", repeats=1, measure_alloc=False)
        assert first["events"] == second["events"]


class TestParallelSweepSection:
    def test_scaled_down_sweep_reports_identical_rows(self):
        from repro.bench import run_parallel_sweep

        section = run_parallel_sweep(workers=2, sim_time=2.0, warmup=0.5)
        assert section["rows_identical"] is True
        assert section["points"] == 8
        assert section["serial"]["workers"] == 1
        assert section["parallel"]["workers"] == 2
        assert section["serial"]["sim_events"] == (
            section["parallel"]["sim_events"]
        ) > 0
        assert section["speedup"] > 0


class TestCli:
    def _kernel_only(self):
        return ["--only", "timer_chain", "--repeats", "1", "--skip-alloc"]

    def test_update_creates_baseline_and_passes(self, tmp_path):
        baseline = tmp_path / "BENCH.json"
        out = tmp_path / "fresh.json"
        code = main(["--baseline", str(baseline), "--out", str(out),
                     "--update"] + self._kernel_only())
        assert code == 0
        assert load_report(baseline)["benchmarks"]["timer_chain"][
            "events"
        ] == 30_000

    def test_missing_baseline_fails(self, tmp_path):
        code = main(["--baseline", str(tmp_path / "absent.json"),
                     "--out", str(tmp_path / "fresh.json")]
                    + self._kernel_only())
        assert code == 1

    def test_regression_exits_nonzero(self, tmp_path):
        baseline = tmp_path / "BENCH.json"
        write_report(baseline, report(
            timer_chain=entry(events=30_000, ev_s=10**9)
        ))
        code = main(["--baseline", str(baseline),
                     "--out", str(tmp_path / "fresh.json"),
                     "--tolerance", "0.25"] + self._kernel_only())
        assert code == 1

    def test_determinism_drift_exits_nonzero_despite_huge_tolerance(
        self, tmp_path
    ):
        baseline = tmp_path / "BENCH.json"
        write_report(baseline, report(timer_chain=entry(events=1, ev_s=1)))
        code = main(["--baseline", str(baseline),
                     "--out", str(tmp_path / "fresh.json"),
                     "--tolerance", "1000"] + self._kernel_only())
        assert code == 1

    def test_only_subset_ignores_other_baselined_benchmarks(self, tmp_path):
        baseline = tmp_path / "BENCH.json"
        write_report(baseline, report(
            timer_chain=entry(events=30_000, ev_s=1),
            end_to_end=entry(events=12345, ev_s=10**9),
        ))
        code = main(["--baseline", str(baseline),
                     "--out", str(tmp_path / "fresh.json"),
                     "--tolerance", "0.99"] + self._kernel_only())
        assert code == 0

    def test_update_preserves_unmeasured_sections(self, tmp_path):
        baseline = tmp_path / "BENCH.json"
        seeded = report(timer_chain=entry(events=30_000, ev_s=1))
        seeded["pre_pr_baseline"] = {"note": "history"}
        seeded["parallel_sweep"] = {"speedup": 2.0}
        write_report(baseline, seeded)
        code = main(["--baseline", str(baseline),
                     "--out", str(tmp_path / "fresh.json"),
                     "--update"] + self._kernel_only())
        assert code == 0
        updated = load_report(baseline)
        assert updated["pre_pr_baseline"] == {"note": "history"}
        assert updated["parallel_sweep"] == {"speedup": 2.0}
