"""The serving closed-loop benchmark section (scaled down)."""

from repro.bench import run_serve_queries


def test_serve_queries_section_shape_and_hit_rate():
    section = run_serve_queries(requests=8, sim_time=1.5, warmup=0.25)
    assert section["requests"] == 8
    assert section["statuses"] == {"200": 7, "404": 1}
    assert section["hit_rate"] == 0.875
    assert section["responses_identical"] is True
    assert section["surface_rows"] == 3
    assert section["requests_per_sec"] > 0
    assert section["latency_p50_ms"] <= section["latency_p99_ms"]
