"""Unit tests for the three traffic source models."""

import numpy as np
import pytest

from repro.sim import RandomStreams, Simulator
from repro.traffic import (
    MaglarisVideoSource,
    OnOffVoiceSource,
    PoissonDataSource,
    TrafficKind,
    VideoParams,
    VoiceParams,
)


def rng(name="s", seed=0):
    return RandomStreams(seed).get(name)


# ---------------------------------------------------------------- data ----
class TestPoissonData:
    def make(self, sim, sink, rate=50.0, **kw):
        return PoissonDataSource(sim, "data/0", sink, rng(), rate, **kw)

    def test_emits_data_kind(self):
        sim = Simulator()
        pkts = []
        src = self.make(sim, pkts.append)
        src.start()
        sim.run(until=1.0)
        assert pkts and all(p.kind == TrafficKind.DATA for p in pkts)

    def test_arrival_rate_close_to_nominal(self):
        sim = Simulator()
        count = [0, 0]  # msdu count approximated by first-fragment count

        def sink(p):
            count[0] += 1
            count[1] += p.bits

        src = self.make(sim, sink, rate=100.0)
        src.start()
        sim.run(until=50.0)
        msdus = src.packets_emitted
        # fragments >= msdus; use emitted bits to check the rate instead
        assert src.bits_emitted / 50.0 == pytest.approx(100.0 * 1024 * 8, rel=0.15)

    def test_fragmentation_respects_mtu(self):
        sim = Simulator()
        pkts = []
        src = self.make(sim, pkts.append)
        src.start()
        sim.run(until=20.0)
        assert all(p.bits <= src.mtu_bits for p in pkts)
        assert all(p.bits >= 1 for p in pkts)

    def test_fragment_exact_multiple(self):
        sim = Simulator()
        src = self.make(sim, lambda p: None, mtu_bits=100)
        assert src.fragment(300) == [100, 100, 100]
        assert src.fragment(250) == [100, 100, 50]
        assert src.fragment(0) == []

    def test_no_deadline_on_data(self):
        sim = Simulator()
        pkts = []
        src = self.make(sim, pkts.append)
        src.start()
        sim.run(until=1.0)
        assert all(p.deadline is None for p in pkts)

    def test_stop_halts_emission(self):
        sim = Simulator()
        pkts = []
        src = self.make(sim, pkts.append, rate=1000.0)
        src.start()
        sim.run(until=0.5)
        n = len(pkts)
        src.stop()
        sim.run(until=1.0)
        assert len(pkts) == n

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            self.make(Simulator(), lambda p: None, rate=0.0)

    def test_start_idempotent(self):
        sim = Simulator()
        src = self.make(sim, lambda p: None)
        src.start()
        proc = src.process
        src.start()
        assert src.process is proc


# ---------------------------------------------------------------- voice ----
class TestVoice:
    def params(self, **kw):
        defaults = dict(rate=50.0, max_jitter=0.02)
        defaults.update(kw)
        return VoiceParams(**defaults)

    def make(self, sim, sink, start_talking=False, **kw):
        return OnOffVoiceSource(
            sim, "voice/0", sink, rng("v"), self.params(**kw),
            start_talking=start_talking,
        )

    def test_emits_voice_kind_with_deadline(self):
        sim = Simulator()
        pkts = []
        src = self.make(sim, pkts.append, start_talking=True)
        src.start()
        sim.run(until=2.0)
        assert pkts
        assert all(p.kind == TrafficKind.VOICE for p in pkts)
        assert all(p.deadline == pytest.approx(p.created + 0.02) for p in pkts)

    def test_packets_evenly_spaced_within_spurt(self):
        sim = Simulator()
        pkts = []
        src = self.make(sim, pkts.append, start_talking=True)
        src.start()
        sim.run(until=1.0)
        times = [p.created for p in pkts]
        gaps = np.diff(times)
        # within a single spurt every gap is exactly 1/r
        assert len(gaps) > 0
        assert np.allclose(gaps[: min(10, len(gaps))], 1 / 50.0)

    def test_activity_factor_converges(self):
        sim = Simulator()
        pkts = []
        src = self.make(sim, pkts.append)
        src.start()
        horizon = 2000.0
        sim.run(until=horizon)
        expected = self.params().average_rate * horizon
        assert len(pkts) == pytest.approx(expected, rel=0.1)

    def test_fixed_packet_size(self):
        sim = Simulator()
        pkts = []
        src = self.make(sim, pkts.append, start_talking=True)
        src.start()
        sim.run(until=3.0)
        assert {p.bits for p in pkts} == {self.params().packet_bits}

    def test_average_rate_property(self):
        p = self.params()
        assert p.average_rate == pytest.approx(50.0 * 1.35 / (1.35 + 1.5))

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            VoiceParams(rate=-1, max_jitter=0.02)
        with pytest.raises(ValueError):
            VoiceParams(rate=50, max_jitter=0.0)
        with pytest.raises(ValueError):
            VoiceParams(rate=50, max_jitter=0.02, packet_bits=0)
        with pytest.raises(ValueError):
            VoiceParams(rate=50, max_jitter=0.02, mean_on=0)

    def test_silence_produces_no_packets(self):
        sim = Simulator()
        pkts = []
        # extremely long silence first
        src = OnOffVoiceSource(
            sim, "voice/0", pkts.append, rng("v2"),
            VoiceParams(rate=50, max_jitter=0.02, mean_off=1e9),
            start_talking=False,
        )
        src.start()
        sim.run(until=100.0)
        assert pkts == []


# ---------------------------------------------------------------- video ----
class TestVideo:
    def params(self, **kw):
        defaults = dict(avg_rate=60.0, burstiness=10.0, max_delay=0.05)
        defaults.update(kw)
        return VideoParams(**defaults)

    def make(self, sim, sink, **kw):
        return MaglarisVideoSource(sim, "video/0", sink, rng("vid"), self.params(**kw))

    def test_emits_video_kind_with_delay_deadline(self):
        sim = Simulator()
        pkts = []
        src = self.make(sim, pkts.append)
        src.start()
        sim.run(until=2.0)
        assert pkts
        assert all(p.kind == TrafficKind.VIDEO for p in pkts)
        assert all(p.deadline == pytest.approx(p.created + 0.05) for p in pkts)

    def test_frames_arrive_at_frame_rate(self):
        sim = Simulator()
        pkts = []
        src = self.make(sim, pkts.append)
        src.start()
        sim.run(until=2.0)
        creation_times = sorted({p.created for p in pkts})
        gaps = np.diff(creation_times)
        assert np.allclose(gaps, 1 / 25.0)

    def test_long_run_rate_matches_declared_average(self):
        sim = Simulator()
        pkts = []
        src = self.make(sim, pkts.append)
        src.start()
        horizon = 500.0
        sim.run(until=horizon)
        rate = len(pkts) / horizon
        assert rate == pytest.approx(60.0, rel=0.15)

    def test_ar_process_stays_nonnegative(self):
        sim = Simulator()
        src = self.make(sim, lambda p: None)
        sizes = [src.next_frame_bits() for _ in range(2000)]
        assert min(sizes) >= 0

    def test_packets_capped_at_packet_bits(self):
        sim = Simulator()
        pkts = []
        src = self.make(sim, pkts.append)
        src.start()
        sim.run(until=5.0)
        assert all(p.bits <= self.params().packet_bits for p in pkts)

    def test_explicit_pixels_per_frame_respected(self):
        p = self.params(pixels_per_frame=1234)
        assert p.resolved_pixels_per_frame() == 1234

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            VideoParams(avg_rate=0, burstiness=1, max_delay=0.05)
        with pytest.raises(ValueError):
            VideoParams(avg_rate=10, burstiness=-1, max_delay=0.05)
        with pytest.raises(ValueError):
            VideoParams(avg_rate=10, burstiness=1, max_delay=0)

    def test_mean_bit_per_pixel_stationary_value(self):
        p = self.params()
        assert p.mean_bit_per_pixel == pytest.approx(0.1108 * 0.572 / (1 - 0.8781))
