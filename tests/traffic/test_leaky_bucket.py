"""Unit and property tests for the leaky-bucket utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic import LeakyBucket, conforms, tightest_sigma


class TestLeakyBucket:
    def test_starts_full(self):
        lb = LeakyBucket(rho=1.0, sigma=5.0)
        assert lb.conforming(0.0, 5.0)
        assert not lb.conforming(0.0, 5.1)

    def test_refills_at_rho(self):
        lb = LeakyBucket(rho=2.0, sigma=4.0)
        assert lb.consume(0.0, 4.0)
        assert not lb.conforming(0.5, 2.0)  # only 1 token back
        assert lb.conforming(1.0, 2.0)

    def test_never_exceeds_depth(self):
        lb = LeakyBucket(rho=10.0, sigma=3.0)
        lb.consume(0.0, 0.0)
        assert not lb.conforming(100.0, 3.5)

    def test_nonconforming_consume_drains_to_zero(self):
        lb = LeakyBucket(rho=1.0, sigma=2.0)
        assert not lb.consume(0.0, 5.0)
        assert not lb.conforming(0.0, 0.5)

    def test_delay_until_conforming(self):
        lb = LeakyBucket(rho=2.0, sigma=1.0)
        lb.consume(0.0, 1.0)
        assert lb.delay_until_conforming(0.0, 1.0) == pytest.approx(0.5)
        assert lb.delay_until_conforming(10.0, 1.0) == 0.0

    def test_time_backwards_rejected(self):
        lb = LeakyBucket(rho=1.0, sigma=1.0)
        lb.consume(5.0)
        with pytest.raises(ValueError):
            lb.conforming(4.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LeakyBucket(rho=0.0, sigma=1.0)
        with pytest.raises(ValueError):
            LeakyBucket(rho=1.0, sigma=-1.0)


class TestTightestSigma:
    def test_empty_trace_is_zero(self):
        assert tightest_sigma([], rho=1.0) == 0.0

    def test_single_arrival(self):
        # one packet at t: window [t,t] holds 1 packet -> sigma >= 1
        assert tightest_sigma([3.0], rho=1.0) == pytest.approx(1.0)

    def test_back_to_back_burst(self):
        # k simultaneous packets need sigma = k
        assert tightest_sigma([1.0] * 4, rho=5.0) == pytest.approx(4.0)

    def test_perfectly_paced_stream(self):
        times = [i / 10.0 for i in range(100)]
        # rate-10 stream against rho=10: each window catches exactly 1 extra
        assert tightest_sigma(times, rho=10.0) == pytest.approx(1.0)

    def test_slower_than_rho_still_needs_one(self):
        times = [i * 1.0 for i in range(10)]
        assert tightest_sigma(times, rho=100.0) == pytest.approx(1.0)

    def test_mid_trace_burst_found(self):
        times = [0.0, 10.0, 10.0, 10.0, 20.0]
        assert tightest_sigma(times, rho=0.1) >= 3.0

    def test_counts_respected(self):
        sigma = tightest_sigma([0.0, 1.0], rho=1.0, counts=[5.0, 5.0])
        assert sigma == pytest.approx(9.0)  # window [0,1]: 10 pkts - 1 token

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            tightest_sigma([2.0, 1.0], rho=1.0)

    def test_mismatched_counts_rejected(self):
        with pytest.raises(ValueError):
            tightest_sigma([1.0], rho=1.0, counts=[1.0, 2.0])

    def test_invalid_rho_rejected(self):
        with pytest.raises(ValueError):
            tightest_sigma([1.0], rho=0.0)

    def test_conforms_wrapper(self):
        times = [0.0, 0.0, 0.0]
        assert conforms(times, rho=1.0, sigma=3.0)
        assert not conforms(times, rho=1.0, sigma=2.5)


@settings(max_examples=200, deadline=None)
@given(
    gaps=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=60),
    rho=st.floats(min_value=0.05, max_value=50.0),
)
def test_property_trace_conforms_to_its_tightest_sigma(gaps, rho):
    """A trace is always (rho, sigma*)-conforming and never (rho, sigma*-eps)."""
    times = list(np.cumsum(gaps))
    sigma = tightest_sigma(times, rho=rho)
    assert conforms(times, rho, sigma)
    # sigma* is at least 1 (a window can always trap one whole packet)
    assert sigma >= 1.0 - 1e-9
    if sigma > 1.0 + 1e-6:
        assert not conforms(times, rho, sigma - 1e-3 * sigma - 1e-9)


@settings(max_examples=100, deadline=None)
@given(
    gaps=st.lists(st.floats(min_value=0.001, max_value=5.0), min_size=1, max_size=40),
    rho=st.floats(min_value=0.1, max_value=20.0),
    sigma=st.floats(min_value=1.0, max_value=30.0),
)
def test_property_bucket_policer_matches_envelope(gaps, rho, sigma):
    """The online policer accepts a trace iff it meets the (rho,sigma) envelope."""
    times = list(np.cumsum(gaps))
    lb = LeakyBucket(rho=rho, sigma=sigma)
    all_ok = all(lb.consume(t, 1.0) for t in times)
    envelope_ok = conforms(times, rho, sigma)
    if all_ok:
        # policer acceptance implies... policer is one-sided: acceptance of
        # every packet implies the envelope holds for windows starting at 0
        # and at every arrival, which is exactly the envelope.
        assert envelope_ok
