"""Unit tests for the (1-BER)^L frame-error model."""

import numpy as np
import pytest

from repro.phy import BitErrorModel


def make(ber, seed=0):
    return BitErrorModel(ber, np.random.Generator(np.random.PCG64(seed)))


def test_zero_ber_always_survives():
    model = make(0.0)
    assert model.success_probability(10**6) == 1.0
    assert all(model.frame_survives(10**6) for _ in range(100))


def test_success_probability_formula():
    model = make(1e-4)
    assert model.success_probability(1000) == pytest.approx((1 - 1e-4) ** 1000)


def test_success_probability_monotone_in_length():
    model = make(1e-5)
    assert model.success_probability(100) > model.success_probability(10_000)


def test_zero_length_frame_always_ok():
    assert make(0.5).success_probability(0) == 1.0


def test_invalid_ber_rejected():
    for bad in (-0.1, 1.0, 1.5):
        with pytest.raises(ValueError):
            make(bad)


def test_negative_frame_size_rejected():
    with pytest.raises(ValueError):
        make(0.1).success_probability(-5)


def test_empirical_rate_matches_probability():
    model = make(1e-3, seed=42)
    bits = 1000
    p = model.success_probability(bits)
    n = 20_000
    survived = sum(model.frame_survives(bits) for _ in range(n))
    assert survived / n == pytest.approx(p, abs=0.02)


def test_survival_is_reproducible_from_seed():
    a = [make(1e-3, seed=7).frame_survives(5000) for _ in range(1)]
    b = [make(1e-3, seed=7).frame_survives(5000) for _ in range(1)]
    assert a == b
