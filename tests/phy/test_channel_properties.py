"""Property tests for the broadcast channel (hypothesis)."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy import BitErrorModel, Channel
from repro.sim import Simulator


@dataclasses.dataclass
class FakeFrame:
    total_bits: int = 256
    label: int = 0


def make_channel(sim):
    return Channel(
        sim, BitErrorModel(0.0, np.random.Generator(np.random.PCG64(0)))
    )


def union_length(intervals):
    """Total length covered by a set of (start, end) intervals."""
    if not intervals:
        return 0.0
    intervals = sorted(intervals)
    total = 0.0
    cur_start, cur_end = intervals[0]
    for s, e in intervals[1:]:
        if s > cur_end:
            total += cur_end - cur_start
            cur_start, cur_end = s, e
        else:
            cur_end = max(cur_end, e)
    return total + (cur_end - cur_start)


@settings(max_examples=120, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1.0),  # start
            st.floats(min_value=1e-4, max_value=0.2),  # duration
        ),
        min_size=1,
        max_size=15,
    )
)
def test_property_collisions_iff_overlap_and_busy_time_is_union(schedule):
    """Frames collide exactly when their air intervals overlap, and the
    channel's busy-time accounting equals the union of the intervals."""
    sim = Simulator()
    channel = make_channel(sim)
    outcomes = {}
    intervals = []
    for i, (start, duration) in enumerate(schedule):
        end = start + duration
        intervals.append((start, end))

        def kickoff(i=i, duration=duration):
            done = channel.transmit(FakeFrame(label=i), duration, sender=None)
            done.add_callback(lambda ev, i=i: outcomes.__setitem__(i, ev.value))

        sim.call_at(start, kickoff)
    sim.run()

    # ground truth: i collided iff some j != i overlaps it in time
    for i, (s_i, e_i) in enumerate(intervals):
        overlaps = any(
            j != i and s_j < e_i and s_i < e_j
            for j, (s_j, e_j) in enumerate(intervals)
        )
        assert outcomes[i].collided == overlaps, (
            f"frame {i}: collided={outcomes[i].collided}, overlap={overlaps}"
        )

    assert channel.busy_time == pytest.approx(union_length(intervals))
    assert not channel.is_busy


@settings(max_examples=60, deadline=None)
@given(
    gaps=st.lists(st.floats(min_value=1e-4, max_value=0.1), min_size=1, max_size=10),
    duration=st.floats(min_value=1e-4, max_value=0.05),
)
def test_property_sequential_frames_never_collide(gaps, duration):
    """Back-to-back (non-overlapping) transmissions are all delivered."""
    sim = Simulator()
    channel = make_channel(sim)
    outcomes = []
    t = 0.0
    for gap in gaps:
        t += gap + duration

        def kickoff(at=t):
            done = channel.transmit(FakeFrame(), duration, sender=None)
            done.add_callback(lambda ev: outcomes.append(ev.value))

        sim.call_at(t, kickoff)
    sim.run()
    assert all(not o.collided for o in outcomes)
    assert all(o.ok for o in outcomes)
