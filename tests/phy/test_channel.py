"""Unit tests for the broadcast channel: sensing, collisions, delivery."""

import dataclasses

import numpy as np
import pytest

from repro.phy import BitErrorModel, Channel, ChannelListener
from repro.sim import Simulator


@dataclasses.dataclass
class FakeFrame:
    total_bits: int = 1000
    label: str = "f"


class Recorder(ChannelListener):
    def __init__(self, sim):
        self.sim = sim
        self.busy = []
        self.idle = []
        self.frames = []

    def on_medium_busy(self, now):
        self.busy.append(now)

    def on_medium_idle(self, now):
        self.idle.append(now)

    def on_frame(self, frame, ok, now):
        self.frames.append((frame.label, ok, now))


def make_channel(sim, ber=0.0, seed=0):
    return Channel(sim, BitErrorModel(ber, np.random.Generator(np.random.PCG64(seed))))


def test_idle_initially():
    sim = Simulator()
    ch = make_channel(sim)
    assert not ch.is_busy
    assert ch.idle_duration(0.0) == 0.0


def test_single_transmission_delivers_ok():
    sim = Simulator()
    ch = make_channel(sim)
    rx = Recorder(sim)
    tx_side = Recorder(sim)
    ch.attach(rx)
    ch.attach(tx_side)
    done = ch.transmit(FakeFrame(label="hello"), 1e-3, sender=tx_side)
    outcome = sim.run(until=done)
    assert outcome.ok
    assert rx.frames == [("hello", True, pytest.approx(1e-3))]
    # sender does not hear its own frame
    assert tx_side.frames == []


def test_busy_idle_transitions():
    sim = Simulator()
    ch = make_channel(sim)
    rx = Recorder(sim)
    ch.attach(rx)
    ch.transmit(FakeFrame(), 2e-3, sender=None)
    sim.run()
    assert rx.busy == [0.0]
    assert rx.idle == [pytest.approx(2e-3)]
    assert not ch.is_busy
    assert ch.idle_since == pytest.approx(2e-3)


def test_overlapping_transmissions_collide_both():
    sim = Simulator()
    ch = make_channel(sim)
    rx = Recorder(sim)
    ch.attach(rx)
    outcomes = []

    def send(label, start, dur):
        def kickoff():
            done = ch.transmit(FakeFrame(label=label), dur, sender=None)
            done.add_callback(lambda ev: outcomes.append(ev.value))

        sim.call_at(start, kickoff)

    send("a", 0.0, 3e-3)
    send("b", 1e-3, 3e-3)
    sim.run()
    assert all(o.collided for o in outcomes)
    assert [ok for (_, ok, _) in rx.frames] == [False, False]


def test_sequential_transmissions_do_not_collide():
    sim = Simulator()
    ch = make_channel(sim)
    outcomes = []

    def send(start, dur):
        def kickoff():
            done = ch.transmit(FakeFrame(), dur, sender=None)
            done.add_callback(lambda ev: outcomes.append(ev.value))

        sim.call_at(start, kickoff)

    send(0.0, 1e-3)
    send(2e-3, 1e-3)
    sim.run()
    assert [o.collided for o in outcomes] == [False, False]


def test_three_way_collision_all_corrupted():
    sim = Simulator()
    ch = make_channel(sim)
    outcomes = []
    for _ in range(3):
        done = ch.transmit(FakeFrame(), 1e-3, sender=None)
        done.add_callback(lambda ev: outcomes.append(ev.value))
    sim.run()
    assert len(outcomes) == 3
    assert all(o.collided for o in outcomes)


def test_busy_notification_only_on_first_and_idle_on_last():
    sim = Simulator()
    ch = make_channel(sim)
    rx = Recorder(sim)
    ch.attach(rx)
    ch.transmit(FakeFrame(), 2e-3, sender=None)
    sim.call_at(1e-3, lambda: ch.transmit(FakeFrame(), 2e-3, sender=None))
    sim.run()
    assert rx.busy == [0.0]
    assert rx.idle == [pytest.approx(3e-3)]


def test_idle_duration_tracks_time_since_last_end():
    sim = Simulator()
    ch = make_channel(sim)
    ch.transmit(FakeFrame(), 1e-3, sender=None)
    sim.run()
    assert ch.idle_duration(5e-3) == pytest.approx(4e-3)


def test_ber_corrupts_frames_without_collision():
    sim = Simulator()
    # BER high enough that a 1000-bit frame virtually never survives.
    ch = make_channel(sim, ber=0.01, seed=1)
    rx = Recorder(sim)
    ch.attach(rx)
    done = ch.transmit(FakeFrame(total_bits=1000), 1e-3, sender=None)
    outcome = sim.run(until=done)
    assert not outcome.collided
    assert outcome.bit_errors
    assert not outcome.ok


def test_utilization_accounting():
    sim = Simulator()
    ch = make_channel(sim)
    ch.transmit(FakeFrame(), 2e-3, sender=None)
    sim.run()
    sim.call_at(10e-3, lambda: None)
    sim.run()
    assert ch.utilization(10e-3) == pytest.approx(0.2)


def test_zero_duration_rejected():
    sim = Simulator()
    ch = make_channel(sim)
    with pytest.raises(ValueError):
        ch.transmit(FakeFrame(), 0.0, sender=None)


def test_attach_twice_rejected():
    sim = Simulator()
    ch = make_channel(sim)
    rx = Recorder(sim)
    ch.attach(rx)
    with pytest.raises(ValueError):
        ch.attach(rx)


def test_detach_stops_callbacks():
    sim = Simulator()
    ch = make_channel(sim)
    rx = Recorder(sim)
    ch.attach(rx)
    ch.detach(rx)
    ch.transmit(FakeFrame(), 1e-3, sender=None)
    sim.run()
    assert rx.frames == []
    assert rx.busy == []
