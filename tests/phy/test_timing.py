"""Unit tests for PHY timing constants and derived durations."""

import pytest

from repro.phy import PhyTiming


@pytest.fixture
def timing():
    return PhyTiming()


def test_standard_ifs_relationships(timing):
    assert timing.pifs == pytest.approx(timing.sifs + timing.slot)
    assert timing.difs == pytest.approx(timing.sifs + 2 * timing.slot)
    assert timing.sifs < timing.pifs < timing.difs


def test_default_80211b_values(timing):
    assert timing.slot == pytest.approx(20e-6)
    assert timing.sifs == pytest.approx(10e-6)
    assert timing.difs == pytest.approx(50e-6)
    assert timing.data_rate == pytest.approx(11e6)


def test_plcp_time_is_192us_long_preamble(timing):
    assert timing.plcp_time() == pytest.approx(192e-6)


def test_frame_airtime_scales_with_payload(timing):
    base = timing.frame_airtime(0)
    one_kbit = timing.frame_airtime(1000)
    assert one_kbit - base == pytest.approx(1000 / timing.data_rate)


def test_frame_airtime_includes_mac_header(timing):
    with_hdr = timing.frame_airtime(1000, with_mac_header=True)
    without = timing.frame_airtime(1000, with_mac_header=False)
    assert with_hdr - without == pytest.approx(
        timing.mac_header_bits / timing.data_rate
    )


def test_negative_payload_rejected(timing):
    with pytest.raises(ValueError):
        timing.frame_airtime(-1)


def test_ack_shorter_than_data_frame(timing):
    assert timing.ack_time() < timing.frame_airtime(8 * 1024)


def test_data_exchange_time_composition(timing):
    payload = 8 * 500
    expected = timing.frame_airtime(payload) + timing.sifs + timing.ack_time()
    assert timing.data_exchange_time(payload) == pytest.approx(expected)


def test_poll_time_piggyback_adds_payload(timing):
    assert timing.poll_time(1000) - timing.poll_time(0) == pytest.approx(
        1000 / timing.data_rate
    )


def test_slots_for(timing):
    assert timing.slots_for(0.0) == 0
    assert timing.slots_for(timing.slot * 3.7) == 3
    with pytest.raises(ValueError):
        timing.slots_for(-1.0)


def test_frozen_dataclass_rejects_mutation(timing):
    with pytest.raises(Exception):
        timing.slot = 1.0  # type: ignore[misc]


def test_custom_rates_flow_through():
    t = PhyTiming(data_rate=2e6)
    assert t.frame_airtime(2000) == pytest.approx(
        t.plcp_time() + (2000 + t.mac_header_bits) / 2e6
    )
