"""ScenarioGenome: validation, serialization, mutation, decoding."""

import random

import pytest

from repro.faults import ApFault, FrameLossRule, GilbertElliottParams, LinkFault
from repro.redteam import (
    SURFACES,
    DecodeSettings,
    ScenarioGenome,
    mutate_genome,
    random_genome,
)


SETTINGS = DecodeSettings()


# -- validation -------------------------------------------------------------

def test_rejects_unknown_surface():
    with pytest.raises(ValueError, match="surface"):
        ScenarioGenome(surface="wan")


def test_rejects_nonpositive_load_and_stations():
    with pytest.raises(ValueError, match="load"):
        ScenarioGenome(load=0.0)
    with pytest.raises(ValueError, match="stations"):
        ScenarioGenome(stations=0)


def test_bss_genome_rejects_ess_genes():
    with pytest.raises(ValueError, match="ESS fault genes"):
        ScenarioGenome(surface="bss", ap_faults=(ApFault(ap="ap/0x0"),))
    with pytest.raises(ValueError, match="ESS fault genes"):
        ScenarioGenome(
            surface="bss", link_faults=(LinkFault(a="ap/0x0", b="ap/0x1"),)
        )


def test_ess_genome_rejects_bss_genes():
    with pytest.raises(ValueError, match="BSS fault genes"):
        ScenarioGenome(
            surface="ess",
            frame_loss=(FrameLossRule(ftype="ack", probability=0.5),),
        )


# -- serialization ----------------------------------------------------------

@pytest.mark.parametrize("surface", SURFACES)
def test_random_genomes_round_trip(surface):
    rng = random.Random(42)
    for _ in range(50):
        genome = random_genome(rng, SETTINGS, surface)
        clone = ScenarioGenome.from_dict(genome.to_dict())
        assert clone == genome
        assert clone.canonical() == genome.canonical()
        assert clone.key() == genome.key()


def test_key_is_stable_and_content_derived():
    a = ScenarioGenome(surface="bss", seed=1, load=2.0)
    b = ScenarioGenome(surface="bss", seed=1, load=2.0)
    c = ScenarioGenome(surface="bss", seed=2, load=2.0)
    assert a.key() == b.key()
    assert a.key() != c.key()
    assert len(a.key()) == 12


def test_fault_clauses_counts_every_gene_family():
    genome = ScenarioGenome(
        surface="bss",
        gilbert_elliott=GilbertElliottParams(p_good_to_bad=0.05, p_bad_to_good=0.3),
        frame_loss=(FrameLossRule(ftype="ack", probability=0.3),),
        station_faults=(),
    )
    assert genome.fault_clauses == 2
    assert ScenarioGenome(surface="ess").fault_clauses == 0


# -- generation / mutation --------------------------------------------------

def test_random_generation_is_seed_deterministic():
    a = [random_genome(random.Random(7), SETTINGS, s) for s in SURFACES]
    b = [random_genome(random.Random(7), SETTINGS, s) for s in SURFACES]
    assert a == b


def test_mutation_is_seed_deterministic():
    base = random_genome(random.Random(1), SETTINGS, "bss")
    walk1, walk2 = [], []
    for walk, seed in ((walk1, 5), (walk2, 5)):
        rng = random.Random(seed)
        g = base
        for _ in range(20):
            g = mutate_genome(rng, g, SETTINGS)
            walk.append(g)
    assert walk1 == walk2


@pytest.mark.parametrize("surface", SURFACES)
def test_mutants_stay_valid_and_on_surface(surface):
    rng = random.Random(3)
    genome = random_genome(rng, SETTINGS, surface)
    for _ in range(200):
        genome = mutate_genome(rng, genome, SETTINGS)  # __post_init__ guards
        assert genome.surface == surface
        assert genome.load > 0
        assert genome.stations >= 1


# -- decoding ---------------------------------------------------------------

def test_decode_bss_arms_monitors_and_attaches_plan():
    genome = ScenarioGenome(
        surface="bss",
        seed=2,
        load=1.5,
        stations=6,
        frame_loss=(FrameLossRule(ftype="cf_poll", probability=0.2),),
    )
    cfg = genome.decode_bss(SETTINGS)
    assert cfg.monitor_invariants is True
    assert cfg.faults is not None
    assert cfg.faults.frame_loss == genome.frame_loss
    assert cfg.n_data_stations == 6
    assert cfg.seed == 2
    assert cfg.scheme == SETTINGS.scheme
    assert cfg.sim_time == SETTINGS.sim_time


def test_decode_ess_scales_rate_and_passes_faults():
    fault = ApFault(ap="ap/0x1", start=10.0, end=40.0)
    genome = ScenarioGenome(
        surface="ess", seed=3, load=2.0, stations=9, ap_faults=(fault,)
    )
    cfg = genome.decode_ess(SETTINGS)
    assert cfg.new_call_rate == pytest.approx(
        SETTINGS.new_call_rate * 2.0
    )
    assert cfg.capacity == 9
    assert cfg.ap_faults == (fault,)
    assert cfg.rows == SETTINGS.rows and cfg.cols == SETTINGS.cols


def test_decode_rejects_surface_mismatch():
    with pytest.raises(ValueError, match="cannot decode"):
        ScenarioGenome(surface="bss").decode_ess(SETTINGS)
    with pytest.raises(ValueError, match="cannot decode"):
        ScenarioGenome(surface="ess").decode_bss(SETTINGS)


def test_decode_settings_round_trip_and_topology():
    settings = DecodeSettings(rows=3, cols=2)
    assert DecodeSettings.from_dict(settings.to_dict()) == settings
    assert len(settings.ap_ids()) == 6
    # rows*(cols-1) horizontal + (rows-1)*cols vertical
    assert len(settings.links()) == 3 * 1 + 2 * 2
