"""Delta-debugging: greedy shrink with signature preservation."""

import dataclasses

from repro.faults import FrameLossRule, GilbertElliottParams, StationFault
from repro.redteam import BreachVerdict, ScenarioGenome, shrink_genome


def _fault(at=3.0, kind="any"):
    return StationFault(at=at, mode="crash", duration=4.0, kind=kind)


def _loss(ftype="ack", probability=0.4):
    return FrameLossRule(ftype=ftype, probability=probability,
                         start=1.0, end=9.0)


class CountingOracle:
    """Breach iff a voice-kind station fault is present and load >= 2."""

    def __init__(self, signature=("delivery",)):
        self.signature = signature
        self.calls = 0

    def __call__(self, genome):
        self.calls += 1
        breached = genome.load >= 2.0 and any(
            f.kind == "voice" for f in genome.station_faults
        )
        return BreachVerdict(
            breached=breached,
            score=round(genome.load, 6) if breached else 0.0,
            signature=self.signature if breached else (),
            metrics={},
        )


def test_shrink_drops_irrelevant_clauses_and_reduces_genes():
    genome = ScenarioGenome(
        surface="bss",
        load=4.0,
        stations=8,
        gilbert_elliott=GilbertElliottParams(p_good_to_bad=0.05, p_bad_to_good=0.3),
        frame_loss=(_loss("ack"), _loss("cf_poll")),
        station_faults=(_fault(kind="any"), _fault(kind="voice")),
    )
    oracle = CountingOracle()
    verdict = oracle(genome)
    assert verdict.breached and genome.fault_clauses == 5

    shrunk, shrunk_verdict, used = shrink_genome(
        genome, verdict, oracle, max_evals=200
    )
    # only the load threshold and the voice fault matter
    assert len(shrunk.station_faults) == 1
    assert shrunk.station_faults[0].kind == "voice"
    assert shrunk.station_faults[0].duration == 0.5  # halved to the floor
    assert shrunk.frame_loss == ()
    assert shrunk.gilbert_elliott is None
    assert shrunk.fault_clauses == 1
    assert shrunk.stations == 1
    assert shrunk.load == 2.0  # 4.0 halves once; 1.0 and 1.5 lose the breach
    assert shrunk_verdict.breached
    assert 0 < used <= 200


def test_shrink_preserves_the_original_signature():
    genome = ScenarioGenome(
        surface="bss",
        load=2.0,
        station_faults=(_fault(kind="voice"),),
        frame_loss=(_loss(),),
    )

    def oracle(g):
        # dropping the frame-loss rule swaps delivery for a qos breach:
        # the shrinker must refuse that trade
        if g.load >= 2.0 and g.frame_loss:
            return BreachVerdict(True, 5.0, ("delivery",), {})
        if g.load >= 2.0 and g.station_faults:
            return BreachVerdict(True, 9.0, ("qos:delay",), {})
        return BreachVerdict(False, 0.0, (), {})

    verdict = oracle(genome)
    assert verdict.signature == ("delivery",)
    shrunk, shrunk_verdict, _ = shrink_genome(genome, verdict, oracle)
    assert "delivery" in shrunk_verdict.signature
    assert shrunk.frame_loss  # the load-bearing clause survived


def test_shrink_respects_the_evaluation_budget():
    genome = ScenarioGenome(
        surface="bss",
        load=4.0,
        stations=8,
        frame_loss=(_loss(), _loss("cf_poll"), _loss("beacon")),
        station_faults=(_fault(kind="voice"),),
    )
    oracle = CountingOracle()
    verdict = oracle(genome)
    oracle.calls = 0
    _, _, used = shrink_genome(genome, verdict, oracle, max_evals=3)
    assert used == oracle.calls == 3


def test_unshrinkable_genome_comes_back_unchanged():
    from repro.faults import StationFault

    permanent = StationFault(at=3.0, mode="crash", duration=None,
                             kind="voice")
    genome = ScenarioGenome(
        surface="bss", load=2.0, stations=1, station_faults=(permanent,)
    )
    oracle = CountingOracle()
    verdict = oracle(genome)
    shrunk, shrunk_verdict, _ = shrink_genome(genome, verdict, oracle)
    # load 1.0 / 1.5 candidates lose the breach; a permanent crash has
    # no window to halve; nothing else to drop or reduce
    assert shrunk == genome
    assert shrunk_verdict == verdict


def test_window_halving_shortens_fault_durations():
    long_fault = StationFault(at=3.0, mode="freeze", duration=8.0,
                              kind="voice")
    genome = ScenarioGenome(surface="bss", load=2.0, stations=1,
                            station_faults=(long_fault,))

    def oracle(g):
        breached = g.load >= 2.0 and any(
            f.kind == "voice" and (f.duration or 0) >= 2.0
            for f in g.station_faults
        )
        return BreachVerdict(breached, 1.0 if breached else 0.0,
                             ("delivery",) if breached else (), {})

    shrunk, _, _ = shrink_genome(genome, oracle(genome), oracle)
    assert shrunk.station_faults[0].duration == 2.0
    assert shrunk == dataclasses.replace(
        genome,
        station_faults=(dataclasses.replace(long_fault, duration=2.0),),
    )
