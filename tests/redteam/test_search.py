"""Campaign engine: determinism, dedup, champions, archive flow."""

import json

import pytest

from repro.redteam import (
    BreachVerdict,
    CampaignConfig,
    DecodeSettings,
    ExecEvaluator,
    ObjectiveConfig,
    archived_keys,
    load_reproducers,
    run_campaign,
)


class FakeEvaluator:
    """Deterministic pure-function evaluator; counts every call."""

    def __init__(self):
        self.evaluations = 0
        self.batches = []

    def _verdict(self, genome):
        # breach iff overloaded with at least one fault clause injected
        breached = genome.load >= 2.0 and genome.fault_clauses > 0
        signature = ()
        if breached:
            signature = (
                ("delivery",) if genome.surface == "bss"
                else ("ess:handoff-drop",)
            )
        score = round(genome.load * (1 + genome.fault_clauses), 6)
        return BreachVerdict(
            breached=breached,
            score=score if breached else 0.0,
            signature=signature,
            metrics={"clauses": genome.fault_clauses},
        )

    def evaluate(self, genomes):
        self.evaluations += len(genomes)
        self.batches.append(len(genomes))
        return [self._verdict(g) for g in genomes]


def _report_bytes(config, **kwargs):
    report = run_campaign(config, FakeEvaluator(), **kwargs)
    return json.dumps(report.to_dict(), sort_keys=True)


# -- config validation ------------------------------------------------------

def test_campaign_config_validates():
    with pytest.raises(ValueError, match="budget"):
        CampaignConfig(budget=0)
    with pytest.raises(ValueError, match="surface"):
        CampaignConfig(surface="wlan")
    with pytest.raises(ValueError, match="explore_ratio"):
        CampaignConfig(explore_ratio=1.5)


# -- determinism ------------------------------------------------------------

@pytest.mark.parametrize("surface", ["bss", "ess", "both"])
def test_campaign_is_byte_deterministic(surface):
    config = CampaignConfig(
        budget=24, seed=11, surface=surface, batch=6, shrink=True
    )
    assert _report_bytes(config) == _report_bytes(config)


def test_different_seeds_walk_different_trajectories():
    a = CampaignConfig(budget=16, seed=1)
    b = CampaignConfig(budget=16, seed=2)
    assert _report_bytes(a) != _report_bytes(b)


# -- search mechanics -------------------------------------------------------

def test_budget_is_respected_and_batched():
    evaluator = FakeEvaluator()
    config = CampaignConfig(budget=20, seed=0, batch=8)
    report = run_campaign(config, evaluator)
    assert report.evaluated == 20
    # duplicates are served from the seen-cache, never re-evaluated
    assert evaluator.evaluations == report.unique_genomes
    assert evaluator.evaluations <= 20
    # final partial batch: 8 + 8 + 4 generated slots
    assert sum(evaluator.batches) == evaluator.evaluations


def test_champions_keep_best_score_per_signature():
    config = CampaignConfig(budget=32, seed=5, surface="both", batch=8)
    report = run_campaign(config, FakeEvaluator())
    assert report.breaches_found > 0
    signatures = [c.verdict.signature for c in report.champions]
    assert len(signatures) == len(set(signatures))
    for champ in report.champions:
        assert champ.verdict.breached
        assert champ.verdict.score > 0


def test_shrink_stats_do_not_pollute_search_counts():
    config = CampaignConfig(budget=16, seed=3, batch=8)
    plain = run_campaign(config, FakeEvaluator())
    shrunk = run_campaign(
        CampaignConfig(budget=16, seed=3, batch=8, shrink=True),
        FakeEvaluator(),
    )
    assert shrunk.unique_genomes == plain.unique_genomes
    assert shrunk.breaches_found == plain.breaches_found
    for champ in shrunk.champions:
        assert champ.shrunk is not None
        assert champ.shrunk.fault_clauses <= champ.genome.fault_clauses
        assert champ.shrunk_verdict.breached


# -- archive flow -----------------------------------------------------------

def test_first_campaign_archives_and_rerun_finds_nothing_new(tmp_path):
    corpus = tmp_path / "reproducers"
    config = CampaignConfig(budget=24, seed=11, batch=6, shrink=True)

    first = run_campaign(config, FakeEvaluator(), archive_dir=corpus)
    assert first.new_unarchived == len(first.champions) > 0
    fixtures = load_reproducers(corpus)
    assert len(fixtures) == len(first.champions)
    for champ in first.champions:
        assert champ.archived and champ.new
        assert champ.reproducer in {f"{r.name}.json" for r in fixtures}

    second = run_campaign(config, FakeEvaluator(), archive_dir=corpus)
    assert second.new_unarchived == 0
    assert all(not c.new for c in second.champions)
    # idempotent: the corpus did not grow
    assert archived_keys(corpus) == {r.genome.key() for r in fixtures}


def test_archive_none_counts_every_champion_as_new():
    config = CampaignConfig(budget=24, seed=11, batch=6)
    report = run_campaign(config, FakeEvaluator())
    assert report.new_unarchived == len(report.champions) > 0
    assert all(c.reproducer is None for c in report.champions)


# -- the real evaluator -----------------------------------------------------

class TestRealEvaluator:
    SETTINGS = DecodeSettings(sim_time=6.0, warmup=1.0)

    def _config(self):
        return CampaignConfig(
            budget=6,
            seed=0,
            surface="both",
            batch=6,
            settings=self.SETTINGS,
            objective=ObjectiveConfig(),
        )

    def _run(self, workers):
        from repro.exec import ExecutorConfig, SweepExecutor

        config = self._config()
        evaluator = ExecEvaluator(
            config.settings,
            config.objective,
            SweepExecutor(ExecutorConfig(workers=workers, cache_dir=None)),
        )
        report = run_campaign(config, evaluator)
        return json.dumps(report.to_dict(), sort_keys=True)

    def test_report_is_byte_identical_across_worker_counts(self):
        assert self._run(1) == self._run(2)
