"""Breach objective: rows and ESS reports -> BreachVerdict."""

import pytest

from repro.redteam import BreachVerdict, ObjectiveConfig, score_bss_row, score_ess_report


def _row(**overrides):
    """A minimal clean monitored result row."""
    row = {
        "voice_delivered": 100,
        "voice_losses": 0,
        "video_delivered": 50,
        "video_losses": 0,
        "invariant_violations": [],
        "faults": {"qos_breaches": []},
    }
    row.update(overrides)
    return row


def _ess_report(violations=(), drop_rate=0.0):
    return {
        "totals": {
            "handoff_drop_rate": drop_rate,
            "dropped_backhaul": 2,
            "dropped_ap_down": 1,
        },
        "conservation": {"violations": list(violations)},
    }


# -- bss surface ------------------------------------------------------------

def test_clean_row_is_not_breached():
    verdict = score_bss_row(_row())
    assert not verdict.breached
    assert verdict.signature == ()
    assert verdict.score == 0.0


def test_qos_breach_signature_carries_kind():
    row = _row(
        faults={
            "qos_breaches": [
                {"station": "v1", "kind": "jitter",
                 "measured": 0.004, "budget": 0.002},
                {"station": "v2", "kind": "delay",
                 "measured": 0.03, "budget": 0.02},
            ]
        }
    )
    verdict = score_bss_row(row)
    assert verdict.breached
    assert verdict.signature == ("qos:delay", "qos:jitter")
    # 2 breaches * 1.0 + worst ratio 2.0 * 10.0
    assert verdict.score == pytest.approx(22.0)
    assert verdict.metrics["qos_breaches"] == 2


def test_delivery_floor_breach():
    obj = ObjectiveConfig(min_delivery_ratio=0.90)
    verdict = score_bss_row(_row(voice_losses=50), obj)  # ratio 150/200
    assert verdict.signature == ("delivery",)
    assert verdict.score == pytest.approx(20.0 * 0.25)
    # fault-free boundary losses sit above the floor
    ok = score_bss_row(_row(voice_losses=5), obj)  # ratio ~0.967
    assert not ok.breached


def test_invariant_violation_dominates():
    row = _row(invariant_violations=["ghost frame delivered"])
    verdict = score_bss_row(row)
    assert verdict.signature == ("invariant",)
    assert verdict.score >= 100.0


# -- ess surface ------------------------------------------------------------

def test_clean_ess_report_passes():
    verdict = score_ess_report(_ess_report())
    assert not verdict.breached
    assert verdict.metrics["dropped_ap_down"] == 1


def test_ess_conservation_and_drop_rate_signatures():
    verdict = score_ess_report(
        _ess_report(violations=["epoch 3: created != resolved"],
                    drop_rate=0.4)
    )
    assert verdict.breached
    assert verdict.signature == ("ess:conservation", "ess:handoff-drop")
    assert verdict.score == pytest.approx(100.0 + 40.0 * 0.4)


def test_ess_drop_rate_threshold_is_exclusive():
    obj = ObjectiveConfig(max_handoff_drop_rate=0.25)
    at = score_ess_report(_ess_report(drop_rate=0.25), obj)
    above = score_ess_report(_ess_report(drop_rate=0.2501), obj)
    assert not at.breached
    assert above.signature == ("ess:handoff-drop",)


# -- verdict plumbing -------------------------------------------------------

def test_verdict_round_trip_and_subsumes():
    verdict = BreachVerdict(
        breached=True,
        score=12.5,
        signature=("delivery", "qos:delay"),
        metrics={"qos_breaches": 1},
    )
    assert BreachVerdict.from_dict(verdict.to_dict()) == verdict
    narrower = BreachVerdict(
        breached=True, score=3.0, signature=("qos:delay",), metrics={}
    )
    assert verdict.subsumes(narrower)
    assert not narrower.subsumes(verdict)


def test_objective_config_validates_and_round_trips():
    with pytest.raises(ValueError, match="min_delivery_ratio"):
        ObjectiveConfig(min_delivery_ratio=1.5)
    with pytest.raises(ValueError, match="max_handoff_drop_rate"):
        ObjectiveConfig(max_handoff_drop_rate=-0.1)
    obj = ObjectiveConfig(drop_weight=80.0)
    assert ObjectiveConfig.from_dict(obj.to_dict()) == obj
