"""Pin the phase-aware worker-utilization arithmetic with synthetic records.

The numbers here are worked out by hand, so any drift in how warm-up,
steady-state and queue-drain capacity enter ``worker_utilization`` (or
how the retired blended number survives as ``worker_utilization_raw``)
fails loudly with known-good values on both sides.
"""

import pytest

from repro.exec import PointRecord, RunTelemetry, phase_utilization


def _record(index: int, wall: float, status: str = "executed") -> PointRecord:
    return PointRecord(
        index=index, scheme="proposed", load=1.0, seed=index,
        status=status, wall_time=wall, attempts=1, sim_events=100,
    )


class TestPhaseUtilization:
    def test_hand_worked_example(self):
        # 4 workers, 3 s of steady state (12 worker-seconds of capacity)
        # plus 2 integrated busy-worker-seconds of drain; 10 busy
        # worker-seconds => 10 / (4*3 + 2)
        assert phase_utilization(
            busy_s=10.0, workers=4, steady_s=3.0, drain_capacity_s=2.0
        ) == pytest.approx(10.0 / 14.0)

    def test_warmup_contributes_no_capacity(self):
        # warm-up seconds never appear in the denominator: the same
        # busy/steady/drain numbers give the same answer regardless of
        # how long the pool took to spawn
        assert phase_utilization(5.0, 2, 3.0, 1.0) == pytest.approx(5.0 / 7.0)

    def test_zero_capacity_reports_zero(self):
        assert phase_utilization(0.0, 4, 0.0, 0.0) == 0.0

    def test_full_drain_tail_counts_only_busy_workers(self):
        # one straggler draining for 4 s on a 4-worker pool adds 4
        # worker-seconds of capacity, not 16
        assert phase_utilization(
            busy_s=8.0, workers=4, steady_s=1.0, drain_capacity_s=4.0
        ) == pytest.approx(1.0)


class TestSummaryArithmetic:
    def _telemetry(self) -> RunTelemetry:
        tel = RunTelemetry(workers=4)
        for i, wall in enumerate((4.0, 3.0, 2.0, 1.0)):
            tel.record(_record(i, wall))
        tel.busy_worker_s = 10.0
        # pin the run clock: 6 s elapsed = 1.5 warm-up + 3 steady + 1
        # drain + 0.5 teardown slack
        tel._started = 0.0
        tel._finished = 6.0
        return tel

    def test_phase_aware_utilization_uses_the_capacity_integral(self):
        tel = self._telemetry()
        tel.set_phases(
            warmup_s=1.5, steady_s=3.0, drain_s=1.0, capacity_s=14.0
        )
        tel.finish()
        summary = tel.summary()
        assert summary["worker_utilization"] == pytest.approx(10.0 / 14.0)
        assert summary["phases"] == {
            "warmup_s": 1.5, "steady_s": 3.0, "drain_s": 1.0,
            "capacity_s": 14.0,
        }
        # set_phases matches the helper given the same split
        assert summary["worker_utilization"] == pytest.approx(
            phase_utilization(10.0, 4, 3.0, 2.0)
        )

    def test_raw_utilization_still_blends_the_whole_run(self):
        tel = self._telemetry()
        tel.set_phases(
            warmup_s=1.5, steady_s=3.0, drain_s=1.0, capacity_s=14.0
        )
        summary = tel.summary()
        assert summary["wall_time"] == pytest.approx(6.0)
        assert summary["worker_utilization_raw"] == pytest.approx(
            10.0 / (4 * 6.0)
        )
        # the raw number charges warm-up + drain idling as lost
        # capacity, so it always reads lower than the phase-aware one
        assert summary["worker_utilization_raw"] < summary["worker_utilization"]

    def test_serial_runs_fall_back_to_raw(self):
        tel = RunTelemetry(workers=1)
        tel.record(_record(0, 2.0))
        tel.finish()
        summary = tel.summary()
        assert summary["phases"] is None
        assert summary["worker_utilization"] == summary["worker_utilization_raw"]

    def test_busy_worker_seconds_fall_back_to_executed_walls(self):
        # hand-built telemetry (no executor) never sets busy_worker_s;
        # the summary then derives busy from the executed walls
        tel = RunTelemetry(workers=2)
        tel.record(_record(0, 3.0))
        tel.record(_record(1, 1.0))
        tel.set_phases(warmup_s=0.5, steady_s=2.0, drain_s=0.0, capacity_s=4.0)
        tel.finish()
        assert tel.summary()["worker_utilization"] == pytest.approx(1.0)

    def test_failed_attempts_count_as_busy_time(self):
        tel = RunTelemetry(workers=2)
        tel.record(_record(0, 2.0))
        tel.record(_record(1, 0.0, status="failed"))
        tel.busy_worker_s = 3.5  # 2.0 executed + 1.5 failed-attempt
        tel.set_phases(warmup_s=0.2, steady_s=2.5, drain_s=0.0, capacity_s=5.0)
        tel.finish()
        summary = tel.summary()
        assert summary["worker_utilization"] == pytest.approx(3.5 / 5.0)
        assert summary["point_wall_total"] == pytest.approx(2.0)  # executed only

    def test_bench_entry_carries_the_phase_split(self):
        tel = self._telemetry()
        tel.set_phases(
            warmup_s=1.5, steady_s=3.0, drain_s=1.0, capacity_s=14.0
        )
        tel.finish()
        entry = tel.bench_entry(wall_s=5.0)
        assert entry["workers"] == 4
        assert entry["wall_s"] == 5.0
        assert entry["worker_utilization"] == pytest.approx(
            round(10.0 / 14.0, 4)
        )
        assert entry["worker_restarts"] == 0
        assert entry["phases"]["capacity_s"] == 14.0
