"""Determinism matrix: workers x execution mode, all byte-identical.

Every cell of ``workers in {1, 2, 4}`` x ``{warm, cold-resume-after-
kill, cached}`` must reproduce the committed golden quickstart row
byte-for-byte.  This is the end-to-end guarantee behind the warm-worker
rebuild: dispatch order, worker count, scheduler policy, resume path
and cache replay may change *how* a row is produced but never a single
byte of *what* is produced.
"""

import pytest

from repro.exec import ExecutorConfig, SweepExecutor, canonical_json
from tests.exec.test_golden_row import GOLDEN_PATH, golden_config

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def golden_bytes() -> str:
    return GOLDEN_PATH.read_text().strip()


def _run(executor: SweepExecutor) -> str:
    rows = executor.run([golden_config()])
    assert len(rows) == 1
    return canonical_json(rows[0])


class TestDeterminismMatrix:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_warm_pool_matches_golden(self, workers, golden_bytes):
        executor = SweepExecutor(ExecutorConfig(workers=workers))
        assert _run(executor) == golden_bytes
        assert executor.summary()["executed"] == 1

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_cold_resume_after_kill_matches_golden(
        self, workers, tmp_path, golden_bytes
    ):
        journal_path = tmp_path / "journal.jsonl"
        first = SweepExecutor(ExecutorConfig(journal=str(journal_path)))
        assert _run(first) == golden_bytes

        # kill mid-append: the journaled row is chopped in half, so the
        # cold process that picks the journal back up must re-run it
        lines = journal_path.read_text().splitlines()
        journal_path.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])

        resumed = SweepExecutor(
            ExecutorConfig(
                journal=str(journal_path), resume=True, workers=workers
            )
        )
        assert _run(resumed) == golden_bytes
        assert resumed.summary()["resumed"] == 0  # truncated row discarded
        assert resumed.summary()["executed"] == 1

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_cached_replay_matches_golden(self, workers, tmp_path, golden_bytes):
        cache_dir = str(tmp_path / "cache")
        primer = SweepExecutor(ExecutorConfig(cache_dir=cache_dir))
        assert _run(primer) == golden_bytes

        replay = SweepExecutor(
            ExecutorConfig(cache_dir=cache_dir, workers=workers)
        )
        assert _run(replay) == golden_bytes
        assert replay.summary()["cache_hits"] == 1
        assert replay.summary()["executed"] == 0
