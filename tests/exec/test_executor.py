"""SweepExecutor: determinism, caching, resume, timeout, retry, crashes.

The pool tests inject module-level point functions (picklable via the
fork start method) so they stay fast and can misbehave on demand; the
determinism test runs the real simulator both ways.
"""

import json
import os
import pathlib
import time

import pytest

from repro.exec import (
    ExecutorConfig,
    ResultCache,
    SweepExecutionError,
    SweepExecutor,
    SweepJournal,
    config_key,
)
from repro.network.bss import ScenarioConfig


def _grid(n: int, sim_time: float = 6.0) -> list[ScenarioConfig]:
    return [
        ScenarioConfig(seed=seed, sim_time=sim_time, warmup=1.0)
        for seed in range(1, n + 1)
    ]


def _canon(rows):
    return [json.dumps(r, sort_keys=True) for r in rows]


# -- module-level point functions (picklable into pool workers) -----------

def _tiny_point(config):
    return {"scheme": config.scheme, "load": config.load, "seed": config.seed}


def _sleepy_point(config):
    if config.seed == 2:
        time.sleep(1.5)
    return _tiny_point(config)


def _flaky_point(config):
    """Fails the first time each seed is attempted (cross-process marker)."""
    marker_dir = pathlib.Path(os.environ["REPRO_TEST_MARKER_DIR"])
    marker = marker_dir / f"seed-{config.seed}"
    if not marker.exists():
        marker.touch()
        raise RuntimeError(f"transient failure for seed {config.seed}")
    return _tiny_point(config)


def _crashy_point(config):
    """Hard-kills its worker process on the first attempt for seed 2."""
    marker_dir = pathlib.Path(os.environ["REPRO_TEST_MARKER_DIR"])
    marker = marker_dir / f"crash-{config.seed}"
    if config.seed == 2 and not marker.exists():
        marker.touch()
        os._exit(3)
    return _tiny_point(config)


def _always_failing_point(config):
    raise RuntimeError("permanently broken")


# -- determinism ----------------------------------------------------------

class TestDeterminism:
    def test_serial_and_pool_rows_identical(self):
        grid = _grid(4)
        serial = SweepExecutor(ExecutorConfig(workers=1)).run(grid)
        pooled = SweepExecutor(ExecutorConfig(workers=4)).run(grid)
        assert _canon(serial) == _canon(pooled)
        assert len(serial) == 4
        assert [r["seed"] for r in serial] == [1, 2, 3, 4]

    def test_rows_carry_resume_and_cache_keys(self):
        rows = SweepExecutor().run(_grid(1))
        row = rows[0]
        for field in ("scheme", "load", "seed", "sim_time", "warmup"):
            assert field in row
        assert row["events_processed"] > 0


# -- cache ----------------------------------------------------------------

class TestCaching:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        grid = _grid(2, sim_time=4.0)

        first = SweepExecutor(ExecutorConfig(cache_dir=cache_dir))
        rows1 = first.run(grid)
        assert first.summary()["executed"] == 2
        assert first.summary()["cache_misses"] == 2

        second = SweepExecutor(ExecutorConfig(cache_dir=cache_dir))
        rows2 = second.run(grid)
        assert second.summary()["executed"] == 0
        assert second.summary()["cache_hits"] == 2
        assert _canon(rows1) == _canon(rows2)

    def test_changed_config_misses(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        SweepExecutor(ExecutorConfig(cache_dir=cache_dir)).run(
            _grid(1, sim_time=4.0)
        )
        changed = [ScenarioConfig(seed=1, sim_time=4.0, warmup=1.0, load=2.0)]
        executor = SweepExecutor(ExecutorConfig(cache_dir=cache_dir))
        executor.run(changed)
        assert executor.summary()["executed"] == 1
        assert executor.summary()["cache_hits"] == 0


# -- checkpoint / resume --------------------------------------------------

class TestResume:
    def test_resume_skips_journaled_points(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        grid = _grid(4)

        # first run covers only half the grid, then "dies"
        SweepExecutor(
            ExecutorConfig(journal=journal), point_fn=_tiny_point
        ).run(grid[:2])

        calls = []

        def counting_point(config):
            calls.append(config.seed)
            return _tiny_point(config)

        executor = SweepExecutor(
            ExecutorConfig(journal=journal, resume=True),
            point_fn=counting_point,
        )
        rows = executor.run(grid)
        assert sorted(calls) == [3, 4]  # only the missing points ran
        assert executor.summary()["resumed"] == 2
        assert executor.summary()["executed"] == 2
        assert [r["seed"] for r in rows] == [1, 2, 3, 4]

    @pytest.mark.parametrize("resume_workers", [1, 2])
    def test_resume_after_kill_mid_append(self, tmp_path, resume_workers):
        """A journal with a truncated tail resumes the unfinished point.

        Parametrized over serial and warm-worker resume: the journal is
        written coordinator-side only, so a warm pool resumes a killed
        run exactly as a serial one does.
        """
        journal_path = tmp_path / "journal.jsonl"
        grid = _grid(3)
        SweepExecutor(
            ExecutorConfig(journal=str(journal_path)), point_fn=_tiny_point
        ).run(grid)

        # chop the last journaled row in half, as a SIGKILL would
        lines = journal_path.read_text().splitlines()
        journal_path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:10])

        executor = SweepExecutor(
            ExecutorConfig(
                journal=str(journal_path), resume=True, workers=resume_workers
            ),
            point_fn=_tiny_point,
        )
        rows = executor.run(grid)
        assert executor.summary()["resumed"] == 2
        assert executor.summary()["executed"] == 1
        assert [r["seed"] for r in rows] == [1, 2, 3]

    def test_resume_reruns_points_behind_corrupt_midfile_lines(
        self, tmp_path
    ):
        """Garbage in the middle of the journal loses only those rows."""
        journal_path = tmp_path / "journal.jsonl"
        grid = _grid(4)
        SweepExecutor(
            ExecutorConfig(journal=str(journal_path)), point_fn=_tiny_point
        ).run(grid)

        # corrupt rows 2 and 3 in place: one unparseable, one wrong shape
        lines = journal_path.read_text().splitlines()
        assert len(lines) == 5  # manifest + 4 rows
        lines[2] = lines[2][: len(lines[2]) // 2] + "#disk-rot"
        lines[3] = json.dumps({"key": 123, "row": "not-a-dict"})
        journal_path.write_text("\n".join(lines) + "\n")

        executor = SweepExecutor(
            ExecutorConfig(journal=str(journal_path), resume=True),
            point_fn=_tiny_point,
        )
        with pytest.warns(RuntimeWarning, match="skipped 2 corrupt"):
            rows = executor.run(grid)

        # every point is present: intact rows resumed, corrupt ones re-ran
        assert [r["seed"] for r in rows] == [1, 2, 3, 4]
        summary = executor.summary()
        assert summary["resumed"] == 2
        assert summary["executed"] == 2
        assert summary["journal_skipped_lines"] == 2

        # the re-run appended fresh rows for the lost keys: a second
        # resume skips the same corrupt lines but re-runs nothing
        again = SweepExecutor(
            ExecutorConfig(journal=str(journal_path), resume=True),
            point_fn=_tiny_point,
        )
        with pytest.warns(RuntimeWarning, match="skipped 2 corrupt"):
            again.run(grid)
        assert again.summary()["resumed"] == 4
        assert again.summary()["executed"] == 0
        assert again.summary()["journal_skipped_lines"] == 2

    def test_fresh_run_truncates_journal(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        SweepExecutor(
            ExecutorConfig(journal=journal), point_fn=_tiny_point
        ).run(_grid(2))
        SweepExecutor(
            ExecutorConfig(journal=journal), point_fn=_tiny_point
        ).run(_grid(1))
        assert len(SweepJournal(journal).load()) == 1

    def test_cached_points_are_journaled_for_later_resume(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        journal = str(tmp_path / "journal.jsonl")
        grid = _grid(2, sim_time=4.0)
        SweepExecutor(ExecutorConfig(cache_dir=cache_dir)).run(grid)
        SweepExecutor(
            ExecutorConfig(cache_dir=cache_dir, journal=journal)
        ).run(grid)
        assert len(SweepJournal(journal).load()) == 2


# -- retry / timeout / crashes -------------------------------------------

class TestFaultTolerance:
    def test_serial_retry_recovers(self):
        attempts = []

        def flaky(config):
            attempts.append(config.seed)
            if attempts.count(config.seed) == 1:
                raise RuntimeError("first try fails")
            return _tiny_point(config)

        executor = SweepExecutor(
            ExecutorConfig(workers=1, retries=1), point_fn=flaky
        )
        rows = executor.run(_grid(2))
        assert len(rows) == 2
        assert executor.summary()["retries"] == 2
        assert executor.summary()["failed"] == 0

    def test_serial_exhausted_retries_raise(self):
        executor = SweepExecutor(
            ExecutorConfig(workers=1, retries=1), point_fn=_always_failing_point
        )
        with pytest.raises(SweepExecutionError) as excinfo:
            executor.run(_grid(2))
        assert len(excinfo.value.failures) == 2

    def test_on_failure_skip_returns_survivors(self):
        def half_broken(config):
            if config.seed == 1:
                raise RuntimeError("nope")
            return _tiny_point(config)

        executor = SweepExecutor(
            ExecutorConfig(workers=1, retries=0, on_failure="skip"),
            point_fn=half_broken,
        )
        rows = executor.run(_grid(2))
        assert [r["seed"] for r in rows] == [2]
        assert executor.summary()["failed"] == 1

    def test_pool_retry_recovers(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_MARKER_DIR", str(tmp_path))
        executor = SweepExecutor(
            ExecutorConfig(workers=2, retries=1), point_fn=_flaky_point
        )
        rows = executor.run(_grid(3))
        assert [r["seed"] for r in rows] == [1, 2, 3]
        assert executor.summary()["retries"] == 3
        assert executor.summary()["failed"] == 0

    def test_pool_timeout_skips_wedged_point(self):
        executor = SweepExecutor(
            ExecutorConfig(
                workers=2, timeout=0.3, retries=0, on_failure="skip"
            ),
            point_fn=_sleepy_point,
        )
        rows = executor.run(_grid(3))
        assert [r["seed"] for r in rows] == [1, 3]  # seed 2 wedged
        summary = executor.summary()
        assert summary["timeouts"] >= 1
        assert summary["failed"] == 1
        # the wedged worker is restarted alone — never a full pool rebuild
        assert summary["worker_restarts"] >= 1
        assert summary["pool_rebuilds"] == 0

    def test_pool_worker_crash_is_retried(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_MARKER_DIR", str(tmp_path))
        executor = SweepExecutor(
            ExecutorConfig(workers=2, retries=1), point_fn=_crashy_point
        )
        rows = executor.run(_grid(3))
        assert [r["seed"] for r in rows] == [1, 2, 3]
        assert executor.summary()["worker_restarts"] >= 1
        assert executor.summary()["pool_rebuilds"] == 0
        assert executor.summary()["failed"] == 0


# -- config validation ----------------------------------------------------

class TestExecutorConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"chunk_size": 0},
            {"timeout": 0.0},
            {"retries": -1},
            {"on_failure": "explode"},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExecutorConfig(**kwargs)

    def test_summary_requires_a_run(self):
        with pytest.raises(RuntimeError):
            SweepExecutor().summary()

    def test_nondefault_chunk_size_warns_deprecated(self):
        with pytest.warns(DeprecationWarning, match="chunk_size"):
            ExecutorConfig(chunk_size=8)

    def test_default_chunk_size_stays_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ExecutorConfig()  # the default never warns

    def test_invalid_chunk_size_still_raises_not_warns(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ExecutorConfig(chunk_size=0)

    def test_telemetry_summary_shape(self, tmp_path):
        cache = str(tmp_path / "cache")
        executor = SweepExecutor(
            ExecutorConfig(cache_dir=cache), point_fn=_tiny_point
        )
        executor.run(_grid(2))
        summary = executor.summary()
        for field in (
            "total_points", "executed", "cache_hits", "cache_misses",
            "resumed", "failed", "retries", "timeouts", "workers",
            "wall_time", "point_wall_total", "worker_utilization",
            "sim_events",
        ):
            assert field in summary
        assert summary["total_points"] == 2
