"""Result cache: hit vs miss, corruption tolerance, clearing."""

from repro.exec import ResultCache, config_key
from repro.network.bss import ScenarioConfig


def test_miss_then_hit(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cfg = ScenarioConfig()
    key = config_key(cfg)

    assert cache.get(key) is None
    assert (cache.hits, cache.misses) == (0, 1)

    cache.put(key, {"scheme": "proposed", "x": 1.5}, cfg)
    assert cache.get(key) == {"scheme": "proposed", "x": 1.5}
    assert (cache.hits, cache.misses) == (1, 1)
    assert len(cache) == 1


def test_entries_are_self_describing(tmp_path):
    import json

    cache = ResultCache(tmp_path / "cache")
    cfg = ScenarioConfig(load=2.0)
    key = config_key(cfg)
    path = cache.put(key, {"x": 1}, cfg)
    entry = json.loads(path.read_text())
    assert entry["key"] == key
    assert entry["config"]["load"] == 2.0


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = config_key(ScenarioConfig())
    path = cache.put(key, {"x": 1})
    path.write_text("{not json")
    assert cache.get(key) is None


def test_clear_removes_everything(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    for seed in (1, 2, 3):
        cfg = ScenarioConfig(seed=seed)
        cache.put(config_key(cfg), {"seed": seed}, cfg)
    assert len(cache) == 3
    assert cache.clear() == 3
    assert len(cache) == 0


def test_distinct_configs_do_not_collide(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    a, b = ScenarioConfig(seed=1), ScenarioConfig(seed=2)
    cache.put(config_key(a), {"seed": 1}, a)
    cache.put(config_key(b), {"seed": 2}, b)
    assert cache.get(config_key(a)) == {"seed": 1}
    assert cache.get(config_key(b)) == {"seed": 2}
