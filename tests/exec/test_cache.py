"""Result cache: hit vs miss, corruption tolerance, clearing."""

from repro.exec import ResultCache, config_key
from repro.network.bss import ScenarioConfig


def test_miss_then_hit(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cfg = ScenarioConfig()
    key = config_key(cfg)

    assert cache.get(key) is None
    assert (cache.hits, cache.misses) == (0, 1)

    cache.put(key, {"scheme": "proposed", "x": 1.5}, cfg)
    assert cache.get(key) == {"scheme": "proposed", "x": 1.5}
    assert (cache.hits, cache.misses) == (1, 1)
    assert len(cache) == 1


def test_entries_are_self_describing(tmp_path):
    import json

    cache = ResultCache(tmp_path / "cache")
    cfg = ScenarioConfig(load=2.0)
    key = config_key(cfg)
    path = cache.put(key, {"x": 1}, cfg)
    entry = json.loads(path.read_text())
    assert entry["key"] == key
    assert entry["config"]["load"] == 2.0


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = config_key(ScenarioConfig())
    path = cache.put(key, {"x": 1})
    path.write_text("{not json")
    assert cache.get(key) is None


def test_clear_removes_everything(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    for seed in (1, 2, 3):
        cfg = ScenarioConfig(seed=seed)
        cache.put(config_key(cfg), {"seed": seed}, cfg)
    assert len(cache) == 3
    assert cache.clear() == 3
    assert len(cache) == 0


def test_sweep_recovers_from_corrupt_cache_entry(tmp_path):
    """A garbled entry is recomputed and rewritten, not fatal.

    Pins the ``except (OSError, ValueError)`` miss path in
    ``ResultCache.get`` at the executor level: corruption costs one
    re-simulation, never a crash or a poisoned row.
    """
    from repro.exec import ExecutorConfig, SweepExecutor

    def _point(config):
        return {"seed": config.seed, "load": config.load}

    cache_dir = tmp_path / "cache"
    grid = [ScenarioConfig(seed=s, sim_time=4.0, warmup=1.0) for s in (1, 2)]
    first = SweepExecutor(
        ExecutorConfig(cache_dir=str(cache_dir)), point_fn=_point
    )
    rows1 = first.run(grid)

    # garble exactly one entry on disk
    victim = cache_dir / "results" / f"{config_key(grid[0])}.json"
    victim.write_text('{"key": "truncated')

    second = SweepExecutor(
        ExecutorConfig(cache_dir=str(cache_dir)), point_fn=_point
    )
    rows2 = second.run(grid)
    assert rows2 == rows1
    summary = second.summary()
    assert summary["executed"] == 1  # only the garbled point re-ran
    assert summary["cache_hits"] == 1

    # the recomputation rewrote the entry: a third run is all hits
    third = SweepExecutor(
        ExecutorConfig(cache_dir=str(cache_dir)), point_fn=_point
    )
    third.run(grid)
    assert third.summary()["cache_hits"] == 2
    assert third.summary()["executed"] == 0


def test_tmp_orphans_are_invisible_and_swept(tmp_path):
    """A crash between temp-write and rename leaves ``.json.tmp``
    behind: scans skip it, ``clear`` removes it without counting it."""
    cache = ResultCache(tmp_path / "cache")
    cfg = ScenarioConfig()
    cache.put(config_key(cfg), {"x": 1}, cfg)
    orphan = cache.results_dir / "0abc.json.tmp"
    orphan.write_text('{"format": 5, "key": "0abc", "row": {}}')

    assert len(cache) == 1
    assert [e.key for e in cache.entries()] == [config_key(cfg)]
    assert cache.clear() == 1  # the orphan is not an entry
    assert not orphan.exists()
    assert list(cache.results_dir.iterdir()) == []


def test_entries_skip_corruption_without_charging_misses(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    good = ScenarioConfig(seed=1)
    cache.put(config_key(good), {"x": 1}, good)
    (cache.results_dir / "bad.json").write_text("{not json")
    (cache.results_dir / "foreign.json").write_text(
        '{"format": 0, "key": "foreign", "row": {}}'
    )

    scanned = list(cache.entries())
    assert [e.key for e in scanned] == [config_key(good)]
    assert scanned[0].config["seed"] == 1
    assert (cache.hits, cache.misses) == (0, 0)


def test_hit_miss_counters_flow_through_registry(tmp_path):
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    cache = ResultCache(tmp_path / "cache", registry=registry)
    cfg = ScenarioConfig()
    key = config_key(cfg)
    cache.get(key)
    cache.put(key, {"x": 1}, cfg)
    cache.get(key)

    counters = registry.snapshot()["counters"]
    assert counters["result_cache_hits"] == 1
    assert counters["result_cache_misses"] == 1
    # the int facades read the same instruments
    assert (cache.hits, cache.misses) == (1, 1)


def test_distinct_configs_do_not_collide(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    a, b = ScenarioConfig(seed=1), ScenarioConfig(seed=2)
    cache.put(config_key(a), {"seed": 1}, a)
    cache.put(config_key(b), {"seed": 2}, b)
    assert cache.get(config_key(a)) == {"seed": 1}
    assert cache.get(config_key(b)) == {"seed": 2}
