"""Property tests for the cost-aware scheduler — pure model, no processes.

Randomized point-cost vectors are list-scheduled through
``simulate_schedule`` and checked against the two scheduler
invariants:

* **LPT bound** — longest-first makespan never exceeds Graham's
  ``(4/3 - 1/(3m)) x OPT`` guarantee (OPT brute-forced on small
  instances) and the order-free ``total/m + max`` greedy bound on
  large random ones;
* **greedy dispatch** — no worker-second is idle while the queue is
  non-empty, for either policy.

Plus unit coverage of the cost model's prior and its online
refinement reordering the pending tail.
"""

import itertools
import random
import types

import pytest

from repro.exec import CostModel, PointScheduler, simulate_schedule
from repro.network.bss import ScenarioConfig


def _brute_force_opt(costs, workers):
    """Exact minimum makespan by enumerating all worker assignments."""
    best = sum(costs)
    for assignment in itertools.product(range(workers), repeat=len(costs)):
        loads = [0.0] * workers
        for cost, worker in zip(costs, assignment):
            loads[worker] += cost
        best = min(best, max(loads))
    return best


def _random_costs(rng, n, scale=10.0):
    return [rng.uniform(0.01, scale) for _ in range(n)]


class TestMakespanBounds:
    @pytest.mark.parametrize("seed", range(20))
    @pytest.mark.parametrize("workers", [2, 3])
    def test_lpt_within_graham_bound_of_optimum(self, seed, workers):
        rng = random.Random(seed)
        costs = _random_costs(rng, rng.randint(1, 8))
        opt = _brute_force_opt(costs, workers)
        result = simulate_schedule(costs, workers, policy="cost")
        bound = (4.0 / 3.0 - 1.0 / (3.0 * workers)) * opt
        assert result["makespan"] <= bound + 1e-9

    @pytest.mark.parametrize("seed", range(30))
    def test_greedy_bound_on_large_random_instances(self, seed):
        rng = random.Random(1000 + seed)
        workers = rng.randint(2, 8)
        costs = _random_costs(rng, rng.randint(1, 200))
        for policy in ("cost", "fifo"):
            result = simulate_schedule(costs, workers, policy=policy)
            bound = sum(costs) / workers + max(costs)
            assert result["makespan"] <= bound + 1e-9

    def test_lpt_beats_fifo_on_the_classic_straggler_tail(self):
        # a long point submitted last straggles a FIFO schedule; LPT
        # front-loads it and the short points pack the other worker
        costs = [1.0, 1.0, 1.0, 1.0, 4.0]
        fifo = simulate_schedule(costs, 2, policy="fifo")["makespan"]
        lpt = simulate_schedule(costs, 2, policy="cost")["makespan"]
        assert lpt == pytest.approx(4.0)
        assert fifo == pytest.approx(6.0)
        assert lpt < fifo


class TestGreedyDispatch:
    @pytest.mark.parametrize("seed", range(30))
    def test_no_idle_worker_while_queue_nonempty(self, seed):
        rng = random.Random(2000 + seed)
        workers = rng.randint(1, 6)
        costs = _random_costs(rng, rng.randint(0, 60))
        for policy in ("cost", "fifo"):
            result = simulate_schedule(costs, workers, policy=policy)
            assert result["idle_before_empty"] == pytest.approx(0.0)

    def test_idle_metric_detects_a_non_greedy_schedule(self):
        # sanity: the invariant metric is not vacuous — hand-build a
        # schedule where worker 1 sits idle while a point waits
        import repro.exec.scheduler as sched

        result = sched.simulate_schedule([2.0, 1.0], workers=1)
        # force both points onto one worker with a gap
        result["assignments"] = [(0, 0, 0.0, 2.0), (1, 0, 3.0, 4.0)]
        # recompute by hand: queue empties at t=3, worker idle 2..3
        t_empty = 3.0
        idle = 0.0
        cursor = 0.0
        for _i, _w, start, end in result["assignments"]:
            idle += max(0.0, min(start, t_empty) - cursor)
            cursor = max(cursor, end)
        assert idle == pytest.approx(1.0)


def _config(scheme="proposed", load=1.0, sim_time=10.0, ess=None):
    return types.SimpleNamespace(
        scheme=scheme, load=load, sim_time=sim_time, ess=ess
    )


class TestCostModel:
    def test_prior_scales_with_load_and_duration(self):
        model = CostModel()
        assert model.prior(_config(load=3.0)) > model.prior(_config(load=0.5))
        assert model.prior(_config(sim_time=60.0)) > model.prior(
            _config(sim_time=10.0)
        )

    def test_prior_counts_ess_handoff_arrivals(self):
        model = CostModel()
        shard = _config(
            ess=types.SimpleNamespace(handoff_arrivals=((1.0, "voice"),) * 8)
        )
        assert model.prior(shard) > model.prior(_config())

    def test_prior_works_on_real_scenario_configs(self):
        model = CostModel()
        light = ScenarioConfig(seed=1, sim_time=10.0, warmup=1.0, load=0.5)
        heavy = ScenarioConfig(seed=1, sim_time=10.0, warmup=1.0, load=3.0)
        assert model.estimate(heavy) > model.estimate(light)

    def test_observation_refines_cross_scheme_ordering(self):
        model = CostModel()
        a = _config(scheme="proposed", load=1.0)
        b = _config(scheme="conventional", load=1.1)
        # prior says b is costlier...
        assert model.estimate(b) > model.estimate(a)
        # ...until observed walls say scheme "proposed" runs 10x slower
        for _ in range(5):
            model.observe(a, wall=10.0 * model.prior(a))
            model.observe(b, wall=1.0 * model.prior(b))
        assert model.estimate(a) > model.estimate(b)

    def test_zero_wall_and_zero_prior_observations_are_ignored(self):
        model = CostModel()
        model.observe(_config(), wall=0.0)
        model.observe(_config(sim_time=0.0, load=0.0), wall=1.0)
        assert model.observations == 1  # only the valid one counted


class TestPointScheduler:
    def test_cost_policy_pops_longest_expected_first(self):
        scheduler = PointScheduler("cost")
        scheduler.add(0, _config(load=0.5))
        scheduler.add(1, _config(load=3.0))
        scheduler.add(2, _config(load=1.0))
        order = [scheduler.pop()[0] for _ in range(3)]
        assert order == [1, 2, 0]

    def test_fifo_policy_preserves_grid_order(self):
        scheduler = PointScheduler("fifo")
        for i, load in enumerate((0.5, 3.0, 1.0)):
            scheduler.add(i, _config(load=load))
        assert [scheduler.pop()[0] for _ in range(3)] == [0, 1, 2]

    def test_ties_resolve_in_arrival_order(self):
        scheduler = PointScheduler("cost")
        for i in range(4):
            scheduler.add(i, _config())
        assert [scheduler.pop()[0] for _ in range(4)] == [0, 1, 2, 3]

    def test_online_refinement_reorders_the_pending_tail(self):
        scheduler = PointScheduler("cost")
        scheduler.add(0, _config(scheme="proposed", load=1.0))
        scheduler.add(1, _config(scheme="conventional", load=1.1))
        # completed "proposed" points came back 10x over their prior —
        # the still-pending proposed point must now dispatch first
        probe = _config(scheme="proposed")
        for _ in range(5):
            scheduler.observe(probe, wall=10.0 * scheduler.model.prior(probe))
        assert scheduler.pop()[0] == 0

    def test_duplicate_pending_index_rejected(self):
        scheduler = PointScheduler("cost")
        scheduler.add(0, _config())
        with pytest.raises(ValueError):
            scheduler.add(0, _config())

    def test_pop_from_empty_raises(self):
        with pytest.raises(IndexError):
            PointScheduler("fifo").pop()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            PointScheduler("random")
        with pytest.raises(ValueError):
            simulate_schedule([1.0], 2, policy="random")
        with pytest.raises(ValueError):
            simulate_schedule([1.0], 0)
