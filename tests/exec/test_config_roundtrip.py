"""ScenarioConfig serialization: lossless round-trip and stable keys."""

import dataclasses
import json

import pytest

from repro.exec import KEY_FORMAT, config_key
from repro.network.bss import ScenarioConfig
from repro.traffic.video import VideoParams
from repro.traffic.voice import VoiceParams


def _custom_config() -> ScenarioConfig:
    return ScenarioConfig(
        scheme="proposed-multipoll",
        seed=7,
        sim_time=30.0,
        warmup=3.0,
        load=1.5,
        multipoll_size=6,
        txop_packets=2,
        n_data_stations=2,
        voice=VoiceParams(rate=20.0, max_jitter=0.025, mean_on=1.0),
        video=VideoParams(avg_rate=50.0, burstiness=5.0, max_delay=0.040),
        mobility="neighborhood",
        adaptive_cw=False,
        alphas=(2, 6, 8),
        beta=1,
    )


class TestRoundTrip:
    def test_default_config_roundtrips(self):
        cfg = ScenarioConfig()
        assert ScenarioConfig.from_dict(cfg.to_dict()) == cfg

    def test_custom_config_roundtrips_through_json(self):
        cfg = _custom_config()
        rebuilt = ScenarioConfig.from_dict(json.loads(json.dumps(cfg.to_dict())))
        assert rebuilt == cfg
        # nested params come back as real dataclasses, not dicts
        assert isinstance(rebuilt.voice, VoiceParams)
        assert isinstance(rebuilt.video, VideoParams)
        assert isinstance(rebuilt.alphas, tuple)

    def test_to_dict_covers_every_field(self):
        # exact configs serialize without `engine` (pre-accel dicts and
        # format-5 cache keys stay valid); non-exact configs carry it
        every_field = {f.name for f in dataclasses.fields(ScenarioConfig)}
        assert set(ScenarioConfig().to_dict()) == every_field - {"engine"}
        batched = dataclasses.replace(ScenarioConfig(), engine="batched")
        assert set(batched.to_dict()) == every_field

    def test_from_dict_validates(self):
        d = ScenarioConfig().to_dict()
        d["scheme"] = "bogus"
        with pytest.raises(ValueError):
            ScenarioConfig.from_dict(d)


class TestConfigKey:
    def test_same_config_same_key(self):
        assert config_key(_custom_config()) == config_key(_custom_config())

    def test_key_changes_with_any_sweep_axis(self):
        base = ScenarioConfig()
        for change in (
            {"scheme": "conventional"},
            {"load": 2.0},
            {"seed": 5},
            {"sim_time": 90.0},
            {"monitor_invariants": True},
        ):
            varied = dataclasses.replace(base, **change)
            assert config_key(varied) != config_key(base), change

    def test_key_survives_json_roundtrip(self):
        cfg = _custom_config()
        rebuilt = ScenarioConfig.from_dict(json.loads(json.dumps(cfg.to_dict())))
        assert config_key(rebuilt) == config_key(cfg)

    def test_key_is_hex_sha256_and_format_versioned(self):
        key = config_key(ScenarioConfig())
        assert len(key) == 64
        int(key, 16)  # raises if not hex
        # 5: ScenarioConfig grew the ess EssCellContext field
        assert KEY_FORMAT == 5
