"""Checkpoint journal: load, truncation tolerance, resume semantics."""

from repro.exec import SweepJournal


def test_missing_journal_loads_empty(tmp_path):
    journal = SweepJournal(tmp_path / "none.jsonl")
    assert journal.load() == {}
    assert not journal.exists()


def test_append_and_load(tmp_path):
    journal = SweepJournal(tmp_path / "j.jsonl")
    journal.start()
    journal.append("k1", {"seed": 1})
    journal.append("k2", {"seed": 2})
    assert journal.load() == {"k1": {"seed": 1}, "k2": {"seed": 2}}


def test_truncated_tail_line_is_skipped(tmp_path):
    """A kill mid-append leaves a partial line; load must survive it."""
    journal = SweepJournal(tmp_path / "j.jsonl")
    journal.start()
    journal.append("k1", {"seed": 1})
    with journal.path.open("a") as fh:
        fh.write('{"key": "k2", "row": {"se')  # no newline: killed mid-write
    assert journal.load() == {"k1": {"seed": 1}}


def test_start_without_resume_rewrites(tmp_path):
    journal = SweepJournal(tmp_path / "j.jsonl")
    journal.start()
    journal.append("k1", {"seed": 1})
    journal.start(resume=False)
    assert journal.load() == {}


def test_start_with_resume_preserves(tmp_path):
    journal = SweepJournal(tmp_path / "j.jsonl")
    journal.start()
    journal.append("k1", {"seed": 1})
    journal.start(resume=True)
    assert journal.load() == {"k1": {"seed": 1}}


def test_foreign_manifest_ignored(tmp_path):
    path = tmp_path / "j.jsonl"
    path.write_text('{"something": "else"}\n{"key": "k1", "row": {}}\n')
    assert SweepJournal(path).load() == {}


def test_midfile_corruption_skips_warns_and_counts(tmp_path):
    import json

    import pytest

    journal = SweepJournal(tmp_path / "j.jsonl")
    journal.start()
    for key in ("k1", "k2", "k3"):
        journal.append(key, {"key": key})
    journal.close()

    # rot the middle line only; the tail stays intact
    lines = journal.path.read_text().splitlines()
    lines[2] = lines[2][:8] + "}}}garbage"
    journal.path.write_text("\n".join(lines) + "\n")

    with pytest.warns(RuntimeWarning, match="skipped 1 corrupt"):
        done = journal.load()
    assert sorted(done) == ["k1", "k3"]  # lines past the rot survive
    assert journal.skipped_lines == 1

    # wrong-shaped but parseable entries count as corrupt too
    with journal.path.open("a") as fh:
        fh.write(json.dumps({"key": 42, "row": []}) + "\n")
        fh.write(json.dumps(["not", "an", "entry"]) + "\n")
    with pytest.warns(RuntimeWarning, match="skipped 3 corrupt"):
        journal.load()
    assert journal.skipped_lines == 3


def test_clean_load_resets_the_skip_counter(tmp_path):
    journal = SweepJournal(tmp_path / "j.jsonl")
    journal.start()
    journal.append("k1", {"seed": 1})
    journal.close()
    journal.skipped_lines = 7  # stale from a previous corrupt load
    assert journal.load() == {"k1": {"seed": 1}}
    assert journal.skipped_lines == 0
