"""Fault injection against the warm worker pool.

A wedged worker (sleeps past the point timeout) and a crashed worker
(``os._exit`` mid-point) must each trigger a *targeted single-worker
restart* — never a whole-pool rebuild — while the sibling workers'
in-flight points complete without being re-run.  Execution counts are
tracked through marker files so a silent re-dispatch shows up as a
second line.
"""

import os
import pathlib
import signal
import time

import pytest

from repro.exec import (
    ExecutorConfig,
    SweepExecutionError,
    SweepExecutor,
    WorkerPool,
    config_delta,
)
from repro.network.bss import ScenarioConfig


def _grid(n: int) -> list[ScenarioConfig]:
    return [
        ScenarioConfig(seed=seed, sim_time=6.0, warmup=1.0)
        for seed in range(1, n + 1)
    ]


def _count_execution(seed: int) -> None:
    marker_dir = pathlib.Path(os.environ["REPRO_TEST_MARKER_DIR"])
    with (marker_dir / f"count-{seed}").open("a") as fh:
        fh.write("x\n")


def _executions(tmp_path: pathlib.Path, seed: int) -> int:
    marker = tmp_path / f"count-{seed}"
    return len(marker.read_text().splitlines()) if marker.exists() else 0


# -- module-level point functions (picklable into pool workers) -----------

def _wedging_point(config):
    """Seed 2 sleeps far past any timeout; the rest take ~0.2 s."""
    _count_execution(config.seed)
    time.sleep(30.0 if config.seed == 2 else 0.2)
    return {"seed": config.seed}


def _crashing_once_point(config):
    """Seed 2 hard-kills its worker on the first attempt only."""
    _count_execution(config.seed)
    marker_dir = pathlib.Path(os.environ["REPRO_TEST_MARKER_DIR"])
    crashed = marker_dir / "crashed-once"
    if config.seed == 2 and not crashed.exists():
        crashed.touch()
        os._exit(3)
    time.sleep(0.2)
    return {"seed": config.seed}


def _always_crashing_point(config):
    _count_execution(config.seed)
    if config.seed == 2:
        os._exit(3)
    time.sleep(0.2)
    return {"seed": config.seed}


def _slow_point(config):
    time.sleep(0.3)
    return {"seed": config.seed}


# -- wedged worker ---------------------------------------------------------

class TestWedgedWorker:
    def test_wedge_restarts_one_worker_and_spares_inflight_siblings(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TEST_MARKER_DIR", str(tmp_path))
        executor = SweepExecutor(
            ExecutorConfig(
                workers=2, timeout=0.6, retries=0, on_failure="skip"
            ),
            point_fn=_wedging_point,
        )
        rows = executor.run(_grid(4))

        # the wedged point is the only casualty
        assert [r["seed"] for r in rows] == [1, 3, 4]
        summary = executor.summary()
        assert summary["timeouts"] == 1
        assert summary["worker_restarts"] == 1
        assert summary["pool_rebuilds"] == 0

        # failures records the wedged point with its timeout error
        assert len(executor.failures) == 1
        failure = executor.failures[0]
        assert failure.config.seed == 2
        assert "timed out" in failure.error

        # sibling points — including whichever was in-flight when the
        # wedge was detected — ran exactly once each, never re-run
        for seed in (1, 3, 4):
            assert _executions(tmp_path, seed) == 1

    def test_wedge_with_retry_reruns_only_the_wedged_point(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TEST_MARKER_DIR", str(tmp_path))
        executor = SweepExecutor(
            ExecutorConfig(
                workers=2, timeout=0.6, retries=1, on_failure="skip"
            ),
            point_fn=_wedging_point,
        )
        executor.run(_grid(3))
        summary = executor.summary()
        assert summary["timeouts"] == 2  # both attempts wedge
        assert summary["worker_restarts"] == 2
        assert summary["pool_rebuilds"] == 0
        assert _executions(tmp_path, 2) == 2  # the retry, nothing else
        assert _executions(tmp_path, 1) == 1
        assert _executions(tmp_path, 3) == 1


# -- crashed worker --------------------------------------------------------

class TestCrashedWorker:
    def test_crash_restarts_one_worker_and_retry_recovers(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TEST_MARKER_DIR", str(tmp_path))
        executor = SweepExecutor(
            ExecutorConfig(workers=2, retries=1), point_fn=_crashing_once_point
        )
        rows = executor.run(_grid(4))

        assert [r["seed"] for r in rows] == [1, 2, 3, 4]
        summary = executor.summary()
        assert summary["worker_restarts"] == 1
        assert summary["pool_rebuilds"] == 0
        assert summary["failed"] == 0

        # seed 2 ran twice (crash + successful retry); siblings once
        assert _executions(tmp_path, 2) == 2
        for seed in (1, 3, 4):
            assert _executions(tmp_path, seed) == 1

    def test_crash_without_retries_lands_in_failures(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TEST_MARKER_DIR", str(tmp_path))
        executor = SweepExecutor(
            ExecutorConfig(workers=2, retries=0), point_fn=_always_crashing_point
        )
        with pytest.raises(SweepExecutionError) as excinfo:
            executor.run(_grid(3))
        assert [f.config.seed for f in excinfo.value.failures] == [2]
        assert executor.summary()["worker_restarts"] == 1
        assert executor.summary()["pool_rebuilds"] == 0
        # the survivors still ran exactly once despite the sibling crash
        assert _executions(tmp_path, 1) == 1
        assert _executions(tmp_path, 3) == 1


# -- pool-level restart mechanics ------------------------------------------

class TestWorkerPoolRestart:
    def test_external_sigkill_is_detected_and_slot_replaced(self):
        base = ScenarioConfig(seed=1, sim_time=6.0, warmup=1.0).to_dict()
        pool = WorkerPool(2, base, _slow_point)
        try:
            pool.wait_ready()
            assert pool.ready_count() == 2

            victim = pool.workers[0]
            pool.dispatch(
                victim,
                task_id=1,
                delta=config_delta(
                    base, ScenarioConfig(seed=2, sim_time=6.0, warmup=1.0).to_dict()
                ),
            )
            os.kill(victim.process.pid, signal.SIGKILL)

            dead = []
            deadline = time.perf_counter() + 10.0
            while not dead and time.perf_counter() < deadline:
                _messages, dead = pool.poll(0.2)
            assert dead == [victim]

            pool.restart(victim)
            assert pool.restarts == 1
            replacement = pool.workers[0]
            assert replacement is not victim
            assert pool.wait_ready() >= 0.0
            assert pool.ready_count() == 2
        finally:
            pool.shutdown()
