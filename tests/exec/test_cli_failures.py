"""`python -m repro sweep` must exit nonzero when points permanently
fail after retries, in both serial and pool mode, and the executor must
keep a failure record in skip mode."""

import pytest

import repro.exec.executor as executor_mod
from repro.__main__ import main
from repro.exec import ExecutorConfig, SweepExecutionError, SweepExecutor
from repro.network.bss import ScenarioConfig


def _exploding_point_fn(config: ScenarioConfig) -> dict:
    if config.scheme == "conventional":
        raise RuntimeError(f"injected fault at seed={config.seed}")
    return {
        "scheme": config.scheme,
        "load": config.load,
        "seed": config.seed,
        "events_processed": 1,
    }


@pytest.fixture
def broken_default_point_fn(monkeypatch):
    """Make the CLI's worker function fail for one scheme.

    Patched on the module attribute: serial mode resolves
    ``default_point_fn`` at call time, and pool mode inherits the
    patched module through fork, so both paths see the fault.
    """
    monkeypatch.setattr(executor_mod, "default_point_fn", _exploding_point_fn)


SWEEP_ARGS = [
    "sweep", "--loads", "1.0", "--seeds", "1", "--time", "5",
    "--no-cache", "--journal", "journal.jsonl",
]


class TestSweepCliExitCode:
    def test_serial_permanent_failure_exits_two(
        self, tmp_path, monkeypatch, capsys, broken_default_point_fn
    ):
        monkeypatch.chdir(tmp_path)
        assert main(SWEEP_ARGS) == 2
        err = capsys.readouterr().err
        assert "permanently failed after retries" in err
        assert "injected fault" in err
        assert "conventional" in err

    def test_pool_permanent_failure_exits_two(
        self, tmp_path, monkeypatch, capsys, broken_default_point_fn
    ):
        monkeypatch.chdir(tmp_path)
        assert main(SWEEP_ARGS + ["--workers", "2"]) == 2
        assert "permanently failed after retries" in capsys.readouterr().err

    def test_healthy_subset_still_exits_zero(
        self, tmp_path, monkeypatch, capsys, broken_default_point_fn
    ):
        monkeypatch.chdir(tmp_path)
        assert main(SWEEP_ARGS + ["--schemes", "proposed"]) == 0


class TestSkipModeFailureRecord:
    def test_failures_attribute_survives_skip_mode(self):
        executor = SweepExecutor(
            ExecutorConfig(retries=0, on_failure="skip"),
            point_fn=_exploding_point_fn,
        )
        grid = [
            ScenarioConfig(scheme=s, seed=1, sim_time=5.0, warmup=1.0)
            for s in ("proposed", "conventional")
        ]
        rows = executor.run(grid)
        assert len(rows) == 1  # the failed point is dropped, not raised
        assert len(executor.failures) == 1
        assert executor.failures[0].config.scheme == "conventional"
        assert "injected fault" in executor.failures[0].error

    def test_raise_mode_carries_the_same_record(self):
        executor = SweepExecutor(
            ExecutorConfig(retries=0), point_fn=_exploding_point_fn
        )
        grid = [
            ScenarioConfig(scheme="conventional", seed=1, sim_time=5.0, warmup=1.0)
        ]
        with pytest.raises(SweepExecutionError) as excinfo:
            executor.run(grid)
        assert executor.failures == excinfo.value.failures
