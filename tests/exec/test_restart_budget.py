"""Restart-storm guard: per-worker budgets, backoff, pool exhaustion.

A poison point that hard-kills every worker it touches must not spin
the pool through unbounded kill/respawn cycles: each slot gets
``max_worker_restarts`` respawns, then retires, and the point that
retired the last-hope slot fails permanently.  When every slot is
retired the drain loop fails the remaining queue instead of hanging.
"""

import os
import time

import pytest

from repro.exec import ExecutorConfig, SweepExecutionError, SweepExecutor
from repro.network.bss import ScenarioConfig


def _grid(n: int) -> list[ScenarioConfig]:
    return [
        ScenarioConfig(seed=seed, sim_time=6.0, warmup=1.0)
        for seed in range(1, n + 1)
    ]


# -- module-level point functions (picklable into pool workers) -----------

def _poison_point(config):
    """Seed 2 hard-kills whichever worker runs it, every attempt."""
    if config.seed == 2:
        os._exit(3)
    time.sleep(0.1)
    return {"seed": config.seed}


def _all_poison_point(config):
    os._exit(3)


class TestConfigValidation:
    def test_rejects_negative_budget_and_backoff(self):
        with pytest.raises(ValueError, match="max_worker_restarts"):
            ExecutorConfig(max_worker_restarts=-1)
        with pytest.raises(ValueError, match="restart_backoff"):
            ExecutorConfig(restart_backoff=-0.5)


class TestRestartBudget:
    def test_poison_point_fails_permanently_when_a_slot_retires(self):
        executor = SweepExecutor(
            ExecutorConfig(
                workers=2,
                retries=10,
                on_failure="skip",
                max_worker_restarts=1,
                restart_backoff=0.0,
            ),
            point_fn=_poison_point,
        )
        rows = executor.run(_grid(4))

        # the survivors all completed despite the crash storm
        assert [r["seed"] for r in rows] == [1, 3, 4]
        assert len(executor.failures) == 1
        failure = executor.failures[0]
        assert failure.config.seed == 2
        assert "restart budget" in failure.error

        summary = executor.summary()
        assert summary["restart_budget_exhausted"] == 1
        # the retried poison burned respawns but never more than the
        # per-slot budget allows across both slots
        assert 1 <= summary["worker_restarts"] <= 2

    def test_raise_mode_surfaces_budget_exhaustion(self):
        executor = SweepExecutor(
            ExecutorConfig(
                workers=2,
                retries=10,
                on_failure="raise",
                max_worker_restarts=0,
                restart_backoff=0.0,
            ),
            point_fn=_poison_point,
        )
        with pytest.raises(SweepExecutionError) as excinfo:
            executor.run(_grid(3))
        assert any(
            "restart budget" in f.error for f in excinfo.value.failures
        )

    def test_exhausted_pool_fails_the_remaining_queue(self):
        executor = SweepExecutor(
            ExecutorConfig(
                workers=2,
                retries=10,
                on_failure="skip",
                max_worker_restarts=0,
                restart_backoff=0.0,
            ),
            point_fn=_all_poison_point,
        )
        rows = executor.run(_grid(6))

        assert rows == []
        assert len(executor.failures) == 6
        assert {f.config.seed for f in executor.failures} == set(
            range(1, 7)
        )
        # two slots died in-flight; the queued rest drained as failures
        drained = [
            f for f in executor.failures if "no workers left" in f.error
        ]
        assert len(drained) == 4
        summary = executor.summary()
        assert summary["restart_budget_exhausted"] == 2
        assert summary["worker_restarts"] == 0

    def test_backoff_delays_respawns_exponentially(self):
        executor = SweepExecutor(
            ExecutorConfig(
                workers=2,
                retries=3,
                on_failure="skip",
                max_worker_restarts=2,
                restart_backoff=0.2,
            ),
            point_fn=_poison_point,
        )
        start = time.perf_counter()
        rows = executor.run(_grid(3))
        elapsed = time.perf_counter() - start

        assert [r["seed"] for r in rows] == [1, 3]
        # at least two respawns happened, each sleeping 0.2 * 2**(n-1)
        # on its slot: the run cannot finish faster than the backoff
        assert executor.summary()["worker_restarts"] >= 2
        assert elapsed >= 0.4
