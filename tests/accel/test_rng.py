"""Property tests for the counter-keyed batched RNG.

The adapter's contract (module docstring of :mod:`repro.accel.rng`):
column *i*'s draw *k* is a pure function of ``(seed, i, k)``, so the
per-column sequences are invariant under every round-size
interleaving.  ``reference_uniform`` implements the documented scalar
recurrence in pure Python integers and serves as the oracle for every
other path — vectorized batches, the list fast path, scalar streams,
and prefetched blocks.
"""

import numpy as np
import pytest

from repro.accel.rng import PHI, BatchedRngAdapter, mix64

SEED = 1234
COLUMNS = 6


def reference_table(adapter, draws=40):
    """``ref[c][k]`` per the documented scalar recurrence."""
    return [
        [adapter.reference_uniform(c, k) for k in range(draws)]
        for c in range(adapter.columns)
    ]


class TestScalarRecurrence:
    def test_reference_values_are_uniform_floats(self):
        adapter = BatchedRngAdapter(SEED, COLUMNS)
        values = [adapter.reference_uniform(0, k) for k in range(1000)]
        assert all(0.0 <= v < 1.0 for v in values)
        # splitmix64 output should look uniform even at this sample size
        assert 0.4 < sum(values) / len(values) < 0.6
        assert len(set(values)) == len(values)

    def test_columns_are_distinct_streams(self):
        adapter = BatchedRngAdapter(SEED, COLUMNS)
        first = [adapter.reference_uniform(c, 0) for c in range(COLUMNS)]
        assert len(set(first)) == COLUMNS

    def test_seed_changes_every_column(self):
        a = BatchedRngAdapter(SEED, COLUMNS)
        b = BatchedRngAdapter(SEED + 1, COLUMNS)
        for c in range(COLUMNS):
            assert a.reference_uniform(c, 0) != b.reference_uniform(c, 0)

    def test_vectorized_mix64_matches_python_ints(self):
        # the numpy finalizer must agree with the masked-int recurrence
        # the oracle uses (guards against silent dtype promotion)
        xs = np.array([0, 1, 2**63, 2**64 - 1, 0xDEADBEEF], dtype=np.uint64)
        from repro.accel.rng import _mix64_py

        out = mix64(xs + PHI)
        for x, o in zip(xs.tolist(), out.tolist()):
            assert o == _mix64_py((x + int(PHI)) & ((1 << 64) - 1))


class TestInterleavingInvariance:
    """The headline property: round shape never changes any column."""

    @pytest.mark.parametrize(
        "rounds",
        [
            # every column alone, in order
            [[c] for c in range(COLUMNS)] * 8,
            # full-width rounds
            [list(range(COLUMNS))] * 8,
            # ragged subsets, shifting membership each round
            [[0, 2, 4], [1, 3], [5], [0, 1, 2, 3, 4, 5], [4, 5], [2]] * 4,
            # repeats consume consecutive counters left to right
            [[0, 0, 1], [1, 0], [2, 2, 2, 3], [3]] * 4,
            # wide rounds exercising the numpy (> SMALL_BATCH) path
            [list(range(COLUMNS)) * 8, [0, 5] * 20, list(range(COLUMNS))] * 3,
        ],
        ids=["singles", "full", "ragged", "repeats", "wide"],
    )
    def test_uniforms_match_oracle_under_interleaving(self, rounds):
        adapter = BatchedRngAdapter(SEED, COLUMNS)
        ref = reference_table(adapter, draws=200)
        next_k = [0] * COLUMNS
        for round_cols in rounds:
            got = adapter.uniforms(np.asarray(round_cols))
            for c, v in zip(round_cols, got.tolist()):
                assert v == ref[c][next_k[c]]
                next_k[c] += 1

    def test_uniforms_list_is_the_same_sequence(self):
        a = BatchedRngAdapter(SEED, COLUMNS)
        b = BatchedRngAdapter(SEED, COLUMNS)
        rounds = [[0, 1, 2], [3], [1, 4, 5, 0], [2, 2], [5, 4, 3, 2, 1, 0]]
        for cols in rounds:
            va = a.uniforms(np.asarray(cols)).tolist()
            vb = b.uniforms_list(cols)
            assert va == vb

    def test_integers_consume_one_counter_per_value(self):
        adapter = BatchedRngAdapter(SEED, COLUMNS)
        ref = reference_table(adapter)
        vals = adapter.integers(np.array([0, 1, 0]), 32)
        assert vals.tolist() == [
            int(ref[0][0] * 32), int(ref[1][0] * 32), int(ref[0][1] * 32)
        ]


class TestColumnStream:
    def test_scalar_stream_continues_the_column_sequence(self):
        adapter = BatchedRngAdapter(SEED, COLUMNS)
        ref = reference_table(adapter)
        # interleave batched rounds with scalar stream draws: one
        # shared counter per column, whoever draws gets the next value
        stream = adapter.stream(2)
        assert stream.random() == ref[2][0]
        adapter.uniforms(np.array([2, 2]))  # consumes k=1, 2
        assert stream.random() == ref[2][3]

    def test_integers_maps_the_next_uniform(self):
        adapter = BatchedRngAdapter(SEED, COLUMNS)
        ref = reference_table(adapter)
        stream = adapter.stream(1)
        assert stream.integers(16) == int(ref[1][0] * 16)
        assert stream.integers(4, 12) == 4 + int(ref[1][1] * 8)

    def test_out_of_range_column_rejected(self):
        adapter = BatchedRngAdapter(SEED, COLUMNS)
        with pytest.raises(ValueError):
            adapter.stream(COLUMNS)

    @pytest.mark.parametrize("block", [1, 3, 64])
    def test_prefetched_blocks_serve_identical_values(self, block):
        adapter = BatchedRngAdapter(SEED, 2)
        ref = reference_table(adapter, draws=200)
        stream = adapter.stream(0)
        stream.enable_prefetch(block)
        got = [stream.random() for _ in range(150)]
        assert got == ref[0][:150]

    def test_prefetch_rejects_empty_block(self):
        stream = BatchedRngAdapter(SEED, 1).stream(0)
        with pytest.raises(ValueError):
            stream.enable_prefetch(0)


class TestAdapterValidation:
    def test_rejects_zero_columns(self):
        with pytest.raises(ValueError):
            BatchedRngAdapter(SEED, 0)

    def test_same_seed_same_sequences(self):
        a = BatchedRngAdapter(SEED, 3)
        b = BatchedRngAdapter(SEED, 3)
        cols = np.array([0, 1, 2, 1])
        assert a.uniforms(cols).tolist() == b.uniforms(cols).tolist()
