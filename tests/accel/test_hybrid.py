"""Hybrid tier: saturation detection, analytic closure, refusals.

The hybrid engine runs the exact event-driven scenario until the
saturation detector fires, then answers the rest of the horizon with
the Bianchi fixed-point closure from :mod:`repro.core.capacity`.  Rows
that took the switch are flagged ``fidelity="analytic"``; rows that
never saturated are full exact runs flagged ``fidelity="exact"``.
"""

import dataclasses

import pytest

from repro.accel import run_scenario
from repro.accel.hybrid import run_hybrid
from repro.faults import FaultPlan, FrameLossRule
from repro.network.bss import ScenarioConfig
from repro.obs import TraceConfig


def hybrid_config(**overrides) -> ScenarioConfig:
    """A saturating pure-DCF point (the ``hybrid_saturated`` shape)."""
    base = dict(
        scheme="conventional",
        seed=7,
        sim_time=30.0,
        warmup=2.0,
        load=20.0,
        n_data_stations=8,
        new_voice_rate=0.0,
        new_video_rate=0.0,
        handoff_voice_rate=0.0,
        handoff_video_rate=0.0,
        engine="hybrid",
    )
    base.update(overrides)
    return ScenarioConfig(**base)


class TestAnalyticSwitch:
    def test_saturated_point_switches_to_analytic(self):
        row = run_scenario(hybrid_config())
        assert row["engine"] == "hybrid"
        assert row["fidelity"] == "analytic"
        # the switch happens a few detector windows past warmup, far
        # short of the horizon — that gap is the whole speedup
        assert 0.0 < row["analytic_switch_time"] < 10.0
        assert row["sim_time"] == 30.0

    def test_analytic_subdict_exposes_model_internals(self):
        row = run_scenario(hybrid_config())
        model = row["analytic"]
        assert 0.0 < model["tau"] < 1.0
        assert 0.0 < model["failure_probability"] < 1.0
        assert 0.0 < model["saturation_throughput"] <= 1.0
        assert model["synthesized_delivered"] > 0
        assert model["span"] == pytest.approx(
            30.0 - row["analytic_switch_time"]
        )

    def test_analytic_row_is_deterministic(self):
        from repro.exec import canonical_json

        a = run_scenario(hybrid_config())
        b = run_scenario(hybrid_config())
        assert canonical_json(a) == canonical_json(b)

    def test_synthesized_delivery_dominates_the_row(self):
        # almost the whole horizon is analytic; the closure's MSDUs
        # must account for most of the reported deliveries
        row = run_scenario(hybrid_config())
        assert row["analytic"]["synthesized_delivered"] > row["data_delivered"] / 2


class TestExactFallback:
    def test_unsaturated_point_stays_exact(self):
        row = run_scenario(
            hybrid_config(load=0.3, n_data_stations=2, sim_time=8.0)
        )
        assert row["engine"] == "hybrid"
        assert row["fidelity"] == "exact"
        assert "analytic" not in row
        assert "analytic_switch_time" not in row

    def test_detector_tuning_is_respected(self):
        # an unreachable streak requirement means the switch can never
        # fire inside the horizon, even on the saturating point
        row = run_hybrid(hybrid_config(sim_time=6.0), consecutive=1000)
        assert row["fidelity"] == "exact"

    def test_detector_rejects_bad_tuning(self):
        with pytest.raises(ValueError):
            run_hybrid(hybrid_config(sim_time=6.0), occupancy=1.1)
        with pytest.raises(ValueError):
            run_hybrid(hybrid_config(sim_time=6.0), window=0.0)
        with pytest.raises(ValueError):
            run_hybrid(hybrid_config(sim_time=6.0), consecutive=0)


class TestRefusals:
    def test_config_refuses_fault_plan(self):
        with pytest.raises(ValueError, match="hybrid"):
            hybrid_config(
                faults=FaultPlan(frame_loss=(FrameLossRule("cf_poll", 0.1),))
            )

    def test_config_refuses_trace(self):
        with pytest.raises(ValueError, match="hybrid"):
            hybrid_config(trace=TraceConfig())

    def test_run_hybrid_guards_post_hoc_replacement(self):
        # dataclasses.replace can bypass __post_init__ ordering games;
        # the runner re-checks
        cfg = hybrid_config()
        object.__setattr__(
            cfg, "faults",
            FaultPlan(frame_loss=(FrameLossRule("cf_poll", 0.1),)),
        )
        with pytest.raises(ValueError, match="refuses"):
            run_hybrid(cfg)
