"""Batched engine tier: golden row, determinism, key format, accounting.

The batched tier has its **own** committed golden fixture — it is a
different numerical path from the exact engine (counter-keyed RNG,
per-round vectorized draws) and must never be compared byte-for-byte
against exact rows.  What it must do is reproduce *itself* exactly,
leave exact keys/fixtures untouched, and model the same physics
closely enough that its event accounting lands near the exact run.

Regenerate the fixture deliberately with::

    PYTHONPATH=src python - <<'EOF'
    from repro.exec import SweepExecutor, canonical_json
    from tests.accel.test_engine import batched_golden_config
    row = SweepExecutor().run([batched_golden_config()])[0]
    print(canonical_json(row))
    EOF
"""

import dataclasses
import json
import pathlib

import pytest

from repro.accel import run_scenario
from repro.accel.engine import fast_path_eligible
from repro.exec import SweepExecutor, canonical_json, config_key
from repro.network.bss import BssScenario, ScenarioConfig

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_batched_row.json"


def batched_golden_config(**overrides) -> ScenarioConfig:
    """The ``batched_end_to_end`` benchmark point (pure-DCF, saturating)."""
    base = dict(
        scheme="conventional",
        seed=7,
        sim_time=10.0,
        warmup=1.0,
        load=6.0,
        n_data_stations=4,
        new_voice_rate=0.0,
        new_video_rate=0.0,
        handoff_voice_rate=0.0,
        handoff_video_rate=0.0,
        engine="batched",
    )
    base.update(overrides)
    return ScenarioConfig(**base)


@pytest.fixture(scope="module")
def golden_bytes() -> str:
    return GOLDEN_PATH.read_text().strip()


class TestBatchedGoldenRow:
    def test_fixture_is_valid_canonical_json(self, golden_bytes):
        row = json.loads(golden_bytes)
        assert canonical_json(row) == golden_bytes
        assert row["engine"] == "batched"
        assert row["scheme"] == "conventional" and row["seed"] == 7

    def test_executor_run_reproduces_fixture(self, golden_bytes):
        rows = SweepExecutor().run([batched_golden_config()])
        assert len(rows) == 1
        assert canonical_json(rows[0]) == golden_bytes

    def test_direct_run_is_deterministic(self):
        a = run_scenario(batched_golden_config())
        b = run_scenario(batched_golden_config())
        assert canonical_json(a) == canonical_json(b)

    def test_seed_changes_the_row(self, golden_bytes):
        row = run_scenario(batched_golden_config(seed=8))
        assert canonical_json(row) != golden_bytes


class TestKeyFormat:
    """Format 6 applies to accel points only; exact keys are untouched."""

    def test_batched_key_differs_from_exact(self):
        batched = batched_golden_config()
        exact = dataclasses.replace(batched, engine="exact")
        assert config_key(batched) != config_key(exact)

    def test_exact_to_dict_omits_engine(self):
        exact = dataclasses.replace(batched_golden_config(), engine="exact")
        assert "engine" not in exact.to_dict()
        assert "engine" in batched_golden_config().to_dict()

    def test_exact_key_matches_pre_accel_construction(self):
        # a config built without naming engine at all hashes the same
        # as one explicitly exact: existing caches stay valid
        kwargs = dict(
            scheme="proposed", seed=1, sim_time=12.0, warmup=2.0,
        )
        assert config_key(ScenarioConfig(**kwargs)) == config_key(
            ScenarioConfig(**kwargs, engine="exact")
        )

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            batched_golden_config(engine="warp")


class TestEventAccounting:
    def test_modeled_events_near_exact_run(self):
        """The fast path's modeled fire count tracks the exact engine.

        The accounting table in :mod:`repro.accel.engine` maps modeled
        exchanges onto the fires the exact engine would dispatch; the
        two runs draw different RNG streams so the counts differ, but
        a gap beyond ~40% would mean the accounting (or the physics)
        has drifted.
        """
        batched = run_scenario(batched_golden_config())
        exact = BssScenario(
            dataclasses.replace(batched_golden_config(), engine="exact")
        ).run()
        ratio = batched["events_processed"] / exact["events_processed"]
        assert 0.6 < ratio < 1.4

    def test_throughput_tracks_exact_run(self):
        batched = run_scenario(batched_golden_config())
        exact = BssScenario(
            dataclasses.replace(batched_golden_config(), engine="exact")
        ).run()
        # saturated homogeneous DCF: both engines should deliver
        # statistically comparable MSDU counts
        ratio = batched["data_delivered"] / exact["data_delivered"]
        assert 0.8 < ratio < 1.25


class TestDispatch:
    def test_fast_path_covers_the_golden_point(self):
        assert fast_path_eligible(batched_golden_config())

    def test_general_shape_still_runs_batched(self):
        # real-time traffic disqualifies the fast path; the batched
        # tier falls back to the exact scenario machinery rewired onto
        # counter-keyed streams and still tags the row
        cfg = batched_golden_config(
            new_voice_rate=0.3, sim_time=4.0, warmup=0.5
        )
        assert not fast_path_eligible(cfg)
        row = run_scenario(cfg)
        assert row["engine"] == "batched"
        assert canonical_json(row) == canonical_json(run_scenario(cfg))

    def test_exact_rows_carry_no_engine_tag(self):
        cfg = dataclasses.replace(
            batched_golden_config(sim_time=3.0), engine="exact"
        )
        row = BssScenario(cfg).run()
        assert "engine" not in row
