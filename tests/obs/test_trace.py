"""TraceConfig/TraceRecorder: filtering, ring, schema, determinism."""

import json

import pytest

from repro.obs import (
    CATEGORIES,
    TraceConfig,
    TraceRecorder,
    TraceSchemaError,
    validate_trace_file,
    validate_trace_line,
)


class TestTraceConfig:
    def test_defaults_record_everything(self):
        cfg = TraceConfig()
        assert cfg.categories == CATEGORIES
        assert cfg.capacity == 65536
        assert cfg.snapshot_interval == 1.0

    def test_categories_normalize_to_canonical_order(self):
        a = TraceConfig(categories=("token", "cfp"))
        b = TraceConfig(categories=("cfp", "token"))
        assert a.categories == b.categories == ("cfp", "token")
        assert a == b
        assert hash(a) == hash(b)

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError, match="unknown trace categories"):
            TraceConfig(categories=("cfp", "nope"))

    def test_empty_categories_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            TraceConfig(categories=())

    def test_negative_knobs_rejected(self):
        with pytest.raises(ValueError):
            TraceConfig(capacity=-1)
        with pytest.raises(ValueError):
            TraceConfig(snapshot_interval=-0.1)

    def test_dict_roundtrip(self):
        cfg = TraceConfig(
            categories=("frame", "fault"), capacity=128, snapshot_interval=0.0
        )
        rebuilt = TraceConfig.from_dict(json.loads(json.dumps(cfg.to_dict())))
        assert rebuilt == cfg


class TestTraceRecorder:
    def test_emit_and_read_back(self):
        rec = TraceRecorder()
        rec.emit(0.5, "cfp", "start", max_duration=0.05)
        rec.emit(0.6, "cfp", "end", duration=0.1)
        events = list(rec.events())
        assert len(events) == 2
        t, seq, cat, ev, fields = events[0]
        assert (t, seq, cat, ev) == (0.5, 1, "cfp", "start")
        assert fields == {"max_duration": 0.05}

    def test_unwanted_categories_are_dropped(self):
        rec = TraceRecorder(TraceConfig(categories=("token",)))
        assert rec.wants("token") and not rec.wants("frame")
        rec.emit(0.0, "frame", "tx")
        rec.emit(0.0, "token", "grant")
        assert rec.emitted == 1
        assert [e[2] for e in rec.events()] == ["token"]

    def test_ring_evicts_oldest(self):
        rec = TraceRecorder(TraceConfig(capacity=3))
        for i in range(5):
            rec.emit(float(i), "frame", "tx", i=i)
        assert rec.emitted == 5
        assert len(rec) == 3
        assert rec.dropped == 2
        assert [f["i"] for *_x, f in rec.events()] == [2, 3, 4]

    def test_counts_by_category(self):
        rec = TraceRecorder()
        rec.emit(0.0, "frame", "tx")
        rec.emit(0.0, "frame", "tx")
        rec.emit(0.0, "token", "grant")
        assert rec.counts_by_category() == {"frame": 2, "token": 1}

    def test_jsonl_lines_sorted_and_compact(self):
        rec = TraceRecorder()
        rec.emit(1.0, "backoff", "draw", station="s1", slots=7)
        (line,) = rec.jsonl_lines()
        assert line == (
            '{"cat":"backoff","ev":"draw","seq":1,"slots":7,'
            '"station":"s1","t":1.0}'
        )

    def test_reserved_field_name_rejected_at_export(self):
        rec = TraceRecorder()
        rec.emit(0.0, "frame", "tx", seq=9)
        with pytest.raises(ValueError, match="reserved"):
            list(rec.jsonl_lines())

    def test_export_roundtrips_through_validator(self, tmp_path):
        rec = TraceRecorder()
        for i in range(10):
            rec.emit(i * 0.1, "cfp", "poll", stations=[f"s{i}"])
        path = tmp_path / "trace.jsonl"
        assert rec.export_jsonl(str(path)) == 10
        assert validate_trace_file(str(path)) == 10


class TestSchemaValidation:
    def test_good_line(self):
        record = validate_trace_line(
            '{"t": 0.25, "seq": 3, "cat": "token", "ev": "miss", "misses": 2}'
        )
        assert record["misses"] == 2

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            "[1, 2]",
            '{"seq": 1, "cat": "cfp", "ev": "x"}',  # missing t
            '{"t": -1, "seq": 1, "cat": "cfp", "ev": "x"}',
            '{"t": 0, "seq": 0, "cat": "cfp", "ev": "x"}',
            '{"t": 0, "seq": 1, "cat": "bogus", "ev": "x"}',
            '{"t": 0, "seq": 1, "cat": "cfp", "ev": ""}',
        ],
    )
    def test_bad_lines_raise(self, line):
        with pytest.raises(TraceSchemaError):
            validate_trace_line(line)

    def test_file_rejects_nonmonotonic_seq(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"t": 0, "seq": 2, "cat": "cfp", "ev": "a"}\n'
            '{"t": 1, "seq": 2, "cat": "cfp", "ev": "b"}\n'
        )
        with pytest.raises(TraceSchemaError, match="not increasing"):
            validate_trace_file(str(path))

    def test_file_rejects_time_going_backwards(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"t": 1.0, "seq": 1, "cat": "cfp", "ev": "a"}\n'
            '{"t": 0.5, "seq": 2, "cat": "cfp", "ev": "b"}\n'
        )
        with pytest.raises(TraceSchemaError, match="backwards"):
            validate_trace_file(str(path))
