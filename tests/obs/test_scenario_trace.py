"""End-to-end tracing through BssScenario: the observability contract.

Three guarantees the subsystem makes:

* **off means off** — a trace-free config builds no recorder, leaves
  every instrumented component's ``trace`` attribute ``None``, and its
  result row carries no ``obs`` key (golden-row byte identity);
* **determinism** — the same traced config run twice emits a
  byte-identical JSONL trace and identical metrics snapshots;
* **identity** — the trace config is part of the point's content
  address, and only wanted categories are wired.
"""

import dataclasses

import pytest

from repro.exec.hashing import config_key
from repro.network import BssScenario, ScenarioConfig
from repro.obs import TraceConfig, validate_trace_file


def traced_config(sim_time=6.0, seed=3, trace=None, **overrides):
    return ScenarioConfig(
        scheme="proposed",
        seed=seed,
        sim_time=sim_time,
        warmup=1.0,
        new_voice_rate=0.3,
        new_video_rate=0.2,
        handoff_voice_rate=0.15,
        handoff_video_rate=0.1,
        mean_holding=20.0,
        trace=trace,
        **overrides,
    )


class TestTracingDisabled:
    @pytest.fixture(scope="class")
    def scenario(self):
        scenario = BssScenario(traced_config(sim_time=4.0))
        scenario.results = scenario.run()
        return scenario

    def test_no_recorder_is_built(self, scenario):
        assert scenario.trace is None

    def test_every_instrumented_site_sees_none(self, scenario):
        assert scenario.channel.trace is None
        assert scenario.ap.coordinator.trace is None
        assert scenario.ap.policy.trace is None
        assert scenario.ap.trace is None
        assert scenario.call_generator.trace is None
        for station in scenario.data_stations:
            assert station.dcf.trace is None
        for station in scenario.ap.stations.values():
            assert station.dcf.trace is None

    def test_result_row_has_no_obs_key(self, scenario):
        assert "obs" not in scenario.results

    def test_no_periodic_snapshots_are_armed(self, scenario):
        assert scenario.metrics.snapshots == []


class TestTracingEnabled:
    @pytest.fixture(scope="class")
    def run_pair(self):
        cfg = traced_config(trace=TraceConfig())

        def one():
            scenario = BssScenario(cfg)
            results = scenario.run()
            return scenario, results

        return one(), one()

    def test_trace_jsonl_is_byte_identical_across_runs(self, run_pair):
        (s1, _), (s2, _) = run_pair
        lines1 = list(s1.trace.jsonl_lines())
        lines2 = list(s2.trace.jsonl_lines())
        assert lines1, "traced run emitted no events"
        assert lines1 == lines2

    def test_exported_files_are_byte_identical(self, run_pair, tmp_path):
        (s1, _), (s2, _) = run_pair
        p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        s1.trace.export_jsonl(str(p1))
        s2.trace.export_jsonl(str(p2))
        assert p1.read_bytes() == p2.read_bytes()
        assert validate_trace_file(str(p1)) == len(s1.trace)

    def test_all_hot_categories_fired(self, run_pair):
        (s1, _), _ = run_pair
        counts = s1.trace.counts_by_category()
        for cat in ("frame", "backoff", "cfp", "token", "admission"):
            assert counts.get(cat, 0) > 0, cat

    def test_results_obs_summary(self, run_pair):
        (s1, r1), (_, r2) = run_pair
        assert r1["obs"]["trace_emitted"] == s1.trace.emitted
        assert r1["obs"]["trace_counts"] == s1.trace.counts_by_category()
        assert r1["obs"] == r2["obs"]

    def test_metrics_snapshots_identical_and_periodic(self, run_pair):
        (s1, r1), (s2, _) = run_pair
        assert s1.metrics.snapshots == s2.metrics.snapshots
        assert len(s1.metrics.snapshots) == 6  # 1 Hz over [1, 6]
        assert r1["obs"]["metrics_snapshots"] == 6

    def test_traced_and_untraced_results_agree_on_physics(self, run_pair):
        # tracing must observe, not perturb: apart from the snapshot
        # timer's own firings, the simulated point is the same with and
        # without the recorder attached
        (s1, traced), _ = run_pair
        untraced = BssScenario(traced_config()).run()
        snapshot_events = len(s1.metrics.snapshots)
        assert traced["events_processed"] == (
            untraced["events_processed"] + snapshot_events
        )
        for key in ("data_delivered", "voice_delivered", "video_delivered",
                    "calls_blocked", "calls_dropped"):
            assert traced[key] == untraced[key], key


class TestCategoryFiltering:
    def test_only_wanted_categories_are_wired(self):
        cfg = traced_config(
            sim_time=2.0, trace=TraceConfig(categories=("cfp",))
        )
        scenario = BssScenario(cfg)
        assert scenario.ap.coordinator.trace is scenario.trace
        assert scenario.channel.trace is None
        assert scenario.ap.policy.trace is None
        assert scenario.ap.trace is None
        assert scenario.call_generator.trace is None

    def test_filtered_run_records_only_that_category(self):
        cfg = traced_config(trace=TraceConfig(categories=("token",)))
        scenario = BssScenario(cfg)
        scenario.run()
        counts = scenario.trace.counts_by_category()
        assert set(counts) == {"token"}
        assert counts["token"] > 0

    def test_snapshots_can_be_disabled(self):
        cfg = traced_config(
            sim_time=2.0, trace=TraceConfig(snapshot_interval=0.0)
        )
        scenario = BssScenario(cfg)
        scenario.run()
        assert scenario.metrics.snapshots == []


class TestPointIdentity:
    def test_trace_field_changes_the_config_key(self):
        base = traced_config()
        traced = dataclasses.replace(base, trace=TraceConfig())
        assert config_key(base) != config_key(traced)

    def test_equivalent_trace_configs_share_a_key(self):
        a = dataclasses.replace(
            traced_config(), trace=TraceConfig(categories=("cfp", "token"))
        )
        b = dataclasses.replace(
            traced_config(), trace=TraceConfig(categories=("token", "cfp"))
        )
        assert config_key(a) == config_key(b)

    def test_config_dict_roundtrip_with_trace(self):
        import json

        cfg = dataclasses.replace(
            traced_config(), trace=TraceConfig(capacity=99)
        )
        rebuilt = ScenarioConfig.from_dict(
            json.loads(json.dumps(cfg.to_dict()))
        )
        assert rebuilt == cfg
        assert config_key(rebuilt) == config_key(cfg)

    def test_ring_capacity_is_honoured_in_a_real_run(self):
        cfg = traced_config(trace=TraceConfig(capacity=64))
        scenario = BssScenario(cfg)
        results = scenario.run()
        assert len(scenario.trace) <= 64
        assert results["obs"]["trace_dropped"] == (
            scenario.trace.emitted - len(scenario.trace)
        )
