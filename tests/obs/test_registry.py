"""MetricsRegistry instruments, snapshots and the compat facades."""

import pytest

from repro.obs import (
    CounterMap,
    Histogram,
    MetricsRegistry,
    counter_property,
)
from repro.sim import Simulator


class TestInstruments:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        c = reg.counter("polls")
        c.inc()
        c.inc(2)
        assert reg.counter("polls").value == 3
        assert reg.counter("polls") is c

    def test_labels_distinguish_instruments(self):
        reg = MetricsRegistry()
        reg.counter("delivered", kind="voice").inc()
        reg.counter("delivered", kind="video").inc(5)
        snap = reg.snapshot()
        assert snap["counters"] == {
            "delivered{kind=video}": 5,
            "delivered{kind=voice}": 1,
        }

    def test_gauge(self):
        reg = MetricsRegistry()
        g = reg.gauge("tokens")
        g.set(4.5)
        assert reg.snapshot()["gauges"]["tokens"] == 4.5

    def test_histogram_buckets_and_stats(self):
        h = Histogram((0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.05, 0.5, 5.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 5
        assert snap["min"] == 0.005 and snap["max"] == 5.0
        assert snap["buckets"] == {"0.01": 1, "0.1": 2, "1.0": 1, "+inf": 1}
        assert h.mean == pytest.approx(5.605 / 5)
        assert h.quantile(0.5) == 0.1
        assert h.quantile(1.0) == float("inf")

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))

    def test_quantile_of_empty_histogram_is_zero(self):
        h = Histogram((0.01, 0.1))
        assert h.quantile(0.0) == 0.0
        assert h.quantile(0.5) == 0.0
        assert h.quantile(1.0) == 0.0

    def test_quantile_extremes_land_on_occupied_buckets(self):
        h = Histogram((0.01, 0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        # q=0 resolves to the lowest occupied bucket's upper edge,
        # q=1 to the highest — never an empty bucket in between
        assert h.quantile(0.0) == 0.1
        assert h.quantile(1.0) == 1.0

    def test_quantile_all_overflow_is_inf(self):
        h = Histogram((0.01,))
        h.observe(7.0)
        h.observe(9.0)
        assert h.quantile(0.5) == float("inf")
        assert h.quantile(1.0) == float("inf")

    def test_quantile_single_observation_is_flat(self):
        h = Histogram((0.01, 0.1))
        h.observe(0.05)
        assert (
            h.quantile(0.0) == h.quantile(0.5) == h.quantile(1.0) == 0.1
        )

    def test_quantile_rejects_out_of_range(self):
        h = Histogram((0.01,))
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestSnapshots:
    def test_snapshot_is_deterministically_ordered(self):
        reg = MetricsRegistry(bss="b0")
        reg.counter("z").inc()
        reg.counter("a").inc()
        snap = reg.snapshot(now=2.0)
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["t"] == 2.0
        assert snap["labels"] == {"bss": "b0"}

    def test_periodic_snapshots_on_the_sim_clock(self):
        sim = Simulator()
        reg = MetricsRegistry()
        c = reg.counter("ticks")
        sim.call_at(1.5, c.inc)
        reg.start_snapshots(sim, 1.0)
        sim.run(until=3.5)
        assert [s["t"] for s in reg.snapshots] == [1.0, 2.0, 3.0]
        assert [s["counters"]["ticks"] for s in reg.snapshots] == [0, 1, 1]

    def test_start_snapshots_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            MetricsRegistry().start_snapshots(Simulator(), 0.0)


class TestFacades:
    def test_counter_map_reads_and_writes_through(self):
        reg = MetricsRegistry()
        m = CounterMap(reg, "losses", ("x", "y"))
        m["x"] += 1
        m["x"] += 1
        m["y"] = 7
        assert m["x"] == 2
        assert dict(m.items()) == {"x": 2, "y": 7}
        assert set(m.keys()) == {"x", "y"}
        assert len(m) == 2 and "x" in m
        assert reg.snapshot()["counters"]["losses{key=x}"] == 2

    def test_counter_property_facade(self):
        reg = MetricsRegistry()

        class Holder:
            polls = counter_property("polls")

            def __init__(self):
                self._counters = {"polls": reg.counter("holder_polls")}

        h = Holder()
        h.polls += 1
        h.polls += 1
        assert h.polls == 2
        assert reg.counter("holder_polls").value == 2
