"""CLI satellites: bare invocation help, and the trace subcommand."""

import json

from repro.__main__ import main
from repro.obs import validate_trace_file


def test_bare_invocation_prints_help_and_exits_zero(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "usage:" in out
    for command in ("quick", "sweep", "validate", "chaos", "trace"):
        assert command in out


def test_trace_subcommand_end_to_end(tmp_path, capsys):
    out_dir = tmp_path / "artifacts"
    code = main(
        [
            "trace",
            "--time", "4",
            "--seed", "2",
            "--out-dir", str(out_dir),
        ]
    )
    assert code == 0
    trace_path = out_dir / "trace.jsonl"
    metrics_path = out_dir / "metrics.json"
    assert validate_trace_file(str(trace_path)) > 0
    metrics = json.loads(metrics_path.read_text())
    assert metrics["final"]["counters"]
    assert len(metrics["periodic"]) == 4  # 1 Hz snapshots over [1, 4]
    out = capsys.readouterr().out
    assert "CFP/CP timeline" in out
    assert "events/s" in out
    assert "schema ok" in out


def test_trace_subcommand_category_filter(tmp_path):
    out_dir = tmp_path / "artifacts"
    code = main(
        [
            "trace",
            "--time", "3",
            "--categories", "cfp", "token",
            "--snapshot-interval", "0",
            "--out-dir", str(out_dir),
        ]
    )
    assert code == 0
    cats = set()
    with open(out_dir / "trace.jsonl", encoding="utf-8") as fh:
        for line in fh:
            cats.add(json.loads(line)["cat"])
    assert cats <= {"cfp", "token"}
    metrics = json.loads((out_dir / "metrics.json").read_text())
    assert metrics["periodic"] == []
