"""The shared JSON coercion helper (repro.obs.jsonutil).

Extracted from the duplicate copies in ``exec.hashing`` and
``obs.trace``; both now import :func:`jsonable` from here, so this is
the single place the numpy-scalar/tuple coercion contract is pinned.
"""

import numpy as np

from repro.obs.jsonutil import jsonable


class TestScalars:
    def test_numpy_floats_unwrap_to_python_floats(self):
        out = jsonable(np.float64(0.25))
        assert type(out) is float and out == 0.25

    def test_numpy_ints_unwrap_to_python_ints(self):
        out = jsonable(np.int64(7))
        assert type(out) is int and out == 7

    def test_plain_values_pass_through(self):
        for v in (1, 2.5, "x", True, None):
            assert jsonable(v) is v


class TestContainers:
    def test_tuples_become_lists(self):
        assert jsonable((1, 2, (3, 4))) == [1, 2, [3, 4]]

    def test_nested_mixed_structure(self):
        row = {
            "delay": np.float64(1.5),
            "counts": (np.int64(2), np.int64(3)),
            "sub": {"loads": [np.float64(0.5), 1.0]},
        }
        out = jsonable(row)
        assert out == {
            "delay": 1.5, "counts": [2, 3], "sub": {"loads": [0.5, 1.0]}
        }
        assert type(out["delay"]) is float
        assert all(type(c) is int for c in out["counts"])

    def test_dict_keys_preserved(self):
        assert jsonable({"a": (1,), "b": {}}) == {"a": [1], "b": {}}

    def test_shared_import_sites_agree(self):
        # exec.hashing and obs.trace must both resolve to this helper
        from repro.exec import hashing
        from repro.obs import trace

        assert hashing.jsonable is jsonable
        assert trace._jsonable is jsonable
