"""CFP/CP timeline reconstruction and text rendering."""

from repro.obs import TraceRecorder, render_category_counts, render_timeline
from repro.obs.report import cfp_timeline


def recorder_with_two_cfps():
    rec = TraceRecorder()
    rec.emit(1.00, "cfp", "start", max_duration=0.05)
    rec.emit(1.00, "cfp", "poll", stations=["v1"])
    rec.emit(1.001, "cfp", "response", station="v1", ok=True)
    rec.emit(1.002, "cfp", "repoll", stations=["v2"], retries_left=1)
    rec.emit(1.003, "cfp", "null", station="v2", reason="empty")
    rec.emit(1.004, "cfp", "end", duration=0.004, cf_end_ok=True)
    rec.emit(1.104, "cfp", "start", max_duration=0.05)
    rec.emit(1.105, "cfp", "poll", stations=["v1"])
    rec.emit(1.106, "cfp", "poll_lost", stations=["v1"])
    rec.emit(1.107, "cfp", "end", duration=0.003, cf_end_ok=False)
    return rec


def test_cfp_timeline_reconstruction():
    cfps = cfp_timeline(recorder_with_two_cfps())
    assert len(cfps) == 2
    first, second = cfps
    assert first["start"] == 1.00 and first["end"] == 1.004
    assert first["duration"] == 0.004
    assert first["polls"] == 1 and first["repolls"] == 1
    assert first["responses"] == 1 and first["nulls"] == 1
    assert first["cp_after"] == second["start"] - first["end"]
    assert second["polls_lost"] == 1
    assert second["cp_after"] is None


def test_partial_cfp_at_buffer_edge_is_ignored():
    rec = TraceRecorder()
    # an 'end' with no matching 'start' (evicted from the ring), then a
    # 'start' with no 'end' yet
    rec.emit(0.5, "cfp", "end", duration=0.01)
    rec.emit(1.0, "cfp", "start", max_duration=0.05)
    assert cfp_timeline(rec) == []
    assert "no completed CFPs" in render_timeline(rec)


def test_render_timeline_text():
    text = render_timeline(recorder_with_two_cfps())
    assert "2 contention-free periods" in text
    assert "CFP #1" in text and "CFP #2" in text
    assert "CP" in text and "gap" in text
    assert "CFP share" in text


def test_render_timeline_elides_long_traces():
    rec = TraceRecorder()
    for i in range(50):
        t = float(i)
        rec.emit(t, "cfp", "start", max_duration=0.05)
        rec.emit(t + 0.01, "cfp", "end", duration=0.01)
    text = render_timeline(rec, limit=40)
    assert "10 more CFPs elided" in text


def test_render_category_counts():
    rec = recorder_with_two_cfps()
    rec.emit(2.0, "token", "grant", station="v1")
    text = render_category_counts(rec)
    assert "11 events emitted" in text
    assert "cfp" in text and "token" in text
