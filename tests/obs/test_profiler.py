"""EngineProfiler: attachment, handler keys, throughput reporting."""

from repro.obs import EngineProfiler, render_profile
from repro.sim import Simulator


def named_callback():
    pass


def test_detached_engine_has_no_profiler():
    sim = Simulator()
    assert sim.profiler is None
    sim.call_at(1.0, named_callback)
    sim.run(until=2.0)  # hot path untouched


def test_profiler_times_timer_callbacks_by_qualname():
    sim = Simulator()
    prof = EngineProfiler()
    sim.profiler = prof
    for i in range(3):
        sim.call_at(float(i), named_callback)
    sim.run(until=5.0)
    assert prof.events == 3
    summary = prof.summary()
    key = "named_callback"
    assert key in summary["handlers"]
    assert summary["handlers"][key]["calls"] == 3
    assert summary["handlers"][key]["total_s"] >= 0.0


def test_profiler_counts_process_events():
    sim = Simulator()
    prof = EngineProfiler()
    sim.profiler = prof

    def proc():
        yield 1.0
        yield 1.0

    sim.process(proc())
    sim.run(until=5.0)
    assert prof.events >= 2
    assert prof.events_per_sec >= 0.0


def test_profiled_run_matches_unprofiled_results():
    def build():
        sim = Simulator()
        fired = []
        sim.call_at(1.0, lambda: fired.append(sim.now))
        sim.call_at(2.0, lambda: fired.append(sim.now))
        return sim, fired

    plain_sim, plain = build()
    plain_sim.run(until=3.0)
    prof_sim, profiled = build()
    prof_sim.profiler = EngineProfiler()
    prof_sim.run(until=3.0)
    assert plain == profiled == [1.0, 2.0]
    assert plain_sim.events_processed == prof_sim.events_processed


def test_render_profile_mentions_throughput():
    sim = Simulator()
    prof = EngineProfiler()
    sim.profiler = prof
    sim.call_at(0.5, named_callback)
    sim.run(until=1.0)
    text = render_profile(prof)
    assert "events/s" in text
    assert "named_callback" in text
