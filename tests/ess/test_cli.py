"""`python -m repro ess`: flags, fault parsing, report file, exit code."""

import json

import pytest

from repro.__main__ import _parse_link_fault, main
from repro.ess import ESS_REPORT_SCHEMA
from repro.faults import LinkFault

SMOKE_ARGS = [
    "ess", "--rows", "2", "--cols", "2", "--epochs", "2",
    "--epoch", "10", "--new-rate", "0.15", "--residence", "15",
]


class TestLinkFaultParsing:
    def test_bare_link(self):
        fault = _parse_link_fault("ap/1x0-ap/1x1")
        assert fault == LinkFault("ap/1x0", "ap/1x1")

    def test_windowed(self):
        fault = _parse_link_fault("ap/0x0-ap/0x1:10:50")
        assert fault == LinkFault("ap/0x0", "ap/0x1", start=10.0, end=50.0)

    def test_open_ended(self):
        fault = _parse_link_fault("ap/0x0-ap/0x1:10")
        assert fault.start == 10.0 and fault.end is None

    def test_bad_specs_rejected(self):
        import argparse

        for bad in ("ap/0x0", "ap/0x0-ap/0x1:nope", "ap/0x0-ap/0x1:50:10"):
            with pytest.raises(argparse.ArgumentTypeError):
                _parse_link_fault(bad)


class TestEssCli:
    def test_clean_run_exits_zero_and_writes_report(
        self, tmp_path, capsys
    ):
        out = tmp_path / "report.json"
        assert main(SMOKE_ARGS + ["--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["schema"] == ESS_REPORT_SCHEMA
        assert report["passed"] is True
        stdout = capsys.readouterr().out
        assert "conservation: OK" in stdout

    def test_faulted_run_reports_failovers(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(
            SMOKE_ARGS
            + ["--fault", "ap/0x0-ap/0x1", "--seed", "1", "--out", str(out)]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["backhaul"]["faulted_links"] == ["ap/0x0|ap/0x1"]
        assert report["config"]["backhaul_faults"] == [
            {"a": "ap/0x0", "b": "ap/0x1", "start": 0.0, "end": None}
        ]

    def test_unknown_fault_link_is_a_usage_error(self, tmp_path):
        with pytest.raises(ValueError):
            main(SMOKE_ARGS + ["--fault", "ap/9x9-ap/9x8",
                               "--out", str(tmp_path / "r.json")])

    def test_frames_fidelity_runs(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(
            SMOKE_ARGS
            + ["--fidelity", "frames", "--frames-time", "4",
               "--no-cache", "--journal", str(tmp_path / "j.jsonl"),
               "--out", str(out)]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert "frames" in report
        assert "frames tier:" in capsys.readouterr().err
