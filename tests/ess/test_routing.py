"""Health-aware backhaul routing: failover order, accounting, metrics."""

import pytest

from repro.ess import BackhaulRouter, grid_ap_id, grid_topology
from repro.obs import MetricsRegistry


def make_router(rows=2, cols=2, k=2, metrics=None):
    return BackhaulRouter(grid_topology(rows, cols), k=k, metrics=metrics)


A, B, C, D = (grid_ap_id(0, 0), grid_ap_id(0, 1),
              grid_ap_id(1, 0), grid_ap_id(1, 1))


class TestRouting:
    def test_healthy_route_uses_primary(self):
        router = make_router()
        result = router.route(A, D)
        assert result is not None
        assert result.path_index == 0
        assert not result.failover
        assert result.latency == pytest.approx(0.002)
        assert router.routed == 1 and router.failovers == 0

    def test_fault_triggers_disjoint_failover(self):
        router = make_router()
        primary = router.paths(A, D)[0]
        router.set_link_health(primary[0], primary[1], healthy=False)
        result = router.route(A, D)
        assert result is not None and result.failover
        # the alternate shares no intermediate with the primary
        assert not (set(result.path[1:-1]) & set(primary[1:-1]))
        assert router.failovers == 1

    def test_unroutable_when_all_paths_cut(self):
        router = make_router()
        router.set_link_health(A, B, healthy=False)
        router.set_link_health(A, C, healthy=False)
        assert router.route(A, D) is None
        assert router.unroutable == 1
        assert router.routed == 0

    def test_health_is_reversible(self):
        router = make_router()
        router.set_link_health(A, B, healthy=False)
        assert not router.link_is_healthy(B, A)
        router.set_link_health(B, A, healthy=True)  # either orientation
        assert router.link_is_healthy(A, B)
        assert router.route(A, D).path_index == 0

    def test_unknown_link_health_raises(self):
        router = make_router()
        with pytest.raises(KeyError):
            router.set_link_health(A, D, healthy=False)  # diagonal: no link

    def test_reverse_direction_shares_the_path_cache(self):
        router = make_router()
        fwd = router.paths(A, D)
        rev = router.paths(D, A)
        assert rev == tuple(tuple(reversed(p)) for p in fwd)
        assert len(router._paths) == 1

    def test_same_src_dst_rejected(self):
        router = make_router()
        with pytest.raises(ValueError):
            router.route(A, A)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            make_router(k=0)

    def test_summary_shape(self):
        router = make_router()
        router.set_link_health(A, B, healthy=False)
        router.route(A, D)
        s = router.summary()
        assert s["routed"] == 1
        assert s["faulted_links"] == [f"{A}|{B}"]
        assert s["disjoint_paths_per_pair"] == 2

    def test_metrics_counters(self):
        metrics = MetricsRegistry(subsystem="ess", seed=1)
        router = make_router(metrics=metrics)
        router.route(A, D)
        router.set_link_health(A, B, healthy=False)
        router.set_link_health(A, C, healthy=False)
        router.route(A, D)
        counters = metrics.snapshot()["counters"]
        assert any(k.startswith("backhaul_routed") for k in counters)
        assert any(k.startswith("backhaul_unroutable") for k in counters)
        assert any(k.startswith("backhaul_link_handoffs") for k in counters)
