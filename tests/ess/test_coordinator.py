"""End-to-end ESS runs: sharded epochs, failover, conservation, frames.

The faulted-backhaul scenario here is the acceptance criterion of the
ESS layer: on a 3x3 grid with one backhaul link down, handoffs that
would have used it must fail over to the pre-computed node-disjoint
alternate, with the global call ledger balancing at every epoch
boundary.  The CI ``ess-smoke`` job runs the same scenario through the
CLI.
"""

import dataclasses

import pytest

from repro.ess import (
    ESS_REPORT_SCHEMA,
    EssConfig,
    EssCoordinator,
    run_ess,
    save_report,
)
from repro.exec import ExecutorConfig, SweepExecutor, canonical_json
from repro.faults import LinkFault
from repro.validate import EssLedgerSnapshot, conservation_violations

FAULTED = EssConfig(
    rows=3, cols=3, seed=1, epochs=4, epoch_length=15.0,
    new_call_rate=0.15, mean_residence=20.0,
    backhaul_faults=(LinkFault("ap/1x0", "ap/1x1"),),
)


class TestEssConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            EssConfig(rows=1, cols=1)  # an ESS needs two cells
        with pytest.raises(ValueError):
            EssConfig(epochs=0)
        with pytest.raises(ValueError):
            EssConfig(overlap=1.5)
        with pytest.raises(ValueError):
            EssConfig(mobility=0)
        with pytest.raises(ValueError):
            EssConfig(fidelity="packets")
        with pytest.raises(ValueError):
            EssConfig(frames_time=1.0)

    def test_unknown_fault_link_rejected(self):
        cfg = EssConfig(
            rows=2, cols=2,
            backhaul_faults=(LinkFault("ap/0x0", "ap/1x1"),),  # diagonal
        )
        with pytest.raises(ValueError):
            EssCoordinator(cfg)

    def test_overlap_scales_handoff_capacity(self):
        cfg = EssConfig(capacity=12, overlap=0.25)
        assert cfg.cell_config().handoff_capacity == 15
        cfg = EssConfig(capacity=12, overlap=0.0)
        assert cfg.cell_config().handoff_capacity == 12

    def test_mobility_scales_residence(self):
        cfg = EssConfig(mean_residence=40.0, mobility=2.0)
        assert cfg.cell_config().mean_residence == pytest.approx(20.0)

    def test_round_trips_through_dict(self):
        rebuilt = EssConfig.from_dict(FAULTED.to_dict())
        assert rebuilt == FAULTED
        assert isinstance(rebuilt.backhaul_faults[0], LinkFault)


class TestFaultedFailover:
    """The acceptance scenario: faulted link -> disjoint-path failover."""

    @pytest.fixture(scope="class")
    def report(self):
        return run_ess(FAULTED)

    def test_passes_with_zero_conservation_violations(self, report):
        assert report["passed"] is True
        assert report["conservation"]["violations"] == []
        assert report["conservation"]["epochs_checked"] == FAULTED.epochs

    def test_handoffs_fail_over_to_disjoint_alternate(self, report):
        backhaul = report["backhaul"]
        assert backhaul["failovers"] > 0
        assert backhaul["unroutable"] == 0  # 3x3 grid is 2-connected
        assert backhaul["faulted_links"] == ["ap/1x0|ap/1x1"]

    def test_faulted_link_carries_no_handoffs(self, report):
        per_link = report["backhaul"]["per_link_handoffs"]
        assert not any("ap/1x0|ap/1x1" in key for key in per_link)
        assert sum(per_link.values()) > 0

    def test_report_shape(self, report):
        assert report["schema"] == ESS_REPORT_SCHEMA
        assert set(report["per_cell"]) == {
            f"ap/{r}x{c}" for r in range(3) for c in range(3)
        }
        totals = report["totals"]
        assert totals["created"] > 0
        assert totals["handoff_attempts"] > 0
        assert 0.0 <= totals["handoff_drop_rate"] <= 1.0

    def test_deterministic_byte_for_byte(self, report):
        again = run_ess(FAULTED)
        assert canonical_json(again) == canonical_json(report)

    def test_fault_free_run_never_fails_over(self):
        clean = dataclasses.replace(FAULTED, backhaul_faults=())
        report = run_ess(clean)
        assert report["passed"] is True
        assert report["backhaul"]["failovers"] == 0
        assert report["backhaul"]["faulted_links"] == []

    def test_fault_window_expires(self):
        windowed = dataclasses.replace(
            FAULTED,
            backhaul_faults=(LinkFault("ap/1x0", "ap/1x1", start=0.0, end=15.0),),
        )
        report = run_ess(windowed)
        per_link = report["backhaul"]["per_link_handoffs"]
        # the link resumes carrying traffic after its outage window
        assert any("ap/1x0|ap/1x1" in key for key in per_link)


class TestCoordinator:
    def test_run_is_once_only(self):
        coord = EssCoordinator(EssConfig(rows=2, cols=2, epochs=1))
        coord.run()
        with pytest.raises(RuntimeError):
            coord.run()

    def test_snapshots_one_per_epoch(self):
        coord = EssCoordinator(EssConfig(rows=2, cols=2, epochs=3))
        coord.run()
        assert [s.epoch for s in coord.snapshots] == [0, 1, 2]
        assert conservation_violations(coord.snapshots) == []

    def test_metrics_epoch_snapshots(self):
        coord = EssCoordinator(EssConfig(rows=2, cols=2, epochs=3))
        coord.run()
        assert len(coord.metrics.snapshots) == 3


class TestFramesFidelity:
    def test_frames_tier_runs_through_the_executor(self, tmp_path):
        cfg = EssConfig(
            rows=2, cols=2, seed=3, epochs=2, epoch_length=10.0,
            fidelity="frames", frames_time=4.0,
        )
        executor = SweepExecutor(
            ExecutorConfig(cache_dir=str(tmp_path / "cache"))
        )
        report = run_ess(cfg, executor=executor)
        assert report["passed"] is True
        assert executor.summary()["total_points"] == 4 * 2  # cells x epochs
        frames = report["frames"]
        assert set(frames) == {"ap/0x0", "ap/0x1", "ap/1x0", "ap/1x1"}
        for agg in frames.values():
            assert agg["epochs"] == 2
        # the frame tier replays what the call tier routed
        injected = sum(a["handoffs_injected"] for a in frames.values())
        assert injected <= report["backhaul"]["routed"]

    def test_frames_shards_are_cacheable(self, tmp_path):
        cfg = EssConfig(
            rows=2, cols=2, seed=3, epochs=1, epoch_length=10.0,
            fidelity="frames", frames_time=4.0,
        )
        exec_cfg = ExecutorConfig(cache_dir=str(tmp_path / "cache"))
        first = SweepExecutor(exec_cfg)
        run_ess(cfg, executor=first)
        assert first.summary()["executed"] == 4
        replay = SweepExecutor(exec_cfg)
        report = run_ess(cfg, executor=replay)
        assert replay.summary()["cache_hits"] == 4
        assert replay.summary()["executed"] == 0
        assert report["passed"] is True


class TestValidateHelpers:
    def test_snapshot_violation_messages(self):
        ok = EssLedgerSnapshot(
            epoch=0, created=10, completed=4, dropped_admission=1,
            dropped_backhaul=1, resident=3, in_transit=1,
        )
        assert ok.violation() is None
        broken = dataclasses.replace(ok, created=11)
        assert "conservation broken" in broken.violation()
        # balances (4 + (-1 + 2) + 3 + 1 == 9) but a term is negative
        negative = dataclasses.replace(ok, created=9, dropped_admission=-1,
                                       dropped_backhaul=2)
        assert "negative" in negative.violation()

    def test_save_report_writes_json(self, tmp_path):
        report = run_ess(EssConfig(rows=2, cols=2, epochs=1))
        path = save_report(report, tmp_path / "sub" / "report.json")
        assert path.exists()
        import json

        loaded = json.loads(path.read_text())
        assert loaded["schema"] == ESS_REPORT_SCHEMA
