"""One microcell's call dynamics: admission, roaming, ledger balance."""

import itertools

import pytest

from repro.ess import Cell, CellConfig, RoamingCall
from repro.sim import RandomStreams
from repro.validate import cell_ledger_violations


def make_cell(cell_id="ap/0x0", neighbors=("ap/0x1", "ap/1x0"), seed=1,
              ids=None, **cfg_kw):
    config = CellConfig(**cfg_kw)
    ids = ids if ids is not None else itertools.count(1)
    return Cell(cell_id, neighbors, config, RandomStreams(seed), ids)


def run_epochs(cell, epochs=6, epoch_length=20.0):
    departures = []
    for e in range(epochs):
        departures.extend(
            cell.advance(e * epoch_length, (e + 1) * epoch_length)
        )
    return departures


class TestCellConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CellConfig(new_call_rate=-0.1)
        with pytest.raises(ValueError):
            CellConfig(mean_holding=0)
        with pytest.raises(ValueError):
            CellConfig(mean_residence=-1)
        with pytest.raises(ValueError):
            CellConfig(capacity=0)
        with pytest.raises(ValueError):
            CellConfig(capacity=10, handoff_capacity=9)


class TestRoamingCall:
    def test_kind_validated(self):
        with pytest.raises(ValueError):
            RoamingCall(1, "data", "ap/0x0")


class TestCell:
    def test_needs_a_neighbor(self):
        with pytest.raises(ValueError):
            make_cell(neighbors=())

    def test_ledger_balances_after_epochs(self):
        cell = make_cell(new_call_rate=0.3, mean_holding=15.0,
                         mean_residence=10.0)
        run_epochs(cell)
        ledger = cell.ledger(horizon=120.0)
        assert cell_ledger_violations(cell.cell_id, ledger) == []
        assert ledger["attempts_new"] > 0

    def test_departures_target_known_neighbors(self):
        cell = make_cell(new_call_rate=0.5, mean_residence=5.0)
        departures = run_epochs(cell)
        assert departures
        assert {d.dst for d in departures} <= set(cell.neighbors)
        for d in departures:
            assert d.src == cell.cell_id

    def test_capacity_blocks_new_calls(self):
        cell = make_cell(new_call_rate=5.0, capacity=2, handoff_capacity=2,
                         mean_holding=1e6, mean_residence=1e6)
        cell.advance(0.0, 10.0)
        assert cell.occupancy == 2
        assert cell.blocked > 0
        assert cell.admitted_new == 2

    def test_handoff_overlap_grace(self):
        # cell full for new calls, but the overlap region admits roamers
        cell = make_cell(new_call_rate=5.0, capacity=2, handoff_capacity=3,
                         mean_holding=1e6, mean_residence=1e6)
        cell.advance(0.0, 10.0)
        assert cell.occupancy == 2
        cell.deliver_handoff(10.5, RoamingCall(900, "voice", "ap/0x1"))
        cell.deliver_handoff(10.6, RoamingCall(901, "voice", "ap/0x1"))
        cell.advance(10.0, 20.0)
        assert cell.handoff_in == 2
        assert cell.handoff_in_admitted == 1
        assert cell.handoff_dropped_admission == 1
        assert cell.occupancy == 3

    def test_trajectory_is_seed_deterministic(self):
        def fingerprint():
            cell = make_cell(seed=42, new_call_rate=0.4,
                             mean_holding=12.0, mean_residence=8.0)
            cell.deliver_handoff(3.0, RoamingCall(500, "video", "ap/0x1"))
            deps = run_epochs(cell, epochs=4, epoch_length=15.0)
            return (
                [(d.time, d.call.call_id, d.dst) for d in deps],
                cell.ledger(horizon=60.0),
            )

        assert fingerprint() == fingerprint()

    def test_zero_rate_cell_stays_empty(self):
        cell = make_cell(new_call_rate=0.0)
        assert run_epochs(cell) == []
        assert cell.occupancy == 0 and cell.attempts_new == 0

    def test_occupancy_time_integral(self):
        cell = make_cell(new_call_rate=0.0)
        cell.deliver_handoff(0.0, RoamingCall(1, "voice", "ap/0x1"))
        cell.advance(0.0, 10.0)
        # one resident call for (almost) the whole epoch
        dwell = cell.mean_occupancy(10.0)
        assert 0.0 < dwell <= 1.0

    def test_advance_window_validated(self):
        cell = make_cell()
        with pytest.raises(ValueError):
            cell.advance(5.0, 5.0)
